//! End-to-end tests for the streaming subsystem's serving layer: a real
//! [`Server`] on a loopback port, driven over TCP exactly like the CI
//! smoke client drives the `serve` binary.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use even_cycle_congest::engine::RunProfile;
use even_cycle_congest::serve::{ServeConfig, Server};

/// One blocking request/response exchange on an open connection.
fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, request: &str) -> String {
    stream
        .write_all(format!("{request}\n").as_bytes())
        .expect("request written");
    stream.flush().expect("request flushed");
    let mut line = String::new();
    reader.read_line(&mut line).expect("response read");
    assert!(line.ends_with('\n'), "responses are newline-terminated");
    line.trim_end().to_string()
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

#[test]
fn serve_handles_concurrent_connections_dedups_and_shuts_down_cleanly() {
    let dir = std::env::temp_dir().join(format!("ec-serve-tcp-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServeConfig::new(RunProfile::FastCi, 2)
        .store(&dir)
        .max_inflight(2);
    let server = Server::bind(("127.0.0.1", 0), &config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let server_thread = std::thread::spawn(move || server.run());

    // Load a snapshot once, then detect from TWO concurrent
    // connections — identical requests, so whatever interleaving the
    // threads produce, every response must be the same byte-identical
    // verdict line.
    let detect = "{\"op\":\"detect\",\"name\":\"g\",\"detector\":\"global-threshold\",\"seed\":5}";
    {
        let (mut s, mut r) = connect(addr);
        let resp = roundtrip(&mut s, &mut r, "{\"op\":\"ping\"}");
        assert_eq!(resp, "{\"ok\":true,\"op\":\"ping\"}");
        let resp = roundtrip(
            &mut s,
            &mut r,
            "{\"op\":\"load\",\"name\":\"g\",\"family\":\"planted:4\",\"n\":24,\"seed\":3}",
        );
        assert!(resp.starts_with("{\"ok\":true"), "{resp}");
    }
    let lines: Vec<String> = {
        let workers: Vec<_> = (0..2)
            .map(|_| {
                std::thread::spawn(move || {
                    let (mut s, mut r) = connect(addr);
                    let a = roundtrip(&mut s, &mut r, detect);
                    let b = roundtrip(&mut s, &mut r, detect);
                    [a, b]
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("worker joins"))
            .collect()
    };
    assert_eq!(lines.len(), 4);
    for line in &lines {
        assert!(line.starts_with("{\"ok\":true,\"op\":\"detect\""), "{line}");
        assert_eq!(
            line, &lines[0],
            "identical requests must return byte-identical verdict lines"
        );
    }

    // Of the 4 identical requests, exactly one executed a detector; the
    // rest replayed from the content-addressed store.
    let (mut s, mut r) = connect(addr);
    let stats = roundtrip(&mut s, &mut r, "{\"op\":\"stats\",\"name\":\"g\"}");
    assert!(stats.contains("\"detects\":4"), "{stats}");
    assert!(stats.contains("\"executed\":1"), "{stats}");
    assert!(stats.contains("\"replayed\":3"), "{stats}");

    // Update-then-detect: the edge insert moves the graph's content
    // fingerprint, so the same detect request executes afresh instead
    // of replaying the stale verdict.
    let resp = roundtrip(
        &mut s,
        &mut r,
        "{\"op\":\"update\",\"name\":\"g\",\"action\":\"insert\",\"u\":0,\"v\":11}",
    );
    assert!(resp.starts_with("{\"ok\":true,\"op\":\"update\""), "{resp}");
    let after_update = roundtrip(&mut s, &mut r, detect);
    assert!(after_update.starts_with("{\"ok\":true"), "{after_update}");
    let stats = roundtrip(&mut s, &mut r, "{\"op\":\"stats\",\"name\":\"g\"}");
    assert!(stats.contains("\"executed\":2"), "{stats}");
    assert!(stats.contains("\"updates\":1"), "{stats}");

    // And the updated graph's verdict dedups too.
    let dup = roundtrip(&mut s, &mut r, detect);
    assert_eq!(after_update, dup);

    // Clean shutdown: acknowledged on the wire, the accept loop drains,
    // run() returns Ok.
    let bye = roundtrip(&mut s, &mut r, "{\"op\":\"shutdown\"}");
    assert_eq!(bye, "{\"ok\":true,\"op\":\"shutdown\"}");
    drop((s, r));
    server_thread
        .join()
        .expect("server thread joins")
        .expect("clean shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_reports_errors_inline_and_keeps_the_connection() {
    let config = ServeConfig::new(RunProfile::FastCi, 2);
    let server = Server::bind(("127.0.0.1", 0), &config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let server_thread = std::thread::spawn(move || server.run());

    let (mut s, mut r) = connect(addr);
    let resp = roundtrip(
        &mut s,
        &mut r,
        "{\"op\":\"detect\",\"name\":\"missing\",\"detector\":\"global-threshold\"}",
    );
    assert!(resp.starts_with("{\"ok\":false"), "{resp}");
    assert!(resp.contains("no snapshot"), "{resp}");
    // The same connection still serves after an error line.
    let resp = roundtrip(&mut s, &mut r, "{\"op\":\"ping\"}");
    assert_eq!(resp, "{\"ok\":true,\"op\":\"ping\"}");
    let bye = roundtrip(&mut s, &mut r, "{\"op\":\"shutdown\"}");
    assert_eq!(bye, "{\"ok\":true,\"op\":\"shutdown\"}");
    drop((s, r));
    server_thread.join().unwrap().unwrap();
}
