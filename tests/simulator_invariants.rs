//! Simulator-level invariants exercised through the paper's own
//! protocols: parallel execution, tracing, and wire encoding all agree
//! with the reference executor.

use even_cycle_congest::cycle::color_bfs::ColorBfs;
use even_cycle_congest::cycle::{random_coloring, Params};
use even_cycle_congest::graph::{generators, CycleWitness, Graph, NodeId};
use even_cycle_congest::sim::parallel::ParallelExecutor;
use even_cycle_congest::sim::trace::run_traced;
use even_cycle_congest::sim::wire::{assert_accounting_consistent, WireEncode};
use even_cycle_congest::sim::Executor;

fn planted_instance(seed: u64) -> (Graph, CycleWitness, Vec<u8>) {
    let host = generators::erdos_renyi(48, 0.06, seed);
    let (g, planted) = generators::plant_cycle(&host, 4, seed);
    let mut colors = random_coloring(g.node_count(), 4, seed ^ 77);
    for (i, &u) in planted.nodes().iter().enumerate() {
        colors[u.index()] = i as u8;
    }
    (g, planted, colors)
}

#[test]
fn parallel_executor_runs_color_bfs_identically() {
    for seed in 0..3u64 {
        let (g, _, colors) = planted_instance(seed);
        let tau = Params::practical(2).instantiate(g.node_count()).tau;
        let build = |v: NodeId, _| ColorBfs::new(2, colors[v.index()], true, true, true, tau);

        let mut seq = Executor::new(&g, seed);
        let sr = seq.run(build, 8).unwrap();
        let mut par = ParallelExecutor::new(&g, seed);
        par.set_threads(3);
        let pr = par.run(build, 8).unwrap();

        assert_eq!(sr.decision, pr.decision, "seed {seed}");
        assert_eq!(sr.rounds, pr.rounds);
        assert_eq!(sr.rejecting_nodes, pr.rejecting_nodes);
        assert!(sr.rejected(), "forced coloring must detect");
        // The node states agree too.
        for (a, b) in seq.nodes().iter().zip(par.nodes()) {
            assert_eq!(a.evidence(), b.evidence());
            assert_eq!(a.collected(), b.collected());
        }
    }
}

#[test]
fn parallel_cut_meter_matches_sequential_on_color_bfs() {
    use even_cycle_congest::sim::CutMeter;
    // The §3.3 reductions meter the words crossing a bipartition; the
    // parallel path must count exactly what the sequential path does
    // (it used to silently report `cut_words: None`).
    for seed in 0..3u64 {
        let (g, _, colors) = planted_instance(seed);
        let tau = Params::practical(2).instantiate(g.node_count()).tau;
        let build = |v: NodeId, _| ColorBfs::new(2, colors[v.index()], true, true, true, tau);
        let side: Vec<bool> = (0..g.node_count()).map(|v| v % 2 == 0).collect();

        let mut seq = Executor::new(&g, seed);
        seq.set_cut(CutMeter::new(&g, side.clone()));
        let sr = seq.run(build, 8).unwrap();
        assert!(sr.cut_words.is_some_and(|w| w > 0), "cut must be crossed");

        for threads in [2usize, 4] {
            let mut par = ParallelExecutor::new(&g, seed);
            par.set_threads(threads);
            par.set_cut(CutMeter::new(&g, side.clone()));
            let pr = par.run(build, 8).unwrap();
            assert_eq!(
                sr.cut_words, pr.cut_words,
                "cut words diverged (seed {seed}, {threads} threads)"
            );
            assert_eq!(sr, pr, "full report must agree (seed {seed})");
        }
    }
}

#[test]
fn trace_agrees_with_congestion_accounting_on_color_bfs() {
    let (g, _, colors) = planted_instance(5);
    let tau = Params::practical(2).instantiate(g.node_count()).tau;
    let (report, trace) = run_traced(
        &g,
        5,
        |v, _| ColorBfs::new(2, colors[v.index()], true, true, true, tau),
        8,
    )
    .unwrap();
    assert_eq!(
        trace.peak_edge_load() as u64,
        report.congestion.max_words_per_edge_step
    );
    let total: usize = trace.events().iter().map(|e| e.words).sum();
    assert_eq!(total as u64, report.congestion.total_words);
    // Every traced endpoint pair is an edge of the graph.
    for e in trace.events() {
        assert!(
            g.has_edge(e.from, e.to),
            "{} -> {} is not an edge",
            e.from,
            e.to
        );
    }
}

#[test]
fn id_sets_encode_within_their_word_budget() {
    // The I_v payloads of color-BFS are Vec<u32>; the wire module pins
    // the word accounting to a real byte encoding.
    for size in [0usize, 1, 3, 17, 200] {
        let ids: Vec<u32> = (0..size as u32).map(|x| x * 7 + 1).collect();
        assert_accounting_consistent(&ids);
    }
    // And NodeId scalars.
    assert_accounting_consistent(&NodeId::new(12345));
}

#[test]
fn wire_roundtrip_preserves_large_payloads() {
    let ids: Vec<u32> = (0..10_000).collect();
    let bytes = ids.to_bytes();
    let mut view = bytes;
    let back = Vec::<u32>::decode(&mut view).expect("decode");
    assert_eq!(back, ids);
}
