//! Telemetry invariance: installing a recorder must not change a
//! single result byte. The simulator's transcripts, the engine's
//! reports, and the store's JSONL records are all part of the
//! deterministic contract — observation has to be read-only.

use std::sync::Arc;

use even_cycle_congest::registry::DetectorRegistry;
use even_cycle_congest::scenario::{GraphFamily, Metric, Scenario};
use even_cycle_congest::telemetry;
use even_cycle_congest::{Detector, RunProfile};

/// Every store file under `dir` as `(name, bytes)`, sorted by name.
fn store_bytes(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("store dir exists")
        .map(|entry| {
            let entry = entry.expect("readable store entry");
            (
                entry.file_name().to_string_lossy().into_owned(),
                std::fs::read(entry.path()).expect("readable store file"),
            )
        })
        .collect();
    files.sort();
    files
}

/// The acceptance gate of the telemetry subsystem, asserted across the
/// whole fast-ci registry (every detector shape: randomized color-BFS,
/// deterministic gather, quantum pipelines): a full sweep with the
/// JSONL sink recording every span and counter produces byte-identical
/// reports AND byte-identical store files to the same sweep with no
/// recorder installed. One test function owns the whole sequence —
/// `install`/`uninstall` swap process-global state, so the on and off
/// runs must not race a second test.
#[test]
fn recorder_is_result_invariant_across_the_registry() {
    let registry = DetectorRegistry::with_profile(2, RunProfile::FastCi);
    let dets: Vec<&dyn Detector> = registry.iter().map(|e| e.detector.as_ref()).collect();

    let base = std::env::temp_dir().join(format!("ec-telemetry-inv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("scratch dir");
    let off_dir = base.join("off");
    let on_dir = base.join("on");
    let trace = base.join("trace.jsonl");

    let scenario = |dir: &std::path::Path| {
        Scenario::new("telemetry invariance", GraphFamily::planted_cycle(4))
            .sizes(&[16, 24])
            .seeds(0..2)
            .workers(2)
            .metric(Metric::Rounds)
            .store(dir)
    };

    telemetry::uninstall();
    let report_off = scenario(&off_dir).run(&dets).to_json();

    let sink = telemetry::JsonlSink::create(&trace).expect("trace file");
    telemetry::install(Arc::new(sink));
    let report_on = scenario(&on_dir).run(&dets).to_json();
    telemetry::uninstall();

    assert_eq!(
        report_off, report_on,
        "an installed recorder must not change a report byte"
    );
    assert_eq!(
        store_bytes(&off_dir),
        store_bytes(&on_dir),
        "an installed recorder must not change a store byte"
    );

    // The recording run must actually have traced: spans from every
    // layer land in the sink as parseable flat-JSON lines tagged with
    // the reserved `ev` key.
    let trace_text = std::fs::read_to_string(&trace).expect("trace was written");
    assert!(
        trace_text.lines().count() > 0,
        "the recording run must emit events"
    );
    for line in trace_text.lines().take(100) {
        let fields = telemetry::parse_flat_line(line).expect("flat-JSON event line");
        assert!(
            fields.iter().any(|(k, _)| k == "ev"),
            "event line missing `ev`: {line}"
        );
        assert!(
            fields.iter().any(|(k, _)| k == "name"),
            "event line missing `name`: {line}"
        );
    }

    // And the Chrome mirror of that trace must convert losslessly.
    let chrome = base.join("trace.chrome.json");
    let events = telemetry::convert_file(&trace, &chrome).expect("chrome conversion");
    assert_eq!(
        events,
        trace_text.lines().count(),
        "every JSONL event converts to one trace_event"
    );
    let chrome_text = std::fs::read_to_string(&chrome).expect("chrome file");
    assert!(chrome_text.starts_with("{\"traceEvents\":["));
    assert!(chrome_text.trim_end().ends_with('}'));

    std::fs::remove_dir_all(&base).ok();
}

/// The registry snapshot after a sweep reflects the work the engine
/// did: metrics are process-global and always on, so executed-unit and
/// superstep counters must be non-zero once any sweep has run — with
/// or without a recorder installed.
#[test]
fn metrics_registry_counts_work_without_a_recorder() {
    // No recorder is installed by this test; metrics are always-on.
    let registry = DetectorRegistry::with_profile(2, RunProfile::FastCi);
    let first = registry.iter().next().expect("registry is never empty");
    let dets: Vec<&dyn Detector> = vec![first.detector.as_ref()];
    let _ = Scenario::new("metrics smoke", GraphFamily::planted_cycle(4))
        .sizes(&[16])
        .seeds(0..1)
        .run(&dets);

    let snapshot = telemetry::Registry::global().snapshot();
    let flat = snapshot.to_flat_json();
    let fields = telemetry::parse_flat_line(&flat).expect("snapshot is flat JSON");
    let value = |key: &str| {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_f64())
            .unwrap_or_else(|| panic!("snapshot missing {key}"))
    };
    assert!(value("engine.units.executed") >= 1.0);
    assert!(value("sim.runs") >= 1.0);
    assert!(value("engine.unit_ns.count") >= 1.0);

    // The Prometheus rendering exposes the same registry under the
    // even_cycle prefix.
    let prom = snapshot.to_prometheus("even_cycle");
    assert!(prom.contains("# TYPE even_cycle_engine_units_executed counter"));
    assert!(prom.contains("even_cycle_engine_unit_ns_count"));
}
