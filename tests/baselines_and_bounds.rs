//! Cross-crate integration: baselines agree with the paper's detector;
//! lower-bound gadgets compose with the simulator and the theory.

use even_cycle_congest::baselines::censor_hillel::LocalThresholdDetector;
use even_cycle_congest::baselines::deterministic::gather_and_decide;
use even_cycle_congest::baselines::eden::EdenModel;
use even_cycle_congest::cycle::{CycleDetector, Params};
use even_cycle_congest::graph::{analysis, generators};
use even_cycle_congest::lowerbounds::disjointness::Disjointness;
use even_cycle_congest::lowerbounds::gadgets::{C4Gadget, EvenCycleGadget, OddCycleGadget};
use even_cycle_congest::lowerbounds::reduction::measure_even_detection;
use even_cycle_congest::lowerbounds::theory;

#[test]
fn all_detectors_agree_on_planted_c4() {
    let host = generators::random_tree(48, 21);
    let (g, _) = generators::plant_cycle(&host, 4, 21);
    // Exact baseline:
    let gather = gather_and_decide(&g, 4, 0).unwrap();
    assert!(gather.rejected);
    // Local threshold [10] (higher attempt budget: each attempt needs a
    // cycle-adjacent source *and* a good coloring):
    let lt = LocalThresholdDetector::new(2).with_attempts(24.0, 4096);
    assert!((0..20).any(|s| lt.run(&g, s).rejected));
    // This paper:
    let ours = CycleDetector::new(Params::practical(2));
    assert!(ours.run(&g, 3).rejected());
}

#[test]
fn all_detectors_agree_on_c4_free_input() {
    let g = generators::polarity_graph(5);
    assert!(!gather_and_decide(&g, 4, 0).unwrap().rejected);
    let lt = LocalThresholdDetector::new(2);
    let ours = CycleDetector::new(Params::practical(2).with_repetitions(16));
    for seed in 0..3 {
        assert!(!lt.run(&g, seed).rejected);
        assert!(!ours.run(&g, seed).rejected());
    }
}

#[test]
fn eden_agrees_with_ours_on_c6() {
    // A farm of disjoint C6s: the per-repetition success probability is
    // `copies · 12/6⁶`, high enough for deterministic-seeded detection.
    let mut g = generators::cycle(6);
    for _ in 1..8 {
        g = generators::disjoint_union(&g, &generators::cycle(6));
    }
    let g = generators::disjoint_union(&g, &generators::path(12));
    let eden = EdenModel::new(3).with_repetitions(800);
    let found_eden = (0..10).any(|s| eden.run(&g, s).rejected);
    let ours = CycleDetector::new(Params::practical(3).with_repetitions(800));
    let found_ours = (0..10).any(|s| ours.run(&g, s).rejected());
    assert!(found_eden, "[16]-style model missed the C6 entirely");
    assert!(found_ours, "Algorithm 1 missed the C6 entirely");
}

#[test]
fn gather_baseline_rounds_dominate_ours_asymptotically() {
    // On sparse instances the full-gathering baseline costs Θ(m) = Θ(n)
    // rounds, while Algorithm 1's per-iteration cost stays well below n
    // as n grows (the n^{1-1/k} separation). We check the measured gap
    // at one size: per-iteration rounds of ours vs gather rounds.
    let host = generators::random_tree(220, 4);
    let (g, _) = generators::plant_cycle(&host, 4, 4);
    let gather = gather_and_decide(&g, 4, 0).unwrap();
    let ours = CycleDetector::new(Params::practical(2).with_repetitions(4)).run(&g, 2);
    let ours_per_iter = ours.report.rounds / ours.iterations.max(1) / 3;
    assert!(
        gather.report.rounds > 3 * ours_per_iter,
        "gather {} should dwarf a color-BFS call {}",
        gather.report.rounds,
        ours_per_iter
    );
}

#[test]
fn even_gadget_scales_and_reduces() {
    // N = s², n = Θ(s + elements·(k-1)): for full sets the vertex count
    // is Θ(N), the cut Θ(√N) — the balance behind Ω̃(√n).
    let k = 3;
    for s in [3usize, 5] {
        let gadget = EvenCycleGadget::new(k, s);
        let inst = Disjointness::random(s * s, 0.4, 7);
        let built = gadget.build(&inst);
        assert_eq!(built.cut_size, 2 * s);
        assert_eq!(
            analysis::has_cycle_exact(&built.graph, 2 * k, None),
            inst.intersects()
        );
    }
}

#[test]
fn odd_gadget_communication_balance() {
    let gadget = OddCycleGadget::new(2, 4);
    let (inst, _) = Disjointness::random_with_planted_intersection(16, 2);
    let built = gadget.build(&inst);
    // Quantum implied bound beats nothing at tiny n, but the formula
    // chain must be internally consistent:
    let n = built.graph.node_count();
    let q = theory::implied_quantum_round_bound(gadget.universe(), built.cut_size, n);
    let c = theory::implied_classical_round_bound(gadget.universe(), built.cut_size, n);
    // q = √c exactly (the quadratic gap); q ≤ c only once c ≥ 1, which
    // tiny instances need not satisfy.
    assert!((q * q - c).abs() / c.max(1e-9) < 1e-9);
    assert!(q > 0.0);
}

#[test]
fn reduction_measurement_respects_information_limits() {
    let gadget = C4Gadget::new(5);
    let (inst, _) = Disjointness::random_with_planted_intersection(gadget.universe(), 11);
    let built = gadget.build(&inst);
    let params = Params::practical(2).with_repetitions(32);
    let m = measure_even_detection(&built, &params, 32, 5);
    // Bandwidth 1 word/edge/round: crossing words can never exceed
    // rounds × cut.
    assert!(m.cut_words <= m.rounds * m.cut_size as u64);
    // The protocol bound must be consistent with the conversion.
    assert_eq!(
        m.protocol_bound(),
        m.rounds * m.cut_size as u64 * u64::from(m.bits_per_word)
    );
}

#[test]
fn apeldoorn_devos_vs_ours_exponent_gap_widens_with_n() {
    use even_cycle_congest::baselines::apeldoorn_devos::ApeldoornDeVosModel;
    use even_cycle_congest::cycle::theory::Table1Row;
    for k in [2usize, 3, 4] {
        let theirs = ApeldoornDeVosModel::new(k);
        let r_small =
            theirs.round_bound(1 << 12) / Table1Row::ThisPaperQuantumF2k.rounds(1 << 12, k);
        let r_large =
            theirs.round_bound(1 << 24) / Table1Row::ThisPaperQuantumF2k.rounds(1 << 24, k);
        assert!(
            r_large > r_small && r_small >= 1.0,
            "k={k}: improvement must grow with n ({r_small} -> {r_large})"
        );
    }
}
