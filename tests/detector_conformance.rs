//! The shared conformance suite of the unified `Detector` API: every
//! entry of the `DetectorRegistry` — the paper's six algorithms and the
//! Table 1 comparators — must satisfy the trait contract on the same
//! parametrized instances, with zero per-algorithm wiring.
//!
//! Per entry:
//!
//! * **Soundness** (verdict correctness, no side): on a target-free
//!   control the detector accepts for every seed tried — one-sided
//!   error means a single rejection is a bug.
//! * **Completeness** (verdict correctness, yes side): on a planted
//!   yes-instance the detector rejects within a bounded seed sweep.
//! * **Witness validity**: every rejection's cycle validates against
//!   the input graph and its length belongs to the declared target.
//! * **Seed determinism**: equal `(graph, seed, budget)` gives equal
//!   `Detection`s.

use even_cycle_congest::cycle::{Budget, Target};
use even_cycle_congest::graph::{generators, Graph};
use even_cycle_congest::registry::{DetectorRegistry, RegistryEntry};

/// `copies` disjoint copies of `C_len` plus a path: girth `len`, and
/// the per-repetition success probability of every sampling detector
/// scales with `copies`.
fn cycle_farm(len: usize, copies: usize) -> Graph {
    let mut g = generators::cycle(len);
    for _ in 1..copies {
        g = generators::disjoint_union(&g, &generators::cycle(len));
    }
    generators::disjoint_union(&g, &generators::path(10))
}

/// A yes-instance for the entry's target family.
fn planted_instance(target: Target) -> Graph {
    match target {
        // A planted C_{2k} on a sparse tree plus a farm boost: the
        // standard detection instance of the unit suites.
        Target::Even { k } => cycle_farm(2 * k, 8),
        Target::Odd { k } => cycle_farm(2 * k + 1, 8),
        // Shortest length dominates the F2k sweep; a C4 farm keeps the
        // pair ℓ = 2 responsible regardless of k.
        Target::F2k { .. } => cycle_farm(4, 8),
    }
}

/// A control certifiably free of the entry's target family.
fn control_instance(target: Target) -> Graph {
    match target {
        // C_{2k+2} has girth 2k+2 > 2k.
        Target::Even { k } => generators::cycle(2 * k + 2),
        // Bipartite graphs have no odd cycles at all.
        Target::Odd { .. } => generators::random_bipartite(16, 16, 0.15, 5),
        // Girth > 2k kills every length in {3, …, 2k}.
        Target::F2k { k } => generators::high_girth(48, 2 * k, 8, 3),
    }
}

/// Seeds granted to randomized one-sided detectors to find the planted
/// cycle (retries only help on yes-instances).
const COMPLETENESS_SEEDS: u64 = 12;
/// Seeds every detector must survive on the control.
const SOUNDNESS_SEEDS: u64 = 4;

fn assert_conformance(entry: &RegistryEntry, check_completeness: bool) {
    let target = entry.descriptor.target;
    let budget = Budget::classical();

    // --- soundness on the target-free control ---
    let control = control_instance(target);
    for seed in 0..SOUNDNESS_SEEDS {
        let d = entry
            .detector
            .detect(&control, seed, &budget)
            .unwrap_or_else(|e| panic!("{}: control simulation failed: {e}", entry.id));
        assert!(
            !d.rejected(),
            "{}: one-sided error violated on the control (seed {seed})",
            entry.id
        );
        assert_eq!(
            d.algorithm, entry.descriptor,
            "{}: detection must carry its own descriptor",
            entry.id
        );
    }

    // --- completeness + witness validity on the planted instance ---
    // Without a completeness requirement the sweep is only a
    // witness-validity probe, so two seeds suffice (the k = 3 sampling
    // budgets explode combinatorially — exactly the scaling Table 1
    // charges them).
    let planted = planted_instance(target);
    let seed_budget = if check_completeness {
        COMPLETENESS_SEEDS
    } else {
        2
    };
    let mut found = false;
    for seed in 0..seed_budget {
        let d = entry
            .detector
            .detect(&planted, seed, &budget)
            .unwrap_or_else(|e| panic!("{}: planted simulation failed: {e}", entry.id));
        if d.rejected() {
            found = true;
            let w = d
                .witness()
                .unwrap_or_else(|| panic!("{}: rejection without witness", entry.id));
            assert!(w.is_valid(&planted), "{}: invalid witness", entry.id);
            assert!(
                target.matches_length(w.len()),
                "{}: witness length {} outside target {}",
                entry.id,
                w.len(),
                target.label()
            );
            break;
        }
    }
    if check_completeness {
        assert!(
            found,
            "{}: planted {} never detected in {COMPLETENESS_SEEDS} seeds",
            entry.id,
            target.label()
        );
    }

    // --- seed determinism ---
    let a = entry.detector.detect(&planted, 1, &budget).unwrap();
    let b = entry.detector.detect(&planted, 1, &budget).unwrap();
    assert_eq!(a, b, "{}: same seed must reproduce the Detection", entry.id);
}

#[test]
fn registry_k2_full_conformance() {
    let registry = DetectorRegistry::standard(2);
    assert!(registry.len() >= 8, "k = 2 registry lost algorithms");
    for entry in registry.iter() {
        assert_conformance(entry, true);
    }
}

#[test]
fn registry_k3_soundness_determinism_and_witnesses() {
    // At k = 3 the sampling baselines' completeness budgets explode
    // (that is exactly the n^{1-1/k} attempt scaling Table 1 charges
    // them), so the planted sweep stays best-effort: any rejection must
    // still be certified, and soundness/determinism are unconditional.
    let registry = DetectorRegistry::standard(3);
    assert!(registry.len() >= 8, "k = 3 registry lost algorithms");
    for entry in registry.iter() {
        assert_conformance(entry, false);
    }
}

#[test]
fn registry_covers_all_eight_algorithm_families() {
    // 3 core classical + 3 quantum + the 4 comparators (the [15,30]
    // gather baseline registering per parity).
    let registry = DetectorRegistry::standard(3);
    let references: std::collections::BTreeSet<&str> =
        registry.iter().map(|e| e.descriptor.reference).collect();
    for expected in [
        "this paper",
        "this paper §3.4",
        "this paper §3.5",
        "this paper Thm 2",
        "[10]",
        "[15,30]",
        "[16]",
        "[33]",
    ] {
        // k = 3 drops [10] (k ≤ 5 holds) — check against k = 3 ∪ k = 6.
        if expected == "[10]" {
            let r2 = DetectorRegistry::standard(2);
            assert!(
                r2.iter().any(|e| e.descriptor.reference == "[10]"),
                "[10] missing from the k = 2 registry"
            );
            continue;
        }
        assert!(
            references.contains(expected),
            "reference {expected} missing from the k = 3 registry (has {references:?})"
        );
    }
}

#[test]
fn backends_are_transcript_equivalent_across_the_registry() {
    // The tentpole invariant of the unified simulation backend: for
    // EVERY registry entry, the full `Detection` — verdict, witness,
    // rounds, messages, congestion, iterations — is identical under
    // the sequential and parallel backends at any thread count, on
    // both a planted yes-instance and a dense extremal no-instance.
    use congest_graph::FamilySpec;
    use even_cycle_congest::sim::Backend;
    let registry = DetectorRegistry::with_profile(2, even_cycle_congest::RunProfile::FastCi);
    let planted = planted_instance(Target::Even { k: 2 });
    // Polarity graphs are the C4-free extremal inputs (Θ(n^{3/2})
    // edges): the densest deliver workload the detectors see — plus
    // one small instance of every family the spec catalog added
    // (power-law, small-world, torus, multi-planted, noisy-planted),
    // so a new family cannot join the catalog without passing the
    // backend-equivalence bar.
    let extremal = generators::polarity_graph(5);
    let new_families = [
        FamilySpec::PreferentialAttachment { m: 2 },
        FamilySpec::WattsStrogatz { k: 4, p: 0.1 },
        FamilySpec::Torus,
        FamilySpec::MultiPlanted { copies: 2, l: 4 },
        FamilySpec::NoisyPlanted { l: 4, p: 0.05 },
    ];
    let mut instances: Vec<(String, congest_graph::Graph)> = vec![
        ("planted".to_string(), planted),
        ("extremal".to_string(), extremal),
    ];
    for spec in new_families {
        instances.push((spec.canonical_label(), spec.build(16, 5)));
    }
    for entry in registry.iter() {
        for (gname, g) in &instances {
            let baseline = entry
                .detector
                .detect(g, 3, &Budget::classical())
                .unwrap_or_else(|e| panic!("{}: {gname} failed sequentially: {e}", entry.id));
            // Thread counts bracketing every pool regime: the
            // sequential fallback (1), small pools (2, 4), more
            // workers than nodes (128 — every instance here is
            // smaller), and `Auto` on both sides of its flip:
            // threshold 1 always takes the pooled path, the tuned
            // default always stays sequential at these sizes.
            for backend in [
                Backend::Sequential,
                Backend::Parallel { threads: 1 },
                Backend::Parallel { threads: 2 },
                Backend::Parallel { threads: 4 },
                Backend::Parallel { threads: 128 },
                Backend::Auto { node_threshold: 1 },
                Backend::auto(),
            ] {
                let budget = Budget::classical().with_backend(backend);
                let d = entry
                    .detector
                    .detect(g, 3, &budget)
                    .unwrap_or_else(|e| panic!("{}: {gname} failed on {backend}: {e}", entry.id));
                assert_eq!(
                    d, baseline,
                    "{}: Detection diverged on {gname} under {backend}",
                    entry.id
                );
            }
        }
    }
}

#[test]
fn cut_meter_words_agree_on_the_pooled_path() {
    // Congestion lower bounds read `cut_words` off the run report; the
    // persistent worker pool must charge exactly the same cut
    // crossings as the sequential core, whatever the thread count and
    // however the backend was selected. Broadcast gossip on a bisected
    // ER graph keeps every cut edge busy every superstep.
    use even_cycle_congest::sim::{
        run_with_backend, Backend, Control, Ctx, CutMeter, Outbox, Program,
    };
    use even_cycle_congest::graph::NodeId;

    #[derive(Debug)]
    struct Flood {
        steps: usize,
    }
    impl Program for Flood {
        type Msg = u64;
        fn init(&mut self, ctx: &mut Ctx, out: &mut Outbox<u64>) {
            out.broadcast(ctx.node.index() as u64);
        }
        fn step(
            &mut self,
            _ctx: &mut Ctx,
            s: usize,
            inbox: &[(NodeId, u64)],
            out: &mut Outbox<u64>,
        ) -> Control {
            if s + 1 < self.steps {
                out.broadcast(inbox.len() as u64);
                Control::Continue
            } else {
                Control::Halt
            }
        }
    }

    let g = generators::erdos_renyi(64, 0.12, 11);
    let side: Vec<bool> = (0..g.node_count()).map(|v| v >= 32).collect();
    let build = |_: NodeId, _: usize| Flood { steps: 4 };
    let cut = || Some(CutMeter::new(&g, side.clone()));
    let (baseline, _) =
        run_with_backend(&g, 5, Backend::Sequential, 1, cut(), build, 16).unwrap();
    assert!(
        baseline.cut_words.is_some_and(|w| w > 0),
        "the bisection must be crossed"
    );
    for backend in [
        Backend::Parallel { threads: 2 },
        Backend::Parallel { threads: 4 },
        Backend::Parallel { threads: 128 },
        Backend::Auto { node_threshold: 1 },
    ] {
        let (report, _) = run_with_backend(&g, 5, backend, 1, cut(), build, 16).unwrap();
        assert_eq!(
            report.cut_words, baseline.cut_words,
            "cut accounting diverged under {backend}"
        );
        assert_eq!(report, baseline, "full report diverged under {backend}");
    }
}

#[test]
fn bandwidth_budget_is_honored_by_classical_entries() {
    use even_cycle_congest::cycle::Model;
    let registry = DetectorRegistry::standard(2);
    let g = planted_instance(Target::Even { k: 2 });
    for entry in registry.by_model(Model::Classical) {
        let narrow = entry.detector.detect(&g, 2, &Budget::classical()).unwrap();
        let wide = entry
            .detector
            .detect(&g, 2, &Budget::classical().with_bandwidth(8))
            .unwrap();
        assert!(
            wide.cost.rounds <= narrow.cost.rounds,
            "{}: bandwidth 8 must not cost more rounds ({} vs {})",
            entry.id,
            wide.cost.rounds,
            narrow.cost.rounds
        );
    }
}
