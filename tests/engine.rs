//! Engine conformance: parallel determinism, budget-cap enforcement,
//! and result-store resume (the acceptance criteria of the experiment
//! engine).

use std::sync::atomic::{AtomicU64, Ordering};

use even_cycle_congest::cycle::{
    Budget, CycleDetector, Detector, OddCycleDetector, Params, Verdict,
};
use even_cycle_congest::graph::generators;
use even_cycle_congest::registry::DetectorRegistry;
use even_cycle_congest::scenario::{GraphFamily, Metric, Scenario};
use even_cycle_congest::RunProfile;

/// The conformance grid: a few detectors of different shapes over a
/// planted-cycle family.
fn conformance_scenario() -> Scenario {
    Scenario::new("conformance grid", GraphFamily::planted_cycle(4))
        .sizes(&[24, 32, 48])
        .seeds(0..3)
        .metric(Metric::Rounds)
}

#[test]
fn parallel_report_is_byte_identical_to_sequential() {
    let a = CycleDetector::new(Params::practical(2).with_repetitions(3));
    let b = OddCycleDetector::new(2, 20);
    let c = congest_baselines::deterministic::GatherDetector::new(4);
    let dets: Vec<&dyn Detector> = vec![&a, &b, &c];

    let sequential = conformance_scenario().workers(1).run(&dets).to_json();
    for workers in [2usize, 8] {
        let parallel = conformance_scenario().workers(workers).run(&dets).to_json();
        assert_eq!(
            sequential, parallel,
            "workers = {workers} must reproduce the sequential report byte for byte"
        );
    }
}

#[test]
fn round_cap_aborts_instead_of_looping() {
    // A cycle-free host with a large repetition budget: uncapped, the
    // detector grinds through all 64 iterations; capped, it must abort
    // early with the budget-exceeded verdict.
    let det = CycleDetector::new(Params::practical(2).with_repetitions(64));
    let g = generators::random_tree(48, 5);

    let uncapped = det.detect(&g, 1, &Budget::classical()).unwrap();
    assert!(!uncapped.rejected());
    let full_rounds = uncapped.cost.rounds;
    assert!(full_rounds > 40, "need a meaningful uncapped run");

    let capped = det
        .detect(&g, 1, &Budget::classical().with_round_cap(full_rounds / 8))
        .unwrap();
    assert!(
        matches!(capped.verdict, Verdict::BudgetExceeded { .. }),
        "capped run must report BudgetExceeded, got {:?}",
        capped.verdict
    );
    assert!(capped.budget_exceeded());
    assert!(capped.witness().is_none());
    assert!(
        capped.cost.rounds < full_rounds / 2,
        "the capped run must abort early ({} vs {full_rounds} rounds)",
        capped.cost.rounds
    );
    assert!(
        capped.cost.iterations < 64,
        "the capped run must not spend the whole repetition budget"
    );
}

#[test]
fn message_cap_aborts_the_odd_detector() {
    let det = OddCycleDetector::new(2, 200);
    let g = generators::random_bipartite(24, 24, 0.15, 3);

    let uncapped = det.detect(&g, 2, &Budget::classical()).unwrap();
    assert!(!uncapped.rejected());
    let full_messages = uncapped.cost.messages;
    assert!(full_messages > 100);

    let capped = det
        .detect(
            &g,
            2,
            &Budget::classical().with_message_cap(full_messages / 10),
        )
        .unwrap();
    assert!(capped.budget_exceeded());
    assert!(capped.cost.messages < full_messages);
}

#[test]
fn certified_rejection_survives_a_cap() {
    // A planted C4 found on the first iterations: even with a cap the
    // witness is proof, so the verdict must stay Reject.
    let host = generators::random_tree(48, 7);
    let (g, _) = generators::plant_cycle(&host, 4, 7);
    let det = CycleDetector::new(Params::practical(2));
    let uncapped = det.detect(&g, 11, &Budget::classical()).unwrap();
    assert!(uncapped.rejected(), "seed 11 must find the planted C4");
    let capped = det
        .detect(&g, 11, &Budget::classical().with_round_cap(1))
        .unwrap();
    // Either the rejection happened before the cap bit (witness kept),
    // or the run was cut off first (budget exceeded) — but a kept
    // rejection must carry its witness.
    if capped.rejected() {
        assert!(capped.witness().unwrap().is_valid(&g));
    } else {
        assert!(capped.budget_exceeded());
    }
}

/// A forwarding detector that counts invocations (to prove the store
/// replays without running anything).
#[derive(Debug)]
struct Counting<'a> {
    inner: &'a dyn Detector,
    calls: &'a AtomicU64,
}

impl Detector for Counting<'_> {
    fn descriptor(&self) -> even_cycle_congest::Descriptor {
        self.inner.descriptor()
    }

    fn config_fingerprint(&self) -> String {
        // The default Debug rendering would include the (mutating)
        // call counter; forward the inner configuration instead.
        self.inner.config_fingerprint()
    }

    fn detect(
        &self,
        g: &even_cycle_congest::graph::Graph,
        seed: u64,
        budget: &Budget,
    ) -> even_cycle::DetectResult {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.detect(g, seed, budget)
    }
}

#[test]
fn store_resume_invokes_no_detector() {
    let dir = std::env::temp_dir().join(format!("ec-engine-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let a = CycleDetector::new(Params::practical(2).with_repetitions(3));
    let b = OddCycleDetector::new(2, 20);
    let calls = AtomicU64::new(0);
    let ca = Counting {
        inner: &a,
        calls: &calls,
    };
    let cb = Counting {
        inner: &b,
        calls: &calls,
    };
    let dets: Vec<&dyn Detector> = vec![&ca, &cb];
    let scenario = || {
        Scenario::new("resume grid", GraphFamily::planted_cycle(4))
            .sizes(&[24, 32])
            .seeds(0..2)
            .workers(2)
            .store(&dir)
    };

    let first = scenario().run(&dets).to_json();
    let units = 2 * 2 * 2; // sizes × seeds × detectors
    assert_eq!(calls.load(Ordering::Relaxed), units);

    // Second run: everything replays from the JSONL store.
    let second = scenario().run(&dets).to_json();
    assert_eq!(
        calls.load(Ordering::Relaxed),
        units,
        "a completed sweep must resume with zero detector invocations"
    );
    assert_eq!(first, second, "replayed report must be byte-identical");

    // Records carry the full unified cost, so re-analyzing under a
    // different metric is also a zero-invocation replay.
    let messages = scenario().metric(Metric::Messages).run(&dets);
    assert_eq!(
        calls.load(Ordering::Relaxed),
        units,
        "a metric change must replay the stored costs"
    );
    assert_ne!(messages.to_json(), first, "but the report does change");

    // A genuinely different configuration (bandwidth) must NOT reuse
    // the cached units.
    let _ = scenario()
        .budget(Budget::classical().with_bandwidth(2))
        .run(&dets);
    assert_eq!(calls.load(Ordering::Relaxed), 2 * units);

    // So must a re-tuned detector behind the same registry id: the
    // config fingerprint separates the unit keys. Per-unit addressing
    // means only the re-tuned detector's own cells re-execute — the
    // unchanged detector's units replay from the store.
    let retuned = CycleDetector::new(Params::practical(2).with_repetitions(5));
    let cr = Counting {
        inner: &retuned,
        calls: &calls,
    };
    let retuned_dets: Vec<&dyn Detector> = vec![&cr, &cb];
    let _ = scenario().run(&retuned_dets);
    assert_eq!(
        calls.load(Ordering::Relaxed),
        2 * units + units / 2,
        "a re-tuned detector must re-execute its own units (and only those)"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn family_parameter_change_invalidates_exactly_its_own_units() {
    // The store-fingerprint footgun, closed end-to-end: family
    // parameters are part of the unit key, so re-running with
    // planted:4 → planted:6 re-executes exactly the planted units —
    // the trees units (same grid, same detector, same budget) replay
    // untouched.
    let dir = std::env::temp_dir().join(format!("ec-engine-famkey-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let inner = CycleDetector::new(Params::practical(2).with_repetitions(2));
    let calls = AtomicU64::new(0);
    let det = Counting {
        inner: &inner,
        calls: &calls,
    };
    let dets: Vec<&dyn Detector> = vec![&det];
    let scenario = |family: GraphFamily| {
        Scenario::new("family key grid", family)
            .sizes(&[24, 32])
            .seeds(0..2)
            .store(&dir)
    };
    let units = 2 * 2;

    // Seed the store with planted:4 and trees sweeps.
    let _ = scenario(GraphFamily::planted_cycle(4)).run(&dets);
    let _ = scenario(GraphFamily::random_trees()).run(&dets);
    assert_eq!(calls.load(Ordering::Relaxed), 2 * units as u64);

    // Change the planted family's PARAMETER: its own units re-execute…
    let _ = scenario(GraphFamily::planted_cycle(6)).run(&dets);
    assert_eq!(
        calls.load(Ordering::Relaxed),
        3 * units as u64,
        "planted:6 must not replay planted:4's records"
    );

    // …and nothing else was invalidated: the other families replay.
    let _ = scenario(GraphFamily::planted_cycle(4)).run(&dets);
    let _ = scenario(GraphFamily::random_trees()).run(&dets);
    let _ = scenario(GraphFamily::planted_cycle(6)).run(&dets);
    assert_eq!(
        calls.load(Ordering::Relaxed),
        3 * units as u64,
        "every previously computed family must replay with zero invocations"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn legacy_name_keyed_records_are_ignored_not_misread() {
    // Pre-refactor stores keyed units by the family's display name
    // (canonical prefix v2). Those records must never replay against a
    // fingerprint-keyed (v3) sweep — the sweep executes everything
    // live and the legacy lines stay as dead weight in the file.
    use even_cycle_congest::engine::store::{canonical_unit, unit_key, STORE_FILE};

    let dir = std::env::temp_dir().join(format!("ec-engine-legacy-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let inner = CycleDetector::new(Params::practical(2).with_repetitions(2));
    let id = inner.descriptor().id();
    let config = inner.config_fingerprint();

    // Forge a v2-era store: records keyed by the OLD canonical string
    // (family display name, v2 prefix) for the exact grid we are about
    // to run. If keys still matched, the sweep would replay these
    // bogus costs; rounds=1 makes a misread detectable too.
    let mut lines = vec!["{\"kind\":\"unit-store\",\"version\":2}".to_string()];
    for &n in &[24usize, 32] {
        for seed in 0..2u64 {
            let legacy_canonical = format!(
                "v2|family=planted C4 on trees|n={n}|seed={seed}|det={id}|config={config}|bandwidth=1|repetitions=None|run_to_budget=false|max_rounds=None|max_messages=None"
            );
            let key = unit_key(&legacy_canonical);
            lines.push(format!(
                "{{\"key\":\"{key}\",\"det\":\"{id}\",\"n\":{n},\"seed\":{seed},\"status\":\"ok\",\"rejected\":false,\"value\":1,\"node_count\":{n},\"rounds\":1,\"supersteps\":1,\"messages\":1,\"words\":1,\"max_congestion\":1,\"iterations\":1}}"
            ));
            // Sanity: the forged key cannot equal the v3 key of the
            // same unit.
            let current = unit_key(&canonical_unit(
                &GraphFamily::planted_cycle(4).store_key(),
                n,
                seed,
                &id,
                &config,
                &Budget::classical(),
            ));
            assert_ne!(key, current, "legacy keys must never collide with v3");
        }
    }
    std::fs::write(dir.join(STORE_FILE), lines.join("\n") + "\n").unwrap();

    let calls = AtomicU64::new(0);
    let det = Counting {
        inner: &inner,
        calls: &calls,
    };
    let dets: Vec<&dyn Detector> = vec![&det];
    let report = Scenario::new("legacy grid", GraphFamily::planted_cycle(4))
        .sizes(&[24, 32])
        .seeds(0..2)
        .store(&dir)
        .run(&dets);
    assert_eq!(
        calls.load(Ordering::Relaxed),
        4,
        "legacy name-keyed records must be ignored: every unit runs live"
    );
    // A misread would have aggregated the forged rounds=1 records.
    assert!(
        report.rows[0].samples.iter().all(|&(_, v)| v > 1.0),
        "forged legacy costs must not reach the report: {:?}",
        report.rows[0].samples
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn suite_reports_match_standalone_runs_and_share_the_store() {
    // One shared engine pass over two scenarios must aggregate exactly
    // what two standalone runs produce, and its store must serve both.
    use even_cycle_congest::Engine;

    let dir = std::env::temp_dir().join(format!("ec-engine-suitepass-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let a = CycleDetector::new(Params::practical(2).with_repetitions(3));
    let b = OddCycleDetector::new(2, 20);
    let calls = AtomicU64::new(0);
    let ca = Counting {
        inner: &a,
        calls: &calls,
    };
    let cb = Counting {
        inner: &b,
        calls: &calls,
    };
    let planted = Scenario::new("planted", GraphFamily::planted_cycle(4))
        .sizes(&[24, 32])
        .seeds(0..2);
    let trees = Scenario::new("trees", GraphFamily::random_trees())
        .sizes(&[24])
        .seeds(0..2)
        .metric(Metric::Messages);
    let dets_a: Vec<&dyn Detector> = vec![&ca, &cb];
    let dets_b: Vec<&dyn Detector> = vec![&ca];

    let engine = Engine::from_env().with_workers(2).with_store(&dir);
    let outcome = engine.run_suite(&[(&planted, &dets_a), (&trees, &dets_b)]);
    assert_eq!(outcome.reports.len(), 2);
    assert_eq!(outcome.total_units, 8 + 2);
    assert_eq!(outcome.executed_units, 10);
    assert_eq!(calls.load(Ordering::Relaxed), 10);

    // Standalone runs replay the suite's store and agree byte for byte.
    let alone_a = engine.run(&planted, &dets_a);
    let alone_b = engine.run(&trees, &dets_b);
    assert_eq!(calls.load(Ordering::Relaxed), 10, "pure replay");
    assert_eq!(outcome.reports[0].to_json(), alone_a.to_json());
    assert_eq!(outcome.reports[1].to_json(), alone_b.to_json());

    // And a second suite pass replays everything.
    let replay = engine.run_suite(&[(&planted, &dets_a), (&trees, &dets_b)]);
    assert_eq!(replay.executed_units, 0);
    assert_eq!(replay.replayed_units, replay.total_units);
    assert_eq!(calls.load(Ordering::Relaxed), 10);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn partial_store_resumes_only_missing_units() {
    // Simulate a killed sweep: keep the header and the first three
    // record lines, then re-run — only the missing units may execute.
    let dir = std::env::temp_dir().join(format!("ec-engine-partial-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let inner = CycleDetector::new(Params::practical(2).with_repetitions(2));
    let calls = AtomicU64::new(0);
    let det = Counting {
        inner: &inner,
        calls: &calls,
    };
    let dets: Vec<&dyn Detector> = vec![&det];
    let scenario = || {
        Scenario::new("partial grid", GraphFamily::planted_cycle(4))
            .sizes(&[24, 32])
            .seeds(0..3)
            .store(dir.clone())
    };
    let units = 2 * 3;

    let first = scenario().run(&dets).to_json();
    assert_eq!(calls.load(Ordering::Relaxed), units);

    let file = std::fs::read_dir(&dir)
        .unwrap()
        .next()
        .unwrap()
        .unwrap()
        .path();
    let kept: Vec<String> = std::fs::read_to_string(&file)
        .unwrap()
        .lines()
        .take(4) // header + 3 records
        .map(String::from)
        .collect();
    std::fs::write(&file, kept.join("\n") + "\n").unwrap();

    let resumed = scenario().run(&dets).to_json();
    assert_eq!(
        calls.load(Ordering::Relaxed),
        units + (units - 3),
        "only the dropped units may re-execute"
    );
    assert_eq!(
        first, resumed,
        "partial resume must rebuild the same report"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn grid_extension_replays_every_overlapping_unit() {
    // The acceptance criterion of the per-unit store: extending a sweep
    // grid by one rung — a size, a seed, or a detector — replays all
    // overlapping units with zero detector invocations and executes
    // only the new cells.
    let dir = std::env::temp_dir().join(format!("ec-engine-extend-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let a = CycleDetector::new(Params::practical(2).with_repetitions(3));
    let b = OddCycleDetector::new(2, 20);
    let calls = AtomicU64::new(0);
    let ca = Counting {
        inner: &a,
        calls: &calls,
    };
    let cb = Counting {
        inner: &b,
        calls: &calls,
    };
    let base = |sizes: &[usize], seeds: std::ops::Range<u64>| {
        Scenario::new("extension grid", GraphFamily::planted_cycle(4))
            .sizes(sizes)
            .seeds(seeds)
            .workers(2)
            .store(&dir)
    };

    // Seed sweep: 2 sizes × 2 seeds × 1 detector.
    let one_det: Vec<&dyn Detector> = vec![&ca];
    let _ = base(&[24, 32], 0..2).run(&one_det);
    assert_eq!(calls.load(Ordering::Relaxed), 4);

    // Extend the size ladder by one rung: only the new rung's units run.
    let _ = base(&[24, 32, 48], 0..2).run(&one_det);
    assert_eq!(
        calls.load(Ordering::Relaxed),
        4 + 2,
        "the 2 overlapping sizes must replay; only n = 48 executes"
    );

    // Extend the seed range by one: only the new seed's units run.
    let _ = base(&[24, 32, 48], 0..3).run(&one_det);
    assert_eq!(
        calls.load(Ordering::Relaxed),
        6 + 3,
        "seeds 0..2 must replay; only seed 2 executes"
    );

    // Add a detector: only its units run.
    let two_dets: Vec<&dyn Detector> = vec![&ca, &cb];
    let full = base(&[24, 32, 48], 0..3).run(&two_dets);
    assert_eq!(
        calls.load(Ordering::Relaxed),
        9 + 9,
        "the first detector's 9 units must replay; only the new detector executes"
    );

    // And the fully replayed grid is byte-identical at any worker count.
    let replayed = base(&[24, 32, 48], 0..3).workers(8).run(&two_dets);
    assert_eq!(calls.load(Ordering::Relaxed), 18, "full replay");
    assert_eq!(full.to_json(), replayed.to_json());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_under_migration_replays_overlap_and_runs_new_rung() {
    // Kill a sweep mid-grid (simulated by truncating the store file),
    // extend the grid by one size rung, reopen with the per-unit store:
    // the surviving units replay with zero invocations, and both the
    // killed-off remainder and the new rung run live.
    let dir = std::env::temp_dir().join(format!("ec-engine-migrate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let inner = CycleDetector::new(Params::practical(2).with_repetitions(2));
    let calls = AtomicU64::new(0);
    let det = Counting {
        inner: &inner,
        calls: &calls,
    };
    let dets: Vec<&dyn Detector> = vec![&det];
    let scenario = |sizes: &[usize]| {
        Scenario::new("migration grid", GraphFamily::planted_cycle(4))
            .sizes(sizes)
            .seeds(0..3)
            .store(&dir)
    };

    let _ = scenario(&[24, 32]).run(&dets);
    assert_eq!(calls.load(Ordering::Relaxed), 6);

    // "Kill" the sweep mid-grid: keep the header and the first 4 of 6
    // unit records.
    let file = dir.join("units-v2.jsonl");
    let kept: Vec<String> = std::fs::read_to_string(&file)
        .unwrap()
        .lines()
        .take(5)
        .map(String::from)
        .collect();
    std::fs::write(&file, kept.join("\n") + "\n").unwrap();

    // Reopen with the grid extended by one rung: the 4 surviving units
    // replay; the 2 killed units and the 3 new-rung units run live.
    let report = scenario(&[24, 32, 48]).run(&dets);
    assert_eq!(
        calls.load(Ordering::Relaxed),
        6 + 2 + 3,
        "4 surviving units must replay with zero invocations"
    );
    assert_eq!(report.rows[0].skipped, 0);
    assert_eq!(report.rows[0].errors, 0);
    assert_eq!(
        report.rows[0].samples.len(),
        3,
        "all three rungs aggregated"
    );

    // The migrated store now covers the whole extended grid.
    let replay = scenario(&[24, 32, 48]).run(&dets);
    assert_eq!(
        calls.load(Ordering::Relaxed),
        11,
        "full replay after migration"
    );
    assert_eq!(report.to_json(), replay.to_json());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wall_clock_cap_skips_then_resumes_cleanly() {
    use even_cycle_congest::Schedule;

    let dir = std::env::temp_dir().join(format!("ec-engine-capped-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let inner = CycleDetector::new(Params::practical(2).with_repetitions(2));
    let calls = AtomicU64::new(0);
    let det = Counting {
        inner: &inner,
        calls: &calls,
    };
    let dets: Vec<&dyn Detector> = vec![&det];
    let scenario = || {
        Scenario::new("capped grid", GraphFamily::planted_cycle(4))
            .sizes(&[24, 32])
            .seeds(0..2)
            .store(&dir)
    };

    // A zero cap is already elapsed at dispatch: every unit is skipped,
    // nothing is invoked, and the report says so.
    let capped = scenario()
        .schedule(Schedule::cheapest_first().with_wall_clock_cap(std::time::Duration::ZERO))
        .run(&dets);
    assert_eq!(calls.load(Ordering::Relaxed), 0);
    assert_eq!(capped.rows[0].skipped, 4);
    assert_eq!(capped.skipped_units(), 4);
    assert!(capped.rows[0].samples.is_empty());
    assert!(capped.render().contains("skipped 4"));
    assert!(capped.to_json().contains("\"skipped\":4"));

    // Resuming without the cap completes the sweep...
    let resumed = scenario().run(&dets);
    assert_eq!(calls.load(Ordering::Relaxed), 4);
    assert_eq!(resumed.skipped_units(), 0);

    // ...and matches a from-scratch uncapped run byte for byte.
    let fresh_dir = std::env::temp_dir().join(format!("ec-engine-capped2-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&fresh_dir);
    let fresh = Scenario::new("capped grid", GraphFamily::planted_cycle(4))
        .sizes(&[24, 32])
        .seeds(0..2)
        .store(&fresh_dir)
        .run(&dets);
    assert_eq!(resumed.to_json(), fresh.to_json());

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&fresh_dir).ok();
}

#[test]
fn cheapest_first_report_matches_in_order() {
    // Dispatch order must never change the aggregated report:
    // aggregation folds records in canonical unit order.
    use even_cycle_congest::Schedule;
    let a = CycleDetector::new(Params::practical(2).with_repetitions(2));
    let b = OddCycleDetector::new(2, 20);
    let dets: Vec<&dyn Detector> = vec![&a, &b];
    let in_order = conformance_scenario().workers(2).run(&dets);
    let cheapest = conformance_scenario()
        .workers(2)
        .schedule(Schedule::cheapest_first())
        .run(&dets);
    assert_eq!(in_order.to_json(), cheapest.to_json());
}

#[test]
fn fast_ci_profile_sweeps_the_whole_registry() {
    // The CI smoke path: every registry entry over a tiny grid, two
    // workers, capped budget. Must produce a full report with a row per
    // entry and no simulator errors.
    let registry = RunProfile::FastCi.registry(2);
    let report = Scenario::new("fast-ci smoke", GraphFamily::random_trees())
        .sizes(&[24])
        .seeds(0..1)
        .budget(RunProfile::FastCi.budget())
        .workers(2)
        .run_registry(&registry);
    assert_eq!(report.rows.len(), registry.len());
    assert!(report.rows.iter().all(|r| r.errors == 0));
    // Trees are cycle-free and the caps are a safety net, not a
    // tripwire: every run completes.
    assert!(report.rows.iter().all(|r| r.rejections == 0));
    assert!(report.rows.iter().all(|r| r.budget_exceeded == 0));
}

#[test]
fn profile_registries_line_up_with_standard() {
    let standard = DetectorRegistry::standard(3);
    let practical = RunProfile::Practical.registry(3);
    assert_eq!(standard.len(), practical.len());
    for (a, b) in standard.iter().zip(practical.iter()) {
        assert_eq!(a.id, b.id);
    }
}

#[test]
fn stream_replay_executes_zero_detector_invocations() {
    // The streaming acceptance criterion: replaying an identical
    // UpdateSchedule twice through StreamScenario must resolve every
    // checkpoint unit from the content-addressed store on the second
    // pass — zero detector invocations — and reproduce the report byte
    // for byte.
    use even_cycle_congest::stream::StreamScenario;
    use even_cycle_congest::UpdateSchedule;

    let dir = std::env::temp_dir().join(format!("ec-engine-stream-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let schedule = UpdateSchedule::parse("planted:4@rate=6,mix=0.6,checkpoints=3").unwrap();
    let scenario = StreamScenario::new("stream resume", schedule)
        .n(32)
        .seeds(0..2)
        .store(&dir);
    let inner = CycleDetector::new(Params::practical(2).with_repetitions(2));
    let calls = AtomicU64::new(0);
    let counting = Counting {
        inner: &inner,
        calls: &calls,
    };

    let first = scenario.run(&[&counting]);
    assert_eq!(first.total_units, 3 * 2);
    assert_eq!(first.executed_units, 6);
    assert_eq!(first.replayed_units, 0);
    assert_eq!(calls.load(Ordering::Relaxed), 6);

    let second = scenario.run(&[&counting]);
    assert_eq!(
        second.executed_units, 0,
        "an unchanged stream must replay entirely from the store"
    );
    assert_eq!(second.replayed_units, 6);
    assert_eq!(
        calls.load(Ordering::Relaxed),
        6,
        "the second pass must not invoke the detector at all"
    );
    assert_eq!(
        first.report.to_json(),
        second.report.to_json(),
        "replayed reports must be byte-identical"
    );

    // Changing any schedule parameter moves every checkpoint key: a
    // third run with a different mix must execute everything afresh.
    let edited = UpdateSchedule::parse("planted:4@rate=6,mix=0.5,checkpoints=3").unwrap();
    let third = StreamScenario::new("stream resume", edited)
        .n(32)
        .seeds(0..2)
        .store(&dir)
        .run(&[&counting]);
    assert_eq!(third.executed_units, 6);
    assert_eq!(calls.load(Ordering::Relaxed), 12);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn extending_a_stream_seed_sweep_executes_only_new_cells() {
    use even_cycle_congest::stream::StreamScenario;
    use even_cycle_congest::UpdateSchedule;

    let dir = std::env::temp_dir().join(format!("ec-engine-stream-ext-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let schedule = UpdateSchedule::parse("trees@rate=4,mix=0.8,checkpoints=2").unwrap();
    let det = CycleDetector::new(Params::practical(2).with_repetitions(2));
    let narrow = StreamScenario::new("stream extend", schedule.clone())
        .n(24)
        .seeds(0..1)
        .store(&dir)
        .run(&[&det]);
    assert_eq!(narrow.executed_units, 2);

    // One more seed: only its two checkpoint units are new.
    let wide = StreamScenario::new("stream extend", schedule)
        .n(24)
        .seeds(0..2)
        .store(&dir)
        .run(&[&det]);
    assert_eq!(wide.total_units, 4);
    assert_eq!(wide.executed_units, 2, "stored seed replays, new seed runs");
    assert_eq!(wide.replayed_units, 2);
    std::fs::remove_dir_all(&dir).ok();
}
