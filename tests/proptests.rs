//! Property-based tests over the whole stack (proptest).
//!
//! The headline invariants:
//!
//! * **Soundness is absolute**: no detector ever rejects an input that is
//!   free of its target cycle, for any graph and any seed (one-sided
//!   error means probability 1, so a single counterexample is a bug).
//! * **Witnesses are genuine**: every rejection's cycle validates
//!   against the input graph.
//! * **The Density Lemma dichotomy**: on arbitrary layered instances,
//!   either every `IN(v,0)` is empty and the Lemma 7 bound holds, or an
//!   explicit valid `2k`-cycle through `S` is constructed.
//! * **Model invariants**: executor round accounting is
//!   bandwidth-consistent; serialization round-trips.

use proptest::prelude::*;

use even_cycle_congest::cycle::sparsify::{DensityInput, DensityVerdict, Sparsification};
use even_cycle_congest::cycle::{CycleDetector, OddCycleDetector, Params};
use even_cycle_congest::graph::{analysis, generators, serialize, Graph};

/// Strategy: a random graph from a mixed family, plus its seed.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (0usize..5, 10usize..40, any::<u64>()).prop_map(|(family, n, seed)| match family {
        0 => generators::random_tree(n, seed),
        1 => generators::erdos_renyi(n, 0.08, seed),
        2 => generators::random_bipartite(n / 2 + 1, n / 2 + 1, 0.15, seed),
        3 => generators::cycle(n.max(3)),
        _ => generators::random_regular_ish(n + n % 2, 3, seed),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn detector_never_rejects_c4_free_inputs(g in arb_graph(), seed in any::<u64>()) {
        prop_assume!(g.node_count() > 0);
        let has_c4 = analysis::has_cycle_exact(&g, 4, Some(100_000_000));
        prop_assume!(!has_c4);
        let det = CycleDetector::new(Params::practical(2).with_repetitions(6));
        let outcome = det.run(&g, seed);
        prop_assert!(!outcome.rejected(), "soundness violated");
    }

    #[test]
    fn any_rejection_is_certified(g in arb_graph(), seed in any::<u64>()) {
        prop_assume!(g.node_count() > 0);
        let det = CycleDetector::new(Params::practical(2).with_repetitions(12));
        let outcome = det.run(&g, seed);
        if outcome.rejected() {
            let w = outcome.witness().expect("witness must accompany rejection");
            prop_assert_eq!(w.len(), 4);
            prop_assert!(w.is_valid(&g));
            prop_assert!(analysis::has_cycle_exact(&g, 4, Some(100_000_000)));
        }
    }

    #[test]
    fn odd_detector_never_rejects_bipartite(
        a in 5usize..20,
        b in 5usize..20,
        p in 0.05f64..0.3,
        seed in any::<u64>()
    ) {
        let g = generators::random_bipartite(a, b, p, seed);
        let det = OddCycleDetector::new(2, 20);
        prop_assert!(!det.run(&g, seed).rejected());
    }

    #[test]
    fn graph_serialization_roundtrips(g in arb_graph()) {
        let text = serialize::to_text(&g);
        let back = serialize::from_text(&text).expect("parse back");
        prop_assert_eq!(g, back);
    }

    #[test]
    fn witness_canonicalization_is_idempotent(g in arb_graph()) {
        if let Some(w) = analysis::find_cycle_exact(&g, 4, Some(50_000_000))
            .or_else(|| analysis::find_cycle_exact(&g, 3, Some(50_000_000)))
        {
            let c1 = w.canonicalize();
            let c2 = c1.canonicalize();
            prop_assert_eq!(&c1, &c2);
            prop_assert!(c1.is_valid(&g));
        }
    }

    #[test]
    fn density_dichotomy_on_random_layered_instances(
        sigma in 4usize..10,
        omega in 2usize..12,
        extra in 0usize..3,
        seed in any::<u64>()
    ) {
        // Random instance for k = 2: S fully joined to W₀ (so the k²=4
        // premise holds when sigma ≥ 4), a random set of V₁ vertices
        // with random edges into W₀.
        let k = 2usize;
        let v1_count = 1 + extra;
        let n = sigma + omega + v1_count;
        let mut b = even_cycle_congest::graph::GraphBuilder::new(n);
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for w in 0..omega {
            for s in 0..sigma {
                b.add_edge(
                    even_cycle_congest::graph::NodeId::new(s as u32),
                    even_cycle_congest::graph::NodeId::new((sigma + w) as u32),
                );
            }
        }
        for v in 0..v1_count {
            for w in 0..omega {
                if rng.gen_bool(0.5) {
                    b.add_edge(
                        even_cycle_congest::graph::NodeId::new((sigma + omega + v) as u32),
                        even_cycle_congest::graph::NodeId::new((sigma + w) as u32),
                    );
                }
            }
        }
        let g = b.build();
        let mut s_mask = vec![false; n];
        let mut w0_mask = vec![false; n];
        let mut layer = vec![None; n];
        for s in 0..sigma { s_mask[s] = true; }
        for w in 0..omega { w0_mask[sigma + w] = true; }
        for v in 0..v1_count { layer[sigma + omega + v] = Some(1); }
        let input = DensityInput { k, s_mask: s_mask.clone(), w0_mask, layer };
        let sp = Sparsification::new(&g, input).expect("valid instance");
        match sp.verdict().expect("dichotomy must not error") {
            DensityVerdict::CycleFound(w) => {
                prop_assert_eq!(w.len(), 2 * k);
                prop_assert!(w.is_valid(&g));
                prop_assert!(w.nodes().iter().any(|u| s_mask[u.index()]));
            }
            DensityVerdict::BoundHolds { max_ratio } => {
                prop_assert!(max_ratio <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn executor_round_accounting_is_bandwidth_consistent(
        n in 6usize..24,
        p in 0.1f64..0.4,
        seed in any::<u64>()
    ) {
        use even_cycle_congest::sim::{Executor, Program, Ctx, Outbox, Control};
        use even_cycle_congest::graph::NodeId;

        /// Every node sends its whole neighbor list to each neighbor.
        struct Chatty;
        impl Program for Chatty {
            type Msg = Vec<u32>;
            fn init(&mut self, ctx: &mut Ctx, out: &mut Outbox<Vec<u32>>) {
                let payload: Vec<u32> = ctx.neighbors.iter().map(|x| x.raw()).collect();
                if !payload.is_empty() {
                    out.broadcast(payload);
                }
            }
            fn step(
                &mut self,
                _ctx: &mut Ctx,
                _s: usize,
                _inbox: &[(NodeId, Vec<u32>)],
                _out: &mut Outbox<Vec<u32>>,
            ) -> Control {
                Control::Halt
            }
        }
        let g = generators::erdos_renyi(n, p, seed);
        let mut exec = Executor::new(&g, seed);
        let report = exec.run(|_, _| Chatty, 4).unwrap();
        // Max per-edge load is the max degree among senders; rounds for
        // the init superstep equal that load (bandwidth 1).
        let expect = g.nodes().map(|v| g.degree(v)).max().unwrap_or(0) as u64;
        prop_assert_eq!(report.congestion.max_words_per_edge_step, expect);
        if expect > 0 {
            // init superstep + one silent closing superstep.
            prop_assert_eq!(report.rounds, expect + 1);
        }
    }
}
