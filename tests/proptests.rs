//! Property-style tests over the whole stack, run as deterministic
//! sweeps over mixed graph families and seeds (the offline build has no
//! proptest; the sweep below covers the same case space reproducibly).
//!
//! The headline invariants:
//!
//! * **Soundness is absolute**: no detector ever rejects an input that is
//!   free of its target cycle, for any graph and any seed (one-sided
//!   error means probability 1, so a single counterexample is a bug).
//! * **Witnesses are genuine**: every rejection's cycle validates
//!   against the input graph.
//! * **The Density Lemma dichotomy**: on arbitrary layered instances,
//!   either every `IN(v,0)` is empty and the Lemma 7 bound holds, or an
//!   explicit valid `2k`-cycle through `S` is constructed.
//! * **Model invariants**: executor round accounting is
//!   bandwidth-consistent; serialization round-trips.

use even_cycle_congest::cycle::sparsify::{DensityInput, DensityVerdict, Sparsification};
use even_cycle_congest::cycle::{CycleDetector, OddCycleDetector, Params};
use even_cycle_congest::graph::{analysis, generators, serialize, Graph};

/// The mixed graph family of the original proptest strategy; indexing is
/// deterministic, so every run exercises the identical case set.
fn graph_case(case: u64) -> Graph {
    let family = (case % 5) as usize;
    let n = 10 + (case as usize * 7) % 30;
    let seed = case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    match family {
        0 => generators::random_tree(n, seed),
        1 => generators::erdos_renyi(n, 0.08, seed),
        2 => generators::random_bipartite(n / 2 + 1, n / 2 + 1, 0.15, seed),
        3 => generators::cycle(n.max(3)),
        _ => generators::random_regular_ish(n + n % 2, 3, seed),
    }
}

const CASES: u64 = 24;

#[test]
fn detector_never_rejects_c4_free_inputs() {
    let det = CycleDetector::new(Params::practical(2).with_repetitions(6));
    for case in 0..CASES {
        let g = graph_case(case);
        if g.node_count() == 0 || analysis::has_cycle_exact(&g, 4, Some(100_000_000)) {
            continue;
        }
        let outcome = det.run(&g, case ^ 0x5eed);
        assert!(!outcome.rejected(), "soundness violated on case {case}");
    }
}

#[test]
fn any_rejection_is_certified() {
    let det = CycleDetector::new(Params::practical(2).with_repetitions(12));
    for case in 0..CASES {
        let g = graph_case(case);
        if g.node_count() == 0 {
            continue;
        }
        let outcome = det.run(&g, case.wrapping_mul(31) + 1);
        if outcome.rejected() {
            let w = outcome.witness().expect("witness must accompany rejection");
            assert_eq!(w.len(), 4, "case {case}");
            assert!(w.is_valid(&g), "case {case}");
            assert!(analysis::has_cycle_exact(&g, 4, Some(100_000_000)));
        }
    }
}

#[test]
fn odd_detector_never_rejects_bipartite() {
    let det = OddCycleDetector::new(2, 20);
    for case in 0..CASES {
        let a = 5 + (case as usize) % 15;
        let b = 5 + (case as usize * 3) % 15;
        let p = 0.05 + 0.01 * (case % 25) as f64;
        let g = generators::random_bipartite(a, b, p, case * 131 + 7);
        assert!(!det.run(&g, case).rejected(), "case {case}");
    }
}

#[test]
fn graph_serialization_roundtrips() {
    for case in 0..CASES {
        let g = graph_case(case);
        let text = serialize::to_text(&g);
        let back = serialize::from_text(&text).expect("parse back");
        assert_eq!(g, back, "case {case}");
    }
}

#[test]
fn witness_canonicalization_is_idempotent() {
    for case in 0..CASES {
        let g = graph_case(case);
        if let Some(w) = analysis::find_cycle_exact(&g, 4, Some(50_000_000))
            .or_else(|| analysis::find_cycle_exact(&g, 3, Some(50_000_000)))
        {
            let c1 = w.canonicalize();
            let c2 = c1.canonicalize();
            assert_eq!(c1, c2, "case {case}");
            assert!(c1.is_valid(&g));
        }
    }
}

#[test]
fn density_dichotomy_on_random_layered_instances() {
    use rand::{Rng, SeedableRng};
    for case in 0..CASES {
        // Random instance for k = 2: S fully joined to W0 (so the k²=4
        // premise holds when sigma >= 4), a random set of V1 vertices
        // with random edges into W0.
        let sigma = 4 + (case as usize) % 6;
        let omega = 2 + (case as usize * 5) % 10;
        let v1_count = 1 + (case as usize) % 3;
        let seed = case.wrapping_mul(0xD1CE);
        let k = 2usize;
        let n = sigma + omega + v1_count;
        let mut b = even_cycle_congest::graph::GraphBuilder::new(n);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for w in 0..omega {
            for s in 0..sigma {
                b.add_edge(
                    even_cycle_congest::graph::NodeId::new(s as u32),
                    even_cycle_congest::graph::NodeId::new((sigma + w) as u32),
                );
            }
        }
        for v in 0..v1_count {
            for w in 0..omega {
                if rng.gen_bool(0.5) {
                    b.add_edge(
                        even_cycle_congest::graph::NodeId::new((sigma + omega + v) as u32),
                        even_cycle_congest::graph::NodeId::new((sigma + w) as u32),
                    );
                }
            }
        }
        let g = b.build();
        let mut s_mask = vec![false; n];
        let mut w0_mask = vec![false; n];
        let mut layer = vec![None; n];
        for flag in s_mask.iter_mut().take(sigma) {
            *flag = true;
        }
        for w in 0..omega {
            w0_mask[sigma + w] = true;
        }
        for v in 0..v1_count {
            layer[sigma + omega + v] = Some(1);
        }
        let input = DensityInput {
            k,
            s_mask: s_mask.clone(),
            w0_mask,
            layer,
        };
        let sp = Sparsification::new(&g, input).expect("valid instance");
        match sp.verdict().expect("dichotomy must not error") {
            DensityVerdict::CycleFound(w) => {
                assert_eq!(w.len(), 2 * k, "case {case}");
                assert!(w.is_valid(&g));
                assert!(w.nodes().iter().any(|u| s_mask[u.index()]));
            }
            DensityVerdict::BoundHolds { max_ratio } => {
                assert!(max_ratio <= 1.0 + 1e-9, "case {case}");
            }
        }
    }
}

#[test]
fn executor_round_accounting_is_bandwidth_consistent() {
    use even_cycle_congest::graph::NodeId;
    use even_cycle_congest::sim::{Control, Ctx, Executor, Outbox, Program};

    /// Every node sends its whole neighbor list to each neighbor.
    struct Chatty;
    impl Program for Chatty {
        type Msg = Vec<u32>;
        fn init(&mut self, ctx: &mut Ctx, out: &mut Outbox<Vec<u32>>) {
            let payload: Vec<u32> = ctx.neighbors.iter().map(|x| x.raw()).collect();
            if !payload.is_empty() {
                out.broadcast(payload);
            }
        }
        fn step(
            &mut self,
            _ctx: &mut Ctx,
            _s: usize,
            _inbox: &[(NodeId, Vec<u32>)],
            _out: &mut Outbox<Vec<u32>>,
        ) -> Control {
            Control::Halt
        }
    }

    for case in 0..CASES {
        let n = 6 + (case as usize) % 18;
        let p = 0.1 + 0.0125 * (case % 24) as f64;
        let seed = case.wrapping_mul(77) + 5;
        let g = generators::erdos_renyi(n, p, seed);
        let mut exec = Executor::new(&g, seed);
        let report = exec.run(|_, _| Chatty, 4).unwrap();
        // Max per-edge load is the max degree among senders; rounds for
        // the init superstep equal that load (bandwidth 1).
        let expect = g.nodes().map(|v| g.degree(v)).max().unwrap_or(0) as u64;
        assert_eq!(
            report.congestion.max_words_per_edge_step, expect,
            "case {case}"
        );
        if expect > 0 {
            // init superstep + one silent closing superstep.
            assert_eq!(report.rounds, expect + 1, "case {case}");
        }
    }
}
