//! Integration of the quantum stack: Grover simulation ↔ amplification ↔
//! decomposition ↔ the full Lemma 13 pipeline.

use even_cycle_congest::cycle::{LowProbDetector, Params, QuantumCycleDetector};
use even_cycle_congest::graph::{generators, NodeId};
use even_cycle_congest::quantum::decomposition::{decompose, reduced_components};
use even_cycle_congest::quantum::{
    GroverMode, GroverSearch, MonteCarloAlgorithm, MonteCarloAmplifier, StateVector,
};

#[test]
fn statevector_grover_matches_analytic_law() {
    // One shared check across the crates: the state-vector success curve
    // equals sin²((2j+1)θ) for several (M, m).
    for (dim, marked) in [(32usize, 1usize), (64, 4), (128, 16)] {
        let theta = ((marked as f64 / dim as f64).sqrt()).asin();
        let mut psi = StateVector::uniform(dim);
        for j in 1..=5u32 {
            psi.grover_iteration(|x| x < marked);
            let p = psi.probability_of(|x| x < marked);
            let theory = ((2 * j + 1) as f64 * theta).sin().powi(2);
            assert!(
                (p - theory).abs() < 1e-9,
                "dim={dim} m={marked} j={j}: {p} vs {theory}"
            );
        }
    }
}

#[test]
fn amplifier_finds_low_prob_detection_on_real_graph() {
    // The exact Lemma 12 → Theorem 3 composition on one small graph,
    // analytic Grover over the true seed space.
    let g = generators::complete_bipartite(6, 6); // dense in C4s
    let det = LowProbDetector::new(Params::practical(2).with_repetitions(40));
    let mc = det.as_monte_carlo(&g);
    // Empirical sanity: some seeds do reject.
    let marked = (0..200).filter(|&s| mc.run(s).rejected).count();
    assert!(marked > 0, "no rejecting seeds at all");
    let amp = MonteCarloAmplifier::new(0.05).with_mode(GroverMode::Sampled { samples: 96 });
    let report = amp.amplify(&mc, 3);
    if report.rejected {
        let ws = report.witness_seed.unwrap();
        let rerun = det.run(&g, ws);
        assert!(rerun.rejected(), "witness seed must reproduce");
        assert!(rerun.witness().unwrap().is_valid(&g));
    }
}

#[test]
fn quantum_pipeline_agrees_with_classical_detector() {
    // On yes-instances both eventually find; on no-instances both always
    // accept. (The quantum run may miss — one-sidedness is the hard
    // guarantee.)
    let qdet = QuantumCycleDetector::new(Params::practical(2).with_repetitions(24), 0.1)
        .with_declared_success(1.0 / 256.0);
    for seed in 0..2 {
        let g = generators::random_tree(48, seed);
        let q = qdet.run(&g, seed);
        assert!(!q.rejected, "quantum pipeline broke one-sidedness");
    }
    let host = generators::random_tree(40, 9);
    let (g, _) = generators::plant_cycle(&host, 4, 9);
    let found = (0..4).any(|seed| {
        let q = qdet.run(&g, seed);
        if q.rejected {
            assert!(q.witness.as_ref().unwrap().is_valid(&g));
        }
        q.rejected
    });
    assert!(found, "quantum pipeline never found the planted C4");
}

#[test]
fn decomposition_supports_cycle_detection_soundly() {
    // Every C4 of the input appears in some reduced component, so
    // per-component detection loses nothing.
    for seed in 0..3 {
        let host = generators::random_tree(70, seed);
        let (g, planted) = generators::plant_cycle(&host, 4, seed);
        let d = decompose(&g, 5, seed);
        let comps = reduced_components(&g, &d, 2);
        let cycle: std::collections::HashSet<NodeId> = planted.nodes().iter().copied().collect();
        let covered = comps.iter().any(|c| {
            let ids: std::collections::HashSet<NodeId> = c.original_ids.iter().copied().collect();
            cycle.is_subset(&ids)
        });
        assert!(covered, "seed {seed}: planted C4 not inside any component");
    }
}

#[test]
fn grover_iterations_follow_quadratic_law_in_pipeline_sizes() {
    // For a synthetic oracle with a single marked seed, the BBHT
    // schedule uses ~√M iterations; verify the scaling across two sizes
    // through the DistributedSearch wrapper that the amplifier uses.
    use even_cycle_congest::quantum::DistributedSearch;
    let avg = |dim: usize| -> f64 {
        let mut total = 0u64;
        for seed in 0..20 {
            let search = DistributedSearch::new(1, 0, 0.1);
            let r = search.run(dim, |x| x == dim / 2, seed);
            assert!(r.result.is_some());
            total += r.iterations;
        }
        total as f64 / 20.0
    };
    let small = avg(256);
    let large = avg(16384);
    let ratio = large / small;
    assert!(
        ratio > 3.0 && ratio < 22.0,
        "64x space should be ~8x iterations, got {ratio} ({small} -> {large})"
    );
}

#[test]
fn exact_grover_agrees_with_analytic_grover_end_to_end() {
    let oracle = |x: usize| x % 32 == 7;
    for seed in 0..10u64 {
        let mut rng_a = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(seed);
        let mut rng_b = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(seed + 500);
        let a = GroverSearch::new(GroverMode::Exact).search(128, oracle, &mut rng_a);
        let b = GroverSearch::new(GroverMode::Analytic).search(128, oracle, &mut rng_b);
        // Both must find (4/128 marked is easy); the exact elements may
        // differ but both must verify.
        assert!(a.found() && b.found(), "seed {seed}");
        assert_eq!(a.result.unwrap() % 32, 7);
        assert_eq!(b.result.unwrap() % 32, 7);
    }
}

#[test]
fn rand_chacha_rng_types_interoperate() {
    // The GroverSearch API takes any Rng; make sure both our standard
    // RNGs work (compile-time + smoke).
    let mut chacha = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(1);
    let mut std_rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let s = GroverSearch::new(GroverMode::Analytic);
    assert!(s.search(64, |x| x == 3, &mut chacha).found());
    assert!(s.search(64, |x| x == 3, &mut std_rng).found());
}
