//! End-to-end integration: the distributed detectors against exact
//! ground truth, across generators, parameters, and executors.

use even_cycle_congest::cycle::{
    random_coloring, CycleDetector, OddCycleDetector, Params, RunOptions,
};
use even_cycle_congest::graph::{analysis, generators, CycleWitness, Graph};
use even_cycle_congest::sim::{strict::StrictExecutor, Executor};

/// Colors a known cycle consecutively; everything else gets the last
/// color.
fn consecutive_coloring(g: &Graph, cycle: &CycleWitness, palette: usize) -> Vec<u8> {
    let mut c = vec![(palette - 1) as u8; g.node_count()];
    for (i, &u) in cycle.nodes().iter().enumerate() {
        c[u.index()] = i as u8;
    }
    c
}

#[test]
fn detector_matches_ground_truth_on_planted_instances() {
    for (k, l) in [(2usize, 4usize), (3, 6)] {
        for seed in 0..3u64 {
            let host = generators::random_tree(64, seed);
            let (g, planted) = generators::plant_cycle(&host, l, seed);
            assert!(analysis::has_cycle_exact(&g, l, None), "sanity");
            // Forced coloring pins the detection event; one repetition
            // suffices.
            let opts = RunOptions {
                forced_coloring: Some(consecutive_coloring(&g, &planted, 2 * k)),
                ..Default::default()
            };
            let det = CycleDetector::new(Params::practical(k).with_repetitions(1));
            let outcome = det.run_with(&g, seed, &opts);
            assert!(outcome.rejected(), "k={k} seed={seed}");
            let w = outcome.witness().unwrap();
            assert_eq!(w.len(), l);
            assert!(w.is_valid(&g));
        }
    }
}

#[test]
fn detector_sound_on_cycle_free_families() {
    let det = CycleDetector::new(Params::practical(2).with_repetitions(24));
    // Trees, odd cycles, girth-controlled thetas, C4-free extremal
    // graphs: none may ever be rejected by the k = 2 detector.
    let inputs: Vec<Graph> = vec![
        generators::random_tree(80, 1),
        generators::cycle(9),
        generators::theta(2, 4), // girth 6
        generators::polarity_graph(5),
        generators::star(40),
        generators::path(60),
    ];
    for (i, g) in inputs.iter().enumerate() {
        for seed in 0..3 {
            assert!(
                !det.run(g, seed).rejected(),
                "input {i} rejected with seed {seed}"
            );
        }
    }
}

#[test]
fn full_randomized_run_detects_with_paper_repetitions() {
    // No hooks at all: Algorithm 1 with K = 563 (the paper's constant at
    // k = 2, ε = 1/3) on a planted instance. Deterministic by seed.
    let host = generators::random_tree(96, 5);
    let (g, _) = generators::plant_cycle(&host, 4, 5);
    let det = CycleDetector::new(Params::paper(2, 1.0 / 3.0));
    let outcome = det.run(&g, 1);
    assert!(outcome.rejected());
    assert!(outcome.witness().unwrap().is_valid(&g));
}

#[test]
fn rejection_certified_on_dense_random_graphs() {
    let det = CycleDetector::new(Params::practical(2).with_repetitions(32));
    for seed in 0..4 {
        let g = generators::erdos_renyi(60, 0.12, seed);
        let outcome = det.run(&g, seed + 100);
        if outcome.rejected() {
            let w = outcome.witness().unwrap();
            assert_eq!(w.len(), 4);
            assert!(w.is_valid(&g));
            assert!(analysis::has_cycle_exact(&g, 4, None));
        }
    }
}

#[test]
fn odd_detector_matches_bipartite_ground_truth() {
    // Bipartite inputs have no odd cycles; non-bipartite small-girth
    // inputs have one the detector can eventually find.
    let det = OddCycleDetector::new(2, 150);
    for seed in 0..3 {
        let g = generators::random_bipartite(24, 24, 0.15, seed);
        assert!(!det.run(&g, seed).rejected());
    }
    let g = generators::theta(2, 3); // C5
    let found = (0..30).any(|seed| det.run(&g, seed).rejected());
    assert!(found);
}

#[test]
fn strict_and_logical_executors_agree_on_color_bfs() {
    use even_cycle_congest::cycle::color_bfs::ColorBfs;
    for seed in 0..3u64 {
        let host = generators::erdos_renyi(40, 0.08, seed);
        let (g, planted) = generators::plant_cycle(&host, 4, seed);
        let colors = consecutive_coloring(&g, &planted, 4);
        let build = |v: even_cycle_congest::graph::NodeId, _n: usize| {
            ColorBfs::new(2, colors[v.index()], true, true, true, 50)
        };
        let mut logical = Executor::new(&g, seed);
        let lr = logical.run(build, 8).unwrap();
        let mut strict = StrictExecutor::new(&g, seed);
        let sr = strict.run(build, 8).unwrap();
        assert_eq!(lr.rounds, sr.rounds, "seed {seed}");
        assert_eq!(lr.decision, sr.decision);
        assert_eq!(lr.congestion, sr.congestion);
        assert!(lr.rejected(), "planted + forced coloring must detect");
    }
}

#[test]
fn rounds_grow_with_threshold_load() {
    // The same input under τ = big vs τ = tiny: with a tiny threshold
    // everything is discarded and rounds stay at the superstep floor;
    // the real threshold lets sets flow and rounds grow with congestion.
    let g = generators::complete_bipartite(12, 12);
    let n = g.node_count();
    let colors = random_coloring(n, 4, 3);
    let all = vec![true; n];
    let big = even_cycle_congest::cycle::run_color_bfs(&g, 2, &colors, &all, &all, None, 1000, 9);
    let tiny = even_cycle_congest::cycle::run_color_bfs(&g, 2, &colors, &all, &all, None, 0, 9);
    assert!(big.report.rounds >= tiny.report.rounds);
    assert!(big.max_collected > 0);
}

#[test]
fn disconnected_graphs_are_handled() {
    // CONGEST formally assumes connectivity; the simulator and the
    // detector must still behave sensibly on disconnected inputs
    // (detection works within components).
    let g = generators::disjoint_union(&generators::cycle(4), &generators::random_tree(20, 3));
    let det = CycleDetector::new(Params::practical(2).with_repetitions(64));
    let found = (0..6).any(|seed| {
        let o = det.run(&g, seed);
        if o.rejected() {
            assert!(o.witness().unwrap().is_valid(&g));
        }
        o.rejected()
    });
    assert!(found, "C4 in a disconnected component never found");
}

#[test]
fn f2k_detects_shortest_length_first() {
    use even_cycle_congest::cycle::F2kDetector;
    // A graph with both a C4 and a C6: the pair ℓ=2 must fire (with a
    // C4), never reporting 6 first.
    let host = generators::random_tree(50, 7);
    let (g1, _) = generators::plant_cycle(&host, 4, 7);
    let (g, _) = generators::plant_cycle(&g1, 6, 8);
    let det = F2kDetector::new(3).with_repetitions(400);
    let mut seen = None;
    for seed in 0..6 {
        let o = det.run(&g, seed);
        if o.rejected {
            seen = o.cycle_length;
            break;
        }
    }
    let len = seen.expect("something must be found");
    assert!(len <= 4, "shortest pair must fire first, got C{len}");
}
