//! The shared superstep core behind every executor.
//!
//! [`crate::Executor`] and [`crate::parallel::ParallelExecutor`] used
//! to be two parallel implementations of the same synchronous loop,
//! and they drifted: the parallel path zeroed the full `edge_words`
//! vector (length `2m`) every superstep where the sequential path only
//! reset touched edges, reallocated a fresh `Vec<Outbox>` per phase,
//! and silently dropped [`CutMeter`] support. This module is the one
//! loop both now drive; the only pluggable piece is the
//! [`StepStrategy`] deciding how the node-step phase runs (on the
//! calling thread, or chunked across scoped workers).
//!
//! Determinism invariant: message *delivery* is always sequential in
//! sender order, and each node's randomness is its own seeded stream,
//! so transcripts are byte-identical whatever the strategy or thread
//! count (asserted by the conformance suites).
//!
//! Hot-path choices, in one place instead of two:
//!
//! * **Touched-edge accounting** — `edge_words` is allocated once and
//!   only the entries actually written in a superstep are reset, so a
//!   quiet superstep costs `O(touched)`, not `O(m)`.
//! * **Buffer reuse** — outboxes, inboxes, and RNG streams live for
//!   the whole run; delivery drains outboxes in place (retaining their
//!   capacity) instead of reallocating a `Vec<Outbox>` every phase.
//! * **CSR edge bases** — the dense directed-edge index of
//!   `(v, i-th neighbor)` is `edge_base[v] + i`; broadcasts charge
//!   edges without any per-neighbor binary search, and point-to-point
//!   sends do a single neighbor-list search.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use congest_graph::{Graph, NodeId};
use congest_telemetry as telemetry;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::cut::CutMeter;
use crate::derive_seed;
use crate::error::SimError;
use crate::message::MessageSize;
use crate::metrics::{CongestionStats, RunReport};
use crate::program::{Control, Ctx, Decision, Outbox, Program};

/// How the node-step phase of each superstep executes. The strategy
/// steps (or, at superstep `None`, initializes) every live node
/// exactly once, writing sends into `outboxes` — everything else
/// (delivery, accounting, halting bookkeeping) is shared.
pub(crate) trait StepStrategy<P: Program> {
    #[allow(clippy::too_many_arguments)]
    fn run_phase(
        &self,
        graph: &Graph,
        nodes: &mut [P],
        rngs: &mut [ChaCha8Rng],
        halted: &mut [bool],
        inboxes: &mut [Vec<(NodeId, P::Msg)>],
        outboxes: &mut [Outbox<P::Msg>],
        superstep: Option<usize>,
    );
}

/// Steps one node (the body shared by both strategies). `v` is the
/// node's global id; all slices are indexed by the caller's local
/// offset.
#[inline]
#[allow(clippy::too_many_arguments)]
fn step_node<P: Program>(
    graph: &Graph,
    n: usize,
    v: usize,
    node: &mut P,
    rng: &mut ChaCha8Rng,
    halted: &mut bool,
    inbox: &mut Vec<(NodeId, P::Msg)>,
    out: &mut Outbox<P::Msg>,
    superstep: Option<usize>,
) {
    let id = NodeId::new(v as u32);
    let mut ctx = Ctx {
        node: id,
        n,
        neighbors: graph.neighbors(id),
        rng,
    };
    match superstep {
        None => node.init(&mut ctx, out),
        Some(s) => {
            if *halted {
                // Messages to halted nodes are dropped (capacity kept).
                inbox.clear();
                return;
            }
            // Take the inbox for the step, then hand its allocation
            // back so the buffer's capacity survives the superstep.
            let staged = std::mem::take(inbox);
            if node.step(&mut ctx, s, &staged, out) == Control::Halt {
                *halted = true;
            }
            *inbox = staged;
            inbox.clear();
        }
    }
}

/// The sequential phase: every node on the calling thread. Imposes no
/// `Send` bound, so it serves `Program`s the parallel path cannot.
pub(crate) struct SeqPhase;

impl<P: Program> StepStrategy<P> for SeqPhase {
    fn run_phase(
        &self,
        graph: &Graph,
        nodes: &mut [P],
        rngs: &mut [ChaCha8Rng],
        halted: &mut [bool],
        inboxes: &mut [Vec<(NodeId, P::Msg)>],
        outboxes: &mut [Outbox<P::Msg>],
        superstep: Option<usize>,
    ) {
        let n = nodes.len();
        for v in 0..n {
            step_node(
                graph,
                n,
                v,
                &mut nodes[v],
                &mut rngs[v],
                &mut halted[v],
                &mut inboxes[v],
                &mut outboxes[v],
                superstep,
            );
        }
    }
}

/// The parallel phase: per-node state split into disjoint chunks for
/// scoped worker threads. Node order within a chunk is ascending and
/// chunks are contiguous, so the set of per-node effects is identical
/// to the sequential phase (they are independent by definition of the
/// synchronous model).
pub(crate) struct ParPhase {
    pub threads: usize,
}

impl<P: Program + Send> StepStrategy<P> for ParPhase
where
    P::Msg: Send,
{
    fn run_phase(
        &self,
        graph: &Graph,
        nodes: &mut [P],
        rngs: &mut [ChaCha8Rng],
        halted: &mut [bool],
        inboxes: &mut [Vec<(NodeId, P::Msg)>],
        outboxes: &mut [Outbox<P::Msg>],
        superstep: Option<usize>,
    ) {
        let n = nodes.len();
        let chunk = n.div_ceil(self.threads.max(1)).max(1);
        // audit:allow(R3): the ParallelStrategy backend is the sanctioned
        // phase-fanout — deliveries are merged in node order afterwards, so
        // results are byte-identical to the sequential backend.
        std::thread::scope(|scope| {
            for (chunk_idx, ((((nodes, rngs), halted), inboxes), outs)) in nodes
                .chunks_mut(chunk)
                .zip(rngs.chunks_mut(chunk))
                .zip(halted.chunks_mut(chunk))
                .zip(inboxes.chunks_mut(chunk))
                .zip(outboxes.chunks_mut(chunk))
                .enumerate()
            {
                let base = chunk_idx * chunk;
                // audit:allow(R3): chunk workers of the scope above.
                scope.spawn(move || {
                    for (off, node) in nodes.iter_mut().enumerate() {
                        step_node(
                            graph,
                            n,
                            base + off,
                            node,
                            &mut rngs[off],
                            &mut halted[off],
                            &mut inboxes[off],
                            &mut outs[off],
                            superstep,
                        );
                    }
                });
            }
        });
    }
}

/// Telemetry handles for the superstep core, resolved once per process.
/// Updates are relaxed atomics, so they stay on unconditionally; only the
/// per-round trace *events* are gated on `telemetry::enabled()`.
struct SimMetrics {
    runs: Arc<telemetry::Counter>,
    supersteps: Arc<telemetry::Counter>,
    messages_delivered: Arc<telemetry::Counter>,
    buffer_reuse_hits: Arc<telemetry::Counter>,
    superstep_messages: Arc<telemetry::Histogram>,
    superstep_max_edge_words: Arc<telemetry::Histogram>,
    run_supersteps_per_sec: Arc<telemetry::Histogram>,
}

fn sim_metrics() -> &'static SimMetrics {
    static METRICS: OnceLock<SimMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = telemetry::Registry::global();
        SimMetrics {
            runs: registry.counter("sim.runs"),
            supersteps: registry.counter("sim.supersteps"),
            messages_delivered: registry.counter("sim.messages.delivered"),
            buffer_reuse_hits: registry.counter("sim.buffer.reuse_hits"),
            superstep_messages: registry.histogram("sim.superstep.messages"),
            superstep_max_edge_words: registry.histogram("sim.superstep.max_edge_words"),
            run_supersteps_per_sec: registry.histogram("sim.run.supersteps_per_sec"),
        }
    })
}

/// What one delivery pass did, for the caller's accounting and telemetry.
struct DeliverOutcome {
    /// Round cost of the superstep: `max(1, ⌈max_load/B⌉)`.
    round_cost: u64,
    /// Maximum words charged to any directed edge this superstep.
    max_load: u64,
    /// Messages delivered this superstep.
    messages: u64,
    /// Outboxes drained into a buffer retained from an earlier superstep.
    reused_buffers: u64,
}

/// Per-run delivery state: allocated once, reused every superstep.
struct Delivery {
    /// Words charged per directed edge this superstep; only the
    /// `touched` entries are ever non-zero.
    edge_words: Vec<u64>,
    /// Directed-edge indices written this superstep.
    touched: Vec<usize>,
    /// CSR base of each node's directed-edge block: the edge to the
    /// `i`-th neighbor of `v` has dense index `edge_base[v] + i`.
    edge_base: Vec<usize>,
    /// Whether each node's point-to-point outbox already carried an
    /// allocation before this superstep — i.e. a drain now reuses a
    /// buffer from an earlier superstep rather than a fresh one.
    had_capacity: Vec<bool>,
}

impl Delivery {
    fn new(graph: &Graph) -> Delivery {
        let n = graph.node_count();
        let mut edge_base = Vec::with_capacity(n);
        let mut acc = 0usize;
        for v in graph.nodes() {
            edge_base.push(acc);
            acc += graph.degree(v);
        }
        debug_assert_eq!(acc, graph.directed_edge_count());
        Delivery {
            edge_words: vec![0; graph.directed_edge_count()],
            touched: Vec::new(),
            edge_base,
            had_capacity: vec![false; n],
        }
    }

    /// Delivers all pending outboxes in sender order (the determinism
    /// anchor), returning the round cost `max(1, ⌈max_load/B⌉)` of the
    /// superstep along with its congestion profile.
    #[allow(clippy::too_many_arguments)]
    fn deliver<M: Clone + MessageSize>(
        &mut self,
        graph: &Graph,
        bandwidth: u64,
        cut: Option<&CutMeter>,
        cut_words: &mut u64,
        pending: &mut [Outbox<M>],
        inboxes: &mut [Vec<(NodeId, M)>],
        stats: &mut CongestionStats,
    ) -> Result<DeliverOutcome, SimError> {
        let messages_before = stats.total_messages;
        let mut reused_buffers = 0u64;
        for &e in &self.touched {
            self.edge_words[e] = 0;
        }
        self.touched.clear();

        // Accounting pass: charge words per directed edge and validate
        // that every recipient is a neighbor.
        for (v, out) in pending.iter().enumerate() {
            if out.is_empty() {
                continue;
            }
            let from = NodeId::new(v as u32);
            let base = self.edge_base[v];
            let neighbors = graph.neighbors(from);
            if let Some(msg) = &out.broadcast {
                let words = msg.words() as u64;
                for (pos, &to) in neighbors.iter().enumerate() {
                    self.charge(base + pos, words);
                    stats.total_words += words;
                    stats.total_messages += 1;
                    if let Some(cut) = cut {
                        if cut.crosses(from, to) {
                            *cut_words += words;
                        }
                    }
                }
            }
            for (to, msg) in &out.messages {
                let pos = neighbors
                    .binary_search(to)
                    .map_err(|_| SimError::NotANeighbor { from, to: *to })?;
                let words = msg.words() as u64;
                self.charge(base + pos, words);
                stats.total_words += words;
                stats.total_messages += 1;
                if let Some(cut) = cut {
                    if cut.crosses(from, *to) {
                        *cut_words += words;
                    }
                }
            }
        }

        // Delivery pass (sender order => deterministic inbox order),
        // draining outboxes in place so their capacity survives.
        for (v, out) in pending.iter_mut().enumerate() {
            let from = NodeId::new(v as u32);
            if let Some(msg) = out.broadcast.take() {
                for &to in graph.neighbors(from) {
                    inboxes[to.index()].push((from, msg.clone()));
                }
            }
            if !out.messages.is_empty() && self.had_capacity[v] {
                reused_buffers += 1;
            }
            for (to, msg) in out.messages.drain(..) {
                inboxes[to.index()].push((from, msg));
            }
            self.had_capacity[v] = out.messages.capacity() > 0;
        }

        let max_load = self
            .touched
            .iter()
            .map(|&e| self.edge_words[e])
            .max()
            .unwrap_or(0);
        stats.max_words_per_edge_step = stats.max_words_per_edge_step.max(max_load);
        Ok(DeliverOutcome {
            round_cost: max_load.div_ceil(bandwidth).max(1),
            max_load,
            messages: stats.total_messages - messages_before,
            reused_buffers,
        })
    }

    #[inline]
    fn charge(&mut self, idx: usize, words: u64) {
        if self.edge_words[idx] == 0 {
            self.touched.push(idx);
        }
        self.edge_words[idx] += words;
    }
}

/// Folds one delivery pass into the process-wide metrics and, when a
/// recorder is installed, emits the per-round profile event.
fn observe_delivery(metrics: &SimMetrics, outcome: &DeliverOutcome, superstep: u64) {
    metrics.messages_delivered.add(outcome.messages);
    metrics.buffer_reuse_hits.add(outcome.reused_buffers);
    metrics.superstep_messages.record(outcome.messages);
    metrics.superstep_max_edge_words.record(outcome.max_load);
    telemetry::instant_event("sim.round", || {
        vec![
            ("superstep", superstep.into()),
            ("messages", outcome.messages.into()),
            ("max_edge_words", outcome.max_load.into()),
            ("round_cost", outcome.round_cost.into()),
        ]
    });
}

/// Runs a program to completion under the given step strategy; the
/// semantics of [`crate::Executor::run`], shared by every backend.
pub(crate) fn run_loop<P, S, F>(
    graph: &Graph,
    seed: u64,
    bandwidth: u64,
    cut: Option<&CutMeter>,
    strategy: &S,
    mut factory: F,
    max_supersteps: u64,
) -> Result<(RunReport, Vec<P>), SimError>
where
    P: Program,
    S: StepStrategy<P>,
    F: FnMut(NodeId, usize) -> P,
{
    let n = graph.node_count();
    let metrics = sim_metrics();
    metrics.runs.inc();
    // audit:allow(R2): span timing for the sim.run telemetry event —
    // rounds/messages/verdicts never read the clock.
    let started = Instant::now();
    let mut span = telemetry::Span::begin("sim.run").with("n", n);
    let mut nodes: Vec<P> = (0..n as u32).map(|v| factory(NodeId::new(v), n)).collect();
    let mut rngs: Vec<ChaCha8Rng> = (0..n as u64)
        .map(|v| ChaCha8Rng::seed_from_u64(derive_seed(seed, v)))
        .collect();
    let mut halted = vec![false; n];
    let mut inboxes: Vec<Vec<(NodeId, P::Msg)>> = (0..n).map(|_| Vec::new()).collect();
    let mut outboxes: Vec<Outbox<P::Msg>> = (0..n).map(|_| Outbox::new()).collect();
    let mut delivery = Delivery::new(graph);
    let mut stats = CongestionStats::default();
    let mut cut_words: u64 = 0;
    let mut rounds: u64 = 0;
    let mut supersteps: u64 = 0;

    // Init phase: superstep-0 sends.
    strategy.run_phase(
        graph,
        &mut nodes,
        &mut rngs,
        &mut halted,
        &mut inboxes,
        &mut outboxes,
        None,
    );
    if outboxes.iter().any(|o| !o.is_empty()) {
        let outcome = delivery.deliver(
            graph,
            bandwidth,
            cut,
            &mut cut_words,
            &mut outboxes,
            &mut inboxes,
            &mut stats,
        )?;
        rounds += outcome.round_cost;
        observe_delivery(metrics, &outcome, 0);
    }

    loop {
        let all_halted = halted.iter().all(|&h| h);
        let inbox_empty = inboxes.iter().all(Vec::is_empty);
        if all_halted && inbox_empty {
            break;
        }
        if supersteps >= max_supersteps {
            return Err(SimError::StepLimitExceeded {
                limit: max_supersteps,
            });
        }
        strategy.run_phase(
            graph,
            &mut nodes,
            &mut rngs,
            &mut halted,
            &mut inboxes,
            &mut outboxes,
            Some(supersteps as usize),
        );
        supersteps += 1;
        metrics.supersteps.inc();
        let outcome = delivery.deliver(
            graph,
            bandwidth,
            cut,
            &mut cut_words,
            &mut outboxes,
            &mut inboxes,
            &mut stats,
        )?;
        rounds += outcome.round_cost;
        observe_delivery(metrics, &outcome, supersteps);
    }

    if supersteps > 0 {
        let secs = started.elapsed().as_secs_f64().max(1e-9);
        metrics
            .run_supersteps_per_sec
            .record((supersteps as f64 / secs) as u64);
    }
    span.push("supersteps", supersteps);
    span.push("rounds", rounds);
    span.push("messages", stats.total_messages);

    let rejecting_nodes: Vec<u32> = nodes
        .iter()
        .enumerate()
        .filter(|(_, p)| p.decision() == Decision::Reject)
        .map(|(v, _)| v as u32)
        .collect();
    let decision = if rejecting_nodes.is_empty() {
        Decision::Accept
    } else {
        Decision::Reject
    };
    Ok((
        RunReport {
            rounds,
            supersteps,
            congestion: stats,
            decision,
            rejecting_nodes,
            cut_words: cut.map(|_| cut_words),
        },
        nodes,
    ))
}
