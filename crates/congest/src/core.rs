//! The shared superstep core behind every executor.
//!
//! [`crate::Executor`] and [`crate::parallel::ParallelExecutor`] used
//! to be two parallel implementations of the same synchronous loop,
//! and they drifted: the parallel path zeroed the full `edge_words`
//! vector (length `2m`) every superstep where the sequential path only
//! reset touched edges, reallocated a fresh `Vec<Outbox>` per phase,
//! and silently dropped [`CutMeter`] support. This module is the one
//! loop both now drive; the only pluggable piece is the
//! [`PhaseDriver`] deciding how the node-step phase runs (on the
//! calling thread, or claimed chunk-by-chunk by the persistent worker
//! pool in [`crate::pool`]).
//!
//! Determinism invariant: message *delivery* is always sequential in
//! sender order, and each node's randomness is its own seeded stream,
//! so transcripts are byte-identical whatever the driver or thread
//! count (asserted by the conformance suites). Chunk boundaries, claim
//! order, and the halted-word skip below are all invisible to
//! transcripts: per-node effects within a phase are independent by
//! definition of the synchronous model, and a skipped chunk is one
//! with no live node to step and no delivered message to drop.
//!
//! Hot-path choices, in one place instead of two:
//!
//! * **Chunked struct-of-arrays node state** — per-node state lives in
//!   [`NodeChunk`]s of a fixed power-of-two span: programs, RNG
//!   streams, inboxes, and outboxes in parallel arrays, halted flags
//!   packed into `u64` bitset words. A phase sweep walks contiguous
//!   memory, a fully-halted 64-node word is skipped in one compare,
//!   and a chunk whose nodes are all halted with nothing in any inbox
//!   is skipped outright (`live`/`pending` counters).
//! * **Touched-edge accounting** — `edge_words` is allocated once and
//!   only the entries actually written in a superstep are reset, so a
//!   quiet superstep costs `O(touched)`, not `O(m)`.
//! * **Buffer reuse** — outboxes, inboxes, and RNG streams live for
//!   the whole run; delivery drains outboxes in place (retaining their
//!   capacity) instead of reallocating a `Vec<Outbox>` every phase.
//! * **CSR edge bases** — the dense directed-edge index of
//!   `(v, i-th neighbor)` is `edge_base[v] + i`; broadcasts charge
//!   edges without any per-neighbor binary search, and point-to-point
//!   sends do a single neighbor-list search.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

use congest_graph::{Graph, NodeId};
use congest_telemetry as telemetry;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::cut::CutMeter;
use crate::derive_seed;
use crate::error::SimError;
use crate::message::MessageSize;
use crate::metrics::{CongestionStats, RunReport};
use crate::program::{Control, Ctx, Decision, Outbox, Program};

/// One contiguous block of per-node state in struct-of-arrays layout.
/// `nodes[off]`, `rngs[off]`, `inboxes[off]`, and `outboxes[off]` all
/// belong to global node `base + off`; `halted` packs the halt flags
/// 64 per word. The chunk is the unit of work claiming: a phase steps
/// whole chunks, so a `Mutex` per chunk (uncontended — the claim
/// cursor hands each chunk to exactly one worker) is the entire
/// synchronization story, with no `unsafe` anywhere.
pub(crate) struct NodeChunk<P: Program> {
    /// Global id of the chunk's first node.
    pub(crate) base: usize,
    pub(crate) nodes: Vec<P>,
    pub(crate) rngs: Vec<ChaCha8Rng>,
    /// Halt flags, bit `off - 64*w` of word `w`.
    halted: Vec<u64>,
    /// Nodes in this chunk that have not halted.
    pub(crate) live: usize,
    /// Inboxes in this chunk currently holding messages. Maintained by
    /// delivery (push into an empty inbox) and reset by the phase
    /// sweep (every inbox is drained or dropped); together with `live`
    /// it makes both the chunk-skip test and the global termination
    /// test O(1) per chunk.
    pub(crate) pending: usize,
    pub(crate) inboxes: Vec<Vec<(NodeId, P::Msg)>>,
    pub(crate) outboxes: Vec<Outbox<P::Msg>>,
}

#[inline]
fn word_mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

impl<P: Program> NodeChunk<P> {
    fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Runs one phase (init at `None`, else one step) over every node
    /// of the chunk. Returns `false` when the chunk was skipped — all
    /// nodes halted and no inbox held messages to drop, so nothing
    /// observable could have happened.
    pub(crate) fn run_phase(&mut self, graph: &Graph, n: usize, superstep: Option<usize>) -> bool {
        let len = self.len();
        let Some(s) = superstep else {
            for off in 0..len {
                let id = NodeId::new((self.base + off) as u32);
                let mut ctx = Ctx {
                    node: id,
                    n,
                    neighbors: graph.neighbors(id),
                    rng: &mut self.rngs[off],
                };
                self.nodes[off].init(&mut ctx, &mut self.outboxes[off]);
            }
            return true;
        };
        if self.live == 0 && self.pending == 0 {
            return false;
        }
        for w in 0..self.halted.len() {
            let word = self.halted[w];
            let lo = w * 64;
            let hi = (lo + 64).min(len);
            if word == word_mask(hi - lo) && self.pending == 0 {
                // Every node of this word is halted and no inbox in
                // the chunk holds messages to drop: skip 64 nodes.
                continue;
            }
            for off in lo..hi {
                if word >> (off - lo) & 1 == 1 {
                    // Messages to halted nodes are dropped (capacity kept).
                    self.inboxes[off].clear();
                    continue;
                }
                let id = NodeId::new((self.base + off) as u32);
                // Take the inbox for the step, then hand its
                // allocation back so the capacity survives.
                let staged = std::mem::take(&mut self.inboxes[off]);
                let mut ctx = Ctx {
                    node: id,
                    n,
                    neighbors: graph.neighbors(id),
                    rng: &mut self.rngs[off],
                };
                if self.nodes[off].step(&mut ctx, s, &staged, &mut self.outboxes[off])
                    == Control::Halt
                {
                    self.halted[w] |= 1 << (off - lo);
                    self.live -= 1;
                }
                self.inboxes[off] = staged;
                self.inboxes[off].clear();
            }
        }
        self.pending = 0;
        true
    }
}

/// Locks a chunk, ignoring poison: a panicked worker already aborts
/// the run through the pool's unwind guards, and the sequential path
/// never shares chunks across threads.
pub(crate) fn lock_chunk<P: Program>(chunk: &Mutex<NodeChunk<P>>) -> MutexGuard<'_, NodeChunk<P>> {
    chunk.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Nodes per chunk, as a power-of-two shift: large enough to amortize
/// the per-chunk claim (one atomic increment + one uncontended lock),
/// small enough that the claim cursor load-balances ragged supersteps
/// (BFS frontiers) across workers and the `live`/`pending` skip stays
/// fine-grained. Chunk geometry is invisible to transcripts.
fn chunk_shift_for(n: usize, threads: usize) -> u32 {
    let workers = threads.max(1);
    let target = (n / (workers * 8)).clamp(64, 4096);
    usize::BITS - 1 - target.leading_zeros()
}

/// The whole per-run node state: every [`NodeChunk`], plus the
/// power-of-two geometry that maps a global node id to `(chunk,
/// offset)` with a shift and a mask.
pub(crate) struct ChunkTable<P: Program> {
    chunks: Vec<Mutex<NodeChunk<P>>>,
    shift: u32,
    n: usize,
}

impl<P: Program> ChunkTable<P> {
    /// Builds the chunked state for an `n`-node run: programs from the
    /// factory (called in ascending node order, on the caller's
    /// thread), one seeded RNG stream per node, everything else empty.
    pub(crate) fn build<F>(graph: &Graph, seed: u64, threads: usize, mut factory: F) -> Self
    where
        F: FnMut(NodeId, usize) -> P,
    {
        let n = graph.node_count();
        let shift = chunk_shift_for(n, threads);
        let span = 1usize << shift;
        let mut chunks = Vec::with_capacity(n.div_ceil(span));
        let mut base = 0usize;
        while base < n {
            let len = span.min(n - base);
            let mut nodes = Vec::with_capacity(len);
            let mut rngs = Vec::with_capacity(len);
            let mut inboxes = Vec::with_capacity(len);
            let mut outboxes = Vec::with_capacity(len);
            for off in 0..len {
                let v = (base + off) as u64;
                nodes.push(factory(NodeId::new(v as u32), n));
                rngs.push(ChaCha8Rng::seed_from_u64(derive_seed(seed, v)));
                inboxes.push(Vec::new());
                outboxes.push(Outbox::new());
            }
            chunks.push(Mutex::new(NodeChunk {
                base,
                nodes,
                rngs,
                halted: vec![0u64; len.div_ceil(64)],
                live: len,
                pending: 0,
                inboxes,
                outboxes,
            }));
            base += len;
        }
        ChunkTable { chunks, shift, n }
    }

    pub(crate) fn n(&self) -> usize {
        self.n
    }

    pub(crate) fn shift(&self) -> u32 {
        self.shift
    }

    pub(crate) fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    pub(crate) fn chunk(&self, i: usize) -> &Mutex<NodeChunk<P>> {
        &self.chunks[i]
    }

    /// Locks every chunk in ascending order, for the single-threaded
    /// phases (delivery, termination test, decision collection). No
    /// worker holds a chunk between phases, so this never blocks.
    pub(crate) fn guards(&self) -> Vec<MutexGuard<'_, NodeChunk<P>>> {
        self.chunks.iter().map(lock_chunk).collect()
    }

    /// Consumes the table into the per-node programs, in node order.
    pub(crate) fn into_nodes(self) -> Vec<P> {
        let mut nodes = Vec::with_capacity(self.n);
        for chunk in self.chunks {
            nodes.extend(
                chunk
                    .into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .nodes,
            );
        }
        nodes
    }
}

/// How the node phases of a run execute. The driver runs every chunk
/// of the table exactly once per phase (init at superstep `None`) —
/// everything else (delivery, accounting, halting bookkeeping) is
/// shared and single-threaded.
pub(crate) trait PhaseDriver<P: Program> {
    fn run_phase(&self, table: &ChunkTable<P>, graph: &Graph, superstep: Option<usize>);
}

/// The sequential driver: every chunk on the calling thread, in
/// order. Imposes no `Send` bound, so it serves `Program`s the pooled
/// driver cannot.
pub(crate) struct SeqDriver;

impl<P: Program> PhaseDriver<P> for SeqDriver {
    fn run_phase(&self, table: &ChunkTable<P>, graph: &Graph, superstep: Option<usize>) {
        let n = table.n();
        for i in 0..table.chunk_count() {
            lock_chunk(table.chunk(i)).run_phase(graph, n, superstep);
        }
    }
}

/// Telemetry handles for the superstep core, resolved once per process.
/// Updates are relaxed atomics, so they stay on unconditionally; only the
/// per-round trace *events* are gated on `telemetry::enabled()`.
struct SimMetrics {
    runs: Arc<telemetry::Counter>,
    supersteps: Arc<telemetry::Counter>,
    messages_delivered: Arc<telemetry::Counter>,
    buffer_reuse_hits: Arc<telemetry::Counter>,
    superstep_messages: Arc<telemetry::Histogram>,
    superstep_max_edge_words: Arc<telemetry::Histogram>,
    run_supersteps_per_sec: Arc<telemetry::Histogram>,
}

fn sim_metrics() -> &'static SimMetrics {
    static METRICS: OnceLock<SimMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = telemetry::Registry::global();
        SimMetrics {
            runs: registry.counter("sim.runs"),
            supersteps: registry.counter("sim.supersteps"),
            messages_delivered: registry.counter("sim.messages.delivered"),
            buffer_reuse_hits: registry.counter("sim.buffer.reuse_hits"),
            superstep_messages: registry.histogram("sim.superstep.messages"),
            superstep_max_edge_words: registry.histogram("sim.superstep.max_edge_words"),
            run_supersteps_per_sec: registry.histogram("sim.run.supersteps_per_sec"),
        }
    })
}

/// What one delivery pass did, for the caller's accounting and telemetry.
struct DeliverOutcome {
    /// Round cost of the superstep: `max(1, ⌈max_load/B⌉)`.
    round_cost: u64,
    /// Maximum words charged to any directed edge this superstep.
    max_load: u64,
    /// Messages delivered this superstep.
    messages: u64,
    /// Outboxes drained into a buffer retained from an earlier superstep.
    reused_buffers: u64,
}

/// Per-run delivery state: allocated once, reused every superstep.
struct Delivery {
    /// Words charged per directed edge this superstep; only the
    /// `touched` entries are ever non-zero.
    edge_words: Vec<u64>,
    /// Directed-edge indices written this superstep.
    touched: Vec<usize>,
    /// CSR base of each node's directed-edge block: the edge to the
    /// `i`-th neighbor of `v` has dense index `edge_base[v] + i`.
    edge_base: Vec<usize>,
    /// Whether each node's point-to-point outbox already carried an
    /// allocation before this superstep — i.e. a drain now reuses a
    /// buffer from an earlier superstep rather than a fresh one.
    had_capacity: Vec<bool>,
}

/// Appends `msg` to the inbox of `to`, keeping the recipient chunk's
/// `pending` count exact (the first push into an empty inbox marks it).
#[inline]
fn push_to<P: Program>(
    chunks: &mut [MutexGuard<'_, NodeChunk<P>>],
    shift: u32,
    mask: usize,
    from: NodeId,
    to: NodeId,
    msg: P::Msg,
) {
    let t = to.index();
    let chunk = &mut *chunks[t >> shift];
    let inbox = &mut chunk.inboxes[t & mask];
    if inbox.is_empty() {
        chunk.pending += 1;
    }
    inbox.push((from, msg));
}

impl Delivery {
    fn new(graph: &Graph) -> Delivery {
        let n = graph.node_count();
        let mut edge_base = Vec::with_capacity(n);
        let mut acc = 0usize;
        for v in graph.nodes() {
            edge_base.push(acc);
            acc += graph.degree(v);
        }
        debug_assert_eq!(acc, graph.directed_edge_count());
        Delivery {
            edge_words: vec![0; graph.directed_edge_count()],
            touched: Vec::new(),
            edge_base,
            had_capacity: vec![false; n],
        }
    }

    /// Delivers all pending outboxes in sender order (the determinism
    /// anchor), returning the round cost `max(1, ⌈max_load/B⌉)` of the
    /// superstep along with its congestion profile. The caller holds
    /// every chunk guard: delivery is a single-threaded phase, and
    /// holding all chunks lets a sender's taken-out outbox feed
    /// recipient inboxes anywhere in the table.
    #[allow(clippy::too_many_arguments)]
    fn deliver<P: Program>(
        &mut self,
        graph: &Graph,
        bandwidth: u64,
        cut: Option<&CutMeter>,
        cut_words: &mut u64,
        shift: u32,
        chunks: &mut [MutexGuard<'_, NodeChunk<P>>],
        stats: &mut CongestionStats,
    ) -> Result<DeliverOutcome, SimError> {
        let messages_before = stats.total_messages;
        let mut reused_buffers = 0u64;
        for &e in &self.touched {
            self.edge_words[e] = 0;
        }
        self.touched.clear();

        // Accounting pass: charge words per directed edge and validate
        // that every recipient is a neighbor.
        for chunk in chunks.iter() {
            for (off, out) in chunk.outboxes.iter().enumerate() {
                if out.is_empty() {
                    continue;
                }
                let v = chunk.base + off;
                let from = NodeId::new(v as u32);
                let base = self.edge_base[v];
                let neighbors = graph.neighbors(from);
                if let Some(msg) = &out.broadcast {
                    let words = msg.words() as u64;
                    for (pos, &to) in neighbors.iter().enumerate() {
                        self.charge(base + pos, words);
                        stats.total_words += words;
                        stats.total_messages += 1;
                        if let Some(cut) = cut {
                            if cut.crosses(from, to) {
                                *cut_words += words;
                            }
                        }
                    }
                }
                for (to, msg) in &out.messages {
                    let pos = neighbors
                        .binary_search(to)
                        .map_err(|_| SimError::NotANeighbor { from, to: *to })?;
                    let words = msg.words() as u64;
                    self.charge(base + pos, words);
                    stats.total_words += words;
                    stats.total_messages += 1;
                    if let Some(cut) = cut {
                        if cut.crosses(from, *to) {
                            *cut_words += words;
                        }
                    }
                }
            }
        }

        // Delivery pass (sender order => deterministic inbox order),
        // draining outboxes in place so their capacity survives. The
        // sender's outbox is taken out of its chunk first, so pushing
        // into a recipient inbox of the *same* chunk aliases nothing.
        let mask = (1usize << shift) - 1;
        for ci in 0..chunks.len() {
            let base = chunks[ci].base;
            let len = chunks[ci].outboxes.len();
            for off in 0..len {
                let from = NodeId::new((base + off) as u32);
                let broadcast = chunks[ci].outboxes[off].broadcast.take();
                let mut msgs = std::mem::take(&mut chunks[ci].outboxes[off].messages);
                if let Some(msg) = broadcast {
                    for &to in graph.neighbors(from) {
                        push_to(chunks, shift, mask, from, to, msg.clone());
                    }
                }
                if !msgs.is_empty() && self.had_capacity[base + off] {
                    reused_buffers += 1;
                }
                for (to, msg) in msgs.drain(..) {
                    push_to(chunks, shift, mask, from, to, msg);
                }
                self.had_capacity[base + off] = msgs.capacity() > 0;
                chunks[ci].outboxes[off].messages = msgs;
            }
        }

        let max_load = self
            .touched
            .iter()
            .map(|&e| self.edge_words[e])
            .max()
            .unwrap_or(0);
        stats.max_words_per_edge_step = stats.max_words_per_edge_step.max(max_load);
        Ok(DeliverOutcome {
            round_cost: max_load.div_ceil(bandwidth).max(1),
            max_load,
            messages: stats.total_messages - messages_before,
            reused_buffers,
        })
    }

    #[inline]
    fn charge(&mut self, idx: usize, words: u64) {
        if self.edge_words[idx] == 0 {
            self.touched.push(idx);
        }
        self.edge_words[idx] += words;
    }
}

/// Folds one delivery pass into the process-wide metrics and, when a
/// recorder is installed, emits the per-round profile event.
fn observe_delivery(metrics: &SimMetrics, outcome: &DeliverOutcome, superstep: u64) {
    metrics.messages_delivered.add(outcome.messages);
    metrics.buffer_reuse_hits.add(outcome.reused_buffers);
    metrics.superstep_messages.record(outcome.messages);
    metrics.superstep_max_edge_words.record(outcome.max_load);
    telemetry::instant_event("sim.round", || {
        vec![
            ("superstep", superstep.into()),
            ("messages", outcome.messages.into()),
            ("max_edge_words", outcome.max_load.into()),
            ("round_cost", outcome.round_cost.into()),
        ]
    });
}

/// Runs a program to completion over an already-built chunk table
/// under the given phase driver; the semantics of
/// [`crate::Executor::run`], shared by every backend. The caller owns
/// the table (pooled runs share it with scoped workers) and extracts
/// the final node states with [`ChunkTable::into_nodes`] afterwards.
pub(crate) fn run_loop<P, D>(
    graph: &Graph,
    bandwidth: u64,
    cut: Option<&CutMeter>,
    table: &ChunkTable<P>,
    driver: &D,
    max_supersteps: u64,
) -> Result<RunReport, SimError>
where
    P: Program,
    D: PhaseDriver<P>,
{
    let n = table.n();
    let metrics = sim_metrics();
    metrics.runs.inc();
    // audit:allow(R2): span timing for the sim.run telemetry event —
    // rounds/messages/verdicts never read the clock.
    let started = Instant::now();
    let mut span = telemetry::Span::begin("sim.run").with("n", n);
    let mut delivery = Delivery::new(graph);
    let mut stats = CongestionStats::default();
    let mut cut_words: u64 = 0;
    let mut rounds: u64 = 0;
    let mut supersteps: u64 = 0;

    // Init phase: superstep-0 sends.
    driver.run_phase(table, graph, None);
    let mut finished = {
        let mut guards = table.guards();
        if guards
            .iter()
            .any(|c| c.outboxes.iter().any(|o| !o.is_empty()))
        {
            let outcome = delivery.deliver(
                graph,
                bandwidth,
                cut,
                &mut cut_words,
                table.shift(),
                &mut guards,
                &mut stats,
            )?;
            rounds += outcome.round_cost;
            observe_delivery(metrics, &outcome, 0);
        }
        guards.iter().all(|c| c.live == 0 && c.pending == 0)
    };

    while !finished {
        if supersteps >= max_supersteps {
            return Err(SimError::StepLimitExceeded {
                limit: max_supersteps,
            });
        }
        driver.run_phase(table, graph, Some(supersteps as usize));
        supersteps += 1;
        metrics.supersteps.inc();
        let mut guards = table.guards();
        let outcome = delivery.deliver(
            graph,
            bandwidth,
            cut,
            &mut cut_words,
            table.shift(),
            &mut guards,
            &mut stats,
        )?;
        rounds += outcome.round_cost;
        observe_delivery(metrics, &outcome, supersteps);
        finished = guards.iter().all(|c| c.live == 0 && c.pending == 0);
    }

    if supersteps > 0 {
        let secs = started.elapsed().as_secs_f64().max(1e-9);
        metrics
            .run_supersteps_per_sec
            .record((supersteps as f64 / secs) as u64);
    }
    span.push("supersteps", supersteps);
    span.push("rounds", rounds);
    span.push("messages", stats.total_messages);

    let mut rejecting_nodes: Vec<u32> = Vec::new();
    for guard in table.guards() {
        for (off, p) in guard.nodes.iter().enumerate() {
            if p.decision() == Decision::Reject {
                rejecting_nodes.push((guard.base + off) as u32);
            }
        }
    }
    let decision = if rejecting_nodes.is_empty() {
        Decision::Accept
    } else {
        Decision::Reject
    };
    Ok(RunReport {
        rounds,
        supersteps,
        congestion: stats,
        decision,
        rejecting_nodes,
        cut_words: cut.map(|_| cut_words),
    })
}

/// Runs a program sequentially on the calling thread: the semantics of
/// [`crate::Executor::run`], with no `Send` bound on the program.
pub(crate) fn run_sequential<P, F>(
    graph: &Graph,
    seed: u64,
    bandwidth: u64,
    cut: Option<&CutMeter>,
    factory: F,
    max_supersteps: u64,
) -> Result<(RunReport, Vec<P>), SimError>
where
    P: Program,
    F: FnMut(NodeId, usize) -> P,
{
    let table = ChunkTable::build(graph, seed, 1, factory);
    let report = run_loop(graph, bandwidth, cut, &table, &SeqDriver, max_supersteps)?;
    Ok((report, table.into_nodes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_geometry_covers_every_node_once() {
        for (n, threads) in [(0usize, 1usize), (1, 1), (63, 2), (64, 1), (65, 4), (5000, 2)] {
            let shift = chunk_shift_for(n, threads);
            let span = 1usize << shift;
            assert!((64..=4096).contains(&span), "span {span} for n={n}");
            let mut covered = 0usize;
            let mut base = 0usize;
            while base < n {
                let len = span.min(n - base);
                assert_eq!(base >> shift, base / span, "chunk index is a shift");
                covered += len;
                base += len;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn word_mask_widths() {
        assert_eq!(word_mask(64), u64::MAX);
        assert_eq!(word_mask(1), 1);
        assert_eq!(word_mask(63), u64::MAX >> 1);
    }
}
