//! Node programs: the local algorithms run by each vertex.

use congest_graph::NodeId;
use rand_chacha::ChaCha8Rng;

use crate::message::MessageSize;

/// The local view a node has of the network — everything a CONGEST
/// algorithm is allowed to know before communicating.
#[derive(Debug)]
pub struct Ctx<'a> {
    /// This node's identifier.
    pub node: NodeId,
    /// The total number of vertices `n` (standard prior knowledge in the
    /// paper: "the only prior knowledge given to each node … is the size
    /// `n = |V|` of the input graph").
    pub n: usize,
    /// The identifiers of this node's neighbors (sorted).
    pub neighbors: &'a [NodeId],
    /// Private per-node randomness, derived from the master seed.
    pub rng: &'a mut ChaCha8Rng,
}

impl Ctx<'_> {
    /// This node's degree.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }
}

/// Whether a node keeps participating after a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Control {
    /// Keep stepping.
    Continue,
    /// Stop; the node will not be stepped again (its queued messages are
    /// still delivered to neighbors).
    Halt,
}

/// A node's final verdict, following the paper's decision rule: the graph
/// is declared `H`-free iff *all* nodes accept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Decision {
    /// The node found no evidence of the forbidden subgraph.
    #[default]
    Accept,
    /// The node found the forbidden subgraph.
    Reject,
}

/// Messages queued by a node during one superstep.
#[derive(Debug)]
pub struct Outbox<M> {
    pub(crate) messages: Vec<(NodeId, M)>,
    pub(crate) broadcast: Option<M>,
}

impl<M: Clone + MessageSize> Outbox<M> {
    pub(crate) fn new() -> Self {
        Outbox {
            messages: Vec::new(),
            broadcast: None,
        }
    }

    /// Queues `msg` for delivery to neighbor `to` at the next superstep.
    ///
    /// `to` must be a neighbor; this is validated at collection time and
    /// violations surface as [`crate::SimError::NotANeighbor`].
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.messages.push((to, msg));
    }

    /// Queues `msg` for delivery to *all* neighbors.
    ///
    /// Cheaper than `send`-ing in a loop and matches the broadcast-CONGEST
    /// primitive used by several baselines.
    pub fn broadcast(&mut self, msg: M) {
        self.broadcast = Some(msg);
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.messages.is_empty() && self.broadcast.is_none()
    }
}

/// A CONGEST node program.
///
/// One value of the implementing type runs at *each* vertex. The executor
/// calls [`Program::init`] once (superstep 0 sends), then
/// [`Program::step`] once per superstep with the messages received from
/// the previous superstep, until every node halts (or the superstep limit
/// trips).
pub trait Program {
    /// The message type exchanged by this program.
    type Msg: Clone + MessageSize;

    /// Called once before any communication; messages queued here are
    /// delivered at superstep 0.
    fn init(&mut self, ctx: &mut Ctx, out: &mut Outbox<Self::Msg>);

    /// One synchronous superstep: `inbox` holds the messages sent to this
    /// node in the previous superstep, tagged with their senders.
    fn step(
        &mut self,
        ctx: &mut Ctx,
        superstep: usize,
        inbox: &[(NodeId, Self::Msg)],
        out: &mut Outbox<Self::Msg>,
    ) -> Control;

    /// The node's verdict once the run ends. Default: accept.
    fn decision(&self) -> Decision {
        Decision::Accept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_collects() {
        let mut out: Outbox<u32> = Outbox::new();
        assert!(out.is_empty());
        out.send(NodeId::new(1), 7);
        assert!(!out.is_empty());
        let mut out2: Outbox<u32> = Outbox::new();
        out2.broadcast(3);
        assert!(!out2.is_empty());
    }

    #[test]
    fn decision_default_is_accept() {
        assert_eq!(Decision::default(), Decision::Accept);
    }
}
