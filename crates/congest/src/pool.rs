//! The persistent superstep worker pool behind the parallel backend.
//!
//! The old parallel path paid a fresh `std::thread::scope` — thread
//! creation, stack setup, join — *per superstep*, which is why the
//! committed benchmarks showed `parallel:2` losing to sequential on
//! every grid row. This module spawns the workers **once per run**:
//! they park on a condvar between supersteps and are woken by a single
//! epoch bump, so the steady-state cost of a parallel superstep is one
//! notify, one atomic claim per chunk, and one uncontended lock per
//! chunk.
//!
//! Work assignment is dynamic: workers (and the caller, which
//! participates) claim chunks of the [`ChunkTable`] off a shared
//! atomic cursor, so a ragged superstep (a BFS frontier concentrated
//! in a few chunks) never serializes on the slowest static shard.
//!
//! Determinism: the pool changes *where* a node steps, never *what* it
//! observes. Per-node effects within a superstep are independent by
//! definition of the synchronous model — each node owns its program
//! state, RNG stream, inbox, and outbox slot — and message delivery
//! (in `core.rs`) stays single-threaded in ascending sender order.
//! Transcripts are therefore byte-identical to the sequential backend
//! at every thread count, which the conformance suites assert
//! registry-wide.
//!
//! This is the only module in the crate allowed to spawn threads or
//! read the clock (pool busy/idle accounting); the determinism auditor
//! enforces that boundary (rules R2/R3).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

use congest_graph::{Graph, NodeId};
use congest_telemetry as telemetry;

use crate::core::{lock_chunk, run_loop, ChunkTable, PhaseDriver, SeqDriver};
use crate::cut::CutMeter;
use crate::error::SimError;
use crate::metrics::RunReport;
use crate::program::Program;

/// Pool telemetry, resolved once per process. `busy_ns`/`idle_ns` are
/// worker-side (the caller's share of the work is visible in the
/// `sim.run` span instead); `chunks.skipped` counts chunks whose
/// `live`/`pending` counters proved no node had anything to do.
struct PoolMetrics {
    spawns: Arc<telemetry::Counter>,
    wakes: Arc<telemetry::Counter>,
    chunks_claimed: Arc<telemetry::Counter>,
    chunks_skipped: Arc<telemetry::Counter>,
    busy_ns: Arc<telemetry::Counter>,
    idle_ns: Arc<telemetry::Counter>,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = telemetry::Registry::global();
        PoolMetrics {
            spawns: registry.counter("sim.pool.spawns"),
            wakes: registry.counter("sim.pool.wakes"),
            chunks_claimed: registry.counter("sim.pool.chunks.claimed"),
            chunks_skipped: registry.counter("sim.pool.chunks.skipped"),
            busy_ns: registry.counter("sim.pool.busy_ns"),
            idle_ns: registry.counter("sim.pool.idle_ns"),
        }
    })
}

/// Coordination state under the pool's one mutex.
struct PhaseState {
    /// Bumped once per phase; workers run each epoch exactly once.
    epoch: u64,
    /// The phase payload: `None` for init, else the superstep index.
    superstep: Option<usize>,
    /// Workers finished with the current epoch.
    done: usize,
    /// Set by the caller when the run ends (however it ends).
    shutdown: bool,
    /// Set by a worker's unwind guard when its phase body panicked.
    aborted: bool,
}

/// The park/wake rendezvous shared by the caller and the workers.
struct PhaseCtrl {
    state: Mutex<PhaseState>,
    /// Caller → workers: a new epoch (or shutdown) is ready.
    work_ready: Condvar,
    /// Workers → caller: `done` advanced (or `aborted` was set).
    work_done: Condvar,
    /// Next chunk index to claim; reset by the caller each phase
    /// (inside the state lock, which orders it before any wake).
    cursor: AtomicUsize,
}

impl PhaseCtrl {
    fn new() -> PhaseCtrl {
        PhaseCtrl {
            state: Mutex::new(PhaseState {
                epoch: 0,
                superstep: None,
                done: 0,
                shutdown: false,
                aborted: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
            cursor: AtomicUsize::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, PhaseState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Marks the run aborted if dropped while armed (i.e. a worker's
/// phase body unwound), so the caller's phase wait ends in a panic
/// instead of a deadlock.
struct AbortGuard<'a> {
    ctrl: &'a PhaseCtrl,
    armed: bool,
}

impl Drop for AbortGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut st = self.ctrl.lock();
            st.aborted = true;
            self.ctrl.work_done.notify_all();
        }
    }
}

/// Wakes and retires every worker when the run ends — normally, with
/// a simulation error, or by unwinding — so the enclosing scope's
/// implicit join can never hang on a parked worker.
struct ShutdownOnDrop<'a> {
    ctrl: &'a PhaseCtrl,
}

impl Drop for ShutdownOnDrop<'_> {
    fn drop(&mut self) {
        let mut st = self.ctrl.lock();
        st.shutdown = true;
        self.ctrl.work_ready.notify_all();
    }
}

/// Claims chunks off the shared cursor until the table is exhausted,
/// running the phase on each. Used identically by workers and by the
/// participating caller.
fn claim_chunks<P: Program>(
    ctrl: &PhaseCtrl,
    table: &ChunkTable<P>,
    graph: &Graph,
    superstep: Option<usize>,
) {
    let metrics = pool_metrics();
    let n = table.n();
    let count = table.chunk_count();
    let mut claimed = 0u64;
    let mut skipped = 0u64;
    loop {
        let ci = ctrl.cursor.fetch_add(1, Ordering::Relaxed);
        if ci >= count {
            break;
        }
        claimed += 1;
        if !lock_chunk(table.chunk(ci)).run_phase(graph, n, superstep) {
            skipped += 1;
        }
    }
    metrics.chunks_claimed.add(claimed);
    metrics.chunks_skipped.add(skipped);
}

/// The loop each persistent worker runs for the lifetime of a run:
/// park on the condvar, wake on an epoch bump, claim chunks until the
/// cursor runs dry, report done, park again.
fn worker_loop<P>(ctrl: &PhaseCtrl, table: &ChunkTable<P>, graph: &Graph)
where
    P: Program + Send,
    P::Msg: Send,
{
    let metrics = pool_metrics();
    let mut seen_epoch = 0u64;
    loop {
        let superstep;
        {
            let parked = Instant::now();
            let mut st = ctrl.lock();
            while !st.shutdown && st.epoch == seen_epoch {
                st = ctrl
                    .work_ready
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            metrics.idle_ns.add(parked.elapsed().as_nanos() as u64);
            if st.shutdown {
                return;
            }
            seen_epoch = st.epoch;
            superstep = st.superstep;
        }
        let busy = Instant::now();
        let mut guard = AbortGuard { ctrl, armed: true };
        claim_chunks(ctrl, table, graph, superstep);
        guard.armed = false;
        drop(guard);
        metrics.busy_ns.add(busy.elapsed().as_nanos() as u64);
        let mut st = ctrl.lock();
        st.done += 1;
        ctrl.work_done.notify_one();
    }
}

/// The caller-side driver handed to the shared superstep loop: each
/// phase bumps the epoch, wakes the parked workers, claims its own
/// share of chunks, then waits for the stragglers.
struct SuperstepPool<'e> {
    ctrl: &'e PhaseCtrl,
    spawned: usize,
}

impl<P: Program> PhaseDriver<P> for SuperstepPool<'_> {
    fn run_phase(&self, table: &ChunkTable<P>, graph: &Graph, superstep: Option<usize>) {
        let metrics = pool_metrics();
        {
            let mut st = self.ctrl.lock();
            st.epoch += 1;
            st.superstep = superstep;
            st.done = 0;
            // Reset inside the lock: workers acquire it to read the
            // epoch, which orders the reset before any claim.
            self.ctrl.cursor.store(0, Ordering::Relaxed);
            self.ctrl.work_ready.notify_all();
        }
        metrics.wakes.inc();
        claim_chunks(self.ctrl, table, graph, superstep);
        let mut st = self.ctrl.lock();
        while st.done < self.spawned && !st.aborted {
            st = self
                .ctrl
                .work_done
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        assert!(!st.aborted, "a superstep worker panicked");
    }
}

/// Runs a program under the persistent pool with `threads` total
/// workers (the calling thread is one of them): the semantics of
/// [`crate::Executor::run`] with byte-identical transcripts. Workers
/// live for the whole run, parked between supersteps.
pub(crate) fn run_pooled<P, F>(
    graph: &Graph,
    seed: u64,
    bandwidth: u64,
    cut: Option<&CutMeter>,
    threads: usize,
    factory: F,
    max_supersteps: u64,
) -> Result<(RunReport, Vec<P>), SimError>
where
    P: Program + Send,
    P::Msg: Send,
    F: FnMut(NodeId, usize) -> P,
{
    let table = ChunkTable::build(graph, seed, threads, factory);
    // More workers than chunks would only park and wake for nothing.
    let spawned = threads.saturating_sub(1).min(table.chunk_count());
    if spawned == 0 {
        let report = run_loop(graph, bandwidth, cut, &table, &SeqDriver, max_supersteps)?;
        return Ok((report, table.into_nodes()));
    }
    let ctrl = PhaseCtrl::new();
    let report = std::thread::scope(|scope| {
        for _ in 0..spawned {
            let ctrl = &ctrl;
            let table = &table;
            scope.spawn(move || worker_loop(ctrl, table, graph));
        }
        pool_metrics().spawns.add(spawned as u64);
        let _shutdown = ShutdownOnDrop { ctrl: &ctrl };
        let pool = SuperstepPool {
            ctrl: &ctrl,
            spawned,
        };
        run_loop(graph, bandwidth, cut, &table, &pool, max_supersteps)
    })?;
    Ok((report, table.into_nodes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Control, Ctx, Outbox};
    use congest_graph::generators;

    /// Halts node `v` after `v % 5` steps, so chunks go quiet at
    /// different times and the skip path is exercised.
    #[derive(Debug)]
    struct StaggeredHalt {
        fuel: usize,
        heard: u64,
    }

    impl Program for StaggeredHalt {
        type Msg = u32;
        fn init(&mut self, ctx: &mut Ctx, out: &mut Outbox<u32>) {
            out.broadcast(ctx.node.raw());
        }
        fn step(
            &mut self,
            _ctx: &mut Ctx,
            _s: usize,
            inbox: &[(NodeId, u32)],
            out: &mut Outbox<u32>,
        ) -> Control {
            self.heard += inbox.iter().map(|&(_, m)| m as u64).sum::<u64>();
            if self.fuel == 0 {
                return Control::Halt;
            }
            self.fuel -= 1;
            out.broadcast(self.heard as u32);
            Control::Continue
        }
    }

    fn build(v: NodeId, _n: usize) -> StaggeredHalt {
        StaggeredHalt {
            fuel: v.index() % 5,
            heard: 0,
        }
    }

    #[test]
    fn pooled_matches_sequential_with_staggered_halts() {
        let g = generators::random_regular_ish(600, 4, 7);
        let (sr, sn) = crate::core::run_sequential(&g, 7, 1, None, build, 32).unwrap();
        for threads in [2usize, 3, 8, 1024] {
            let (pr, pn) = run_pooled(&g, 7, 1, None, threads, build, 32).unwrap();
            assert_eq!(sr, pr, "{threads} threads");
            let sh: Vec<u64> = sn.iter().map(|p| p.heard).collect();
            let ph: Vec<u64> = pn.iter().map(|p| p.heard).collect();
            assert_eq!(sh, ph, "{threads} threads: transcripts must match");
        }
    }

    #[test]
    fn worker_panic_aborts_the_run_instead_of_hanging() {
        #[derive(Debug)]
        struct PanicAt;
        impl Program for PanicAt {
            type Msg = u32;
            fn init(&mut self, _c: &mut Ctx, out: &mut Outbox<u32>) {
                out.broadcast(1);
            }
            fn step(
                &mut self,
                ctx: &mut Ctx,
                _s: usize,
                _i: &[(NodeId, u32)],
                _o: &mut Outbox<u32>,
            ) -> Control {
                assert!(ctx.node.index() != 100, "deliberate test panic");
                Control::Continue
            }
        }
        let g = generators::cycle(200);
        let caught = std::panic::catch_unwind(|| {
            let _ = run_pooled(&g, 1, 1, None, 2, |_, _| PanicAt, 8);
        });
        assert!(caught.is_err(), "the panic must propagate to the caller");
    }
}
