//! Round, message, and congestion accounting.

use crate::program::Decision;

/// Congestion statistics of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CongestionStats {
    /// Maximum words carried by any directed edge in any single superstep
    /// — the quantity the paper's threshold `τ` bounds.
    pub max_words_per_edge_step: u64,
    /// Total words sent over all edges and supersteps.
    pub total_words: u64,
    /// Total number of point-to-point messages (a broadcast to `d`
    /// neighbors counts `d`).
    pub total_messages: u64,
}

/// The result of executing a [`crate::Program`] on a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// CONGEST rounds charged: `Σ_steps max_edge ⌈words/B⌉` (each
    /// superstep costs at least one round).
    pub rounds: u64,
    /// Number of supersteps executed (algorithm steps).
    pub supersteps: u64,
    /// Congestion statistics.
    pub congestion: CongestionStats,
    /// The global decision: `Reject` iff at least one node rejected.
    pub decision: Decision,
    /// Ids (raw) of all rejecting nodes.
    pub rejecting_nodes: Vec<u32>,
    /// Words that crossed the metered cut, if a cut was installed.
    pub cut_words: Option<u64>,
}

impl RunReport {
    /// Whether at least one node rejected.
    pub fn rejected(&self) -> bool {
        self.decision == Decision::Reject
    }

    /// Bits across the metered cut, assuming `bits_per_word` bits per
    /// word (callers typically pass `⌈log₂ n⌉`).
    pub fn cut_bits(&self, bits_per_word: u32) -> Option<u64> {
        self.cut_words.map(|w| w * u64::from(bits_per_word))
    }

    /// Merges another report into this one, summing costs and combining
    /// decisions (reject dominates). Used by multi-phase drivers that run
    /// several programs back to back.
    pub fn absorb(&mut self, other: &RunReport) {
        self.rounds += other.rounds;
        self.supersteps += other.supersteps;
        self.congestion.max_words_per_edge_step = self
            .congestion
            .max_words_per_edge_step
            .max(other.congestion.max_words_per_edge_step);
        self.congestion.total_words += other.congestion.total_words;
        self.congestion.total_messages += other.congestion.total_messages;
        if other.decision == Decision::Reject {
            self.decision = Decision::Reject;
            self.rejecting_nodes
                .extend_from_slice(&other.rejecting_nodes);
        }
        self.cut_words = match (self.cut_words, other.cut_words) {
            (Some(a), Some(b)) => Some(a + b),
            (a, b) => a.or(b),
        };
    }

    /// An empty (accepting, zero-cost) report, the identity of
    /// [`RunReport::absorb`].
    pub fn empty() -> RunReport {
        RunReport {
            rounds: 0,
            supersteps: 0,
            congestion: CongestionStats::default(),
            decision: Decision::Accept,
            rejecting_nodes: Vec::new(),
            cut_words: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rounds: u64, decision: Decision) -> RunReport {
        RunReport {
            rounds,
            supersteps: rounds,
            congestion: CongestionStats {
                max_words_per_edge_step: rounds,
                total_words: 10 * rounds,
                total_messages: rounds,
            },
            decision,
            rejecting_nodes: if decision == Decision::Reject {
                vec![1]
            } else {
                vec![]
            },
            cut_words: None,
        }
    }

    #[test]
    fn absorb_sums_and_combines() {
        let mut a = report(3, Decision::Accept);
        let b = report(5, Decision::Reject);
        a.absorb(&b);
        assert_eq!(a.rounds, 8);
        assert_eq!(a.congestion.max_words_per_edge_step, 5);
        assert_eq!(a.congestion.total_words, 80);
        assert!(a.rejected());
        assert_eq!(a.rejecting_nodes, vec![1]);
    }

    #[test]
    fn absorb_identity() {
        let mut a = RunReport::empty();
        let b = report(4, Decision::Accept);
        a.absorb(&b);
        assert_eq!(a, b);
    }

    #[test]
    fn cut_bits_scaling() {
        let mut r = RunReport::empty();
        r.cut_words = Some(12);
        assert_eq!(r.cut_bits(10), Some(120));
        assert_eq!(RunReport::empty().cut_bits(10), None);
    }

    #[test]
    fn absorb_cut_words() {
        let mut a = RunReport::empty();
        a.cut_words = Some(5);
        let mut b = RunReport::empty();
        b.cut_words = Some(7);
        a.absorb(&b);
        assert_eq!(a.cut_words, Some(12));
    }
}
