//! The strict, round-by-round executor.
//!
//! [`StrictExecutor`] runs the same [`Program`]s as [`crate::Executor`]
//! but *iterates* bandwidth-limited rounds instead of charging them: each
//! superstep's per-edge traffic is chopped into `B`-word chunks and
//! transmitted one round at a time, with all nodes stalled until the most
//! loaded edge drains (the synchronous barrier the paper's phase-based
//! algorithms implicitly use — e.g., each `color-BFS` step forwards a set
//! `I_v` of at most `τ` identifiers and therefore occupies its edges for
//! up to `τ` rounds).
//!
//! Decisions and round totals are identical to the logical executor by
//! construction; integration tests assert this on every algorithm, which
//! pins down the meaning of the logical executor's cheaper accounting.

use congest_graph::{Graph, NodeId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::derive_seed;
use crate::error::SimError;
use crate::message::MessageSize;
use crate::metrics::{CongestionStats, RunReport};
use crate::program::{Control, Ctx, Decision, Outbox, Program};

/// A CONGEST executor that literally iterates bandwidth-limited rounds.
///
/// Use [`crate::Executor`] for experiments (same totals, much faster);
/// use this to validate the accounting.
#[derive(Debug)]
pub struct StrictExecutor<'g, P: Program> {
    graph: &'g Graph,
    seed: u64,
    bandwidth: u64,
    nodes: Vec<P>,
}

impl<'g, P: Program> StrictExecutor<'g, P> {
    /// Creates a strict executor on `graph` with randomness from `seed`.
    pub fn new(graph: &'g Graph, seed: u64) -> Self {
        StrictExecutor {
            graph,
            seed,
            bandwidth: 1,
            nodes: Vec::new(),
        }
    }

    /// Sets the per-edge bandwidth in words per round (default 1).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth == 0`.
    pub fn set_bandwidth(&mut self, bandwidth: u64) -> &mut Self {
        assert!(bandwidth > 0, "bandwidth must be positive");
        self.bandwidth = bandwidth;
        self
    }

    /// The per-node program states after the last run.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Runs the program to completion; see [`crate::Executor::run`].
    ///
    /// # Errors
    ///
    /// Same as [`crate::Executor::run`].
    pub fn run<F>(&mut self, mut factory: F, max_supersteps: u64) -> Result<RunReport, SimError>
    where
        F: FnMut(NodeId, usize) -> P,
    {
        let n = self.graph.node_count();
        self.nodes = (0..n as u32).map(|v| factory(NodeId::new(v), n)).collect();
        let mut rngs: Vec<ChaCha8Rng> = (0..n as u64)
            .map(|v| ChaCha8Rng::seed_from_u64(derive_seed(self.seed, v)))
            .collect();

        let mut halted = vec![false; n];
        let mut inboxes: Vec<Vec<(NodeId, P::Msg)>> = (0..n).map(|_| Vec::new()).collect();
        let mut stats = CongestionStats::default();
        let mut rounds: u64 = 0;
        let mut supersteps: u64 = 0;

        let mut pending: Vec<Outbox<P::Msg>> = Vec::with_capacity(n);
        for (v, rng) in rngs.iter_mut().enumerate() {
            let mut out = Outbox::new();
            let mut ctx = Ctx {
                node: NodeId::new(v as u32),
                n,
                neighbors: self.graph.neighbors(NodeId::new(v as u32)),
                rng,
            };
            self.nodes[v].init(&mut ctx, &mut out);
            pending.push(out);
        }
        if pending.iter().any(|o| !o.is_empty()) {
            rounds += self.transmit(&mut pending, &mut inboxes, &mut stats)?;
        }

        loop {
            let all_halted = halted.iter().all(|&h| h);
            let inbox_empty = inboxes.iter().all(Vec::is_empty);
            if all_halted && inbox_empty {
                break;
            }
            if supersteps >= max_supersteps {
                return Err(SimError::StepLimitExceeded {
                    limit: max_supersteps,
                });
            }
            pending.clear();
            for v in 0..n {
                let mut out = Outbox::new();
                if !halted[v] {
                    let inbox = std::mem::take(&mut inboxes[v]);
                    let mut ctx = Ctx {
                        node: NodeId::new(v as u32),
                        n,
                        neighbors: self.graph.neighbors(NodeId::new(v as u32)),
                        rng: &mut rngs[v],
                    };
                    let control =
                        self.nodes[v].step(&mut ctx, supersteps as usize, &inbox, &mut out);
                    if control == Control::Halt {
                        halted[v] = true;
                    }
                } else {
                    inboxes[v].clear();
                }
                pending.push(out);
            }
            supersteps += 1;
            rounds += self.transmit(&mut pending, &mut inboxes, &mut stats)?;
        }

        let rejecting_nodes: Vec<u32> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, p)| p.decision() == Decision::Reject)
            .map(|(v, _)| v as u32)
            .collect();
        let decision = if rejecting_nodes.is_empty() {
            Decision::Accept
        } else {
            Decision::Reject
        };
        Ok(RunReport {
            rounds,
            supersteps,
            congestion: stats,
            decision,
            rejecting_nodes,
            cut_words: None,
        })
    }

    /// Transmits one superstep's traffic round by round: every directed
    /// edge moves up to `B` words per round until all queues drain; the
    /// barrier releases (messages become visible) only then. Returns the
    /// number of rounds consumed (at least 1).
    fn transmit(
        &self,
        pending: &mut [Outbox<P::Msg>],
        inboxes: &mut [Vec<(NodeId, P::Msg)>],
        stats: &mut CongestionStats,
    ) -> Result<u64, SimError> {
        let mut edge_remaining: Vec<u64> = vec![0; self.graph.directed_edge_count()];
        let mut max_load: u64 = 0;

        for (v, out) in pending.iter().enumerate() {
            let from = NodeId::new(v as u32);
            if let Some(msg) = &out.broadcast {
                let words = msg.words() as u64;
                for &to in self.graph.neighbors(from) {
                    let idx = self
                        .graph
                        .directed_edge_index(from, to)
                        .ok_or(SimError::NotANeighbor { from, to })?;
                    edge_remaining[idx] += words;
                    stats.total_words += words;
                    stats.total_messages += 1;
                }
            }
            for (to, msg) in &out.messages {
                let idx = self
                    .graph
                    .directed_edge_index(from, *to)
                    .ok_or(SimError::NotANeighbor { from, to: *to })?;
                edge_remaining[idx] += msg.words() as u64;
                stats.total_words += msg.words() as u64;
                stats.total_messages += 1;
            }
        }
        for &w in &edge_remaining {
            max_load = max_load.max(w);
        }
        stats.max_words_per_edge_step = stats.max_words_per_edge_step.max(max_load);

        // Iterate rounds: each round every loaded edge ships up to B words.
        let mut consumed_rounds: u64 = 0;
        let mut remaining_edges: Vec<usize> = edge_remaining
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w > 0)
            .map(|(i, _)| i)
            .collect();
        while !remaining_edges.is_empty() {
            consumed_rounds += 1;
            remaining_edges.retain(|&e| {
                let shipped = self.bandwidth.min(edge_remaining[e]);
                edge_remaining[e] -= shipped;
                edge_remaining[e] > 0
            });
        }

        // Barrier release: deliver everything (sender order).
        for (v, out) in pending.iter_mut().enumerate() {
            let from = NodeId::new(v as u32);
            if let Some(msg) = out.broadcast.take() {
                for &to in self.graph.neighbors(from) {
                    inboxes[to.index()].push((from, msg.clone()));
                }
            }
            for (to, msg) in out.messages.drain(..) {
                inboxes[to.index()].push((from, msg));
            }
        }
        Ok(consumed_rounds.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Executor;
    use congest_graph::generators;
    use rand::Rng;

    /// Broadcasts a random-length vector each step for `steps` steps.
    struct RandomTraffic {
        steps: usize,
        received_words: u64,
    }

    impl Program for RandomTraffic {
        type Msg = Vec<u32>;
        fn init(&mut self, ctx: &mut Ctx, out: &mut Outbox<Vec<u32>>) {
            let len = ctx.rng.gen_range(1..8);
            out.broadcast(vec![ctx.node.raw(); len]);
        }
        fn step(
            &mut self,
            ctx: &mut Ctx,
            s: usize,
            inbox: &[(NodeId, Vec<u32>)],
            out: &mut Outbox<Vec<u32>>,
        ) -> Control {
            self.received_words += inbox.iter().map(|(_, m)| m.len() as u64).sum::<u64>();
            if s + 1 < self.steps {
                let len = ctx.rng.gen_range(1..8);
                out.broadcast(vec![ctx.node.raw(); len]);
                Control::Continue
            } else {
                Control::Halt
            }
        }
    }

    #[test]
    fn strict_matches_logical_executor() {
        for seed in 0..5u64 {
            let g = generators::erdos_renyi(24, 0.15, seed);
            for bandwidth in [1u64, 3] {
                let mut logical = Executor::new(&g, seed);
                logical.set_bandwidth(bandwidth);
                let lr = logical
                    .run(
                        |_, _| RandomTraffic {
                            steps: 4,
                            received_words: 0,
                        },
                        64,
                    )
                    .unwrap();
                let mut strict = StrictExecutor::new(&g, seed);
                strict.set_bandwidth(bandwidth);
                let sr = strict
                    .run(
                        |_, _| RandomTraffic {
                            steps: 4,
                            received_words: 0,
                        },
                        64,
                    )
                    .unwrap();
                assert_eq!(lr.rounds, sr.rounds, "seed {seed} B {bandwidth}");
                assert_eq!(lr.supersteps, sr.supersteps);
                assert_eq!(lr.congestion, sr.congestion);
                assert_eq!(lr.decision, sr.decision);
                let lw: Vec<u64> = logical.nodes().iter().map(|p| p.received_words).collect();
                let sw: Vec<u64> = strict.nodes().iter().map(|p| p.received_words).collect();
                assert_eq!(lw, sw, "identical transcripts");
            }
        }
    }

    #[test]
    fn strict_round_iteration_counts() {
        /// Node 0 sends 7 words to its single neighbor.
        struct SevenWords;
        impl Program for SevenWords {
            type Msg = Vec<u32>;
            fn init(&mut self, ctx: &mut Ctx, out: &mut Outbox<Vec<u32>>) {
                if ctx.node.raw() == 0 {
                    out.send(ctx.neighbors[0], vec![9; 7]);
                }
            }
            fn step(
                &mut self,
                _ctx: &mut Ctx,
                _s: usize,
                _inbox: &[(NodeId, Vec<u32>)],
                _out: &mut Outbox<Vec<u32>>,
            ) -> Control {
                Control::Halt
            }
        }
        let g = generators::path(2);
        let mut strict = StrictExecutor::new(&g, 0);
        strict.set_bandwidth(2);
        let r = strict.run(|_, _| SevenWords, 8).unwrap();
        // ceil(7/2) = 4 rounds of transmission + 1 silent final step.
        assert_eq!(r.rounds, 5);
    }
}
