//! Message size accounting.

use congest_graph::NodeId;

/// Size of a message in CONGEST *words*.
///
/// One word is one `O(log n)`-bit unit — exactly enough for a node
/// identifier, the currency of every algorithm in the paper. A message of
/// `w` words needs `⌈w/B⌉` rounds on an edge of bandwidth `B` words/round.
///
/// The empty message still costs one word (a round in which a node sends
/// *something* occupies the edge).
pub trait MessageSize {
    /// The number of words this message occupies on the wire.
    fn words(&self) -> usize;
}

impl MessageSize for u32 {
    fn words(&self) -> usize {
        1
    }
}

impl MessageSize for u64 {
    fn words(&self) -> usize {
        // Two identifiers' worth on 32-bit-id networks; still O(log n).
        1
    }
}

impl MessageSize for NodeId {
    fn words(&self) -> usize {
        1
    }
}

impl<T: MessageSize> MessageSize for Vec<T> {
    fn words(&self) -> usize {
        self.iter().map(MessageSize::words).sum::<usize>().max(1)
    }
}

impl<T: MessageSize> MessageSize for Option<T> {
    fn words(&self) -> usize {
        self.as_ref().map_or(1, MessageSize::words)
    }
}

impl<A: MessageSize, B: MessageSize> MessageSize for (A, B) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words()
    }
}

impl MessageSize for bool {
    fn words(&self) -> usize {
        1
    }
}

impl MessageSize for () {
    fn words(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(5u32.words(), 1);
        assert_eq!(NodeId::new(9).words(), 1);
        assert_eq!(true.words(), 1);
        assert_eq!(().words(), 1);
    }

    #[test]
    fn vector_sizes() {
        assert_eq!(vec![1u32, 2, 3].words(), 3);
        assert_eq!(
            Vec::<u32>::new().words(),
            1,
            "empty message still costs a word"
        );
    }

    #[test]
    fn composite_sizes() {
        assert_eq!((NodeId::new(1), vec![2u32, 3]).words(), 3);
        assert_eq!(Some(vec![1u32, 2]).words(), 2);
        assert_eq!(None::<u32>.words(), 1);
    }
}
