//! Simulation backends: one knob selecting how the superstep core of
//! [`crate::Executor`] / [`crate::parallel::ParallelExecutor`] steps
//! nodes.
//!
//! Every detector in the workspace drives the same superstep core (see
//! `core.rs`); a [`Backend`] picks the node-stepping strategy:
//!
//! * [`Backend::Sequential`] — one thread, no pool coordination. The
//!   right choice for small instances and for sweeps that already
//!   parallelize across work units.
//! * [`Backend::Parallel`] — a persistent worker pool (see `pool.rs`)
//!   lives for the whole run; each superstep the workers wake once and
//!   claim chunks of node state off a shared cursor. Message delivery
//!   stays sequential in sender order, so transcripts are
//!   byte-identical to the sequential backend at any thread count.
//! * [`Backend::Auto`] — sequential below a node-count threshold,
//!   parallel (with [`default_parallel_threads`] workers) at or above
//!   it. Pool coordination (wakeups, chunk claiming) is per-superstep
//!   overhead that only amortizes once the phase does real work;
//!   `Auto` flips only where parallelism actually pays.
//!
//! The parallel thread count defaults to the `EVEN_CYCLE_SIM_THREADS`
//! environment variable (validated exactly like the experiment
//! engine's `EVEN_CYCLE_WORKERS`), falling back to the machine's
//! available parallelism.

/// The environment variable naming the default intra-run thread count.
pub const SIM_THREADS_ENV: &str = "EVEN_CYCLE_SIM_THREADS";

/// How the superstep core steps nodes; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Step all nodes on the calling thread.
    #[default]
    Sequential,
    /// Step nodes across a persistent pool of `threads` workers.
    Parallel {
        /// Worker-thread count (clamped to at least 1).
        threads: usize,
    },
    /// [`Backend::Sequential`] below `node_threshold` vertices,
    /// [`Backend::Parallel`] with [`default_parallel_threads`] workers
    /// at or above it.
    Auto {
        /// The node count at which the backend flips to parallel.
        node_threshold: usize,
    },
}

impl Backend {
    /// The node count at which [`Backend::auto`] flips to parallel.
    /// Below this size, waking and coordinating the worker pool
    /// outweighs the parallel phase speedup. Tuned from the
    /// `crossover` section of `BENCH_sim.json` (`simbench`'s sparse
    /// 4-regular sweep): pool coordination overhead on the pooled
    /// 2-thread backend falls to measurement-noise level from 10k
    /// nodes (it is ~10% at 1k), so on any host with ≥ 2 cores the
    /// crossover sits at or below this size — and `Auto` resolves its
    /// thread count through [`default_parallel_threads`], which is 1
    /// on a single-core host, so flipping there is free anyway.
    pub const DEFAULT_AUTO_NODE_THRESHOLD: usize = 10_000;

    /// The auto backend with the default flip threshold.
    pub fn auto() -> Backend {
        Backend::Auto {
            node_threshold: Backend::DEFAULT_AUTO_NODE_THRESHOLD,
        }
    }

    /// The parallel backend with [`default_parallel_threads`] workers.
    pub fn parallel() -> Backend {
        Backend::Parallel {
            threads: default_parallel_threads(),
        }
    }

    /// The thread count this backend uses on an `n`-vertex graph
    /// (always at least 1; `1` means the sequential path).
    pub fn effective_threads(&self, n: usize) -> usize {
        match *self {
            Backend::Sequential => 1,
            Backend::Parallel { threads } => threads.max(1),
            Backend::Auto { node_threshold } => {
                if n >= node_threshold.max(1) {
                    default_parallel_threads()
                } else {
                    1
                }
            }
        }
    }

    /// The most threads this backend can ever use, whatever the
    /// instance size — what a scheduler must budget for when it runs
    /// several simulations concurrently.
    pub fn max_threads(&self) -> usize {
        match *self {
            Backend::Sequential => 1,
            Backend::Parallel { threads } => threads.max(1),
            Backend::Auto { .. } => default_parallel_threads(),
        }
    }

    /// Caps the explicit thread count at `cap` (≥ 1). `Sequential` and
    /// `Auto` pass through unchanged (`Auto` resolves its threads at
    /// run time; callers bounding a thread budget use
    /// [`Backend::max_threads`] for it).
    pub fn clamped(self, cap: usize) -> Backend {
        match self {
            Backend::Parallel { threads } => Backend::Parallel {
                threads: threads.clamp(1, cap.max(1)),
            },
            other => other,
        }
    }

    /// Parses a backend spec: `sequential` (or `seq`), `parallel`
    /// (default threads), `parallel:T`, `auto` (default threshold), or
    /// `auto:N` (flip at `N` nodes).
    pub fn parse(s: &str) -> Option<Backend> {
        let (name, param) = match s.split_once(':') {
            Some((n, p)) => (n, Some(p)),
            None => (s, None),
        };
        match (name, param) {
            ("sequential" | "seq", None) => Some(Backend::Sequential),
            ("parallel" | "par", None) => Some(Backend::parallel()),
            ("parallel" | "par", Some(t)) => {
                let threads: usize = t.parse().ok().filter(|&t| t > 0)?;
                Some(Backend::Parallel { threads })
            }
            ("auto", None) => Some(Backend::auto()),
            ("auto", Some(n)) => {
                let node_threshold: usize = n.parse().ok()?;
                Some(Backend::Auto { node_threshold })
            }
            _ => None,
        }
    }

    /// A canonical spelling that [`Backend::parse`] accepts back.
    pub fn label(&self) -> String {
        match *self {
            Backend::Sequential => "sequential".to_string(),
            Backend::Parallel { threads } => format!("parallel:{threads}"),
            Backend::Auto { node_threshold } => format!("auto:{node_threshold}"),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Parses a thread-count environment value: a positive integer, with a
/// diagnosable error for everything else (zero would deadlock, and a
/// typo must not silently serialize a run). Shared by the simulator's
/// `EVEN_CYCLE_SIM_THREADS` and the experiment engine's
/// `EVEN_CYCLE_WORKERS`.
pub fn parse_thread_count(var: &str, raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(format!("{var} is 0; the thread count must be positive")),
        Ok(w) => Ok(w),
        Err(_) => Err(format!("{var} is not a positive integer: {raw:?}")),
    }
}

/// The intra-run thread count the environment asks for:
/// `Ok(Some(t))` when [`SIM_THREADS_ENV`] is a positive integer,
/// `Ok(None)` when unset, `Err` when set but unusable.
pub fn sim_threads_env_override() -> Result<Option<usize>, String> {
    match std::env::var(SIM_THREADS_ENV) {
        Ok(raw) => parse_thread_count(SIM_THREADS_ENV, &raw).map(Some),
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => {
            Err(format!("{SIM_THREADS_ENV} is not valid unicode"))
        }
    }
}

/// The default thread count of the parallel backends:
/// [`SIM_THREADS_ENV`] when set to a positive integer (an invalid
/// value warns on stderr instead of being silently coerced), else the
/// machine's available parallelism (at least 1).
///
/// The environment value is capped at the machine's parallelism: this
/// is the count [`Backend::Auto`] resolves *at run time* — after the
/// experiment engine has already budgeted its workers — so an
/// over-the-machine override here would bypass every scheduler clamp
/// and oversubscribe (explicit `Parallel { threads }` counts are
/// clamped by the engine instead, where the whole budget is visible).
pub fn default_parallel_threads() -> usize {
    let available = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    match sim_threads_env_override() {
        Ok(Some(t)) => t.min(available),
        Ok(None) => available,
        Err(msg) => {
            eprintln!("warning: {msg}; using available parallelism");
            available
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_canonical_labels() {
        for b in [
            Backend::Sequential,
            Backend::Parallel { threads: 3 },
            Backend::Auto {
                node_threshold: 1000,
            },
        ] {
            assert_eq!(Backend::parse(&b.label()), Some(b), "{b}");
        }
        assert_eq!(Backend::parse("seq"), Some(Backend::Sequential));
        assert_eq!(Backend::parse("auto"), Some(Backend::auto()));
        assert!(matches!(
            Backend::parse("parallel"),
            Some(Backend::Parallel { threads }) if threads >= 1
        ));
        assert_eq!(Backend::parse("parallel:0"), None);
        assert_eq!(Backend::parse("nope"), None);
        assert_eq!(Backend::parse("auto:x"), None);
    }

    #[test]
    fn effective_threads_respects_the_auto_threshold() {
        let auto = Backend::Auto {
            node_threshold: 100,
        };
        assert_eq!(auto.effective_threads(99), 1);
        assert!(auto.effective_threads(100) >= 1);
        assert_eq!(Backend::Sequential.effective_threads(1_000_000), 1);
        assert_eq!(
            Backend::Parallel { threads: 4 }.effective_threads(10),
            4,
            "explicit parallel ignores the size"
        );
        assert_eq!(Backend::Parallel { threads: 0 }.effective_threads(10), 1);
    }

    #[test]
    fn clamped_bounds_explicit_threads_only() {
        assert_eq!(
            Backend::Parallel { threads: 16 }.clamped(4),
            Backend::Parallel { threads: 4 }
        );
        assert_eq!(Backend::Sequential.clamped(4), Backend::Sequential);
        let auto = Backend::auto();
        assert_eq!(auto.clamped(4), auto);
    }

    #[test]
    fn thread_count_values_parse_or_diagnose() {
        assert_eq!(parse_thread_count("X", "4"), Ok(4));
        assert_eq!(parse_thread_count("X", " 8 "), Ok(8));
        assert!(parse_thread_count("X", "0").unwrap_err().contains("X"));
        assert!(parse_thread_count("X", "fuor")
            .unwrap_err()
            .contains("\"fuor\""));
        assert!(parse_thread_count("X", "-2").is_err());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_parallel_threads() >= 1);
    }
}
