//! A multi-threaded executor with the exact semantics of
//! [`crate::Executor`].
//!
//! Node steps within a superstep are independent by definition of the
//! synchronous model, so they parallelize embarrassingly; determinism is
//! preserved because (a) each node's randomness is its own seeded
//! stream, and (b) message delivery is ordered by sender id regardless
//! of which thread produced the outbox. Tests assert transcript-level
//! equivalence with the sequential executor.
//!
//! Scheduling is delegated to the persistent worker pool in
//! `crate::pool`: workers are spawned once per run and parked on a
//! condvar between supersteps, instead of paying a thread spawn per
//! superstep.

use congest_graph::{Graph, NodeId};

use crate::backend;
use crate::cut::CutMeter;
use crate::error::SimError;
use crate::metrics::RunReport;
use crate::program::Program;

/// A parallel CONGEST executor; see [`crate::Executor`] for the model
/// semantics. Programs must be `Send` (they live on worker threads).
#[derive(Debug)]
pub struct ParallelExecutor<'g, P: Program> {
    graph: &'g Graph,
    seed: u64,
    bandwidth: u64,
    threads: usize,
    cut: Option<CutMeter>,
    nodes: Vec<P>,
}

impl<'g, P: Program + Send> ParallelExecutor<'g, P>
where
    P::Msg: Send,
{
    /// Creates a parallel executor. The default worker count honors the
    /// `EVEN_CYCLE_SIM_THREADS` environment variable (validated through
    /// the same parsing path as the experiment engine's
    /// `EVEN_CYCLE_WORKERS`), falling back to available parallelism
    /// (at least 1).
    pub fn new(graph: &'g Graph, seed: u64) -> Self {
        ParallelExecutor {
            graph,
            seed,
            bandwidth: 1,
            threads: backend::default_parallel_threads(),
            cut: None,
            nodes: Vec::new(),
        }
    }

    /// Sets the per-edge bandwidth in words per round (default 1).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth == 0`.
    pub fn set_bandwidth(&mut self, bandwidth: u64) -> &mut Self {
        assert!(bandwidth > 0, "bandwidth must be positive");
        self.bandwidth = bandwidth;
        self
    }

    /// Sets the worker count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn set_threads(&mut self, threads: usize) -> &mut Self {
        assert!(threads > 0, "need at least one worker");
        self.threads = threads;
        self
    }

    /// Installs a [`CutMeter`]; the run report will include the words
    /// that crossed it — exactly as in [`crate::Executor::set_cut`]
    /// (delivery is sequential in both executors, so cut accounting is
    /// thread-count-independent).
    pub fn set_cut(&mut self, cut: CutMeter) -> &mut Self {
        self.cut = Some(cut);
        self
    }

    /// The per-node program states after the last run.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Runs the program to completion; semantics identical to
    /// [`crate::Executor::run`] (the two executors share one superstep
    /// core and differ only in how the node-step phase is scheduled).
    ///
    /// # Errors
    ///
    /// Same as [`crate::Executor::run`].
    pub fn run<F>(&mut self, factory: F, max_supersteps: u64) -> Result<RunReport, SimError>
    where
        F: FnMut(NodeId, usize) -> P,
    {
        let (report, nodes) = crate::pool::run_pooled(
            self.graph,
            self.seed,
            self.bandwidth,
            self.cut.as_ref(),
            self.threads,
            factory,
            max_supersteps,
        )?;
        self.nodes = nodes;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Control, Ctx, Outbox};
    use crate::Executor;
    use congest_graph::generators;
    use rand::Rng;

    /// Gossip a random token for a few steps (exercises rng, inboxes,
    /// and halting).
    #[derive(Debug)]
    struct Gossip {
        steps: usize,
        log: Vec<(u32, u32)>,
    }

    impl Program for Gossip {
        type Msg = u32;
        fn init(&mut self, ctx: &mut Ctx, out: &mut Outbox<u32>) {
            out.broadcast(ctx.rng.gen_range(0..1_000_000));
        }
        fn step(
            &mut self,
            ctx: &mut Ctx,
            s: usize,
            inbox: &[(NodeId, u32)],
            out: &mut Outbox<u32>,
        ) -> Control {
            for &(from, m) in inbox {
                self.log.push((from.raw(), m));
            }
            if s + 1 < self.steps {
                out.broadcast(ctx.rng.gen_range(0..1_000_000));
                Control::Continue
            } else {
                Control::Halt
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_transcripts() {
        for seed in 0..4u64 {
            let g = generators::erdos_renyi(60, 0.1, seed);
            let mut seq = Executor::new(&g, seed);
            let sr = seq
                .run(
                    |_, _| Gossip {
                        steps: 5,
                        log: vec![],
                    },
                    16,
                )
                .unwrap();
            let mut par = ParallelExecutor::new(&g, seed);
            par.set_threads(4);
            let pr = par
                .run(
                    |_, _| Gossip {
                        steps: 5,
                        log: vec![],
                    },
                    16,
                )
                .unwrap();
            assert_eq!(sr.rounds, pr.rounds, "seed {seed}");
            assert_eq!(sr.supersteps, pr.supersteps);
            assert_eq!(sr.congestion, pr.congestion);
            let sl: Vec<_> = seq.nodes().iter().map(|p| p.log.clone()).collect();
            let pl: Vec<_> = par.nodes().iter().map(|p| p.log.clone()).collect();
            assert_eq!(sl, pl, "transcripts must match bit for bit");
        }
    }

    #[test]
    fn parallel_with_single_thread() {
        let g = generators::cycle(12);
        let mut par = ParallelExecutor::new(&g, 1);
        par.set_threads(1);
        let r = par
            .run(
                |_, _| Gossip {
                    steps: 3,
                    log: vec![],
                },
                8,
            )
            .unwrap();
        assert_eq!(r.supersteps, 3);
    }

    #[test]
    fn cut_meter_matches_sequential() {
        use crate::CutMeter;
        // Broadcast gossip across a bisected ER graph: the words that
        // cross the cut must agree between the executors at every
        // thread count (delivery is sequential in both).
        for seed in 0..3u64 {
            let g = generators::erdos_renyi(40, 0.15, seed);
            let side: Vec<bool> = (0..g.node_count()).map(|v| v >= 20).collect();
            let build = |_: NodeId, _: usize| Gossip {
                steps: 4,
                log: vec![],
            };
            let mut seq = Executor::new(&g, seed);
            seq.set_cut(CutMeter::new(&g, side.clone()));
            let sr = seq.run(build, 16).unwrap();
            assert!(sr.cut_words.is_some_and(|w| w > 0), "cut must be crossed");
            for threads in [1usize, 2, 4] {
                let mut par = ParallelExecutor::new(&g, seed);
                par.set_threads(threads)
                    .set_cut(CutMeter::new(&g, side.clone()));
                let pr = par.run(build, 16).unwrap();
                assert_eq!(sr.cut_words, pr.cut_words, "seed {seed}, {threads} threads");
                assert_eq!(sr, pr, "full reports must agree");
            }
        }
    }

    #[test]
    fn backend_entry_point_matches_executors() {
        use crate::{run_with_backend, Backend};
        let g = generators::erdos_renyi(50, 0.12, 9);
        let build = |_: NodeId, _: usize| Gossip {
            steps: 5,
            log: vec![],
        };
        let mut seq = Executor::new(&g, 9);
        let sr = seq.run(build, 16).unwrap();
        let sl: Vec<_> = seq.nodes().iter().map(|p| p.log.clone()).collect();
        for backend in [
            Backend::Sequential,
            Backend::Parallel { threads: 2 },
            Backend::Parallel { threads: 5 },
            Backend::Auto { node_threshold: 1 },
            Backend::Auto {
                node_threshold: usize::MAX,
            },
        ] {
            let (report, nodes) = run_with_backend(&g, 9, backend, 1, None, build, 16).unwrap();
            assert_eq!(report, sr, "{backend}");
            let bl: Vec<_> = nodes.iter().map(|p| p.log.clone()).collect();
            assert_eq!(bl, sl, "{backend}: transcripts must match bit for bit");
        }
    }

    #[test]
    fn parallel_step_limit() {
        #[derive(Debug)]
        struct Forever;
        impl Program for Forever {
            type Msg = u32;
            fn init(&mut self, _c: &mut Ctx, _o: &mut Outbox<u32>) {}
            fn step(
                &mut self,
                _c: &mut Ctx,
                _s: usize,
                _i: &[(NodeId, u32)],
                _o: &mut Outbox<u32>,
            ) -> Control {
                Control::Continue
            }
        }
        let g = generators::path(4);
        let mut par = ParallelExecutor::new(&g, 0);
        let err = par.run(|_, _| Forever, 3).unwrap_err();
        assert_eq!(err, SimError::StepLimitExceeded { limit: 3 });
    }
}
