//! A multi-threaded executor with the exact semantics of
//! [`crate::Executor`].
//!
//! Node steps within a superstep are independent by definition of the
//! synchronous model, so they parallelize embarrassingly; determinism is
//! preserved because (a) each node's randomness is its own seeded
//! stream, and (b) message delivery is ordered by sender id regardless
//! of which thread produced the outbox. Tests assert transcript-level
//! equivalence with the sequential executor.

use congest_graph::{Graph, NodeId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::derive_seed;
use crate::error::SimError;
use crate::message::MessageSize;
use crate::metrics::{CongestionStats, RunReport};
use crate::program::{Control, Ctx, Decision, Outbox, Program};

/// A parallel CONGEST executor; see [`crate::Executor`] for the model
/// semantics. Programs must be `Send` (they live on worker threads).
#[derive(Debug)]
pub struct ParallelExecutor<'g, P: Program> {
    graph: &'g Graph,
    seed: u64,
    bandwidth: u64,
    threads: usize,
    nodes: Vec<P>,
}

impl<'g, P: Program + Send> ParallelExecutor<'g, P>
where
    P::Msg: Send,
{
    /// Creates a parallel executor with as many workers as available
    /// parallelism (at least 1).
    pub fn new(graph: &'g Graph, seed: u64) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1);
        ParallelExecutor {
            graph,
            seed,
            bandwidth: 1,
            threads,
            nodes: Vec::new(),
        }
    }

    /// Sets the per-edge bandwidth in words per round (default 1).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth == 0`.
    pub fn set_bandwidth(&mut self, bandwidth: u64) -> &mut Self {
        assert!(bandwidth > 0, "bandwidth must be positive");
        self.bandwidth = bandwidth;
        self
    }

    /// Sets the worker count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn set_threads(&mut self, threads: usize) -> &mut Self {
        assert!(threads > 0, "need at least one worker");
        self.threads = threads;
        self
    }

    /// The per-node program states after the last run.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Runs the program to completion; semantics identical to
    /// [`crate::Executor::run`].
    ///
    /// # Errors
    ///
    /// Same as [`crate::Executor::run`].
    pub fn run<F>(&mut self, mut factory: F, max_supersteps: u64) -> Result<RunReport, SimError>
    where
        F: FnMut(NodeId, usize) -> P,
    {
        let n = self.graph.node_count();
        self.nodes = (0..n as u32).map(|v| factory(NodeId::new(v), n)).collect();
        let mut rngs: Vec<ChaCha8Rng> = (0..n as u64)
            .map(|v| ChaCha8Rng::seed_from_u64(derive_seed(self.seed, v)))
            .collect();

        let mut halted = vec![false; n];
        let mut inboxes: Vec<Vec<(NodeId, P::Msg)>> = (0..n).map(|_| Vec::new()).collect();
        let mut stats = CongestionStats::default();
        let mut edge_words: Vec<u64> = vec![0; self.graph.directed_edge_count()];
        let mut rounds: u64 = 0;
        let mut supersteps: u64 = 0;

        // Init phase (parallel over nodes).
        let mut pending = self.parallel_phase(&mut rngs, &mut halted, &mut inboxes, None)?;
        if pending.iter().any(|o| !o.is_empty()) {
            rounds += self.deliver(&mut pending, &mut inboxes, &mut stats, &mut edge_words)?;
        }

        loop {
            let all_halted = halted.iter().all(|&h| h);
            let inbox_empty = inboxes.iter().all(Vec::is_empty);
            if all_halted && inbox_empty {
                break;
            }
            if supersteps >= max_supersteps {
                return Err(SimError::StepLimitExceeded {
                    limit: max_supersteps,
                });
            }
            let mut pending = self.parallel_phase(
                &mut rngs,
                &mut halted,
                &mut inboxes,
                Some(supersteps as usize),
            )?;
            supersteps += 1;
            rounds += self.deliver(&mut pending, &mut inboxes, &mut stats, &mut edge_words)?;
        }

        let rejecting_nodes: Vec<u32> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, p)| p.decision() == Decision::Reject)
            .map(|(v, _)| v as u32)
            .collect();
        let decision = if rejecting_nodes.is_empty() {
            Decision::Accept
        } else {
            Decision::Reject
        };
        Ok(RunReport {
            rounds,
            supersteps,
            congestion: stats,
            decision,
            rejecting_nodes,
            cut_words: None,
        })
    }

    /// Steps all live nodes (or inits them when `superstep` is `None`)
    /// across worker threads; returns the outboxes in node order.
    fn parallel_phase(
        &mut self,
        rngs: &mut [ChaCha8Rng],
        halted: &mut [bool],
        inboxes: &mut [Vec<(NodeId, P::Msg)>],
        superstep: Option<usize>,
    ) -> Result<Vec<Outbox<P::Msg>>, SimError> {
        let n = self.graph.node_count();
        let graph = self.graph;
        let chunk = n.div_ceil(self.threads).max(1);

        let mut outboxes: Vec<Outbox<P::Msg>> = (0..n).map(|_| Outbox::new()).collect();
        // Split all per-node state into disjoint chunks for the workers.
        let node_chunks = self.nodes.chunks_mut(chunk);
        let rng_chunks = rngs.chunks_mut(chunk);
        let halted_chunks = halted.chunks_mut(chunk);
        let inbox_chunks = inboxes.chunks_mut(chunk);
        let out_chunks = outboxes.chunks_mut(chunk);

        std::thread::scope(|scope| {
            for (chunk_idx, ((((nodes, rngs), halted), inboxes), outs)) in node_chunks
                .zip(rng_chunks)
                .zip(halted_chunks)
                .zip(inbox_chunks)
                .zip(out_chunks)
                .enumerate()
            {
                let base = chunk_idx * chunk;
                scope.spawn(move || {
                    for (off, node) in nodes.iter_mut().enumerate() {
                        let v = base + off;
                        let id = NodeId::new(v as u32);
                        let mut ctx = Ctx {
                            node: id,
                            n,
                            neighbors: graph.neighbors(id),
                            rng: &mut rngs[off],
                        };
                        match superstep {
                            None => node.init(&mut ctx, &mut outs[off]),
                            Some(s) => {
                                if halted[off] {
                                    inboxes[off].clear();
                                    continue;
                                }
                                let inbox = std::mem::take(&mut inboxes[off]);
                                if node.step(&mut ctx, s, &inbox, &mut outs[off]) == Control::Halt {
                                    halted[off] = true;
                                }
                            }
                        }
                    }
                });
            }
        });
        Ok(outboxes)
    }

    /// Sequential delivery in sender order (identical to the sequential
    /// executor's, so transcripts match bit for bit).
    fn deliver(
        &self,
        pending: &mut [Outbox<P::Msg>],
        inboxes: &mut [Vec<(NodeId, P::Msg)>],
        stats: &mut CongestionStats,
        edge_words: &mut [u64],
    ) -> Result<u64, SimError> {
        for w in edge_words.iter_mut() {
            *w = 0;
        }
        let mut max_load = 0u64;
        for (v, out) in pending.iter().enumerate() {
            let from = NodeId::new(v as u32);
            if let Some(msg) = &out.broadcast {
                let words = msg.words() as u64;
                for &to in self.graph.neighbors(from) {
                    let idx = self
                        .graph
                        .directed_edge_index(from, to)
                        .ok_or(SimError::NotANeighbor { from, to })?;
                    edge_words[idx] += words;
                    max_load = max_load.max(edge_words[idx]);
                    stats.total_words += words;
                    stats.total_messages += 1;
                }
            }
            for (to, msg) in &out.messages {
                let idx = self
                    .graph
                    .directed_edge_index(from, *to)
                    .ok_or(SimError::NotANeighbor { from, to: *to })?;
                let words = msg.words() as u64;
                edge_words[idx] += words;
                max_load = max_load.max(edge_words[idx]);
                stats.total_words += words;
                stats.total_messages += 1;
            }
        }
        stats.max_words_per_edge_step = stats.max_words_per_edge_step.max(max_load);
        for (v, out) in pending.iter_mut().enumerate() {
            let from = NodeId::new(v as u32);
            if let Some(msg) = out.broadcast.take() {
                for &to in self.graph.neighbors(from) {
                    inboxes[to.index()].push((from, msg.clone()));
                }
            }
            for (to, msg) in out.messages.drain(..) {
                inboxes[to.index()].push((from, msg));
            }
        }
        Ok(max_load.div_ceil(self.bandwidth).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Executor;
    use congest_graph::generators;
    use rand::Rng;

    /// Gossip a random token for a few steps (exercises rng, inboxes,
    /// and halting).
    #[derive(Debug)]
    struct Gossip {
        steps: usize,
        log: Vec<(u32, u32)>,
    }

    impl Program for Gossip {
        type Msg = u32;
        fn init(&mut self, ctx: &mut Ctx, out: &mut Outbox<u32>) {
            out.broadcast(ctx.rng.gen_range(0..1_000_000));
        }
        fn step(
            &mut self,
            ctx: &mut Ctx,
            s: usize,
            inbox: &[(NodeId, u32)],
            out: &mut Outbox<u32>,
        ) -> Control {
            for &(from, m) in inbox {
                self.log.push((from.raw(), m));
            }
            if s + 1 < self.steps {
                out.broadcast(ctx.rng.gen_range(0..1_000_000));
                Control::Continue
            } else {
                Control::Halt
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_transcripts() {
        for seed in 0..4u64 {
            let g = generators::erdos_renyi(60, 0.1, seed);
            let mut seq = Executor::new(&g, seed);
            let sr = seq
                .run(
                    |_, _| Gossip {
                        steps: 5,
                        log: vec![],
                    },
                    16,
                )
                .unwrap();
            let mut par = ParallelExecutor::new(&g, seed);
            par.set_threads(4);
            let pr = par
                .run(
                    |_, _| Gossip {
                        steps: 5,
                        log: vec![],
                    },
                    16,
                )
                .unwrap();
            assert_eq!(sr.rounds, pr.rounds, "seed {seed}");
            assert_eq!(sr.supersteps, pr.supersteps);
            assert_eq!(sr.congestion, pr.congestion);
            let sl: Vec<_> = seq.nodes().iter().map(|p| p.log.clone()).collect();
            let pl: Vec<_> = par.nodes().iter().map(|p| p.log.clone()).collect();
            assert_eq!(sl, pl, "transcripts must match bit for bit");
        }
    }

    #[test]
    fn parallel_with_single_thread() {
        let g = generators::cycle(12);
        let mut par = ParallelExecutor::new(&g, 1);
        par.set_threads(1);
        let r = par
            .run(
                |_, _| Gossip {
                    steps: 3,
                    log: vec![],
                },
                8,
            )
            .unwrap();
        assert_eq!(r.supersteps, 3);
    }

    #[test]
    fn parallel_step_limit() {
        #[derive(Debug)]
        struct Forever;
        impl Program for Forever {
            type Msg = u32;
            fn init(&mut self, _c: &mut Ctx, _o: &mut Outbox<u32>) {}
            fn step(
                &mut self,
                _c: &mut Ctx,
                _s: usize,
                _i: &[(NodeId, u32)],
                _o: &mut Outbox<u32>,
            ) -> Control {
                Control::Continue
            }
        }
        let g = generators::path(4);
        let mut par = ParallelExecutor::new(&g, 0);
        let err = par.run(|_, _| Forever, 3).unwrap_err();
        assert_eq!(err, SimError::StepLimitExceeded { limit: 3 });
    }
}
