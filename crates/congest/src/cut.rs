//! Metering of communication across a vertex bipartition.

use congest_graph::{Graph, NodeId};

/// A two-sided vertex labelling used to meter the words crossing a cut.
///
/// The Set-Disjointness reductions (paper §3.3) argue: if a CONGEST
/// algorithm runs in `T` rounds on the gadget graph, then Alice and Bob
/// can simulate it exchanging only the messages that cross the
/// Alice/Bob cut — `O(T · cut_size · log n)` bits. A `CutMeter` installed
/// in an [`crate::Executor`] counts exactly those words.
#[derive(Debug, Clone)]
pub struct CutMeter {
    side: Vec<bool>,
    cut_edges: usize,
}

impl CutMeter {
    /// Creates a meter from a labelling: `side[v] == false` puts `v` on
    /// Alice's side, `true` on Bob's.
    ///
    /// # Panics
    ///
    /// Panics if `side.len() != g.node_count()`.
    pub fn new(g: &Graph, side: Vec<bool>) -> Self {
        assert_eq!(side.len(), g.node_count(), "labelling length mismatch");
        let cut_edges = g
            .edges()
            .filter(|&(u, v)| side[u.index()] != side[v.index()])
            .count();
        CutMeter { side, cut_edges }
    }

    /// The number of edges crossing the cut (Alice↔Bob matching size).
    pub fn cut_size(&self) -> usize {
        self.cut_edges
    }

    /// Whether the directed edge `from → to` crosses the cut.
    pub fn crosses(&self, from: NodeId, to: NodeId) -> bool {
        self.side[from.index()] != self.side[to.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    #[test]
    fn counts_cut_edges() {
        let g = generators::cycle(6);
        // Alternating sides: every edge crosses.
        let side: Vec<bool> = (0..6).map(|i| i % 2 == 1).collect();
        let m = CutMeter::new(&g, side);
        assert_eq!(m.cut_size(), 6);
        assert!(m.crosses(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn half_split() {
        let g = generators::cycle(6);
        let side: Vec<bool> = (0..6).map(|i| i >= 3).collect();
        let m = CutMeter::new(&g, side);
        assert_eq!(m.cut_size(), 2); // edges 2-3 and 5-0
        assert!(!m.crosses(NodeId::new(0), NodeId::new(1)));
        assert!(m.crosses(NodeId::new(2), NodeId::new(3)));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_panics() {
        let g = generators::cycle(4);
        CutMeter::new(&g, vec![false; 3]);
    }
}
