//! Execution tracing for protocol debugging.
//!
//! A [`Trace`] records, per superstep, every message with its endpoints
//! and word size. Traces are collected by [`run_traced`] — a transparent
//! program wrapper over the logical executor with identical semantics
//! and costs — and support the queries protocol debugging actually
//! needs: per-edge load over time, a node's conversation history, and
//! wire-dump rendering.

use congest_graph::{Graph, NodeId};

use crate::error::SimError;
use crate::message::MessageSize;
use crate::metrics::RunReport;
use crate::program::Program;
use crate::Executor;

/// One recorded message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Superstep at which the message was *sent*.
    pub superstep: u64,
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Size in words.
    pub words: usize,
}

/// A full message trace of one execution.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// All events, in send order (superstep, then sender id).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events involving `v` (as sender or receiver).
    pub fn involving(&self, v: NodeId) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.from == v || e.to == v)
            .collect()
    }

    /// Total words sent during `superstep` over the directed edge
    /// `from → to`.
    pub fn edge_load(&self, superstep: u64, from: NodeId, to: NodeId) -> usize {
        self.events
            .iter()
            .filter(|e| e.superstep == superstep && e.from == from && e.to == to)
            .map(|e| e.words)
            .sum()
    }

    /// The heaviest directed edge load in any single superstep — must
    /// equal the executor's congestion statistic (asserted in tests).
    pub fn peak_edge_load(&self) -> usize {
        use std::collections::HashMap;
        let mut loads: HashMap<(u64, NodeId, NodeId), usize> = HashMap::new();
        for e in &self.events {
            *loads.entry((e.superstep, e.from, e.to)).or_insert(0) += e.words;
        }
        loads.values().copied().max().unwrap_or(0)
    }

    /// Renders a human-readable dump (one line per event), for debugging
    /// sessions and golden tests.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "[step {:>3}] {} -> {} ({} word{})\n",
                e.superstep,
                e.from,
                e.to,
                e.words,
                if e.words == 1 { "" } else { "s" }
            ));
        }
        out
    }
}

/// A program wrapper that records every outgoing message of the inner
/// program into a shared trace buffer.
#[derive(Debug)]
struct Traced<P> {
    inner: P,
    node: NodeId,
    log: std::rc::Rc<std::cell::RefCell<Vec<TraceEvent>>>,
    neighbors: Vec<NodeId>,
}

impl<P: Program> Program for Traced<P> {
    type Msg = P::Msg;

    fn init(&mut self, ctx: &mut crate::Ctx, out: &mut crate::Outbox<P::Msg>) {
        self.neighbors = ctx.neighbors.to_vec();
        self.inner.init(ctx, out);
        self.record(out, 0);
    }

    fn step(
        &mut self,
        ctx: &mut crate::Ctx,
        superstep: usize,
        inbox: &[(NodeId, P::Msg)],
        out: &mut crate::Outbox<P::Msg>,
    ) -> crate::Control {
        let control = self.inner.step(ctx, superstep, inbox, out);
        self.record(out, superstep as u64 + 1);
        control
    }

    fn decision(&self) -> crate::Decision {
        self.inner.decision()
    }
}

impl<P: Program> Traced<P> {
    fn record(&self, out: &crate::Outbox<P::Msg>, superstep: u64) {
        let mut log = self.log.borrow_mut();
        if let Some(msg) = &out.broadcast {
            for &to in &self.neighbors {
                log.push(TraceEvent {
                    superstep,
                    from: self.node,
                    to,
                    words: msg.words(),
                });
            }
        }
        for (to, msg) in &out.messages {
            log.push(TraceEvent {
                superstep,
                from: self.node,
                to: *to,
                words: msg.words(),
            });
        }
    }
}

/// Runs a program under the logical executor while recording a full
/// message [`Trace`].
///
/// Same semantics and costs as [`Executor::run`] (the wrapper adds no
/// messages); returns the report together with the trace.
///
/// # Errors
///
/// Same as [`Executor::run`].
pub fn run_traced<P, F>(
    graph: &Graph,
    seed: u64,
    factory: F,
    max_supersteps: u64,
) -> Result<(RunReport, Trace), SimError>
where
    P: Program,
    F: FnMut(NodeId, usize) -> P,
{
    let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let mut factory = factory;
    let mut exec = Executor::new(graph, seed);
    let report = exec.run(
        |v, n| Traced {
            inner: factory(v, n),
            node: v,
            log: std::rc::Rc::clone(&log),
            neighbors: Vec::new(),
        },
        max_supersteps,
    )?;
    let mut events = std::rc::Rc::try_unwrap(log)
        .map(|c| c.into_inner())
        .unwrap_or_else(|rc| rc.borrow().clone());
    events.sort_by_key(|e| (e.superstep, e.from, e.to));
    Ok((report, Trace { events }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Control, Ctx, Outbox, Program};
    use congest_graph::generators;

    struct Ping {
        hops: usize,
    }

    impl Program for Ping {
        type Msg = Vec<u32>;
        fn init(&mut self, ctx: &mut Ctx, out: &mut Outbox<Vec<u32>>) {
            if ctx.node.raw() == 0 {
                out.send(ctx.neighbors[0], vec![7; 3]);
            }
        }
        fn step(
            &mut self,
            ctx: &mut Ctx,
            s: usize,
            inbox: &[(NodeId, Vec<u32>)],
            out: &mut Outbox<Vec<u32>>,
        ) -> Control {
            if s < self.hops {
                for (_, msg) in inbox {
                    // forward down the path
                    if let Some(&next) = ctx.neighbors.iter().find(|&&w| w > ctx.node) {
                        out.send(next, msg.clone());
                    }
                }
                Control::Continue
            } else {
                Control::Halt
            }
        }
    }

    #[test]
    fn trace_records_the_relay() {
        let g = generators::path(5);
        let (report, trace) = run_traced(&g, 1, |_, _| Ping { hops: 4 }, 10).unwrap();
        // Message relayed 0→1→2→3→4: 4 events of 3 words.
        assert_eq!(trace.events().len(), 4);
        for (i, e) in trace.events().iter().enumerate() {
            assert_eq!(e.from, NodeId::new(i as u32));
            assert_eq!(e.to, NodeId::new(i as u32 + 1));
            assert_eq!(e.words, 3);
        }
        assert_eq!(
            trace.peak_edge_load() as u64,
            report.congestion.max_words_per_edge_step,
            "trace must agree with the executor's accounting"
        );
        assert_eq!(trace.edge_load(0, NodeId::new(0), NodeId::new(1)), 3);
        assert_eq!(trace.edge_load(0, NodeId::new(1), NodeId::new(2)), 0);
    }

    #[test]
    fn involving_filters_by_endpoint() {
        let g = generators::path(4);
        let (_, trace) = run_traced(&g, 1, |_, _| Ping { hops: 3 }, 10).unwrap();
        assert_eq!(trace.involving(NodeId::new(0)).len(), 1);
        assert_eq!(trace.involving(NodeId::new(1)).len(), 2);
        assert_eq!(trace.involving(NodeId::new(3)).len(), 1);
    }

    #[test]
    fn render_is_line_per_event() {
        let g = generators::path(3);
        let (_, trace) = run_traced(&g, 1, |_, _| Ping { hops: 2 }, 10).unwrap();
        let dump = trace.render();
        assert_eq!(dump.lines().count(), trace.events().len());
        assert!(dump.contains("->"));
    }
}
