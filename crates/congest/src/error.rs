//! Simulation errors.

use std::error::Error;
use std::fmt;

use congest_graph::NodeId;

/// Errors surfaced by the CONGEST executors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A node attempted to send a message to a vertex it has no edge to —
    /// physically impossible in the model.
    NotANeighbor {
        /// The sending node.
        from: NodeId,
        /// The illegal destination.
        to: NodeId,
    },
    /// The superstep limit was reached with nodes still running; the
    /// algorithm did not terminate.
    StepLimitExceeded {
        /// The limit that tripped.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NotANeighbor { from, to } => {
                write!(f, "node {from} attempted to send to non-neighbor {to}")
            }
            SimError::StepLimitExceeded { limit } => {
                write!(f, "superstep limit {limit} exceeded without termination")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SimError::NotANeighbor {
            from: NodeId::new(1),
            to: NodeId::new(5),
        };
        assert!(e.to_string().contains("non-neighbor"));
        let e = SimError::StepLimitExceeded { limit: 10 };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
