//! A deterministic simulator for the CONGEST model of distributed
//! computing.
//!
//! In the CONGEST model (Peleg [32]), a network is a simple connected
//! `n`-vertex graph whose vertices are processors. Computation proceeds in
//! synchronous rounds; in each round every node may send one message of
//! `O(log n)` bits along each incident edge. This crate simulates that
//! model faithfully enough for the algorithms of the even-cycle paper:
//!
//! * **Node programs** ([`Program`]) see only their local state: their id,
//!   their degree and neighbor ids, `n`, and a private seeded RNG. They
//!   communicate exclusively through [`Outbox::send`] /
//!   [`Outbox::broadcast`]. Sending to a non-neighbor is a simulation
//!   error — the model physically forbids it.
//! * **Message accounting is in words**: one *word* is one `O(log n)`-bit
//!   unit (a node identifier). A superstep in which some edge carries `w`
//!   words is charged `⌈w/B⌉` rounds, where `B` is the bandwidth in words
//!   per edge per round (`B = 1` is classical CONGEST). The
//!   [`logical`](Executor::run) executor charges this cost directly; the
//!   [`strict`](strict::StrictExecutor) executor actually chops messages
//!   into `B`-word chunks and iterates rounds, and tests assert both give
//!   identical totals and decisions.
//! * **Everything is replayable**: all randomness derives from a master
//!   seed via per-node independent streams.
//! * **Cut metering** ([`CutMeter`]) counts the bits crossing a vertex
//!   bipartition, which is what the Set-Disjointness lower-bound
//!   reductions of the paper's §3.3 measure.
//!
//! # Example: distributed maximum finding
//!
//! ```
//! use congest_graph::{generators, NodeId};
//! use congest_sim::{Control, Ctx, Executor, Outbox, Program};
//!
//! /// Flood the maximum id for a fixed number of steps.
//! struct MaxFlood { best: u32, rounds: usize }
//!
//! impl Program for MaxFlood {
//!     type Msg = u32;
//!     fn init(&mut self, ctx: &mut Ctx, out: &mut Outbox<u32>) {
//!         self.best = ctx.node.raw();
//!         out.broadcast(self.best);
//!     }
//!     fn step(
//!         &mut self,
//!         _ctx: &mut Ctx,
//!         step: usize,
//!         inbox: &[(NodeId, u32)],
//!         out: &mut Outbox<u32>,
//!     ) -> Control {
//!         let incoming = inbox.iter().map(|(_, m)| *m).max().unwrap_or(0);
//!         if incoming > self.best {
//!             self.best = incoming;
//!             out.broadcast(self.best);
//!         }
//!         if step + 1 >= self.rounds { Control::Halt } else { Control::Continue }
//!     }
//! }
//!
//! let g = generators::cycle(8);
//! let mut exec = Executor::new(&g, 99);
//! let report = exec.run(|_, _| MaxFlood { best: 0, rounds: 8 }, 16)?;
//! assert!(exec.nodes().iter().all(|p| p.best == 7));
//! assert!(report.rounds >= 4);
//! # Ok::<(), congest_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
mod core;
mod cut;
mod error;
mod executor;
mod message;
mod metrics;
pub mod parallel;
mod pool;
mod program;
pub mod strict;
pub mod trace;
pub mod wire;

pub use backend::Backend;
pub use cut::CutMeter;
pub use error::SimError;
pub use executor::Executor;
pub use message::MessageSize;
pub use metrics::{CongestionStats, RunReport};
pub use program::{Control, Ctx, Decision, Outbox, Program};

use congest_graph::{Graph, NodeId};

/// Runs a program under the given [`Backend`], returning the report
/// and the final per-node states. This is the one entry point every
/// detector hot loop routes through: the [`Executor`] /
/// [`parallel::ParallelExecutor`] pair share a single superstep core,
/// so the report and node states are byte-identical whatever the
/// backend or thread count.
///
/// # Errors
///
/// Same as [`Executor::run`].
pub fn run_with_backend<P, F>(
    graph: &Graph,
    seed: u64,
    backend: Backend,
    bandwidth: u64,
    cut: Option<CutMeter>,
    factory: F,
    max_supersteps: u64,
) -> Result<(RunReport, Vec<P>), SimError>
where
    P: Program + Send,
    P::Msg: Send,
    F: FnMut(NodeId, usize) -> P,
{
    match backend.effective_threads(graph.node_count()) {
        0 | 1 => core::run_sequential(graph, seed, bandwidth, cut.as_ref(), factory, max_supersteps),
        threads => pool::run_pooled(
            graph,
            seed,
            bandwidth,
            cut.as_ref(),
            threads,
            factory,
            max_supersteps,
        ),
    }
}

/// Derives a stream-specific 64-bit seed from a master seed and a stream
/// label, via SplitMix64 finalization. Used everywhere a sub-component
/// needs its own independent randomness.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_differ_by_stream() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(1, 0), "deterministic");
    }
}
