//! Binary wire encoding for CONGEST messages.
//!
//! The word accounting of [`crate::MessageSize`] is an *abstraction* of
//! the `O(log n)`-bit budget; this module makes it concrete: messages
//! encode to byte buffers whose length is checked against the claimed
//! word count (one word = [`WORD_BYTES`] bytes, enough for a 32-bit
//! identifier). Tests across the workspace use
//! [`assert_accounting_consistent`] to pin the abstraction to reality.

use congest_graph::NodeId;

use crate::message::MessageSize;

/// Bytes per CONGEST word (a 32-bit identifier).
pub const WORD_BYTES: usize = 4;

/// A growable write buffer (std-only stand-in for `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Freezes into a readable [`Bytes`] view.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

/// A readable byte view with a cursor (std-only stand-in for
/// `bytes::Bytes`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Unread bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Total length of the underlying buffer (ignores the cursor).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the underlying buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads a little-endian `u32` and advances the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than four bytes remain (mirrors `bytes::Buf`).
    pub fn get_u32_le(&mut self) -> u32 {
        let mut word = [0u8; 4];
        word.copy_from_slice(&self.data[self.pos..self.pos + 4]);
        self.pos += 4;
        u32::from_le_bytes(word)
    }

    /// A fresh view over `range` of the underlying buffer.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.data[range].to_vec(),
            pos: 0,
        }
    }
}

/// A message type with a concrete wire format.
pub trait WireEncode: MessageSize + Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Decodes one message from the front of `buf`.
    ///
    /// Returns `None` on malformed input.
    fn decode(buf: &mut Bytes) -> Option<Self>;

    /// Encodes to a fresh buffer.
    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.freeze()
    }
}

impl WireEncode for u32 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(*self);
    }

    fn decode(buf: &mut Bytes) -> Option<Self> {
        (buf.remaining() >= 4).then(|| buf.get_u32_le())
    }
}

impl WireEncode for NodeId {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.raw());
    }

    fn decode(buf: &mut Bytes) -> Option<Self> {
        (buf.remaining() >= 4).then(|| NodeId::new(buf.get_u32_le()))
    }
}

impl WireEncode for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(u32::from(*self));
    }

    fn decode(buf: &mut Bytes) -> Option<Self> {
        (buf.remaining() >= 4).then(|| buf.get_u32_le() != 0)
    }
}

impl<T: WireEncode> WireEncode for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        // Length prefix counts as part of the first word's framing; the
        // CONGEST budget is per-round, and a set of w identifiers costs
        // w words (the length is implicit in the round structure), so we
        // frame with a u32 but check against words() + 1 at most.
        buf.put_u32_le(self.len() as u32);
        for item in self {
            item.encode(buf);
        }
    }

    fn decode(buf: &mut Bytes) -> Option<Self> {
        if buf.remaining() < 4 {
            return None;
        }
        let len = buf.get_u32_le() as usize;
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Some(out)
    }
}

/// Asserts that a message's byte encoding fits its declared word count
/// (allowing one extra framing word for variable-length payloads) and
/// round-trips. Returns the encoded length in bytes.
///
/// # Panics
///
/// Panics if the encoding exceeds `(words + 1) · WORD_BYTES` or the
/// round-trip changes the value.
pub fn assert_accounting_consistent<T: WireEncode + PartialEq + std::fmt::Debug>(msg: &T) -> usize {
    let encoded = msg.to_bytes();
    let budget = (msg.words() + 1) * WORD_BYTES;
    assert!(
        encoded.len() <= budget,
        "{msg:?}: encoding {} bytes exceeds word budget {budget}",
        encoded.len()
    );
    let mut view = encoded.clone();
    let back = T::decode(&mut view).expect("decode");
    assert_eq!(&back, msg, "round-trip mismatch");
    encoded.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip_within_budget() {
        assert_eq!(assert_accounting_consistent(&7u32), 4);
        assert_eq!(assert_accounting_consistent(&NodeId::new(9)), 4);
        assert_eq!(assert_accounting_consistent(&true), 4);
    }

    #[test]
    fn vectors_roundtrip_within_budget() {
        let v: Vec<u32> = (0..17).collect();
        // 17 payload words + 1 framing word.
        assert_eq!(assert_accounting_consistent(&v), 18 * 4);
        let empty: Vec<u32> = vec![];
        assert_accounting_consistent(&empty);
    }

    #[test]
    fn nested_vectors() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![], vec![3]];
        let b = v.to_bytes();
        let mut view = b;
        let back = Vec::<Vec<u32>>::decode(&mut view).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn truncated_input_rejected() {
        let v: Vec<u32> = vec![1, 2, 3];
        let full = v.to_bytes();
        let mut truncated = full.slice(0..full.len() - 2);
        assert!(Vec::<u32>::decode(&mut truncated).is_none());
    }

    #[test]
    fn word_accounting_matches_color_bfs_reality() {
        // The invariant the simulator's accounting relies on: a set of w
        // identifiers costs w words on the wire (+1 framing).
        for w in [0usize, 1, 4, 100] {
            let ids: Vec<u32> = (0..w as u32).collect();
            let bytes = ids.to_bytes().len();
            assert!(bytes <= (ids.words() + 1) * WORD_BYTES);
        }
    }
}
