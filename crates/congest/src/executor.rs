//! The logical-superstep executor.

use congest_graph::{Graph, NodeId};

use crate::core::run_sequential;
use crate::cut::CutMeter;
use crate::error::SimError;
use crate::metrics::RunReport;
use crate::program::Program;

/// Executes a [`Program`] on every vertex of a network in synchronous
/// supersteps, charging CONGEST rounds from per-edge word loads.
///
/// One superstep = one algorithm step at every live node. A superstep in
/// which the most loaded directed edge carries `w` words costs
/// `max(1, ⌈w/B⌉)` rounds, where `B` is the bandwidth
/// ([`Executor::set_bandwidth`], default 1 word = one `O(log n)`-bit
/// message per edge per round, the classical CONGEST budget).
///
/// See the crate-level docs for a complete example.
#[derive(Debug)]
pub struct Executor<'g, P: Program> {
    graph: &'g Graph,
    seed: u64,
    bandwidth: u64,
    cut: Option<CutMeter>,
    nodes: Vec<P>,
}

impl<'g, P: Program> Executor<'g, P> {
    /// Creates an executor on `graph`; all node randomness derives from
    /// `seed`.
    pub fn new(graph: &'g Graph, seed: u64) -> Self {
        Executor {
            graph,
            seed,
            bandwidth: 1,
            cut: None,
            nodes: Vec::new(),
        }
    }

    /// Sets the per-edge bandwidth in words per round (default 1).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth == 0`.
    pub fn set_bandwidth(&mut self, bandwidth: u64) -> &mut Self {
        assert!(bandwidth > 0, "bandwidth must be positive");
        self.bandwidth = bandwidth;
        self
    }

    /// Installs a [`CutMeter`]; the run report will include the words that
    /// crossed it.
    pub fn set_cut(&mut self, cut: CutMeter) -> &mut Self {
        self.cut = Some(cut);
        self
    }

    /// The per-node program states after the last [`Executor::run`]
    /// (empty before the first run). Indexed by node id.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Runs the program to completion (all nodes halted).
    ///
    /// `factory(v, n)` builds the program instance for vertex `v`;
    /// capture per-node inputs (set memberships, colorings, …) in the
    /// closure.
    ///
    /// # Errors
    ///
    /// [`SimError::NotANeighbor`] if a node sends to a non-neighbor;
    /// [`SimError::StepLimitExceeded`] if any node is still running after
    /// `max_supersteps`.
    pub fn run<F>(&mut self, factory: F, max_supersteps: u64) -> Result<RunReport, SimError>
    where
        F: FnMut(NodeId, usize) -> P,
    {
        let (report, nodes) = run_sequential(
            self.graph,
            self.seed,
            self.bandwidth,
            self.cut.as_ref(),
            factory,
            max_supersteps,
        )?;
        self.nodes = nodes;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Control, Ctx, Decision, Outbox};
    use congest_graph::generators;

    /// Every node broadcasts its id once, then halts after hearing all
    /// neighbors.
    struct HelloOnce {
        heard: Vec<NodeId>,
    }

    impl Program for HelloOnce {
        type Msg = u32;
        fn init(&mut self, ctx: &mut Ctx, out: &mut Outbox<u32>) {
            out.broadcast(ctx.node.raw());
        }
        fn step(
            &mut self,
            _ctx: &mut Ctx,
            _s: usize,
            inbox: &[(NodeId, u32)],
            _out: &mut Outbox<u32>,
        ) -> Control {
            self.heard.extend(inbox.iter().map(|&(f, _)| f));
            Control::Halt
        }
    }

    #[test]
    fn hello_exchanges_with_all_neighbors() {
        let g = generators::cycle(5);
        let mut exec = Executor::new(&g, 1);
        let report = exec.run(|_, _| HelloOnce { heard: vec![] }, 10).unwrap();
        assert_eq!(report.supersteps, 1);
        assert_eq!(report.rounds, 2, "init round + one silent step round");
        assert_eq!(report.congestion.max_words_per_edge_step, 1);
        assert_eq!(report.congestion.total_messages, 10); // 5 nodes × 2 nbrs
        for (v, p) in exec.nodes().iter().enumerate() {
            let mut heard: Vec<u32> = p.heard.iter().map(|x| x.raw()).collect();
            heard.sort_unstable();
            let mut expected: Vec<u32> = g
                .neighbors(NodeId::new(v as u32))
                .iter()
                .map(|x| x.raw())
                .collect();
            expected.sort_unstable();
            assert_eq!(heard, expected);
        }
    }

    /// Sends a `size`-word message to the first neighbor, once.
    struct BigSend {
        size: usize,
    }

    impl Program for BigSend {
        type Msg = Vec<u32>;
        fn init(&mut self, ctx: &mut Ctx, out: &mut Outbox<Vec<u32>>) {
            if ctx.node.raw() == 0 {
                out.send(ctx.neighbors[0], vec![7; self.size]);
            }
        }
        fn step(
            &mut self,
            _ctx: &mut Ctx,
            _s: usize,
            _inbox: &[(NodeId, Vec<u32>)],
            _out: &mut Outbox<Vec<u32>>,
        ) -> Control {
            Control::Halt
        }
    }

    #[test]
    fn round_cost_scales_with_message_size() {
        let g = generators::path(3);
        let mut exec = Executor::new(&g, 0);
        let report = exec.run(|_, _| BigSend { size: 10 }, 10).unwrap();
        // init superstep costs ceil(10/1) = 10 rounds, final silent step 1.
        assert_eq!(report.rounds, 11);
        assert_eq!(report.congestion.max_words_per_edge_step, 10);

        let mut exec = Executor::new(&g, 0);
        exec.set_bandwidth(4);
        let report = exec.run(|_, _| BigSend { size: 10 }, 10).unwrap();
        assert_eq!(report.rounds, 3 + 1, "ceil(10/4) + silent step");
    }

    /// Illegally sends to a fixed non-neighbor.
    struct BadSender;

    impl Program for BadSender {
        type Msg = u32;
        fn init(&mut self, ctx: &mut Ctx, out: &mut Outbox<u32>) {
            if ctx.node.raw() == 0 {
                out.send(NodeId::new(2), 1); // 0-2 is not an edge of P3
            }
        }
        fn step(
            &mut self,
            _ctx: &mut Ctx,
            _s: usize,
            _inbox: &[(NodeId, u32)],
            _out: &mut Outbox<u32>,
        ) -> Control {
            Control::Halt
        }
    }

    #[test]
    fn sending_to_non_neighbor_errors() {
        let g = generators::path(3); // edges 0-1, 1-2
        let mut exec = Executor::new(&g, 0);
        let err = exec.run(|_, _| BadSender, 10).unwrap_err();
        assert_eq!(
            err,
            SimError::NotANeighbor {
                from: NodeId::new(0),
                to: NodeId::new(2)
            }
        );
    }

    /// Never halts.
    struct Forever;

    impl Program for Forever {
        type Msg = u32;
        fn init(&mut self, _ctx: &mut Ctx, _out: &mut Outbox<u32>) {}
        fn step(
            &mut self,
            _ctx: &mut Ctx,
            _s: usize,
            _inbox: &[(NodeId, u32)],
            _out: &mut Outbox<u32>,
        ) -> Control {
            Control::Continue
        }
    }

    #[test]
    fn step_limit_trips() {
        let g = generators::path(2);
        let mut exec = Executor::new(&g, 0);
        let err = exec.run(|_, _| Forever, 5).unwrap_err();
        assert_eq!(err, SimError::StepLimitExceeded { limit: 5 });
    }

    /// Rejects iff the node id is odd.
    struct OddRejects {
        me: u32,
    }

    impl Program for OddRejects {
        type Msg = u32;
        fn init(&mut self, _ctx: &mut Ctx, _out: &mut Outbox<u32>) {}
        fn step(
            &mut self,
            _ctx: &mut Ctx,
            _s: usize,
            _inbox: &[(NodeId, u32)],
            _out: &mut Outbox<u32>,
        ) -> Control {
            Control::Halt
        }
        fn decision(&self) -> Decision {
            if self.me % 2 == 1 {
                Decision::Reject
            } else {
                Decision::Accept
            }
        }
    }

    #[test]
    fn decisions_aggregate() {
        let g = generators::path(4);
        let mut exec = Executor::new(&g, 0);
        let report = exec.run(|v, _| OddRejects { me: v.raw() }, 10).unwrap();
        assert!(report.rejected());
        assert_eq!(report.rejecting_nodes, vec![1, 3]);
    }

    #[test]
    fn determinism_across_runs() {
        use rand::Rng;

        /// Broadcasts a random coin for three steps.
        struct Coins {
            log: Vec<u32>,
        }
        impl Program for Coins {
            type Msg = u32;
            fn init(&mut self, ctx: &mut Ctx, out: &mut Outbox<u32>) {
                out.broadcast(ctx.rng.gen_range(0..1000));
            }
            fn step(
                &mut self,
                ctx: &mut Ctx,
                s: usize,
                inbox: &[(NodeId, u32)],
                out: &mut Outbox<u32>,
            ) -> Control {
                self.log.extend(inbox.iter().map(|&(_, m)| m));
                if s < 2 {
                    out.broadcast(ctx.rng.gen_range(0..1000));
                    Control::Continue
                } else {
                    Control::Halt
                }
            }
        }

        let g = generators::erdos_renyi(20, 0.2, 3);
        let run = |seed: u64| {
            let mut exec = Executor::new(&g, seed);
            exec.run(|_, _| Coins { log: vec![] }, 20).unwrap();
            exec.nodes()
                .iter()
                .map(|p| p.log.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5), "same seed, same transcript");
        assert_ne!(run(5), run(6), "different seed, different transcript");
    }

    #[test]
    fn cut_meter_counts() {
        let g = generators::path(4); // 0-1-2-3, cut between 1 and 2
        let mut exec = Executor::new(&g, 0);
        exec.set_cut(CutMeter::new(&g, vec![false, false, true, true]));
        let report = exec.run(|_, _| HelloOnce { heard: vec![] }, 10).unwrap();
        // Each endpoint of edge 1-2 broadcast 1 word across the cut.
        assert_eq!(report.cut_words, Some(2));
        assert_eq!(report.cut_bits(2), Some(4));
    }
}
