//! The core immutable graph type.

use std::fmt;

use crate::error::GraphError;
use crate::GraphBuilder;

/// Identifier of a vertex in a [`Graph`].
///
/// Node identifiers are dense: a graph on `n` vertices uses exactly the ids
/// `0..n`. In the CONGEST model the identifier is the `O(log n)`-bit value a
/// node knows about itself and learns about its neighbors; one `NodeId` is
/// the unit of message accounting ("one word").
///
/// ```
/// use congest_graph::NodeId;
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(format!("{v}"), "3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from its raw index.
    pub const fn new(raw: u32) -> Self {
        NodeId(raw)
    }

    /// Returns the identifier as a `usize` index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(raw: u32) -> Self {
        NodeId(raw)
    }
}

impl From<NodeId> for u32 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

/// An immutable, simple, undirected graph in CSR (compressed sparse row)
/// form with sorted adjacency lists.
///
/// This is the input type of every algorithm in the workspace: the network
/// topology of the CONGEST model. Simplicity (no self-loops, no parallel
/// edges) is enforced at construction.
///
/// ```
/// use congest_graph::Graph;
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])?;
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 4);
/// assert!(g.has_edge(0.into(), 1.into()));
/// assert!(!g.has_edge(0.into(), 2.into()));
/// # Ok::<(), congest_graph::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `adj` for vertex `v`.
    offsets: Vec<u32>,
    /// Concatenated sorted adjacency lists.
    adj: Vec<NodeId>,
}

impl Graph {
    /// Builds a graph on `n` vertices from an edge iterator.
    ///
    /// Duplicate edges are merged silently; both orientations may appear.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] for an edge `(u, u)` and
    /// [`GraphError::NodeOutOfRange`] if an endpoint is `>= n`.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.try_add_edge(NodeId::new(u), NodeId::new(v))?;
        }
        Ok(b.build())
    }

    /// Builds a graph with no edges on `n` vertices.
    pub fn empty(n: usize) -> Self {
        GraphBuilder::new(n).build()
    }

    pub(crate) fn from_sorted_csr(offsets: Vec<u32>, adj: Vec<NodeId>) -> Self {
        debug_assert!(!offsets.is_empty());
        Graph { offsets, adj }
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.adj.len() / 2
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: NodeId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// The sorted neighbor list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        &self.adj[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Whether the edge `{u, v}` is present. `O(log deg(u))`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all vertex ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId::new)
    }

    /// Iterator over all edges, each reported once with `u < v`.
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter {
            graph: self,
            u: 0,
            pos: 0,
        }
    }

    /// The subgraph induced by the vertices with `keep[v] == true`.
    ///
    /// Returns the induced graph (with vertices renumbered densely) and the
    /// mapping from new ids back to original ids.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != self.node_count()`.
    pub fn induced_subgraph(&self, keep: &[bool]) -> (Graph, Vec<NodeId>) {
        assert_eq!(keep.len(), self.node_count(), "mask length mismatch");
        let mut old_to_new = vec![u32::MAX; self.node_count()];
        let mut new_to_old = Vec::new();
        for v in self.nodes() {
            if keep[v.index()] {
                old_to_new[v.index()] = new_to_old.len() as u32;
                new_to_old.push(v);
            }
        }
        let mut b = GraphBuilder::new(new_to_old.len());
        for (u, v) in self.edges() {
            if keep[u.index()] && keep[v.index()] {
                b.add_edge(
                    NodeId::new(old_to_new[u.index()]),
                    NodeId::new(old_to_new[v.index()]),
                );
            }
        }
        (b.build(), new_to_old)
    }

    /// Sum of degrees (twice the edge count).
    pub fn degree_sum(&self) -> usize {
        self.adj.len()
    }

    /// Number of *directed* edges (`2m`); the index space of
    /// [`Graph::directed_edge_index`].
    pub fn directed_edge_count(&self) -> usize {
        self.adj.len()
    }

    /// A dense index in `0..2m` for the directed edge `from → to`, or
    /// `None` if the edge is absent. Used by simulators to account
    /// per-edge traffic without hashing.
    pub fn directed_edge_index(&self, from: NodeId, to: NodeId) -> Option<usize> {
        let base = self.offsets[from.index()] as usize;
        let nbrs = self.neighbors(from);
        nbrs.binary_search(&to).ok().map(|pos| base + pos)
    }

    /// Returns the list of all edges as `(u, v)` pairs with `u < v`.
    pub fn edge_vec(&self) -> Vec<(NodeId, NodeId)> {
        self.edges().collect()
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.node_count(), self.edge_count())
    }
}

/// Iterator over the edges of a [`Graph`]; see [`Graph::edges`].
#[derive(Debug, Clone)]
pub struct EdgeIter<'a> {
    graph: &'a Graph,
    u: u32,
    pos: usize,
}

impl Iterator for EdgeIter<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.graph.node_count() as u32;
        while self.u < n {
            let u = NodeId::new(self.u);
            let nbrs = self.graph.neighbors(u);
            while self.pos < nbrs.len() {
                let v = nbrs[self.pos];
                self.pos += 1;
                if u < v {
                    return Some((u, v));
                }
            }
            self.u += 1;
            self.pos = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let v = NodeId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v.raw(), 42);
        assert_eq!(u32::from(v), 42);
        assert_eq!(NodeId::from(42u32), v);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn zero_vertex_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn from_edges_basic() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(NodeId::new(1)), 2);
        assert_eq!(
            g.neighbors(NodeId::new(1)),
            &[NodeId::new(0), NodeId::new(2)]
        );
    }

    #[test]
    fn from_edges_dedup_and_orientation() {
        let g = Graph::from_edges(2, [(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loop_rejected() {
        assert!(matches!(
            Graph::from_edges(2, [(1, 1)]),
            Err(GraphError::SelfLoop { .. })
        ));
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(matches!(
            Graph::from_edges(2, [(0, 2)]),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn edge_iter_reports_each_edge_once() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let edges = g.edge_vec();
        assert_eq!(edges.len(), 5);
        for (u, v) in edges {
            assert!(u < v);
        }
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let keep = vec![true, true, true, false, false];
        let (h, back) = g.induced_subgraph(&keep);
        assert_eq!(h.node_count(), 3);
        assert_eq!(h.edge_count(), 2); // 0-1, 1-2 survive
        assert_eq!(back, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    fn induced_subgraph_empty_mask() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let (h, back) = g.induced_subgraph(&[false, false, false]);
        assert_eq!(h.node_count(), 0);
        assert!(back.is_empty());
    }

    #[test]
    fn has_edge_symmetry() {
        let g = Graph::from_edges(3, [(0, 2)]).unwrap();
        assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
        assert!(g.has_edge(NodeId::new(2), NodeId::new(0)));
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(1)));
    }
}
