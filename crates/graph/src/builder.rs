//! Incremental construction of [`Graph`] values.

use crate::error::GraphError;
use crate::{Graph, NodeId};

/// Incrementally builds a simple undirected [`Graph`].
///
/// The builder accepts edges in any order and orientation, silently merges
/// duplicates, and produces a CSR graph with sorted adjacency lists.
///
/// ```
/// use congest_graph::{GraphBuilder, NodeId};
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(NodeId::new(0), NodeId::new(1));
/// b.add_edge(NodeId::new(1), NodeId::new(2));
/// let g = b.build();
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of vertices of the graph under construction.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Adds `count` fresh vertices, returning the id of the first.
    ///
    /// Useful for gadget constructions that allocate per-element path
    /// vertices on the fly.
    pub fn add_nodes(&mut self, count: usize) -> NodeId {
        let first = NodeId::new(self.n as u32);
        self.n += count;
        first
    }

    /// Adds the edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` or either endpoint is out of range. Use
    /// [`GraphBuilder::try_add_edge`] for a fallible variant.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.try_add_edge(u, v).expect("invalid edge");
    }

    /// Adds the edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `u == v`, and
    /// [`GraphError::NodeOutOfRange`] if an endpoint is `>= n`.
    pub fn try_add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        let n = self.n as u32;
        for w in [u, v] {
            if w.raw() >= n {
                return Err(GraphError::NodeOutOfRange { node: w, n: self.n });
            }
        }
        self.edges.push(if u < v { (u, v) } else { (v, u) });
        Ok(())
    }

    /// Adds a path `v_0 - v_1 - ... - v_{len}` of `len` fresh edges between
    /// `from` and `to`, creating `len - 1` fresh internal vertices.
    ///
    /// With `len == 1` this is just the edge `{from, to}`. Returns the ids
    /// of the internal vertices (possibly empty).
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or `from == to`.
    pub fn add_path(&mut self, from: NodeId, to: NodeId, len: usize) -> Vec<NodeId> {
        assert!(len >= 1, "path length must be at least 1");
        assert_ne!(from, to, "path endpoints must differ");
        if len == 1 {
            self.add_edge(from, to);
            return Vec::new();
        }
        let first = self.add_nodes(len - 1);
        let internals: Vec<NodeId> = (0..len - 1)
            .map(|i| NodeId::new(first.raw() + i as u32))
            .collect();
        let mut prev = from;
        for &w in &internals {
            self.add_edge(prev, w);
            prev = w;
        }
        self.add_edge(prev, to);
        internals
    }

    /// Finalizes the builder into an immutable [`Graph`].
    ///
    /// Duplicate edges are merged.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut degree = vec![0u32; self.n];
        for &(u, v) in &self.edges {
            degree[u.index()] += 1;
            degree[v.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        offsets.push(0u32);
        for d in &degree {
            let last = *offsets.last().expect("non-empty offsets");
            offsets.push(last + d);
        }
        let mut cursor: Vec<u32> = offsets[..self.n].to_vec();
        let mut adj = vec![NodeId::new(0); self.edges.len() * 2];
        for &(u, v) in &self.edges {
            adj[cursor[u.index()] as usize] = v;
            cursor[u.index()] += 1;
            adj[cursor[v.index()] as usize] = u;
            cursor[v.index()] += 1;
        }
        // Adjacency of u is filled in increasing v-order for the (u, v)
        // half because edges are sorted, but the (v, u) half interleaves;
        // sort each list to restore the invariant.
        for v in 0..self.n {
            adj[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
        }
        Graph::from_sorted_csr(offsets, adj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_nodes_extends_range() {
        let mut b = GraphBuilder::new(2);
        let first = b.add_nodes(3);
        assert_eq!(first, NodeId::new(2));
        assert_eq!(b.node_count(), 5);
        b.add_edge(NodeId::new(0), NodeId::new(4));
        let g = b.build();
        assert_eq!(g.node_count(), 5);
        assert!(g.has_edge(NodeId::new(0), NodeId::new(4)));
    }

    #[test]
    fn add_path_len_one_is_edge() {
        let mut b = GraphBuilder::new(2);
        let internals = b.add_path(NodeId::new(0), NodeId::new(1), 1);
        assert!(internals.is_empty());
        let g = b.build();
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn add_path_creates_internals() {
        let mut b = GraphBuilder::new(2);
        let internals = b.add_path(NodeId::new(0), NodeId::new(1), 4);
        assert_eq!(internals.len(), 3);
        let g = b.build();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        // Endpoints have degree 1, internals degree 2.
        assert_eq!(g.degree(NodeId::new(0)), 1);
        assert_eq!(g.degree(NodeId::new(1)), 1);
        for w in internals {
            assert_eq!(g.degree(w), 2);
        }
    }

    #[test]
    #[should_panic(expected = "path length")]
    fn add_path_zero_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_path(NodeId::new(0), NodeId::new(1), 0);
    }

    #[test]
    fn builder_dedups() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        b.add_edge(NodeId::new(1), NodeId::new(0));
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn adjacency_sorted() {
        let mut b = GraphBuilder::new(5);
        for v in [4u32, 2, 3, 1] {
            b.add_edge(NodeId::new(0), NodeId::new(v));
        }
        let g = b.build();
        let nbrs = g.neighbors(NodeId::new(0));
        let mut sorted = nbrs.to_vec();
        sorted.sort();
        assert_eq!(nbrs, &sorted[..]);
    }
}
