//! Degeneracy and degeneracy orderings.
//!
//! The Density Lemma's warm-up case (`i = 1`, paper §2.2.3) hinges on the
//! bipartite graph `H(v)` having degeneracy at least `k`; these utilities
//! back the tests of that argument.

use crate::{Graph, NodeId};

/// The degeneracy of `g`: the smallest `d` such that every subgraph has a
/// vertex of degree at most `d`. Computed by min-degree peeling in
/// `O(n + m)`.
pub fn degeneracy(g: &Graph) -> usize {
    degeneracy_ordering(g).0
}

/// The degeneracy together with a peeling order (each vertex has at most
/// `degeneracy` neighbors *later* in the order).
pub fn degeneracy_ordering(g: &Graph) -> (usize, Vec<NodeId>) {
    let n = g.node_count();
    if n == 0 {
        return (0, Vec::new());
    }
    let mut degree: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    // Bucket queue over degrees.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[degree[v]].push(v as u32);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0;
    let mut cur = 0usize;
    for _ in 0..n {
        // Find the lowest non-empty bucket; entries may be stale.
        let v = loop {
            while cur > 0 && !buckets[cur - 1].is_empty() {
                cur -= 1;
            }
            match buckets[cur].pop() {
                Some(c) if !removed[c as usize] && degree[c as usize] == cur => break c,
                Some(_) => continue,
                None => {
                    cur += 1;
                    continue;
                }
            }
        };
        degeneracy = degeneracy.max(cur);
        removed[v as usize] = true;
        order.push(NodeId::new(v));
        for &w in g.neighbors(NodeId::new(v)) {
            let wi = w.index();
            if !removed[wi] {
                degree[wi] -= 1;
                buckets[degree[wi]].push(w.raw());
            }
        }
    }
    (degeneracy, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn degeneracy_basic_families() {
        assert_eq!(degeneracy(&generators::path(6)), 1);
        assert_eq!(degeneracy(&generators::star(8)), 1);
        assert_eq!(degeneracy(&generators::cycle(7)), 2);
        assert_eq!(degeneracy(&generators::complete(5)), 4);
        assert_eq!(degeneracy(&generators::grid(4, 5)), 2);
        assert_eq!(degeneracy(&generators::complete_bipartite(3, 7)), 3);
        assert_eq!(degeneracy(&generators::empty(4)), 0);
        assert_eq!(degeneracy(&generators::empty(0)), 0);
    }

    #[test]
    fn ordering_certifies_degeneracy() {
        let g = generators::erdos_renyi(60, 0.1, 5);
        let (d, order) = degeneracy_ordering(&g);
        let mut pos = vec![0usize; g.node_count()];
        for (i, v) in order.iter().enumerate() {
            pos[v.index()] = i;
        }
        for v in g.nodes() {
            let later = g
                .neighbors(v)
                .iter()
                .filter(|w| pos[w.index()] > pos[v.index()])
                .count();
            assert!(
                later <= d,
                "vertex {v} has {later} later neighbors, d = {d}"
            );
        }
    }

    #[test]
    fn ordering_is_permutation() {
        let g = generators::erdos_renyi(30, 0.2, 9);
        let (_, order) = degeneracy_ordering(&g);
        let mut seen = vec![false; g.node_count()];
        for v in order {
            assert!(!seen[v.index()]);
            seen[v.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
