//! Exact and randomized fixed-length-cycle search.
//!
//! `C_ℓ`-subgraph containment is the exact property the paper's CONGEST
//! algorithms decide, so this module is the ground truth of every
//! correctness experiment. [`find_cycle_exact`] is an exhaustive
//! (exponential-in-the-worst-case, heavily pruned) search suitable for the
//! simulation scales; [`find_cycle_color_coding`] is the classical
//! Alon–Yuster–Zwick randomized search, used both as a faster oracle and
//! as an executable reference for the color-coding idea the distributed
//! algorithms implement.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::girth::girth;
use crate::{CycleWitness, Graph, NodeId};

/// Whether `g` contains a cycle of length exactly `l` as a subgraph.
///
/// See [`find_cycle_exact`] for semantics and costs.
pub fn has_cycle_exact(g: &Graph, l: usize, budget: Option<u64>) -> bool {
    find_cycle_exact(g, l, budget).is_some()
}

/// Whether `g` contains any cycle of length at most `max_len`
/// (equivalently, `girth(g) ≤ max_len`).
pub fn contains_cycle_up_to(g: &Graph, max_len: usize) -> bool {
    girth(g).is_some_and(|girth| girth <= max_len)
}

/// Finds a cycle of length exactly `l` in `g`, if one exists.
///
/// The search enumerates, for each vertex `v` (treated as the minimum-id
/// vertex of the cycle), simple paths from `v` through vertices of larger
/// id, pruned by bounded BFS distance back to `v`. Exact — if it returns
/// `None`, no `C_ℓ` subgraph exists.
///
/// # Panics
///
/// Panics if `l < 3`, or if `budget` (a cap on DFS steps, for protection
/// against accidental worst-case blowups) is exhausted — it never returns
/// a wrong answer.
pub fn find_cycle_exact(g: &Graph, l: usize, budget: Option<u64>) -> Option<CycleWitness> {
    assert!(l >= 3, "cycles have length at least 3");
    let mut steps_left = budget.unwrap_or(u64::MAX);
    let mut in_path = vec![false; g.node_count()];
    let mut path: Vec<NodeId> = Vec::with_capacity(l);
    for v in g.nodes() {
        if g.degree(v) < 2 {
            continue;
        }
        // Distances from v using only vertices >= v (cycle vertices are
        // all >= v by the minimum-id convention), bounded by l - 1.
        let dist = restricted_bounded_distances(g, v, (l - 1) as u32);
        path.push(v);
        in_path[v.index()] = true;
        let found = dfs_extend(g, v, l, &dist, &mut path, &mut in_path, &mut steps_left);
        in_path[v.index()] = false;
        if found {
            let w = CycleWitness::new(path.clone());
            debug_assert!(w.is_valid(g), "internal error: invalid witness {w:?}");
            return Some(w);
        }
        path.clear();
    }
    None
}

/// BFS distances from `root` within the subgraph induced by vertices with
/// id `>= root`, bounded by `bound`.
fn restricted_bounded_distances(g: &Graph, root: NodeId, bound: u32) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.node_count()];
    let mut queue = std::collections::VecDeque::new();
    dist[root.index()] = 0;
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        if du >= bound {
            continue;
        }
        for &v in g.neighbors(u) {
            if v >= root && dist[v.index()] == u32::MAX {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

fn dfs_extend(
    g: &Graph,
    root: NodeId,
    l: usize,
    dist: &[u32],
    path: &mut Vec<NodeId>,
    in_path: &mut [bool],
    steps_left: &mut u64,
) -> bool {
    if *steps_left == 0 {
        panic!("find_cycle_exact: search budget exhausted");
    }
    *steps_left -= 1;
    let cur = *path.last().expect("non-empty path");
    let remaining = l - path.len(); // edges still to place (incl. closing edge)
    if remaining == 0 {
        return g.has_edge(cur, root);
    }
    for &next in g.neighbors(cur) {
        if next <= root || in_path[next.index()] {
            continue;
        }
        // Prune: after taking `next`, the cycle must return to `root`
        // along exactly `remaining` further edges (`remaining - 1` fresh
        // vertices plus the closing edge); the BFS distance is a lower
        // bound on that.
        if dist[next.index()] as usize > remaining {
            continue;
        }
        path.push(next);
        in_path[next.index()] = true;
        if dfs_extend(g, root, l, dist, path, in_path, steps_left) {
            return true;
        }
        in_path[next.index()] = false;
        path.pop();
    }
    false
}

/// Counts the cycles of length exactly `l` in `g` (each cycle counted
/// once, regardless of orientation or starting point).
///
/// Same search as [`find_cycle_exact`] but exhaustive: for each root `v`
/// (the cycle's minimum vertex) it enumerates all simple paths through
/// larger vertices, counting closures; each cycle is found exactly twice
/// (once per orientation), so the total is halved.
///
/// # Panics
///
/// Panics if `l < 3` or the step `budget` is exhausted.
pub fn count_cycles_exact(g: &Graph, l: usize, budget: Option<u64>) -> u64 {
    assert!(l >= 3, "cycles have length at least 3");
    let mut steps_left = budget.unwrap_or(u64::MAX);
    let mut in_path = vec![false; g.node_count()];
    let mut path: Vec<NodeId> = Vec::with_capacity(l);
    let mut closures = 0u64;
    for v in g.nodes() {
        if g.degree(v) < 2 {
            continue;
        }
        let dist = restricted_bounded_distances(g, v, (l - 1) as u32);
        path.push(v);
        in_path[v.index()] = true;
        count_extend(
            g,
            v,
            l,
            &dist,
            &mut path,
            &mut in_path,
            &mut steps_left,
            &mut closures,
        );
        in_path[v.index()] = false;
        path.clear();
    }
    debug_assert_eq!(closures % 2, 0, "each cycle closes twice");
    closures / 2
}

#[allow(clippy::too_many_arguments)]
fn count_extend(
    g: &Graph,
    root: NodeId,
    l: usize,
    dist: &[u32],
    path: &mut Vec<NodeId>,
    in_path: &mut [bool],
    steps_left: &mut u64,
    closures: &mut u64,
) {
    if *steps_left == 0 {
        panic!("count_cycles_exact: search budget exhausted");
    }
    *steps_left -= 1;
    let cur = *path.last().expect("non-empty path");
    let remaining = l - path.len();
    if remaining == 0 {
        if g.has_edge(cur, root) {
            *closures += 1;
        }
        return;
    }
    for &next in g.neighbors(cur) {
        if next <= root || in_path[next.index()] {
            continue;
        }
        if dist[next.index()] as usize > remaining {
            continue;
        }
        path.push(next);
        in_path[next.index()] = true;
        count_extend(g, root, l, dist, path, in_path, steps_left, closures);
        in_path[next.index()] = false;
        path.pop();
    }
}

/// The cycle spectrum of `g` up to `max_len`: `spectrum[l]` is the
/// number of cycles of length exactly `l` (indices 0–2 are always 0).
///
/// A compact instance fingerprint used by the experiments to verify
/// girth-controlled generators and gadget constructions in one shot.
///
/// # Panics
///
/// Panics if `max_len < 3` or the per-length step `budget` is exhausted.
pub fn cycle_spectrum(g: &Graph, max_len: usize, budget: Option<u64>) -> Vec<u64> {
    assert!(max_len >= 3, "spectrum starts at triangles");
    let mut spectrum = vec![0u64; max_len + 1];
    for (l, slot) in spectrum.iter_mut().enumerate().take(max_len + 1).skip(3) {
        *slot = count_cycles_exact(g, l, budget);
    }
    spectrum
}

/// Randomized color-coding search for a `C_ℓ` subgraph
/// (Alon–Yuster–Zwick): repeat `iterations` times — color every vertex
/// uniformly from `{0, …, ℓ-1}`, then look for a cycle colored
/// consecutively, by layered forward search from each 0-colored root.
///
/// One-sided: a returned witness is always a real cycle (and is verified
/// before returning); `None` only means "not found within the iteration
/// budget". An iteration finds an existing cycle with probability at
/// least `ℓ!/ℓ^ℓ ≥ e^{-ℓ}√ℓ`-ish, so `iterations = Θ(e^ℓ)` gives constant
/// success probability.
pub fn find_cycle_color_coding(
    g: &Graph,
    l: usize,
    iterations: usize,
    seed: u64,
) -> Option<CycleWitness> {
    assert!(l >= 3, "cycles have length at least 3");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.node_count();
    for _ in 0..iterations {
        let colors: Vec<u8> = (0..n).map(|_| rng.gen_range(0..l as u8)).collect();
        if let Some(w) = colored_cycle_search(g, l, &colors) {
            debug_assert!(w.is_valid(g));
            return Some(w);
        }
    }
    None
}

/// Finds a cycle `u_0, …, u_{ℓ-1}` with `color(u_i) = i`, if any.
fn colored_cycle_search(g: &Graph, l: usize, colors: &[u8]) -> Option<CycleWitness> {
    for root in g.nodes() {
        if colors[root.index()] != 0 {
            continue;
        }
        // parents[i][v] = predecessor of v on a path root -> v colored
        // 0, 1, ..., i (v has color i).
        let mut parents: Vec<Vec<Option<NodeId>>> = vec![vec![None; g.node_count()]; l];
        let mut frontier = vec![root];
        for (i, layer) in parents.iter_mut().enumerate().skip(1) {
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in g.neighbors(u) {
                    if colors[v.index()] == i as u8 && v != root && layer[v.index()].is_none() {
                        layer[v.index()] = Some(u);
                        next.push(v);
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        for &last in &frontier {
            if g.has_edge(last, root) {
                // Reconstruct; the parent chain has distinct colors so the
                // path is simple.
                let mut nodes = vec![last];
                let mut cur = last;
                for i in (1..l).rev() {
                    let p = parents[i][cur.index()].expect("parent chain");
                    nodes.push(p);
                    cur = p;
                }
                nodes.reverse();
                let w = CycleWitness::new(nodes);
                if w.is_valid(g) {
                    return Some(w);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn count_on_known_families() {
        // C_n: exactly one cycle.
        for n in 3..=9 {
            assert_eq!(count_cycles_exact(&generators::cycle(n), n, None), 1);
        }
        // K4: four triangles, three C4s.
        let k4 = generators::complete(4);
        assert_eq!(count_cycles_exact(&k4, 3, None), 4);
        assert_eq!(count_cycles_exact(&k4, 4, None), 3);
        // K_{2,3}: C4 count = C(3,2) = 3; no odd cycles.
        let k23 = generators::complete_bipartite(2, 3);
        assert_eq!(count_cycles_exact(&k23, 4, None), 3);
        assert_eq!(count_cycles_exact(&k23, 3, None), 0);
        assert_eq!(count_cycles_exact(&k23, 5, None), 0);
        // Θ(2,2): one C4 (two internally-disjoint 2-paths).
        assert_eq!(count_cycles_exact(&generators::theta(2, 2), 4, None), 1);
        // Trees: nothing.
        assert_eq!(
            count_cycles_exact(&generators::random_tree(20, 1), 4, None),
            0
        );
    }

    #[test]
    fn spectrum_of_known_graphs() {
        // Θ(2,3): exactly one C5, nothing else up to 6... plus the outer
        // cycle: Θ(a,b) has exactly the cycles of lengths a+b (one).
        let spec = cycle_spectrum(&generators::theta(2, 3), 6, None);
        assert_eq!(spec, vec![0, 0, 0, 0, 0, 1, 0]);
        // K4: 4 triangles, 3 C4s.
        let spec = cycle_spectrum(&generators::complete(4), 4, None);
        assert_eq!(spec[3], 4);
        assert_eq!(spec[4], 3);
        // The hypercube Q3: no odd cycles, 9 C4s (6 faces + 3 "diagonal"
        // 4-cycles? exact count: Q3 has 9 C4s... verify consistency
        // instead of hardcoding folklore:
        let spec = cycle_spectrum(&generators::hypercube(3), 6, None);
        assert_eq!(spec[3], 0);
        assert_eq!(spec[5], 0);
        assert!(spec[4] >= 6, "at least the 6 faces");
        assert!(spec[6] > 0);
    }

    #[test]
    fn count_consistent_with_find() {
        for seed in 0..6 {
            let g = generators::erdos_renyi(18, 0.2, seed);
            for l in [3usize, 4, 5] {
                let found = has_cycle_exact(&g, l, None);
                let count = count_cycles_exact(&g, l, None);
                assert_eq!(found, count > 0, "seed {seed}, l {l}");
            }
        }
    }

    #[test]
    fn exact_on_pure_cycles() {
        for n in 3..=10 {
            let g = generators::cycle(n);
            for l in 3..=10 {
                let found = find_cycle_exact(&g, l, None);
                assert_eq!(found.is_some(), l == n, "C{n} vs length {l}");
                if let Some(w) = found {
                    assert!(w.is_valid(&g));
                    assert_eq!(w.len(), l);
                }
            }
        }
    }

    #[test]
    fn exact_on_complete_graph() {
        let g = generators::complete(6);
        for l in 3..=6 {
            assert!(has_cycle_exact(&g, l, None), "K6 contains C{l}");
        }
        assert!(!has_cycle_exact(&g, 7, None));
    }

    #[test]
    fn exact_on_complete_bipartite() {
        let g = generators::complete_bipartite(3, 3);
        assert!(has_cycle_exact(&g, 4, None));
        assert!(has_cycle_exact(&g, 6, None));
        assert!(!has_cycle_exact(&g, 3, None));
        assert!(!has_cycle_exact(&g, 5, None));
    }

    #[test]
    fn exact_on_hypercube_even_only() {
        let g = generators::hypercube(3);
        assert!(has_cycle_exact(&g, 4, None));
        assert!(has_cycle_exact(&g, 6, None));
        assert!(has_cycle_exact(&g, 8, None));
        assert!(!has_cycle_exact(&g, 5, None));
        assert!(!has_cycle_exact(&g, 7, None));
    }

    #[test]
    fn exact_trees_have_no_cycles() {
        let g = generators::random_tree(30, 4);
        for l in 3..=8 {
            assert!(!has_cycle_exact(&g, l, None));
        }
    }

    #[test]
    fn contains_up_to_matches_girth() {
        let g = generators::theta(3, 5); // girth 8
        assert!(!contains_cycle_up_to(&g, 7));
        assert!(contains_cycle_up_to(&g, 8));
        assert!(contains_cycle_up_to(&g, 9));
    }

    #[test]
    #[should_panic(expected = "budget exhausted")]
    fn budget_exhaustion_panics() {
        let g = generators::complete(12);
        let _ = find_cycle_exact(&g, 12, Some(5));
    }

    #[test]
    fn color_coding_finds_planted() {
        let host = generators::random_tree(40, 9);
        let (g, _) = generators::plant_cycle(&host, 6, 1);
        let w = find_cycle_color_coding(&g, 6, 4000, 42);
        assert!(w.is_some(), "color coding should find the planted C6");
        assert!(w.unwrap().is_valid(&g));
    }

    #[test]
    fn color_coding_one_sided() {
        // On a C6-free graph, color coding must never "find" a C6.
        let g = generators::random_tree(40, 2);
        assert!(find_cycle_color_coding(&g, 6, 500, 7).is_none());
    }

    #[test]
    fn exact_agrees_with_color_coding_on_random_graphs() {
        for seed in 0..8 {
            let g = generators::erdos_renyi(24, 0.12, seed);
            let exact = has_cycle_exact(&g, 4, None);
            let cc = find_cycle_color_coding(&g, 4, 3000, seed ^ 0xABCD).is_some();
            if exact {
                // Color coding is one-sided; with this budget on 24 nodes,
                // a miss would be astronomically unlikely.
                assert!(cc, "color coding missed an existing C4 (seed {seed})");
            } else {
                assert!(!cc, "color coding fabricated a C4 (seed {seed})");
            }
        }
    }
}
