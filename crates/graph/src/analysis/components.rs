//! Connected components.

use std::collections::VecDeque;

use crate::{Graph, NodeId};

/// The connected-component structure of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    labels: Vec<u32>,
    count: usize,
}

impl Components {
    /// Number of connected components.
    pub fn component_count(&self) -> usize {
        self.count
    }

    /// The component label of `v` (labels are `0..component_count()`).
    pub fn label(&self, v: NodeId) -> u32 {
        self.labels[v.index()]
    }

    /// Whether `u` and `v` lie in the same component.
    pub fn same_component(&self, u: NodeId, v: NodeId) -> bool {
        self.labels[u.index()] == self.labels[v.index()]
    }

    /// The vertex sets of all components.
    pub fn members(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.count];
        for (i, &label) in self.labels.iter().enumerate() {
            out[label as usize].push(NodeId::new(i as u32));
        }
        out
    }
}

/// Computes connected components by repeated BFS.
pub fn connected_components(g: &Graph) -> Components {
    let n = g.node_count();
    let mut labels = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for start in g.nodes() {
        if labels[start.index()] != u32::MAX {
            continue;
        }
        labels[start.index()] = count;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if labels[v.index()] == u32::MAX {
                    labels[v.index()] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    Components {
        labels,
        count: count as usize,
    }
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    connected_components(g).component_count() <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn single_component() {
        let g = generators::cycle(5);
        let c = connected_components(&g);
        assert_eq!(c.component_count(), 1);
        assert!(is_connected(&g));
    }

    #[test]
    fn isolated_vertices() {
        let g = generators::empty(4);
        let c = connected_components(&g);
        assert_eq!(c.component_count(), 4);
        assert!(!c.same_component(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn union_components() {
        let g = generators::disjoint_union(&generators::cycle(3), &generators::path(4));
        let c = connected_components(&g);
        assert_eq!(c.component_count(), 2);
        let members = c.members();
        assert_eq!(members[0].len() + members[1].len(), 7);
        assert!(c.same_component(NodeId::new(0), NodeId::new(2)));
        assert!(!c.same_component(NodeId::new(0), NodeId::new(5)));
    }

    #[test]
    fn empty_graph_connected() {
        assert!(is_connected(&generators::empty(0)));
        assert!(is_connected(&generators::empty(1)));
        assert!(!is_connected(&generators::empty(2)));
    }
}
