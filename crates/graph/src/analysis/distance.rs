//! BFS distances, eccentricity, diameter.

use std::collections::VecDeque;

use crate::{Graph, NodeId};

/// Marker for "unreachable" in distance vectors.
pub(crate) const UNREACHABLE: u32 = u32::MAX;

/// BFS distances from `source`; unreachable vertices get `None`.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<Option<u32>> {
    bfs_distances_bounded(g, source, u32::MAX)
}

/// BFS distances from `source`, exploring only up to distance `bound`;
/// vertices farther than `bound` (or unreachable) get `None`.
pub fn bfs_distances_bounded(g: &Graph, source: NodeId, bound: u32) -> Vec<Option<u32>> {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        if du >= bound {
            continue;
        }
        for &v in g.neighbors(u) {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist.into_iter()
        .map(|d| if d == UNREACHABLE { None } else { Some(d) })
        .collect()
}

/// Eccentricity of `v`: the maximum distance from `v` to any reachable
/// vertex. Returns `None` for a graph with unreachable vertices only if
/// `v` itself is isolated in a larger graph — the eccentricity is taken
/// over the reachable set.
pub fn eccentricity(g: &Graph, v: NodeId) -> u32 {
    bfs_distances(g, v).into_iter().flatten().max().unwrap_or(0)
}

/// Exact diameter: the maximum eccentricity over all vertices, or `None`
/// if the graph is disconnected (or empty).
///
/// `O(n·m)`; intended for the simulation scales of this workspace.
pub fn diameter(g: &Graph) -> Option<u32> {
    let n = g.node_count();
    if n == 0 {
        return None;
    }
    let mut best = 0;
    for v in g.nodes() {
        let d = bfs_distances(g, v);
        if d.iter().any(Option::is_none) {
            return None; // disconnected
        }
        best = best.max(d.into_iter().flatten().max().unwrap_or(0));
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn distances_on_path() {
        let g = generators::path(5);
        let d = bfs_distances(&g, NodeId::new(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn bounded_distances_cut_off() {
        let g = generators::path(5);
        let d = bfs_distances_bounded(&g, NodeId::new(0), 2);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), None, None]);
    }

    #[test]
    fn diameter_of_cycle() {
        assert_eq!(diameter(&generators::cycle(8)), Some(4));
        assert_eq!(diameter(&generators::cycle(9)), Some(4));
    }

    #[test]
    fn diameter_disconnected_is_none() {
        let g = generators::empty(3);
        assert_eq!(diameter(&g), None);
    }

    #[test]
    fn diameter_single_vertex() {
        assert_eq!(diameter(&generators::empty(1)), Some(0));
        assert_eq!(diameter(&generators::empty(0)), None);
    }

    #[test]
    fn eccentricity_path_ends() {
        let g = generators::path(6);
        assert_eq!(eccentricity(&g, NodeId::new(0)), 5);
        assert_eq!(eccentricity(&g, NodeId::new(2)), 3);
    }

    #[test]
    fn unreachable_distance_none() {
        let g = generators::empty(4);
        let d = bfs_distances(&g, NodeId::new(1));
        assert_eq!(d, vec![None, Some(0), None, None]);
    }
}
