//! Bipartiteness testing.

use std::collections::VecDeque;

use crate::Graph;

/// A proper 2-coloring of `g` if one exists (`g` bipartite), else `None`.
pub fn bipartition(g: &Graph) -> Option<Vec<u8>> {
    let n = g.node_count();
    let mut side = vec![u8::MAX; n];
    let mut queue = VecDeque::new();
    for start in g.nodes() {
        if side[start.index()] != u8::MAX {
            continue;
        }
        side[start.index()] = 0;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if side[v.index()] == u8::MAX {
                    side[v.index()] = 1 - side[u.index()];
                    queue.push_back(v);
                } else if side[v.index()] == side[u.index()] {
                    return None;
                }
            }
        }
    }
    Some(side)
}

/// Whether `g` contains no odd cycle.
pub fn is_bipartite(g: &Graph) -> bool {
    bipartition(g).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn even_cycles_bipartite_odd_not() {
        assert!(is_bipartite(&generators::cycle(4)));
        assert!(is_bipartite(&generators::cycle(10)));
        assert!(!is_bipartite(&generators::cycle(5)));
        assert!(!is_bipartite(&generators::cycle(9)));
    }

    #[test]
    fn trees_bipartite() {
        assert!(is_bipartite(&generators::random_tree(25, 3)));
        assert!(is_bipartite(&generators::path(8)));
        assert!(is_bipartite(&generators::empty(4)));
    }

    #[test]
    fn partition_is_proper() {
        let g = generators::grid(3, 5);
        let side = bipartition(&g).expect("grid is bipartite");
        for (u, v) in g.edges() {
            assert_ne!(side[u.index()], side[v.index()]);
        }
    }

    #[test]
    fn complete_graph_not_bipartite() {
        assert!(!is_bipartite(&generators::complete(3)));
    }
}
