//! Exact combinatorial analysis used as ground truth for the distributed
//! detectors.
//!
//! Nothing in this module is distributed — these are the centralized
//! oracles the experiments compare against: BFS distances and diameter,
//! connectivity, exact girth, exact fixed-length-cycle containment (the
//! property `C_ℓ ⊆ G` the CONGEST algorithms decide), color-coding search,
//! degeneracy, and bipartiteness.

mod bipartite;
mod components;
mod cycles;
mod degeneracy;
mod distance;
mod girth;

pub use bipartite::{bipartition, is_bipartite};
pub use components::{connected_components, is_connected, Components};
pub use cycles::{
    contains_cycle_up_to, count_cycles_exact, cycle_spectrum, find_cycle_color_coding,
    find_cycle_exact, has_cycle_exact,
};
pub use degeneracy::{degeneracy, degeneracy_ordering};
pub use distance::{bfs_distances, bfs_distances_bounded, diameter, eccentricity};
pub use girth::girth;
