//! Exact girth computation.

use std::collections::VecDeque;

use crate::Graph;

/// The exact girth of `g` (length of its shortest cycle), or `None` for a
/// forest.
///
/// Runs one BFS per vertex (`O(n·m)`): for the BFS rooted at a vertex of a
/// shortest cycle, the non-tree edge "opposite" the root closes the cycle
/// at exactly the girth; every other candidate only ever certifies a cycle
/// at least as short as the walk it closes, so the minimum over all roots
/// and edges is exact.
pub fn girth(g: &Graph) -> Option<usize> {
    let n = g.node_count();
    if n == 0 {
        return None;
    }
    let mut best: Option<usize> = None;
    let mut dist = vec![u32::MAX; n];
    let mut parent = vec![u32::MAX; n];
    let mut touched: Vec<usize> = Vec::new();
    for root in g.nodes() {
        for &t in &touched {
            dist[t] = u32::MAX;
            parent[t] = u32::MAX;
        }
        touched.clear();
        let depth_cap = best.map_or(u32::MAX, |b| (b as u32).div_ceil(2));
        let mut queue = VecDeque::new();
        dist[root.index()] = 0;
        touched.push(root.index());
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()];
            if du >= depth_cap {
                continue;
            }
            for &v in g.neighbors(u) {
                if dist[v.index()] == u32::MAX {
                    dist[v.index()] = du + 1;
                    parent[v.index()] = u.raw();
                    touched.push(v.index());
                    queue.push_back(v);
                } else if parent[u.index()] != v.raw() && parent[v.index()] != u.raw() {
                    // Non-tree edge: closes a walk of length
                    // dist[u] + dist[v] + 1, which contains a cycle at
                    // most that long.
                    let cand = (du + dist[v.index()] + 1) as usize;
                    if best.is_none_or(|b| cand < b) {
                        best = Some(cand);
                    }
                }
            }
        }
        if best == Some(3) {
            break; // cannot improve
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::Graph;

    #[test]
    fn girth_of_cycles() {
        for n in 3..=12 {
            assert_eq!(girth(&generators::cycle(n)), Some(n));
        }
    }

    #[test]
    fn girth_of_forest_none() {
        assert_eq!(girth(&generators::path(10)), None);
        assert_eq!(girth(&generators::star(6)), None);
        assert_eq!(girth(&generators::empty(5)), None);
        assert_eq!(girth(&generators::empty(0)), None);
    }

    #[test]
    fn girth_of_complete() {
        assert_eq!(girth(&generators::complete(5)), Some(3));
    }

    #[test]
    fn girth_of_bipartite_families() {
        assert_eq!(girth(&generators::complete_bipartite(3, 3)), Some(4));
        assert_eq!(girth(&generators::grid(4, 4)), Some(4));
        assert_eq!(girth(&generators::hypercube(3)), Some(4));
    }

    #[test]
    fn girth_theta_graphs() {
        assert_eq!(girth(&generators::theta(2, 5)), Some(7));
        assert_eq!(girth(&generators::theta(4, 4)), Some(8));
        assert_eq!(girth(&generators::theta(1, 5)), Some(6));
    }

    #[test]
    fn girth_cycle_with_one_chord() {
        // C8 with chord 0-4 creates two 5-cycles.
        let g = Graph::from_edges(
            8,
            [
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 0),
                (0, 4),
            ],
        )
        .unwrap();
        assert_eq!(girth(&g), Some(5));
    }

    #[test]
    fn girth_petersen() {
        // The Petersen graph has girth 5.
        let outer: Vec<(u32, u32)> = (0..5).map(|i| (i, (i + 1) % 5)).collect();
        let spokes: Vec<(u32, u32)> = (0..5).map(|i| (i, i + 5)).collect();
        let inner: Vec<(u32, u32)> = (0..5).map(|i| (5 + i, 5 + (i + 2) % 5)).collect();
        let edges: Vec<(u32, u32)> = outer.into_iter().chain(spokes).chain(inner).collect();
        let g = Graph::from_edges(10, edges).unwrap();
        assert_eq!(girth(&g), Some(5));
    }
}
