//! Planted-cycle instances for detection experiments.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{CycleWitness, Graph, GraphBuilder, NodeId};

/// Plants a cycle `C_ℓ` on `ℓ` uniformly random vertices of `host`,
/// returning the new graph and the planted cycle as a witness.
///
/// The cycle's edges are added on top of the host's; planted instances are
/// the standard "yes" inputs of the detection experiments (the host is
/// typically `C_{2k}`-free by construction or by filtering).
///
/// # Panics
///
/// Panics if `host.node_count() < ℓ` or `ℓ < 3`.
pub fn plant_cycle(host: &Graph, l: usize, seed: u64) -> (Graph, CycleWitness) {
    assert!(l >= 3, "cycle length must be at least 3");
    assert!(host.node_count() >= l, "host too small for planted cycle");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<u32> = (0..host.node_count() as u32).collect();
    ids.shuffle(&mut rng);
    let chosen: Vec<NodeId> = ids[..l].iter().copied().map(NodeId::new).collect();
    let mut b = GraphBuilder::new(host.node_count());
    for (u, v) in host.edges() {
        b.add_edge(u, v);
    }
    for i in 0..l {
        b.add_edge(chosen[i], chosen[(i + 1) % l]);
    }
    (b.build(), CycleWitness::new(chosen))
}

/// Plants a `2k`-cycle through a designated high-degree hub: vertex 0 gets
/// `hub_degree` pendant neighbors plus a cycle of length `l` through it.
///
/// This produces "heavy cycle" instances — cycles through a node of degree
/// `> n^{1/k}` — the case Algorithm 1's third `color-BFS` exists for.
pub fn plant_cycle_on_heavy_hub(
    host: &Graph,
    l: usize,
    hub_degree: usize,
    seed: u64,
) -> (Graph, CycleWitness) {
    assert!(l >= 3, "cycle length must be at least 3");
    assert!(host.node_count() >= l, "host too small for planted cycle");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<u32> = (1..host.node_count() as u32).collect();
    ids.shuffle(&mut rng);
    let mut chosen: Vec<NodeId> = vec![NodeId::new(0)];
    chosen.extend(ids[..l - 1].iter().copied().map(NodeId::new));

    let mut b = GraphBuilder::new(host.node_count());
    for (u, v) in host.edges() {
        b.add_edge(u, v);
    }
    for i in 0..l {
        b.add_edge(chosen[i], chosen[(i + 1) % l]);
    }
    // Pendant leaves to pump up the hub degree.
    let first_leaf = b.add_nodes(hub_degree);
    for i in 0..hub_degree {
        b.add_edge(NodeId::new(0), NodeId::new(first_leaf.raw() + i as u32));
    }
    (b.build(), CycleWitness::new(chosen))
}

/// Plants `copies` vertex-disjoint cycles `C_ℓ` on uniformly random
/// vertices of `host`, returning the new graph and one witness per
/// planted copy.
///
/// Multi-copy instances are the regime where detection cost provably
/// depends on the *number* of copies (Censor-Hillel–Even–Vassilevska
/// Williams): a single-planted family cannot distinguish algorithms
/// that exploit copy multiplicity from those that cannot.
///
/// # Panics
///
/// Panics if `copies == 0`, `ℓ < 3`, or `host.node_count() < copies·ℓ`.
pub fn plant_disjoint_cycles(
    host: &Graph,
    copies: usize,
    l: usize,
    seed: u64,
) -> (Graph, Vec<CycleWitness>) {
    assert!(copies >= 1, "need at least one copy");
    assert!(l >= 3, "cycle length must be at least 3");
    assert!(
        host.node_count() >= copies * l,
        "host too small for {copies} disjoint C{l}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<u32> = (0..host.node_count() as u32).collect();
    ids.shuffle(&mut rng);
    let mut b = GraphBuilder::new(host.node_count());
    for (u, v) in host.edges() {
        b.add_edge(u, v);
    }
    let mut witnesses = Vec::with_capacity(copies);
    for c in 0..copies {
        let chosen: Vec<NodeId> = ids[c * l..(c + 1) * l]
            .iter()
            .copied()
            .map(NodeId::new)
            .collect();
        for i in 0..l {
            b.add_edge(chosen[i], chosen[(i + 1) % l]);
        }
        witnesses.push(CycleWitness::new(chosen));
    }
    (b.build(), witnesses)
}

/// A planted cycle buried in noise: one `C_ℓ` planted on a random-tree
/// host, plus independent Erdős–Rényi edges at rate `p` (each of the
/// `n(n-1)/2` pairs, independently). At `p = 0` this is the standard
/// planted family; growing `p` drowns the signal in incidental cycles
/// of many lengths — the robustness regime clean planted instances
/// never probe.
///
/// # Panics
///
/// Panics if `ℓ < 3`, `n < ℓ + 1`, or `p ∉ [0, 1]`.
pub fn noisy_planted(n: usize, l: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let host = crate::generators::random_tree(n, seed);
    let (planted, _) = plant_cycle(&host, l, seed);
    if p == 0.0 {
        return planted;
    }
    // Overlay ER noise (independent seed stream); the builder merges
    // any noise edge that duplicates a host or cycle edge.
    let noise = crate::generators::erdos_renyi(n, p, seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut b = GraphBuilder::new(n);
    for (u, v) in planted.edges() {
        b.add_edge(u, v);
    }
    for (u, v) in noise.edges() {
        b.add_edge(u, v);
    }
    b.build()
}

/// A cycle `C_n` with `chords` random chords added — a cheap family whose
/// members contain many cycles of many lengths, for stress tests.
pub fn cycle_with_chords(n: usize, chords: usize, seed: u64) -> Graph {
    assert!(n >= 3, "cycle length must be at least 3");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 0..n as u32 {
        b.add_edge(NodeId::new(v), NodeId::new((v + 1) % n as u32));
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < chords && attempts < chords * 20 + 100 {
        attempts += 1;
        let u = rand::Rng::gen_range(&mut rng, 0..n as u32);
        let v = rand::Rng::gen_range(&mut rng, 0..n as u32);
        if u == v || (u as i64 - v as i64).rem_euclid(n as i64) <= 1 {
            continue;
        }
        b.add_edge(NodeId::new(u), NodeId::new(v));
        added += 1;
    }
    b.build()
}

/// A congestion "funnel": `branches` parallel gadgets, each consisting of
/// a large source set fully joined to the first vertex of a path of
/// `chain` vertices. With all sources launching a colored BFS, the edge
/// from a funnel's head to its chain must carry one identifier per
/// (0-colored, selected) source — the worst case a global threshold
/// `τ = Θ(n·p)` is sized for, realized with only `O(n)` edges.
///
/// Layout: sources first (grouped by branch), then the `branches × chain`
/// path vertices.
///
/// # Panics
///
/// Panics if `branches == 0`, `chain == 0`, or `n` is too small to give
/// each branch at least one source.
pub fn funnel(n: usize, branches: usize, chain: usize) -> Graph {
    assert!(branches > 0 && chain > 0, "need branches and a chain");
    let overhead = branches * chain;
    assert!(
        n > overhead,
        "n too small for {branches} branches of {chain}"
    );
    let sources = n - overhead;
    let per_branch = sources / branches;
    assert!(per_branch > 0, "each branch needs a source");
    let mut b = GraphBuilder::new(n);
    for br in 0..branches {
        let head = NodeId::new((sources + br * chain) as u32);
        let lo = br * per_branch;
        let hi = if br + 1 == branches {
            sources
        } else {
            lo + per_branch
        };
        for s in lo..hi {
            b.add_edge(NodeId::new(s as u32), head);
        }
        for c in 1..chain {
            b.add_edge(
                NodeId::new((sources + br * chain + c - 1) as u32),
                NodeId::new((sources + br * chain + c) as u32),
            );
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::generators;

    #[test]
    fn funnel_shape() {
        let g = funnel(100, 4, 3);
        assert_eq!(g.node_count(), 100);
        // 88 sources + 4 chains of 3; heads have degree 22 + 1.
        let head = NodeId::new(88);
        assert_eq!(g.degree(head), 23);
        assert_eq!(analysis::girth(&g), None, "funnels are forests");
        assert_eq!(
            analysis::connected_components(&g).component_count(),
            4,
            "one component per branch"
        );
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn funnel_needs_room() {
        funnel(5, 3, 2);
    }

    #[test]
    fn planted_cycle_is_valid_witness() {
        let host = generators::random_tree(40, 3);
        for seed in 0..5 {
            let (g, w) = plant_cycle(&host, 6, seed);
            assert!(w.is_valid(&g), "{w:?} invalid");
            assert_eq!(w.len(), 6);
            assert!(analysis::find_cycle_exact(&g, 6, None).is_some());
        }
    }

    #[test]
    fn planted_cycle_preserves_host_edges() {
        let host = generators::path(20);
        let (g, _) = plant_cycle(&host, 4, 1);
        for (u, v) in host.edges() {
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn disjoint_copies_are_disjoint_and_certified() {
        let host = generators::random_tree(60, 3);
        let (g, witnesses) = plant_disjoint_cycles(&host, 3, 6, 11);
        assert_eq!(witnesses.len(), 3);
        let mut seen = std::collections::HashSet::new();
        for w in &witnesses {
            assert!(w.is_valid(&g), "{w:?} invalid");
            assert_eq!(w.len(), 6);
            for v in w.nodes() {
                assert!(seen.insert(*v), "copies must be vertex-disjoint");
            }
        }
        assert!(analysis::find_cycle_exact(&g, 6, None).is_some());
        // Determinism.
        assert_eq!(g, plant_disjoint_cycles(&host, 3, 6, 11).0);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn disjoint_copies_need_room() {
        let host = generators::random_tree(10, 1);
        let _ = plant_disjoint_cycles(&host, 3, 4, 1);
    }

    #[test]
    fn noisy_planted_keeps_the_signal() {
        // p = 0 is exactly the clean planted family.
        let clean = noisy_planted(48, 4, 0.0, 7);
        let host = generators::random_tree(48, 7);
        assert_eq!(clean, plant_cycle(&host, 4, 7).0);
        // Noise only adds edges, and the planted C4 stays present.
        let noisy = noisy_planted(48, 4, 0.05, 7);
        assert!(noisy.edge_count() >= clean.edge_count());
        for (u, v) in clean.edges() {
            assert!(noisy.has_edge(u, v), "noise must not remove edges");
        }
        assert!(analysis::find_cycle_exact(&noisy, 4, None).is_some());
        assert_eq!(noisy, noisy_planted(48, 4, 0.05, 7), "deterministic");
    }

    #[test]
    fn heavy_hub_instance() {
        let host = generators::empty(10);
        let (g, w) = plant_cycle_on_heavy_hub(&host, 6, 30, 2);
        assert!(w.is_valid(&g));
        assert!(w.nodes().contains(&NodeId::new(0)));
        assert!(g.degree(NodeId::new(0)) >= 30);
        assert_eq!(g.node_count(), 40);
    }

    #[test]
    fn chords_added() {
        let g = cycle_with_chords(20, 5, 7);
        assert_eq!(g.node_count(), 20);
        assert!(g.edge_count() >= 24, "expected most chords to land");
    }
}
