//! Graph composition operators for the two-party reductions.

use crate::{Graph, GraphBuilder, NodeId};

/// The disjoint union of `a` and `b`; vertices of `b` are shifted by
/// `a.node_count()`.
pub fn disjoint_union(a: &Graph, b: &Graph) -> Graph {
    let shift = a.node_count() as u32;
    let mut builder = GraphBuilder::new(a.node_count() + b.node_count());
    for (u, v) in a.edges() {
        builder.add_edge(u, v);
    }
    for (u, v) in b.edges() {
        builder.add_edge(NodeId::new(u.raw() + shift), NodeId::new(v.raw() + shift));
    }
    builder.build()
}

/// Joins two copies of graphs by a perfect matching between listed ports:
/// the result is `a ⊔ b` plus the edges `{ports_a[i], ports_b[i] + |a|}`.
///
/// This is the Alice/Bob composition of the Set-Disjointness reductions
/// (paper §3.3): Alice's subgraph `G_A`, Bob's subgraph `G_B`, connected
/// by a perfect matching across the communication cut.
///
/// # Panics
///
/// Panics if the port lists have different lengths or contain out-of-range
/// vertices.
pub fn join_with_matching(a: &Graph, b: &Graph, ports_a: &[NodeId], ports_b: &[NodeId]) -> Graph {
    assert_eq!(
        ports_a.len(),
        ports_b.len(),
        "matching requires equal port counts"
    );
    let shift = a.node_count() as u32;
    let mut builder = GraphBuilder::new(a.node_count() + b.node_count());
    for (u, v) in a.edges() {
        builder.add_edge(u, v);
    }
    for (u, v) in b.edges() {
        builder.add_edge(NodeId::new(u.raw() + shift), NodeId::new(v.raw() + shift));
    }
    for (&pa, &pb) in ports_a.iter().zip(ports_b) {
        assert!(pa.index() < a.node_count(), "port out of range in a");
        assert!(pb.index() < b.node_count(), "port out of range in b");
        builder.add_edge(pa, NodeId::new(pb.raw() + shift));
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::generators;

    #[test]
    fn disjoint_union_counts() {
        let a = generators::cycle(4);
        let b = generators::path(3);
        let g = disjoint_union(&a, &b);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 4 + 2);
        assert!(!analysis::is_connected(&g));
        assert_eq!(analysis::connected_components(&g).component_count(), 2);
    }

    #[test]
    fn matching_join_connects() {
        let a = generators::path(3);
        let b = generators::path(3);
        let g = join_with_matching(
            &a,
            &b,
            &[NodeId::new(0), NodeId::new(2)],
            &[NodeId::new(0), NodeId::new(2)],
        );
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 2 + 2 + 2);
        assert!(analysis::is_connected(&g));
        // P3 + P3 joined at both ends = C6... plus interior: actually the
        // two paths with a matching at both ends form a 6-cycle.
        assert!(analysis::find_cycle_exact(&g, 6, None).is_some());
    }

    #[test]
    #[should_panic(expected = "equal port counts")]
    fn mismatched_ports_panic() {
        let a = generators::path(2);
        let b = generators::path(2);
        join_with_matching(&a, &b, &[NodeId::new(0)], &[]);
    }
}
