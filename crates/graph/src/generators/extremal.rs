//! Extremal graphs: dense `C4`-free polarity graphs over projective planes.
//!
//! The Drucker–Kuhn–Oshman lower bound for `C4`-freeness (paper §3.3.1)
//! needs a gadget graph with `N = Θ(n^{3/2})` edges that is itself
//! `C4`-free. The classical extremal object with this property is the
//! *Erdős–Rényi polarity graph* `ER_q`: vertices are the points of the
//! projective plane `PG(2, q)` over `GF(q)` (`q` prime here), with `x ~ y`
//! iff `x · y = 0 (mod q)`. It has `q² + q + 1` vertices, roughly
//! `½ q(q+1)²` edges, and contains no `C4` — two distinct points lie on a
//! unique line, so two vertices have at most one common neighbor.

use crate::{Graph, GraphBuilder, NodeId};

/// Whether `q` is prime (deterministic trial division; fine for the sizes
/// used by the gadgets, `q ≤ ~10^4`).
pub fn is_prime(q: u64) -> bool {
    if q < 2 {
        return false;
    }
    if q.is_multiple_of(2) {
        return q == 2;
    }
    let mut d = 3;
    while d * d <= q {
        if q.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// The smallest prime `≥ q`.
///
/// # Panics
///
/// Panics if no prime fits in `u64` above `q` (practically unreachable).
pub fn smallest_prime_at_least(q: u64) -> u64 {
    let mut c = q.max(2);
    loop {
        if is_prime(c) {
            return c;
        }
        c = c.checked_add(1).expect("prime search overflow");
    }
}

/// Canonical projective representatives of `PG(2, q)`: each 1-dimensional
/// subspace of `GF(q)³` is represented by its unique vector whose first
/// nonzero coordinate is 1.
fn projective_points(q: u64) -> Vec<[u64; 3]> {
    let mut pts = Vec::with_capacity((q * q + q + 1) as usize);
    // (1, y, z)
    for y in 0..q {
        for z in 0..q {
            pts.push([1, y, z]);
        }
    }
    // (0, 1, z)
    for z in 0..q {
        pts.push([0, 1, z]);
    }
    // (0, 0, 1)
    pts.push([0, 0, 1]);
    pts
}

fn dot3(a: &[u64; 3], b: &[u64; 3], q: u64) -> u64 {
    (a[0] * b[0] + a[1] * b[1] + a[2] * b[2]) % q
}

/// The Erdős–Rényi polarity graph `ER_q` for prime `q`.
///
/// * `q² + q + 1` vertices,
/// * `½(q+1)(q² + q + 1) - O(q)` edges (self-orthogonal points lose their
///   loop),
/// * girth ≥ 5 apart from triangles — in particular **no `C4`**.
///
/// # Panics
///
/// Panics if `q` is not prime.
///
/// ```
/// use congest_graph::generators::polarity_graph;
/// let g = polarity_graph(5);
/// assert_eq!(g.node_count(), 31); // 5² + 5 + 1
/// ```
pub fn polarity_graph(q: u64) -> Graph {
    assert!(is_prime(q), "polarity graph requires prime q, got {q}");
    let pts = projective_points(q);
    let n = pts.len();
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if dot3(&pts[i], &pts[j], q) == 0 {
                b.add_edge(NodeId::new(i as u32), NodeId::new(j as u32));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn primality() {
        let primes = [2u64, 3, 5, 7, 11, 13, 101];
        let composites = [0u64, 1, 4, 9, 15, 100];
        for p in primes {
            assert!(is_prime(p), "{p} is prime");
        }
        for c in composites {
            assert!(!is_prime(c), "{c} is composite");
        }
    }

    #[test]
    fn next_prime() {
        assert_eq!(smallest_prime_at_least(0), 2);
        assert_eq!(smallest_prime_at_least(8), 11);
        assert_eq!(smallest_prime_at_least(11), 11);
        assert_eq!(smallest_prime_at_least(90), 97);
    }

    #[test]
    fn projective_point_count() {
        for q in [2u64, 3, 5, 7] {
            assert_eq!(projective_points(q).len() as u64, q * q + q + 1);
        }
    }

    #[test]
    fn polarity_graph_is_c4_free() {
        for q in [3u64, 5, 7] {
            let g = polarity_graph(q);
            assert_eq!(g.node_count() as u64, q * q + q + 1);
            assert!(
                analysis::find_cycle_exact(&g, 4, None).is_none(),
                "ER_{q} must be C4-free"
            );
        }
    }

    #[test]
    fn polarity_graph_is_dense() {
        // m = ½(q+1)(q²+q+1) - (#self-orthogonal points)·(q+1)/2-ish;
        // check the Θ(q³) scaling concretely.
        let q = 7u64;
        let g = polarity_graph(q);
        let m = g.edge_count() as u64;
        assert!(
            m >= q * q * q / 4,
            "ER_{q} too sparse: {m} edges vs q³/4 = {}",
            q * q * q / 4
        );
    }

    #[test]
    fn polarity_graph_common_neighbors_at_most_one() {
        // The defining property behind C4-freeness: any two vertices have
        // at most one common neighbor.
        let g = polarity_graph(5);
        let n = g.node_count();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                let nu = g.neighbors(NodeId::new(u));
                let nv = g.neighbors(NodeId::new(v));
                let common = nu.iter().filter(|x| nv.contains(x)).count();
                assert!(common <= 1, "vertices {u},{v} share {common} neighbors");
            }
        }
    }
}
