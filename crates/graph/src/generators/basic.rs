//! Deterministic graph families.

use crate::{Graph, GraphBuilder, NodeId};

/// The empty graph on `n` vertices.
pub fn empty(n: usize) -> Graph {
    Graph::empty(n)
}

/// The path `P_n` on `n` vertices (`n - 1` edges).
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n as u32 {
        b.add_edge(NodeId::new(v - 1), NodeId::new(v));
    }
    b.build()
}

/// The cycle `C_n` on `n ≥ 3` vertices.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut b = GraphBuilder::new(n);
    for v in 0..n as u32 {
        b.add_edge(NodeId::new(v), NodeId::new((v + 1) % n as u32));
    }
    b.build()
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            b.add_edge(NodeId::new(u), NodeId::new(v));
        }
    }
    b.build()
}

/// The complete bipartite graph `K_{a,b}` (parts `0..a` and `a..a+b`).
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut builder = GraphBuilder::new(a + b);
    for u in 0..a as u32 {
        for v in 0..b as u32 {
            builder.add_edge(NodeId::new(u), NodeId::new(a as u32 + v));
        }
    }
    builder.build()
}

/// The star `K_{1,n-1}` with center 0.
pub fn star(n: usize) -> Graph {
    assert!(n >= 1, "a star needs at least 1 vertex");
    let mut b = GraphBuilder::new(n);
    for v in 1..n as u32 {
        b.add_edge(NodeId::new(0), NodeId::new(v));
    }
    b.build()
}

/// The `rows × cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let id = |r: usize, c: usize| NodeId::new((r * cols + c) as u32);
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

/// The `rows × cols` torus: the grid graph with wrap-around edges in
/// both dimensions, so every vertex has degree exactly 4 (for
/// `rows, cols ≥ 3`). Tori are vertex-transitive, girth-4 (C4 at every
/// vertex), and bipartite iff both dimensions are even — the bounded-
/// degree, high-diameter regime broadcast-CONGEST lower bounds stress.
///
/// # Panics
///
/// Panics if either dimension is below 3 (smaller wrap-arounds create
/// multi-edges, which the simple-graph builder would silently merge).
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(
        rows >= 3 && cols >= 3,
        "torus dimensions must be at least 3"
    );
    let id = |r: usize, c: usize| NodeId::new((r * cols + c) as u32);
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(id(r, c), id(r, (c + 1) % cols));
            b.add_edge(id(r, c), id((r + 1) % rows, c));
        }
    }
    b.build()
}

/// The `d`-dimensional hypercube `Q_d` on `2^d` vertices.
///
/// # Panics
///
/// Panics if `d > 20` (guard against accidental huge allocations).
pub fn hypercube(d: usize) -> Graph {
    assert!(d <= 20, "hypercube dimension too large");
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if u > v {
                b.add_edge(NodeId::new(v as u32), NodeId::new(u as u32));
            }
        }
    }
    b.build()
}

/// The theta graph `Θ(a, b)`: two vertices joined by two internally
/// disjoint paths of lengths `a` and `b` — the minimal graph containing a
/// cycle of length exactly `a + b` and nothing else.
///
/// # Panics
///
/// Panics unless `a >= 1`, `b >= 2` (simple graph) or both at least 2.
pub fn theta(a: usize, b: usize) -> Graph {
    assert!(a >= 2 || b >= 2, "two length-1 paths would be a multi-edge");
    assert!(a >= 1 && b >= 1 && a + b >= 3, "theta paths too short");
    let mut builder = GraphBuilder::new(2);
    let (s, t) = (NodeId::new(0), NodeId::new(1));
    builder.add_path(s, t, a);
    builder.add_path(s, t, b);
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn path_counts() {
        let g = path(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn path_trivial() {
        assert_eq!(path(0).node_count(), 0);
        assert_eq!(path(1).edge_count(), 0);
    }

    #[test]
    fn cycle_counts_and_girth() {
        for n in 3..10 {
            let g = cycle(n);
            assert_eq!(g.node_count(), n);
            assert_eq!(g.edge_count(), n);
            assert_eq!(analysis::girth(&g), Some(n));
        }
    }

    #[test]
    fn complete_edge_count() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn complete_bipartite_structure() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 12);
        assert!(analysis::is_bipartite(&g));
        assert_eq!(analysis::girth(&g), Some(4));
    }

    #[test]
    fn star_has_no_cycle() {
        let g = star(8);
        assert_eq!(g.edge_count(), 7);
        assert_eq!(analysis::girth(&g), None);
    }

    #[test]
    fn grid_girth_four() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        assert_eq!(analysis::girth(&g), Some(4));
    }

    #[test]
    fn torus_is_four_regular_with_girth_four() {
        let g = torus(4, 5);
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 40);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
        assert_eq!(analysis::girth(&g), Some(4));
        // Odd × anything is non-bipartite (an odd wrap-around cycle).
        assert!(!analysis::is_bipartite(&torus(3, 4)));
        assert!(analysis::is_bipartite(&torus(4, 4)));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn torus_rejects_degenerate_dimensions() {
        torus(2, 5);
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(4);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 32);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(analysis::girth(&g), Some(4));
        assert!(analysis::is_bipartite(&g));
    }

    #[test]
    fn theta_contains_exactly_three_cycles() {
        // Θ(2,3) = C5; Θ(2,4) contains C6 only; Θ(3,3) contains C6 only.
        let g = theta(2, 3);
        assert_eq!(analysis::girth(&g), Some(5));
        let g = theta(3, 3);
        assert_eq!(analysis::girth(&g), Some(6));
        assert!(analysis::find_cycle_exact(&g, 6, None).is_some());
        assert!(analysis::find_cycle_exact(&g, 4, None).is_none());
    }

    #[test]
    #[should_panic(expected = "multi-edge")]
    fn theta_rejects_double_edge() {
        theta(1, 1);
    }
}
