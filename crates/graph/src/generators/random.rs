//! Seedable random graph families.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{Graph, GraphBuilder, NodeId};

fn rng_from(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Erdős–Rényi `G(n, p)`: each of the `n(n-1)/2` possible edges is present
/// independently with probability `p`.
///
/// Uses geometric skipping, so the cost is `O(n + m)` rather than `O(n²)`
/// for sparse `p`.
///
/// # Panics
///
/// Panics unless `0 ≤ p ≤ 1`.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut b = GraphBuilder::new(n);
    if p == 0.0 || n < 2 {
        return b.build();
    }
    let mut rng = rng_from(seed);
    if p >= 1.0 {
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                b.add_edge(NodeId::new(u), NodeId::new(v));
            }
        }
        return b.build();
    }
    // Enumerate pairs (u, v), u < v, in lexicographic order, skipping
    // geometrically distributed gaps.
    let log1mp = (1.0 - p).ln();
    let mut idx: i64 = -1;
    let total = (n as i64) * (n as i64 - 1) / 2;
    loop {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (r.ln() / log1mp).floor() as i64 + 1;
        idx += skip;
        if idx >= total {
            break;
        }
        let (u, v) = pair_from_index(idx as u64, n as u64);
        b.add_edge(NodeId::new(u as u32), NodeId::new(v as u32));
    }
    b.build()
}

/// Maps a linear index in `[0, n(n-1)/2)` to the pair `(u, v)`, `u < v`,
/// in lexicographic order.
fn pair_from_index(idx: u64, n: u64) -> (u64, u64) {
    // Row u starts at offset u*n - u*(u+1)/2 - u ... solve incrementally.
    let mut u = 0u64;
    let mut remaining = idx;
    loop {
        let row = n - u - 1;
        if remaining < row {
            return (u, u + 1 + remaining);
        }
        remaining -= row;
        u += 1;
    }
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges chosen uniformly.
///
/// # Panics
///
/// Panics if `m` exceeds `n(n-1)/2`.
pub fn erdos_renyi_m(n: usize, m: usize, seed: u64) -> Graph {
    let total = n * n.saturating_sub(1) / 2;
    assert!(m <= total, "too many edges requested");
    let mut rng = rng_from(seed);
    let mut chosen = std::collections::HashSet::with_capacity(m);
    let mut b = GraphBuilder::new(n);
    while chosen.len() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if chosen.insert(key) {
            b.add_edge(NodeId::new(key.0), NodeId::new(key.1));
        }
    }
    b.build()
}

/// A uniformly random labelled tree on `n` vertices (via a random Prüfer
/// sequence).
pub fn random_tree(n: usize, seed: u64) -> Graph {
    let mut b = GraphBuilder::new(n);
    if n < 2 {
        return b.build();
    }
    if n == 2 {
        b.add_edge(NodeId::new(0), NodeId::new(1));
        return b.build();
    }
    let mut rng = rng_from(seed);
    let prufer: Vec<u32> = (0..n - 2).map(|_| rng.gen_range(0..n as u32)).collect();
    let mut degree = vec![1u32; n];
    for &x in &prufer {
        degree[x as usize] += 1;
    }
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<u32>> = (0..n as u32)
        .filter(|&v| degree[v as usize] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &x in &prufer {
        let std::cmp::Reverse(leaf) = leaves.pop().expect("tree invariant");
        b.add_edge(NodeId::new(leaf), NodeId::new(x));
        degree[x as usize] -= 1;
        if degree[x as usize] == 1 {
            leaves.push(std::cmp::Reverse(x));
        }
    }
    let std::cmp::Reverse(a) = leaves.pop().expect("two leaves remain");
    let std::cmp::Reverse(bb) = leaves.pop().expect("two leaves remain");
    b.add_edge(NodeId::new(a), NodeId::new(bb));
    b.build()
}

/// An approximately `d`-regular graph via the configuration model with
/// self-loops and multi-edges discarded (so some vertices may have degree
/// slightly below `d`).
///
/// # Panics
///
/// Panics if `n * d` is odd or `d >= n`.
pub fn random_regular_ish(n: usize, d: usize, seed: u64) -> Graph {
    assert!((n * d).is_multiple_of(2), "n*d must be even");
    assert!(d < n, "degree must be below n");
    let mut rng = rng_from(seed);
    let mut stubs: Vec<u32> = Vec::with_capacity(n * d);
    for v in 0..n as u32 {
        for _ in 0..d {
            stubs.push(v);
        }
    }
    stubs.shuffle(&mut rng);
    let mut b = GraphBuilder::new(n);
    for pair in stubs.chunks_exact(2) {
        if pair[0] != pair[1] {
            b.add_edge(NodeId::new(pair[0]), NodeId::new(pair[1]));
        }
    }
    b.build()
}

/// A random bipartite graph with parts of sizes `a` and `b` and edge
/// probability `p` (part `0..a` vs `a..a+b`). Bipartite graphs contain no
/// odd cycles, which makes this a useful odd-cycle-free family.
pub fn random_bipartite(a: usize, b: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut rng = rng_from(seed);
    let mut builder = GraphBuilder::new(a + b);
    for u in 0..a as u32 {
        for v in 0..b as u32 {
            if rng.gen_bool(p) {
                builder.add_edge(NodeId::new(u), NodeId::new(a as u32 + v));
            }
        }
    }
    builder.build()
}

/// A preferential-attachment (Barabási–Albert style) graph: starting
/// from a small seed clique, each new vertex attaches `m` edges to
/// existing vertices chosen proportionally to their current degree
/// (sampled from the running endpoint list, so high-degree hubs keep
/// attracting edges). The resulting degree sequence is heavy-tailed —
/// the power-law regime none of the near-regular or ER families probe.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn preferential_attachment(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1, "each new vertex needs at least one edge");
    let mut b = GraphBuilder::new(n);
    if n < 2 {
        return b.build();
    }
    let core = (m + 1).min(n);
    // Seed clique on the first m+1 vertices (every early vertex has a
    // positive degree, so the endpoint list is never empty).
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
    for u in 0..core as u32 {
        for v in (u + 1)..core as u32 {
            b.add_edge(NodeId::new(u), NodeId::new(v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    let mut rng = rng_from(seed);
    for v in core..n {
        // Sample m distinct targets by degree (rejecting duplicates);
        // a bounded retry budget keeps degenerate cases terminating.
        let mut targets: Vec<u32> = Vec::with_capacity(m);
        let mut attempts = 0;
        while targets.len() < m.min(v) && attempts < 20 * m + 50 {
            attempts += 1;
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            b.add_edge(NodeId::new(v as u32), NodeId::new(t));
            endpoints.push(v as u32);
            endpoints.push(t);
        }
    }
    b.build()
}

/// A Watts–Strogatz small-world graph: a ring lattice where every
/// vertex connects to its `k` nearest neighbors (`k/2` on each side,
/// `k` rounded up to even), then each lattice edge is rewired with
/// probability `p` to a uniformly random non-neighbor. `p = 0` is the
/// pure lattice (girth 3, high clustering); small `p` adds the
/// long-range shortcuts that collapse the diameter while keeping the
/// local cycle structure — a regime neither ER nor the regular-ish
/// family reaches.
///
/// # Panics
///
/// Panics unless `0 ≤ p ≤ 1` and `k ≥ 2`.
pub fn watts_strogatz(n: usize, k: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    assert!(k >= 2, "lattice degree must be at least 2");
    let half = k.div_ceil(2).min(n.saturating_sub(1) / 2).max(1);
    let mut b = GraphBuilder::new(n);
    if n < 3 {
        if n == 2 {
            b.add_edge(NodeId::new(0), NodeId::new(1));
        }
        return b.build();
    }
    let mut rng = rng_from(seed);
    // The lattice edges, each possibly rewired at its lower endpoint.
    let mut edges: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    let key = |u: u32, v: u32| if u < v { (u, v) } else { (v, u) };
    for u in 0..n as u32 {
        for d in 1..=half as u32 {
            let v = (u + d) % n as u32;
            if u == v {
                continue;
            }
            edges.insert(key(u, v));
        }
    }
    let mut lattice: Vec<(u32, u32)> = edges.iter().copied().collect();
    lattice.sort_unstable();
    for (u, v) in lattice {
        if rng.gen_bool(p) {
            // Rewire v's end to a fresh random target (keep the edge on
            // failure to find one; the graph stays connected-ish).
            let mut attempts = 0;
            while attempts < 32 {
                attempts += 1;
                let w = rng.gen_range(0..n as u32);
                if w != u && !edges.contains(&key(u, w)) {
                    edges.remove(&key(u, v));
                    edges.insert(key(u, w));
                    break;
                }
            }
        }
    }
    let mut final_edges: Vec<(u32, u32)> = edges.into_iter().collect();
    final_edges.sort_unstable();
    for (u, v) in final_edges {
        b.add_edge(NodeId::new(u), NodeId::new(v));
    }
    b.build()
}

/// A random connected graph with `extra` non-tree edges and girth
/// strictly greater than `min_girth`: starts from a random tree and adds
/// random edges, skipping any that would close a cycle of length
/// `≤ min_girth` (checked with a bounded BFS). A certified
/// `{C_ℓ | ℓ ≤ min_girth}`-free family for soundness experiments at
/// scale, where exact whole-graph search would be too slow.
///
/// May return fewer than `extra` extra edges if the attempt budget runs
/// out (dense + high girth is extremal-graph-theory hard).
pub fn high_girth(n: usize, min_girth: usize, extra: usize, seed: u64) -> Graph {
    assert!(min_girth >= 3, "girth constraint below 3 is vacuous");
    let tree = random_tree(n, seed);
    if n < 2 {
        return tree;
    }
    let mut rng = rng_from(seed ^ 0x6127);
    let mut edges: Vec<(u32, u32)> = tree.edges().map(|(u, v)| (u.raw(), v.raw())).collect();
    let mut current = tree;
    let mut added = 0;
    let mut attempts = 0;
    let budget = extra * 30 + 100;
    while added < extra && attempts < budget {
        attempts += 1;
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v || current.has_edge(NodeId::new(u), NodeId::new(v)) {
            continue;
        }
        // Adding {u, v} closes a cycle of length dist(u, v) + 1; keep the
        // edge only if every u-v distance exceeds min_girth - 1.
        let dist = crate::analysis::bfs_distances_bounded(
            &current,
            NodeId::new(u),
            (min_girth - 1) as u32,
        );
        if dist[v as usize].is_some() {
            continue;
        }
        edges.push((u, v));
        added += 1;
        current = Graph::from_edges(n, edges.iter().copied()).expect("valid edges");
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn high_girth_respects_constraint() {
        for (girth, seed) in [(4usize, 1u64), (6, 2), (8, 3)] {
            let g = high_girth(60, girth, 15, seed);
            if let Some(observed) = analysis::girth(&g) {
                assert!(
                    observed > girth,
                    "requested girth > {girth}, got {observed} (seed {seed})"
                );
            }
            assert!(g.edge_count() >= 59, "tree edges all present");
        }
    }

    #[test]
    fn high_girth_adds_edges_when_loose() {
        let g = high_girth(100, 4, 10, 7);
        assert!(g.edge_count() > 99, "some extra edges should land");
        assert!(analysis::is_connected(&g));
    }

    #[test]
    fn pair_from_index_enumerates_lexicographically() {
        let n = 5u64;
        let mut expected = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                expected.push((u, v));
            }
        }
        for (i, &(u, v)) in expected.iter().enumerate() {
            assert_eq!(pair_from_index(i as u64, n), (u, v));
        }
    }

    #[test]
    fn er_p_zero_and_one() {
        assert_eq!(erdos_renyi(10, 0.0, 1).edge_count(), 0);
        assert_eq!(erdos_renyi(10, 1.0, 1).edge_count(), 45);
    }

    #[test]
    fn er_determinism() {
        let a = erdos_renyi(50, 0.1, 7);
        let b = erdos_renyi(50, 0.1, 7);
        assert_eq!(a, b);
        let c = erdos_renyi(50, 0.1, 8);
        assert_ne!(a, c, "different seed should (almost surely) differ");
    }

    #[test]
    fn er_edge_count_near_expectation() {
        let n = 200;
        let p = 0.05;
        let g = erdos_renyi(n, p, 42);
        let expected = (n * (n - 1) / 2) as f64 * p;
        let m = g.edge_count() as f64;
        assert!(
            (m - expected).abs() < 4.0 * expected.sqrt() + 10.0,
            "edge count {m} too far from expectation {expected}"
        );
    }

    #[test]
    fn er_m_exact_count() {
        let g = erdos_renyi_m(30, 100, 3);
        assert_eq!(g.edge_count(), 100);
    }

    #[test]
    fn random_tree_is_tree() {
        for seed in 0..5 {
            let g = random_tree(40, seed);
            assert_eq!(g.edge_count(), 39);
            assert!(analysis::is_connected(&g));
            assert_eq!(analysis::girth(&g), None);
        }
    }

    #[test]
    fn random_tree_tiny() {
        assert_eq!(random_tree(0, 1).node_count(), 0);
        assert_eq!(random_tree(1, 1).edge_count(), 0);
        assert_eq!(random_tree(2, 1).edge_count(), 1);
        let g = random_tree(3, 9);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn regular_ish_degrees_bounded() {
        let g = random_regular_ish(60, 4, 11);
        for v in g.nodes() {
            assert!(g.degree(v) <= 4);
        }
        // Most stubs survive collision removal.
        assert!(g.edge_count() >= 100);
    }

    #[test]
    fn preferential_attachment_is_heavy_tailed_and_deterministic() {
        let a = preferential_attachment(200, 2, 9);
        let b = preferential_attachment(200, 2, 9);
        assert_eq!(a, b, "same seed must rebuild the same graph");
        assert_eq!(a.node_count(), 200);
        // Every post-seed vertex attaches ≥ 1 edge: connected-ish size.
        assert!(a.edge_count() >= 200);
        // The hub premium: the max degree far exceeds the attachment
        // parameter (an ER graph at the same density concentrates).
        assert!(
            a.max_degree() >= 8,
            "expected a hub, max degree {}",
            a.max_degree()
        );
        assert_ne!(a, preferential_attachment(200, 2, 10));
    }

    #[test]
    fn preferential_attachment_tiny() {
        assert_eq!(preferential_attachment(0, 2, 1).node_count(), 0);
        assert_eq!(preferential_attachment(1, 2, 1).edge_count(), 0);
        let g = preferential_attachment(2, 3, 1);
        assert_eq!(g.edge_count(), 1, "seed clique clamps to n");
    }

    #[test]
    fn watts_strogatz_zero_p_is_the_lattice() {
        let g = watts_strogatz(24, 4, 0.0, 3);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4, "pure ring lattice is 4-regular");
        }
        assert_eq!(g.edge_count(), 48);
    }

    #[test]
    fn watts_strogatz_rewiring_is_deterministic_and_bounded() {
        let a = watts_strogatz(60, 6, 0.2, 5);
        let b = watts_strogatz(60, 6, 0.2, 5);
        assert_eq!(a, b);
        // Rewiring moves endpoints, it does not add edges.
        assert!(a.edge_count() <= 60 * 3);
        assert!(a.edge_count() >= 60 * 2, "most edges survive rewiring");
        assert_ne!(a, watts_strogatz(60, 6, 0.2, 6));
    }

    #[test]
    fn bipartite_has_no_odd_cycles() {
        let g = random_bipartite(20, 25, 0.2, 5);
        assert!(analysis::is_bipartite(&g));
        assert!(analysis::find_cycle_exact(&g, 5, None).is_none());
    }
}
