//! Deterministic, seedable graph generators.
//!
//! Everything here is used by the experiments: plain families for unit
//! tests ([`path`], [`cycle`], [`complete`], …), random families for
//! statistical experiments ([`erdos_renyi`], [`random_tree`], …),
//! planted-cycle instances for detection benchmarks ([`plant_cycle`]),
//! extremal C4-free graphs for the lower-bound gadgets
//! ([`polarity_graph`]), and composition operators ([`disjoint_union`],
//! [`join_with_matching`]) used to assemble the two-party reductions.

mod basic;
mod compose;
mod extremal;
mod planted;
mod random;

pub use basic::{
    complete, complete_bipartite, cycle, empty, grid, hypercube, path, star, theta, torus,
};
pub use compose::{disjoint_union, join_with_matching};
pub use extremal::{is_prime, polarity_graph, smallest_prime_at_least};
pub use planted::{
    cycle_with_chords, funnel, noisy_planted, plant_cycle, plant_cycle_on_heavy_hub,
    plant_disjoint_cycles,
};
pub use random::{
    erdos_renyi, erdos_renyi_m, high_girth, preferential_attachment, random_bipartite,
    random_regular_ish, random_tree, watts_strogatz,
};
