//! Certified cycle witnesses.

use std::fmt;

use crate::{Graph, NodeId};

/// An explicit cycle in a graph, used to certify rejections.
///
/// The paper's algorithms are one-sided: a node only rejects when a
/// `2k`-cycle provably exists ("any node that rejects does so rightfully",
/// proof of Theorem 1). This library makes that operational — every
/// rejection carries a `CycleWitness` that has been [validated] against the
/// input graph.
///
/// [validated]: CycleWitness::is_valid
///
/// ```
/// use congest_graph::{generators, CycleWitness, NodeId};
/// let g = generators::cycle(4);
/// let w = CycleWitness::new(vec![0, 1, 2, 3].into_iter().map(NodeId::new).collect());
/// assert!(w.is_valid(&g));
/// assert_eq!(w.len(), 4);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CycleWitness {
    nodes: Vec<NodeId>,
}

impl CycleWitness {
    /// Wraps a vertex sequence `v_0, v_1, ..., v_{ℓ-1}` claimed to be a
    /// cycle (`v_i ~ v_{i+1}` and `v_{ℓ-1} ~ v_0`, all distinct).
    pub fn new(nodes: Vec<NodeId>) -> Self {
        CycleWitness { nodes }
    }

    /// The vertices of the cycle, in cyclic order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The length (number of vertices = number of edges) of the cycle.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the witness is empty (never valid).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Checks the witness against `g`: at least 3 distinct vertices, and
    /// every consecutive pair (cyclically) is an edge of `g`.
    pub fn is_valid(&self, g: &Graph) -> bool {
        let l = self.nodes.len();
        if l < 3 {
            return false;
        }
        let mut sorted = self.nodes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != l {
            return false; // repeated vertex
        }
        if sorted.last().is_some_and(|v| v.index() >= g.node_count()) {
            return false;
        }
        for i in 0..l {
            let u = self.nodes[i];
            let v = self.nodes[(i + 1) % l];
            if !g.has_edge(u, v) {
                return false;
            }
        }
        true
    }

    /// A canonical form: rotated so the minimum vertex comes first, and
    /// oriented so the second vertex is the smaller of the two neighbors of
    /// the minimum. Two witnesses describe the same cycle iff their
    /// canonical forms are equal.
    pub fn canonicalize(&self) -> CycleWitness {
        let l = self.nodes.len();
        if l == 0 {
            return self.clone();
        }
        let (min_pos, _) = self
            .nodes
            .iter()
            .enumerate()
            .min_by_key(|(_, v)| **v)
            .expect("non-empty");
        let fwd: Vec<NodeId> = (0..l).map(|i| self.nodes[(min_pos + i) % l]).collect();
        let bwd: Vec<NodeId> = (0..l).map(|i| self.nodes[(min_pos + l - i) % l]).collect();
        if fwd[1.min(l - 1)] <= bwd[1.min(l - 1)] {
            CycleWitness::new(fwd)
        } else {
            CycleWitness::new(bwd)
        }
    }
}

impl fmt::Debug for CycleWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}[", self.nodes.len())?;
        for (i, v) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, "-")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for CycleWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn w(ids: &[u32]) -> CycleWitness {
        CycleWitness::new(ids.iter().copied().map(NodeId::new).collect())
    }

    #[test]
    fn valid_square() {
        let g = generators::cycle(4);
        assert!(w(&[0, 1, 2, 3]).is_valid(&g));
        assert!(w(&[2, 3, 0, 1]).is_valid(&g));
        assert!(w(&[3, 2, 1, 0]).is_valid(&g));
    }

    #[test]
    fn invalid_cases() {
        let g = generators::cycle(4);
        assert!(!w(&[0, 1, 2]).is_valid(&g), "0-2 is not an edge");
        assert!(!w(&[0, 1]).is_valid(&g), "too short");
        assert!(!w(&[0, 1, 2, 1]).is_valid(&g), "repeated vertex");
        assert!(!w(&[0, 1, 2, 9]).is_valid(&g), "out of range");
        assert!(!w(&[]).is_valid(&g), "empty");
    }

    #[test]
    fn chord_not_required() {
        // Witness must be a cycle subgraph, not induced: a chord in g is fine.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        assert!(w(&[0, 1, 2, 3]).is_valid(&g));
        assert!(w(&[0, 1, 2]).is_valid(&g));
    }

    #[test]
    fn canonical_form_identifies_rotations_and_reflections() {
        let a = w(&[2, 3, 0, 1]).canonicalize();
        let b = w(&[1, 0, 3, 2]).canonicalize();
        let c = w(&[0, 1, 2, 3]).canonicalize();
        assert_eq!(a, c);
        assert_eq!(b, c);
        assert_eq!(c.nodes()[0], NodeId::new(0));
    }

    #[test]
    fn canonical_form_distinguishes_distinct_cycles() {
        let a = w(&[0, 1, 2, 3]).canonicalize();
        let b = w(&[0, 1, 3, 2]).canonicalize();
        assert_ne!(a, b);
    }
}
