//! Plain-text graph serialization.
//!
//! The format is a minimal edge list:
//!
//! ```text
//! # comment lines start with '#'
//! n 5
//! 0 1
//! 1 2
//! ```
//!
//! The `n <count>` header fixes the vertex count (isolated vertices would
//! otherwise be lost).

use crate::{Graph, GraphError, NodeId};

/// Serializes `g` to the edge-list text format.
pub fn to_text(g: &Graph) -> String {
    let mut out = String::new();
    out.push_str(&format!("n {}\n", g.node_count()));
    for (u, v) in g.edges() {
        out.push_str(&format!("{} {}\n", u.raw(), v.raw()));
    }
    out
}

/// Parses a graph from the edge-list text format.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed input, and the usual
/// construction errors for invalid edges.
pub fn from_text(text: &str) -> Result<Graph, GraphError> {
    let mut n: Option<usize> = None;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        let lineno = idx + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("n ") {
            let parsed = rest
                .trim()
                .parse::<usize>()
                .map_err(|e| GraphError::Parse {
                    line: lineno,
                    message: format!("bad vertex count: {e}"),
                })?;
            n = Some(parsed);
            continue;
        }
        let mut parts = line.split_whitespace();
        let (a, b) = match (parts.next(), parts.next(), parts.next()) {
            (Some(a), Some(b), None) => (a, b),
            _ => {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: "expected two endpoints".into(),
                })
            }
        };
        let u = a.parse::<u32>().map_err(|e| GraphError::Parse {
            line: lineno,
            message: format!("bad endpoint: {e}"),
        })?;
        let v = b.parse::<u32>().map_err(|e| GraphError::Parse {
            line: lineno,
            message: format!("bad endpoint: {e}"),
        })?;
        edges.push((u, v));
    }
    let n = n.unwrap_or_else(|| {
        edges
            .iter()
            .map(|&(u, v)| u.max(v) as usize + 1)
            .max()
            .unwrap_or(0)
    });
    Graph::from_edges(n, edges)
}

/// Renders a graph (and an optional highlighted cycle) as a GraphViz DOT
/// string, used by the Figure 1 reproduction binary.
pub fn to_dot(g: &Graph, highlight: &[NodeId]) -> String {
    let mut out = String::from("graph G {\n");
    let hl: std::collections::HashSet<NodeId> = highlight.iter().copied().collect();
    for v in g.nodes() {
        if hl.contains(&v) {
            out.push_str(&format!("  {} [style=filled, fillcolor=gold];\n", v.raw()));
        }
    }
    let hl_edges: std::collections::HashSet<(NodeId, NodeId)> = highlight
        .iter()
        .enumerate()
        .map(|(i, &u)| {
            let v = highlight[(i + 1) % highlight.len()];
            if u < v {
                (u, v)
            } else {
                (v, u)
            }
        })
        .collect();
    for (u, v) in g.edges() {
        if !highlight.is_empty() && hl_edges.contains(&(u, v)) {
            out.push_str(&format!(
                "  {} -- {} [penwidth=3, color=red];\n",
                u.raw(),
                v.raw()
            ));
        } else {
            out.push_str(&format!("  {} -- {};\n", u.raw(), v.raw()));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip() {
        let g = generators::erdos_renyi(25, 0.15, 11);
        let text = to_text(&g);
        let h = from_text(&text).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn roundtrip_with_isolated_vertices() {
        let g = Graph::from_edges(6, [(0, 1)]).unwrap();
        let h = from_text(&to_text(&g)).unwrap();
        assert_eq!(h.node_count(), 6);
        assert_eq!(h.edge_count(), 1);
    }

    #[test]
    fn parse_comments_and_blank_lines() {
        let g = from_text("# header\n\nn 3\n0 1\n# mid\n1 2\n").unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn parse_infers_n_without_header() {
        let g = from_text("0 1\n1 4\n").unwrap();
        assert_eq!(g.node_count(), 5);
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            from_text("0\n"),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            from_text("0 x\n"),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            from_text("n 2\n0 5\n"),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn dot_output_mentions_highlight() {
        let g = generators::cycle(4);
        let dot = to_dot(
            &g,
            &[
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(3),
            ],
        );
        assert!(dot.contains("fillcolor=gold"));
        assert!(dot.contains("color=red"));
        assert!(dot.starts_with("graph G {"));
    }
}
