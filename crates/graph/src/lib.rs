//! Graph substrate for the even-cycle CONGEST reproduction.
//!
//! This crate provides everything the distributed algorithms of
//! Fraigniaud–Luce–Magniez–Todinca (PODC 2024) need to know about graphs,
//! *outside* the CONGEST model itself:
//!
//! * a compact, immutable [`Graph`] type (CSR adjacency, sorted neighbor
//!   lists) together with a mutable [`GraphBuilder`];
//! * deterministic, seedable [`generators`] — from plain paths and cycles to
//!   Erdős–Rényi graphs, planted-cycle instances, and the dense
//!   `C4`-free polarity graphs used by the lower-bound gadgets;
//! * exact combinatorial [`analysis`]: BFS, diameter, connectivity, girth,
//!   degeneracy, bipartiteness, and — crucially — exact ground truth for
//!   "does `G` contain the cycle `C_ℓ` as a subgraph?", against which all
//!   distributed detectors are validated;
//! * [`CycleWitness`], the certified-cycle type every rejection produces;
//! * the dynamic-graph layer: [`MutableGraph`] (an adjacency-delta overlay
//!   on the CSR base with periodic compaction) and [`UpdateSchedule`]
//!   (seeded, fingerprintable edge-update streams with checkpoints).
//!
//! # Example
//!
//! ```
//! use congest_graph::{generators, analysis};
//!
//! // A 6-cycle with two pendant paths contains C6 and nothing shorter.
//! let g = generators::cycle(6);
//! assert_eq!(analysis::girth(&g), Some(6));
//! assert!(analysis::find_cycle_exact(&g, 6, None).is_some());
//! assert!(analysis::find_cycle_exact(&g, 4, None).is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod graph;
mod witness;

pub mod analysis;
pub mod generators;
pub mod mutable;
pub mod serialize;
pub mod spec;
pub mod stream;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{EdgeIter, Graph, NodeId};
pub use mutable::MutableGraph;
pub use spec::FamilySpec;
pub use stream::{EdgeUpdate, ScheduleReplay, UpdateSchedule};
pub use witness::CycleWitness;
