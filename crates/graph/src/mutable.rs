//! A mutable dynamic-graph overlay on the immutable CSR [`Graph`].
//!
//! The CSR representation is the right shape for the detectors — compact,
//! cache-friendly, binary-searchable — and exactly the wrong shape for
//! edge updates: a single insertion would shift half of the adjacency
//! array. [`MutableGraph`] keeps the best of both: a frozen CSR *base*
//! plus two small sorted delta sets (edges inserted since the base was
//! built, edges deleted from it). Queries consult the overlay first;
//! when the overlay grows past a threshold the deltas are *compacted* —
//! merged into a fresh CSR base in one linear pass — so query cost
//! stays amortized near the static structure's.
//!
//! The load-bearing contract is [`MutableGraph::snapshot`]: the CSR
//! graph it produces is **byte-identical** to building a [`Graph`] from
//! scratch out of the final edge set. Snapshots therefore hash, compare,
//! and serialize exactly like statically built instances — which is what
//! lets the engine's content-addressed result store treat "checkpoint
//! `i` of a replayed update schedule" and "this graph built directly"
//! as the same unit of work.
//!
//! ```
//! use congest_graph::{Graph, MutableGraph, NodeId};
//!
//! let base = Graph::from_edges(4, [(0, 1), (1, 2)])?;
//! let mut g = MutableGraph::from_graph(base);
//! assert!(g.insert_edge(NodeId::new(2), NodeId::new(3))?);
//! assert!(g.delete_edge(NodeId::new(0), NodeId::new(1))?);
//! let snap = g.snapshot();
//! assert_eq!(snap, Graph::from_edges(4, [(1, 2), (2, 3)])?);
//! # Ok::<(), congest_graph::GraphError>(())
//! ```

use std::collections::BTreeSet;

use crate::error::GraphError;
use crate::stream::EdgeUpdate;
use crate::{Graph, NodeId};

/// Delta count above which queries start losing to the overlay scans;
/// used when no explicit compaction threshold is configured (the
/// effective default also scales with the base size — see
/// [`MutableGraph::effective_compaction_threshold`]).
const MIN_COMPACTION_THRESHOLD: usize = 64;

/// An undirected simple graph that supports edge insertion and deletion
/// on top of a frozen CSR [`Graph`] base. See the module docs for the
/// representation and the snapshot byte-identity contract.
#[derive(Debug, Clone)]
pub struct MutableGraph {
    base: Graph,
    /// Normalized (`u < v`) edges present in the overlay but not the
    /// base. Sorted iteration keeps compaction a linear merge.
    inserted: BTreeSet<(NodeId, NodeId)>,
    /// Normalized edges present in the base but deleted since.
    deleted: BTreeSet<(NodeId, NodeId)>,
    /// Explicit compaction threshold (`None`: adaptive default).
    threshold: Option<usize>,
    /// Compactions performed so far (observable for tests and stats).
    compactions: u64,
}

impl MutableGraph {
    /// An edgeless mutable graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        MutableGraph::from_graph(Graph::empty(n))
    }

    /// Wraps an existing immutable graph as the base (no copy of the
    /// CSR arrays beyond the move).
    pub fn from_graph(base: Graph) -> Self {
        MutableGraph {
            base,
            inserted: BTreeSet::new(),
            deleted: BTreeSet::new(),
            threshold: None,
            compactions: 0,
        }
    }

    /// Overrides the delta count that triggers automatic compaction
    /// after an update. `0` compacts after every mutation (useful to
    /// exercise the compaction path exhaustively in tests).
    pub fn with_compaction_threshold(mut self, threshold: usize) -> Self {
        self.threshold = Some(threshold);
        self
    }

    /// The delta count above which the next update compacts: the
    /// explicit override if set, else `max(64, m/4)` of the current
    /// base — large enough that compaction cost amortizes, small enough
    /// that overlay scans never dominate queries.
    pub fn effective_compaction_threshold(&self) -> usize {
        self.threshold
            .unwrap_or_else(|| MIN_COMPACTION_THRESHOLD.max(self.base.edge_count() / 4))
    }

    /// Number of vertices (updates never change it).
    pub fn node_count(&self) -> usize {
        self.base.node_count()
    }

    /// Current number of undirected edges (base minus deletions plus
    /// insertions).
    pub fn edge_count(&self) -> usize {
        self.base.edge_count() - self.deleted.len() + self.inserted.len()
    }

    /// Pending overlay deltas (insertions + deletions since the last
    /// compaction).
    pub fn pending_deltas(&self) -> usize {
        self.inserted.len() + self.deleted.len()
    }

    /// Compactions performed so far (automatic and explicit).
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Whether the edge `{u, v}` is currently present.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let key = normalize(u, v);
        if self.inserted.contains(&key) {
            return true;
        }
        self.base.has_edge(u, v) && !self.deleted.contains(&key)
    }

    /// Current degree of `v` (base degree adjusted by the overlay).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: NodeId) -> usize {
        let gained = self
            .inserted
            .iter()
            .filter(|&&(a, b)| a == v || b == v)
            .count();
        let lost = self
            .deleted
            .iter()
            .filter(|&&(a, b)| a == v || b == v)
            .count();
        self.base.degree(v) + gained - lost
    }

    /// The current sorted neighbor list of `v`, merged across base and
    /// overlay (allocates — the CSR base's borrowed `&[NodeId]` view is
    /// not available through an overlay).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors_vec(&self, v: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .base
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| !self.deleted.contains(&normalize(v, w)))
            .collect();
        for &(a, b) in &self.inserted {
            if a == v {
                out.push(b);
            } else if b == v {
                out.push(a);
            }
        }
        out.sort_unstable();
        out
    }

    /// Inserts the edge `{u, v}`. Returns `true` if the graph changed
    /// (`false`: the edge was already present).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `u == v` and
    /// [`GraphError::NodeOutOfRange`] if an endpoint is `>= n`.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, GraphError> {
        self.validate(u, v)?;
        let key = normalize(u, v);
        let changed = if self.base.has_edge(u, v) {
            // Present in the base: only a prior deletion can make this
            // insertion meaningful.
            self.deleted.remove(&key)
        } else {
            self.inserted.insert(key)
        };
        self.maybe_compact();
        Ok(changed)
    }

    /// Deletes the edge `{u, v}`. Returns `true` if the graph changed
    /// (`false`: the edge was not present).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `u == v` and
    /// [`GraphError::NodeOutOfRange`] if an endpoint is `>= n`.
    pub fn delete_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, GraphError> {
        self.validate(u, v)?;
        let key = normalize(u, v);
        let changed = if self.inserted.remove(&key) {
            true
        } else if self.base.has_edge(u, v) {
            self.deleted.insert(key)
        } else {
            false
        };
        self.maybe_compact();
        Ok(changed)
    }

    /// Applies one [`EdgeUpdate`]. Returns `true` if the graph changed.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of
    /// [`insert_edge`](MutableGraph::insert_edge) /
    /// [`delete_edge`](MutableGraph::delete_edge).
    pub fn apply(&mut self, update: EdgeUpdate) -> Result<bool, GraphError> {
        match update {
            EdgeUpdate::Insert(u, v) => self.insert_edge(u, v),
            EdgeUpdate::Delete(u, v) => self.delete_edge(u, v),
        }
    }

    /// Merges the overlay into a fresh CSR base (one linear pass over
    /// base adjacency plus the sorted deltas) and clears the deltas.
    /// Queries and snapshots are unaffected — this is purely a
    /// representation change.
    pub fn compact(&mut self) {
        if self.pending_deltas() == 0 {
            return;
        }
        self.base = self.merged_csr();
        self.inserted.clear();
        self.deleted.clear();
        self.compactions += 1;
    }

    /// The current graph as a frozen CSR [`Graph`], **byte-identical**
    /// to building the final edge set from scratch: degrees, offsets,
    /// and sorted adjacency all match `Graph::from_edges` of the same
    /// edges, so snapshots serialize and compare exactly like
    /// statically built instances.
    pub fn snapshot(&self) -> Graph {
        if self.pending_deltas() == 0 {
            return self.base.clone();
        }
        self.merged_csr()
    }

    /// The merged CSR: per-vertex two-pointer merge of the base
    /// adjacency (minus deletions) with the inserted deltas. Both sides
    /// are sorted, so each output list is sorted without a final sort
    /// pass — producing exactly the arrays `GraphBuilder::build` would.
    fn merged_csr(&self) -> Graph {
        let n = self.base.node_count();
        // Scatter inserted deltas into per-vertex lists. BTreeSet
        // iteration is lexicographic in the normalized pair, so every
        // per-vertex list comes out sorted: a vertex first receives its
        // smaller neighbors (as the pair's second element, in ascending
        // first-element order), then its larger ones (as the first
        // element, in ascending second-element order).
        let mut ins: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &(u, v) in &self.inserted {
            ins[u.index()].push(v);
            ins[v.index()].push(u);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut adj = Vec::with_capacity(self.base.degree_sum() + 2 * self.inserted.len());
        for v in (0..n as u32).map(NodeId::new) {
            let kept = self
                .base
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&w| !self.deleted.contains(&normalize(v, w)));
            let mut added = ins[v.index()].iter().copied().peekable();
            for w in kept {
                while added.next_if(|&x| x < w).map(|x| adj.push(x)).is_some() {}
                adj.push(w);
            }
            adj.extend(added);
            offsets.push(adj.len() as u32);
        }
        Graph::from_sorted_csr(offsets, adj)
    }

    fn validate(&self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        let n = self.node_count();
        for w in [u, v] {
            if w.index() >= n {
                return Err(GraphError::NodeOutOfRange { node: w, n });
            }
        }
        Ok(())
    }

    fn maybe_compact(&mut self) {
        if self.pending_deltas() > self.effective_compaction_threshold() {
            self.compact();
        }
    }
}

fn normalize(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize;

    fn id(raw: u32) -> NodeId {
        NodeId::new(raw)
    }

    #[test]
    fn insert_delete_and_queries_agree_with_overlay() {
        let base = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut g = MutableGraph::from_graph(base);
        assert_eq!(g.edge_count(), 3);

        // Fresh insertion.
        assert!(g.insert_edge(id(3), id(4)).unwrap());
        assert!(g.has_edge(id(3), id(4)));
        assert_eq!(g.edge_count(), 4);
        // Duplicate insertion (overlay and base) is a no-op.
        assert!(!g.insert_edge(id(4), id(3)).unwrap());
        assert!(!g.insert_edge(id(0), id(1)).unwrap());

        // Deletion of a base edge.
        assert!(g.delete_edge(id(1), id(2)).unwrap());
        assert!(!g.has_edge(id(2), id(1)));
        assert_eq!(g.edge_count(), 3);
        // Deleting an absent edge is a no-op.
        assert!(!g.delete_edge(id(1), id(2)).unwrap());
        assert!(!g.delete_edge(id(0), id(4)).unwrap());

        // Deleting an overlay insertion cancels it.
        assert!(g.delete_edge(id(3), id(4)).unwrap());
        assert!(!g.has_edge(id(3), id(4)));
        // Re-inserting a deleted base edge cancels the deletion.
        assert!(g.insert_edge(id(1), id(2)).unwrap());
        assert!(g.has_edge(id(1), id(2)));
        assert_eq!(g.pending_deltas(), 0, "all deltas cancelled out");
    }

    #[test]
    fn degree_and_neighbors_track_the_overlay() {
        let base = Graph::from_edges(4, [(0, 1), (0, 2)]).unwrap();
        let mut g = MutableGraph::from_graph(base);
        g.insert_edge(id(0), id(3)).unwrap();
        g.delete_edge(id(0), id(1)).unwrap();
        assert_eq!(g.degree(id(0)), 2);
        assert_eq!(g.neighbors_vec(id(0)), vec![id(2), id(3)]);
        assert_eq!(g.degree(id(1)), 0);
        assert_eq!(g.neighbors_vec(id(1)), Vec::<NodeId>::new());
    }

    #[test]
    fn validation_matches_the_builder() {
        let mut g = MutableGraph::new(3);
        assert!(matches!(
            g.insert_edge(id(1), id(1)),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            g.insert_edge(id(0), id(3)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            g.delete_edge(id(2), id(2)),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            g.delete_edge(id(5), id(0)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn snapshot_is_byte_identical_to_from_scratch() {
        let base = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let mut g = MutableGraph::from_graph(base);
        g.insert_edge(id(5), id(0)).unwrap();
        g.insert_edge(id(1), id(4)).unwrap();
        g.delete_edge(id(2), id(3)).unwrap();

        let from_scratch =
            Graph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5), (0, 5), (1, 4)]).unwrap();
        let snap = g.snapshot();
        assert_eq!(snap, from_scratch);
        assert_eq!(
            serialize::to_text(&snap),
            serialize::to_text(&from_scratch),
            "serialized bytes must match exactly"
        );
    }

    #[test]
    fn compaction_preserves_the_graph_and_clears_deltas() {
        let base = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let mut g = MutableGraph::from_graph(base);
        g.insert_edge(id(0), id(4)).unwrap();
        g.delete_edge(id(1), id(2)).unwrap();
        let before = g.snapshot();

        g.compact();
        assert_eq!(g.pending_deltas(), 0);
        assert_eq!(g.compactions(), 1);
        assert_eq!(g.snapshot(), before, "compaction is representation-only");
        // Idempotent with no deltas pending.
        g.compact();
        assert_eq!(g.compactions(), 1);
    }

    #[test]
    fn threshold_zero_compacts_after_every_update() {
        let mut g = MutableGraph::new(4).with_compaction_threshold(0);
        g.insert_edge(id(0), id(1)).unwrap();
        g.insert_edge(id(1), id(2)).unwrap();
        g.delete_edge(id(0), id(1)).unwrap();
        assert_eq!(g.compactions(), 3);
        assert_eq!(g.pending_deltas(), 0);
        assert_eq!(g.snapshot(), Graph::from_edges(4, [(1, 2)]).unwrap());
    }

    #[test]
    fn adaptive_threshold_scales_with_the_base() {
        let g = MutableGraph::new(4);
        assert_eq!(g.effective_compaction_threshold(), 64);
        let big = Graph::from_edges(401, (0..400u32).map(|i| (i, i + 1))).unwrap();
        let g = MutableGraph::from_graph(big);
        assert_eq!(g.effective_compaction_threshold(), 100);
    }
}
