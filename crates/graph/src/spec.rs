//! First-class graph-family specifications: families as *data*, not
//! closures.
//!
//! A [`FamilySpec`] names a generator and its parameters. Unlike a
//! builder closure it can be parsed from a command line or a suite
//! file, rendered back to a canonical label, compared, and — crucially
//! — [fingerprinted](FamilySpec::fingerprint): the experiment engine
//! keys its persisted result store by the fingerprint, so changing a
//! family *parameter* (say `planted:4` → `planted:6`) changes every
//! affected unit key and can never silently replay stale results.
//!
//! The catalog spans the regimes the literature says matter for cycle
//! detection: planted yes-instances (single, multi-copy, and
//! noise-buried), extremal `C4`-free hosts, near-regular degree
//! boundaries, power-law and small-world topologies, tori, and
//! adversarial congestion funnels.
//!
//! ```
//! use congest_graph::spec::FamilySpec;
//!
//! let spec = FamilySpec::parse("planted:4").unwrap();
//! assert_eq!(spec, FamilySpec::Planted { l: 4 });
//! assert_eq!(spec.canonical_label(), "planted:4");
//! let g = spec.build(64, 7);
//! assert_eq!(g, spec.build(64, 7)); // deterministic in (n, seed)
//! // Parameters move the fingerprint.
//! assert_ne!(
//!     spec.fingerprint(),
//!     FamilySpec::parse("planted:6").unwrap().fingerprint()
//! );
//! ```

use crate::{generators, Graph};

/// A typed, serializable graph-family specification. Every variant is
/// a deterministic, seedable family: [`build`](FamilySpec::build)`(n,
/// seed)` produces a graph of approximately `n` vertices (families
/// snap sizes — primes, parities, grid factorizations — by at most a
/// few nodes).
#[derive(Debug, Clone, PartialEq)]
pub enum FamilySpec {
    /// `trees` — uniform random labelled trees (sparse, cycle-free
    /// hosts; the soundness control).
    RandomTrees,
    /// `cycle` — the single cycle `C_n` (girth exactly `n`).
    Cycle,
    /// `torus` — the near-square wrap-around grid (4-regular, girth 4,
    /// high diameter).
    Torus,
    /// `polarity` — Erdős–Rényi polarity graphs `ER_q` for the largest
    /// prime `q` with `q² + q + 1 ≤ n` (dense extremal `C4`-free
    /// hosts).
    Polarity,
    /// `planted:L` — random trees with one planted `C_L` (the standard
    /// yes-instance).
    Planted {
        /// Planted cycle length.
        l: usize,
    },
    /// `multi:C:L` — `C` vertex-disjoint planted copies of `C_L` on a
    /// random tree (detection cost provably depends on the copy
    /// count).
    MultiPlanted {
        /// Number of disjoint planted copies.
        copies: usize,
        /// Planted cycle length.
        l: usize,
    },
    /// `noisy:L:P` — one planted `C_L` on a random tree plus
    /// Erdős–Rényi noise at edge rate `P` (robustness under incidental
    /// cycles).
    NoisyPlanted {
        /// Planted cycle length.
        l: usize,
        /// Independent edge-noise probability.
        p: f64,
    },
    /// `planted-polarity:L` — one planted `C_L` on the extremal
    /// polarity host (a yes-instance inside the densest admissible
    /// no-instance).
    PlantedPolarity {
        /// Planted cycle length.
        l: usize,
    },
    /// `er:DEG` — Erdős–Rényi graphs with expected average degree
    /// `DEG`.
    ErdosRenyi {
        /// Expected average degree.
        deg: f64,
    },
    /// `bipartite:P` — random balanced bipartite graphs with edge
    /// probability `P` (odd-cycle-free controls).
    Bipartite {
        /// Cross-part edge probability.
        p: f64,
    },
    /// `regular:K` — near-regular graphs of degree `≈ n^{1/K}` (the
    /// light/heavy boundary of Algorithm 1).
    RegularBoundary {
        /// Family parameter `K` (degree exponent `1/K`).
        k: usize,
    },
    /// `funnel:B:K` — `B` parallel congestion funnels with chains of
    /// length `K` (the adversarial hosts realizing the `Θ(n^{1-1/k})`
    /// per-edge load).
    Funnel {
        /// Number of parallel funnel branches.
        branches: usize,
        /// Chain length per branch (the algorithm parameter `k`).
        k: usize,
    },
    /// `pa:M` — preferential attachment, `M` edges per new vertex
    /// (heavy-tailed power-law degrees).
    PreferentialAttachment {
        /// Edges attached per arriving vertex.
        m: usize,
    },
    /// `ws:K:P` — Watts–Strogatz small world: ring lattice of degree
    /// `K`, rewiring probability `P`.
    WattsStrogatz {
        /// Lattice degree (nearest neighbors per vertex).
        k: usize,
        /// Per-edge rewiring probability.
        p: f64,
    },
}

/// One catalog row: spec syntax, and what regime the family probes.
pub struct CatalogEntry {
    /// The spec syntax (`planted:L`, `ws:K:P`, …).
    pub syntax: &'static str,
    /// What the family is / which regime it probes.
    pub describes: &'static str,
}

impl FamilySpec {
    /// The full catalog, in documentation order: spec syntax and the
    /// regime each family probes. This is the single source of the
    /// shared unknown-family error message and the README table.
    pub const CATALOG: &'static [CatalogEntry] = &[
        CatalogEntry {
            syntax: "trees",
            describes: "uniform random trees — cycle-free soundness control",
        },
        CatalogEntry {
            syntax: "cycle",
            describes: "the single cycle C_n — girth exactly n",
        },
        CatalogEntry {
            syntax: "torus",
            describes: "wrap-around grid — 4-regular, girth 4, high diameter",
        },
        CatalogEntry {
            syntax: "polarity",
            describes: "extremal C4-free polarity graphs ER_q — densest no-instances",
        },
        CatalogEntry {
            syntax: "planted:L",
            describes: "one C_L planted on a random tree — the standard yes-instance",
        },
        CatalogEntry {
            syntax: "multi:C:L",
            describes: "C disjoint planted C_L copies — copy-count-sensitive regime",
        },
        CatalogEntry {
            syntax: "noisy:L:P",
            describes: "planted C_L + ER noise at rate P — signal under incidental cycles",
        },
        CatalogEntry {
            syntax: "planted-polarity:L",
            describes: "C_L planted on the extremal polarity host — dense yes-instance",
        },
        CatalogEntry {
            syntax: "er:DEG",
            describes: "Erdős–Rényi at average degree DEG",
        },
        CatalogEntry {
            syntax: "bipartite:P",
            describes: "random balanced bipartite — odd-cycle-free control",
        },
        CatalogEntry {
            syntax: "regular:K",
            describes: "near-regular degree n^(1/K) — Algorithm 1's light/heavy boundary",
        },
        CatalogEntry {
            syntax: "funnel:B:K",
            describes: "B congestion funnels, chain length K — worst-case edge load",
        },
        CatalogEntry {
            syntax: "pa:M",
            describes: "preferential attachment, M edges per vertex — power-law degrees",
        },
        CatalogEntry {
            syntax: "ws:K:P",
            describes: "Watts–Strogatz lattice degree K, rewiring P — small world",
        },
    ];

    /// The comma-separated syntax list of the whole catalog (the body
    /// of every unknown-family error).
    pub fn catalog_summary() -> String {
        let syntaxes: Vec<&str> = Self::CATALOG.iter().map(|e| e.syntax).collect();
        syntaxes.join(", ")
    }

    /// One representative instance of *every* catalog variant, with
    /// small parameters — the determinism sweeps, conformance tests,
    /// and smoke suites iterate this so no family can join the catalog
    /// without being exercised.
    pub fn examples() -> Vec<FamilySpec> {
        vec![
            FamilySpec::RandomTrees,
            FamilySpec::Cycle,
            FamilySpec::Torus,
            FamilySpec::Polarity,
            FamilySpec::Planted { l: 4 },
            FamilySpec::MultiPlanted { copies: 2, l: 4 },
            FamilySpec::NoisyPlanted { l: 4, p: 0.02 },
            FamilySpec::PlantedPolarity { l: 4 },
            FamilySpec::ErdosRenyi { deg: 3.0 },
            FamilySpec::Bipartite { p: 0.1 },
            FamilySpec::RegularBoundary { k: 2 },
            FamilySpec::Funnel { branches: 4, k: 2 },
            FamilySpec::PreferentialAttachment { m: 2 },
            FamilySpec::WattsStrogatz { k: 4, p: 0.1 },
        ]
    }

    /// Parses a spec string (`planted:4`, `ws:6:0.1`, …). This is the
    /// ONE family parser: every binary and suite file routes through
    /// it, so the error message format — unknown families list the
    /// full catalog — is shared everywhere.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending spec; unknown
    /// family names additionally list the whole catalog.
    pub fn parse(spec: &str) -> Result<FamilySpec, String> {
        let spec = spec.trim();
        let mut parts = spec.split(':');
        let name = parts.next().unwrap_or_default();
        let params: Vec<&str> = parts.collect();
        let arity = |want: usize, shape: &str| -> Result<(), String> {
            if params.len() == want {
                Ok(())
            } else {
                Err(format!(
                    "family {name:?} expects the form {shape:?}, got {spec:?}"
                ))
            }
        };
        let int = |raw: &str, what: &str| -> Result<usize, String> {
            raw.parse::<usize>()
                .map_err(|_| format!("bad {what} {raw:?} in family spec {spec:?}"))
        };
        let float = |raw: &str, what: &str| -> Result<f64, String> {
            let v: f64 = raw
                .parse()
                .map_err(|_| format!("bad {what} {raw:?} in family spec {spec:?}"))?;
            if v.is_finite() {
                Ok(v)
            } else {
                Err(format!("bad {what} {raw:?} in family spec {spec:?}"))
            }
        };
        let prob = |raw: &str, what: &str| -> Result<f64, String> {
            let v = float(raw, what)?;
            if (0.0..=1.0).contains(&v) {
                Ok(v)
            } else {
                Err(format!(
                    "{what} must be in [0, 1], got {raw:?} in family spec {spec:?}"
                ))
            }
        };
        let cycle_len = |raw: &str| -> Result<usize, String> {
            let l = int(raw, "cycle length")?;
            if l >= 3 {
                Ok(l)
            } else {
                Err(format!(
                    "cycle length must be at least 3, got {l} in family spec {spec:?}"
                ))
            }
        };
        match name {
            "trees" => {
                arity(0, "trees")?;
                Ok(FamilySpec::RandomTrees)
            }
            "cycle" => {
                arity(0, "cycle")?;
                Ok(FamilySpec::Cycle)
            }
            "torus" => {
                arity(0, "torus")?;
                Ok(FamilySpec::Torus)
            }
            "polarity" => {
                arity(0, "polarity")?;
                Ok(FamilySpec::Polarity)
            }
            "planted" => {
                arity(1, "planted:L")?;
                Ok(FamilySpec::Planted {
                    l: cycle_len(params[0])?,
                })
            }
            "multi" => {
                arity(2, "multi:C:L")?;
                let copies = int(params[0], "copy count")?;
                if copies == 0 {
                    return Err(format!(
                        "copy count must be positive in family spec {spec:?}"
                    ));
                }
                Ok(FamilySpec::MultiPlanted {
                    copies,
                    l: cycle_len(params[1])?,
                })
            }
            "noisy" => {
                arity(2, "noisy:L:P")?;
                Ok(FamilySpec::NoisyPlanted {
                    l: cycle_len(params[0])?,
                    p: prob(params[1], "noise rate")?,
                })
            }
            "planted-polarity" => {
                arity(1, "planted-polarity:L")?;
                Ok(FamilySpec::PlantedPolarity {
                    l: cycle_len(params[0])?,
                })
            }
            "er" => {
                arity(1, "er:DEG")?;
                let deg = float(params[0], "average degree")?;
                if deg < 0.0 {
                    return Err(format!(
                        "average degree must be non-negative in family spec {spec:?}"
                    ));
                }
                Ok(FamilySpec::ErdosRenyi { deg })
            }
            "bipartite" => {
                arity(1, "bipartite:P")?;
                Ok(FamilySpec::Bipartite {
                    p: prob(params[0], "edge probability")?,
                })
            }
            "regular" => {
                arity(1, "regular:K")?;
                let k = int(params[0], "k")?;
                if k == 0 {
                    return Err(format!("k must be positive in family spec {spec:?}"));
                }
                Ok(FamilySpec::RegularBoundary { k })
            }
            "funnel" => {
                arity(2, "funnel:B:K")?;
                let branches = int(params[0], "branch count")?;
                let k = int(params[1], "k")?;
                if branches == 0 || k == 0 {
                    return Err(format!(
                        "funnel branches and k must be positive in family spec {spec:?}"
                    ));
                }
                Ok(FamilySpec::Funnel { branches, k })
            }
            "pa" => {
                arity(1, "pa:M")?;
                let m = int(params[0], "attachment count")?;
                if m == 0 {
                    return Err(format!(
                        "attachment count must be positive in family spec {spec:?}"
                    ));
                }
                Ok(FamilySpec::PreferentialAttachment { m })
            }
            "ws" => {
                arity(2, "ws:K:P")?;
                let k = int(params[0], "lattice degree")?;
                if k < 2 {
                    return Err(format!(
                        "lattice degree must be at least 2 in family spec {spec:?}"
                    ));
                }
                Ok(FamilySpec::WattsStrogatz {
                    k,
                    p: prob(params[1], "rewiring probability")?,
                })
            }
            _ => Err(format!(
                "unknown family {name:?}; known families: {}",
                Self::catalog_summary()
            )),
        }
    }

    /// The canonical spec string: parses back to an equal spec
    /// (`parse(canonical_label()) == self`), and is the human-readable
    /// half of the family's identity (the machine half is the
    /// [`fingerprint`](FamilySpec::fingerprint)).
    pub fn canonical_label(&self) -> String {
        match self {
            FamilySpec::RandomTrees => "trees".to_string(),
            FamilySpec::Cycle => "cycle".to_string(),
            FamilySpec::Torus => "torus".to_string(),
            FamilySpec::Polarity => "polarity".to_string(),
            FamilySpec::Planted { l } => format!("planted:{l}"),
            FamilySpec::MultiPlanted { copies, l } => format!("multi:{copies}:{l}"),
            FamilySpec::NoisyPlanted { l, p } => format!("noisy:{l}:{p}"),
            FamilySpec::PlantedPolarity { l } => format!("planted-polarity:{l}"),
            FamilySpec::ErdosRenyi { deg } => format!("er:{deg}"),
            FamilySpec::Bipartite { p } => format!("bipartite:{p}"),
            FamilySpec::RegularBoundary { k } => format!("regular:{k}"),
            FamilySpec::Funnel { branches, k } => format!("funnel:{branches}:{k}"),
            FamilySpec::PreferentialAttachment { m } => format!("pa:{m}"),
            FamilySpec::WattsStrogatz { k, p } => format!("ws:{k}:{p}"),
        }
    }

    /// A stable 128-bit fingerprint of the family's full identity —
    /// name *and* parameters. FNV-1a over a versioned rendering of the
    /// canonical label: any parameter change moves the fingerprint, so
    /// result stores keyed by it can never replay one parameterization
    /// against another. Bump the version tag here if a generator's
    /// construction ever changes behavior for the same label.
    pub fn fingerprint(&self) -> u128 {
        let canonical = format!("family-spec-v1|{}", self.canonical_label());
        let mut h: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
        for b in canonical.as_bytes() {
            h ^= u128::from(*b);
            h = h.wrapping_mul(0x0000_0000_0100_0000_0000_0000_0000_013b);
        }
        h
    }

    /// The fingerprint as 32 hex characters (the form the result store
    /// embeds in unit keys).
    pub fn fingerprint_hex(&self) -> String {
        format!("{:032x}", self.fingerprint())
    }

    /// Builds the instance of (approximately) size `n` for `seed`.
    /// Deterministic in `(n, seed)`: two calls yield byte-identical
    /// graphs, which the engine's graph cache and result store rely
    /// on. Families snap degenerate sizes up to their minimum viable
    /// instance instead of panicking.
    pub fn build(&self, n: usize, seed: u64) -> Graph {
        match *self {
            FamilySpec::RandomTrees => generators::random_tree(n.max(2), seed),
            FamilySpec::Cycle => generators::cycle(n.max(3)),
            FamilySpec::Torus => {
                let n = n.max(9);
                let mut rows = (n as f64).sqrt().floor() as usize;
                rows = rows.max(3);
                let cols = (n / rows).max(3);
                generators::torus(rows, cols)
            }
            FamilySpec::Polarity => polarity_for(n),
            FamilySpec::Planted { l } => {
                let host = generators::random_tree(n.max(l + 1), seed);
                generators::plant_cycle(&host, l, seed).0
            }
            FamilySpec::MultiPlanted { copies, l } => {
                let host = generators::random_tree(n.max(copies * l + 1), seed);
                generators::plant_disjoint_cycles(&host, copies, l, seed).0
            }
            FamilySpec::NoisyPlanted { l, p } => {
                generators::noisy_planted(n.max(l + 1), l, p, seed)
            }
            FamilySpec::PlantedPolarity { l } => {
                let mut host = polarity_for(n);
                if host.node_count() < l {
                    // The requested size snaps below the cycle: grow the
                    // host to the smallest polarity graph that fits it.
                    let q = generators::smallest_prime_at_least((l as f64).sqrt().ceil() as u64);
                    host = generators::polarity_graph(q);
                }
                generators::plant_cycle(&host, l, seed).0
            }
            FamilySpec::ErdosRenyi { deg } => {
                let n = n.max(4);
                generators::erdos_renyi(n, (deg / n as f64).min(1.0), seed)
            }
            FamilySpec::Bipartite { p } => {
                let half = (n / 2).max(2);
                generators::random_bipartite(half, half, p, seed)
            }
            FamilySpec::RegularBoundary { k } => {
                let d = (n as f64).powf(1.0 / k as f64).ceil() as usize + 1;
                let n = n.max(d + 1);
                let n_even = n + (n * d) % 2;
                generators::random_regular_ish(n_even, d, seed)
            }
            FamilySpec::Funnel { branches, k } => {
                // Every branch needs its chain plus at least one source.
                generators::funnel(n.max(branches * (k + 2)), branches, k)
            }
            FamilySpec::PreferentialAttachment { m } => {
                generators::preferential_attachment(n.max(m + 2), m, seed)
            }
            FamilySpec::WattsStrogatz { k, p } => generators::watts_strogatz(n.max(4), k, p, seed),
        }
    }
}

impl std::fmt::Display for FamilySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.canonical_label())
    }
}

/// The polarity graph `ER_q` for the largest prime `q` with
/// `q² + q + 1 ≤ n` (never below `q = 3`, so tiny requests snap up to
/// the 13-vertex `ER_3`).
fn polarity_for(n: usize) -> Graph {
    let mut best = 3u64;
    let mut q = 3u64;
    while (q * q + q + 1) as usize <= n {
        if generators::is_prime(q) {
            best = q;
        }
        q += 1;
    }
    generators::polarity_graph(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn every_variant_has_a_catalog_row_and_an_example() {
        // The examples list and the catalog must cover each other: a
        // variant added without a catalog row (or vice versa) fails
        // here, not in a downstream binary.
        assert_eq!(FamilySpec::examples().len(), FamilySpec::CATALOG.len());
        for (example, row) in FamilySpec::examples().iter().zip(FamilySpec::CATALOG) {
            let label = example.canonical_label();
            let name = label.split(':').next().unwrap();
            assert!(
                row.syntax.starts_with(name),
                "catalog row {:?} out of order with example {label:?}",
                row.syntax
            );
        }
    }

    #[test]
    fn canonical_labels_roundtrip_through_parse() {
        for spec in FamilySpec::examples() {
            let label = spec.canonical_label();
            let parsed = FamilySpec::parse(&label)
                .unwrap_or_else(|e| panic!("label {label:?} must parse: {e}"));
            assert_eq!(parsed, spec, "{label:?}");
        }
        // Float parameters round-trip through the shortest decimal.
        let spec = FamilySpec::parse("ws:6:0.05").unwrap();
        assert_eq!(spec.canonical_label(), "ws:6:0.05");
    }

    #[test]
    fn whole_catalog_builds_deterministically() {
        // The determinism sweep: for EVERY variant, build(n, seed)
        // twice yields byte-identical graphs, and a different seed is
        // allowed (not required) to differ.
        for spec in FamilySpec::examples() {
            for n in [16usize, 48] {
                let a = spec.build(n, 7);
                let b = spec.build(n, 7);
                assert_eq!(a, b, "{spec} must be deterministic at n = {n}");
                assert!(a.node_count() >= 2, "{spec} built a degenerate graph");
            }
        }
    }

    #[test]
    fn fingerprints_separate_families_and_parameters() {
        let mut seen = std::collections::HashSet::new();
        for spec in FamilySpec::examples() {
            assert!(
                seen.insert(spec.fingerprint()),
                "fingerprint collision at {spec}"
            );
        }
        // Parameter changes move the fingerprint (the store footgun).
        for (a, b) in [
            ("planted:4", "planted:6"),
            ("multi:2:4", "multi:3:4"),
            ("noisy:4:0.02", "noisy:4:0.05"),
            ("ws:4:0.1", "ws:6:0.1"),
            ("funnel:4:2", "funnel:4:3"),
        ] {
            assert_ne!(
                FamilySpec::parse(a).unwrap().fingerprint(),
                FamilySpec::parse(b).unwrap().fingerprint(),
                "{a} vs {b}"
            );
        }
        // And the fingerprint is stable across calls.
        let spec = FamilySpec::Planted { l: 4 };
        assert_eq!(spec.fingerprint_hex(), spec.fingerprint_hex());
        assert_eq!(spec.fingerprint_hex().len(), 32);
    }

    #[test]
    fn unknown_family_error_lists_the_catalog() {
        let err = FamilySpec::parse("nope").unwrap_err();
        assert!(err.contains("unknown family"), "{err}");
        for entry in FamilySpec::CATALOG {
            assert!(err.contains(entry.syntax), "{err} missing {}", entry.syntax);
        }
    }

    #[test]
    fn malformed_specs_are_rejected_with_context() {
        for bad in [
            "planted",     // missing parameter
            "planted:x",   // non-numeric
            "planted:2",   // cycle too short
            "noisy:4",     // missing noise rate
            "noisy:4:1.5", // probability out of range
            "ws:1:0.1",    // lattice degree too small
            "funnel:0:2",  // zero branches
            "er:-1",       // negative degree
            "trees:3",     // unexpected parameter
            "multi:0:4",   // zero copies
            "pa:0",        // zero attachment
        ] {
            let err = FamilySpec::parse(bad).unwrap_err();
            assert!(
                err.contains(bad) || err.contains("must be"),
                "error for {bad:?} lacks context: {err}"
            );
        }
    }

    #[test]
    fn planted_families_contain_their_cycle() {
        for (spec, l) in [
            (FamilySpec::Planted { l: 4 }, 4),
            (FamilySpec::MultiPlanted { copies: 2, l: 4 }, 4),
            (FamilySpec::NoisyPlanted { l: 4, p: 0.02 }, 4),
            (FamilySpec::PlantedPolarity { l: 6 }, 6),
        ] {
            let g = spec.build(48, 3);
            assert!(
                analysis::find_cycle_exact(&g, l, None).is_some(),
                "{spec} must contain C{l}"
            );
        }
    }

    #[test]
    fn structural_controls_hold() {
        // Trees and funnels are cycle-free; bipartite has no odd cycle;
        // the torus is 4-regular with girth 4; polarity is C4-free.
        assert_eq!(analysis::girth(&FamilySpec::RandomTrees.build(64, 1)), None);
        assert_eq!(
            analysis::girth(&FamilySpec::Funnel { branches: 4, k: 2 }.build(64, 1)),
            None
        );
        assert!(analysis::is_bipartite(
            &FamilySpec::Bipartite { p: 0.2 }.build(48, 2)
        ));
        let torus = FamilySpec::Torus.build(25, 0);
        assert_eq!(analysis::girth(&torus), Some(4));
        assert!(torus.nodes().all(|v| torus.degree(v) == 4));
        let polarity = FamilySpec::Polarity.build(150, 0);
        assert!(analysis::find_cycle_exact(&polarity, 4, None).is_none());
    }

    #[test]
    fn degenerate_sizes_snap_instead_of_panicking() {
        for spec in FamilySpec::examples() {
            let g = spec.build(1, 0);
            assert!(g.node_count() >= 2, "{spec} must snap n = 1 up");
        }
    }
}
