//! Edge-update streams as first-class, fingerprintable workloads.
//!
//! An [`UpdateSchedule`] is the dynamic-graph analogue of a
//! [`FamilySpec`]: a *description* of a workload — base family, update
//! rate, insert/delete mix, checkpoint count — that can be parsed from
//! a command line, rendered back to a canonical label, and
//! fingerprinted, so a replayed stream is store-keyable **data** rather
//! than an opaque sequence of mutations. Two runs of the same schedule
//! at the same `(n, seed)` produce byte-identical base graphs, update
//! sequences, and checkpoint snapshots; the engine's content-addressed
//! result store leans on exactly this to replay unchanged checkpoint
//! prefixes with zero detector invocations.
//!
//! Syntax: `<family>@rate=R,mix=M,checkpoints=C` — e.g.
//! `planted:4@rate=8,mix=0.7,checkpoints=4` replays 4 checkpoints on a
//! planted-`C4` base, applying 8 seeded updates (70% insertions)
//! before each one.
//!
//! ```
//! use congest_graph::stream::UpdateSchedule;
//!
//! let s = UpdateSchedule::parse("planted:4@rate=8,mix=0.7,checkpoints=4").unwrap();
//! assert_eq!(s.canonical_label(), "planted:4@rate=8,mix=0.7,checkpoints=4");
//! let mut a = s.replay(48, 1);
//! let mut b = s.replay(48, 1);
//! while let Some((i, ga)) = a.next_checkpoint() {
//!     let (j, gb) = b.next_checkpoint().unwrap();
//!     assert_eq!((i, &ga), (j, &gb)); // deterministic in (n, seed)
//! }
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::mutable::MutableGraph;
use crate::spec::FamilySpec;
use crate::{Graph, NodeId};

/// One edge update of a stream, endpoints normalized `u < v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeUpdate {
    /// Insert the edge `{u, v}`.
    Insert(NodeId, NodeId),
    /// Delete the edge `{u, v}`.
    Delete(NodeId, NodeId),
}

impl EdgeUpdate {
    /// The update's endpoints.
    pub fn endpoints(self) -> (NodeId, NodeId) {
        match self {
            EdgeUpdate::Insert(u, v) | EdgeUpdate::Delete(u, v) => (u, v),
        }
    }

    /// Whether this update is an insertion.
    pub fn is_insert(self) -> bool {
        matches!(self, EdgeUpdate::Insert(..))
    }
}

impl std::fmt::Display for EdgeUpdate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeUpdate::Insert(u, v) => write!(f, "+{u}-{v}"),
            EdgeUpdate::Delete(u, v) => write!(f, "-{u}-{v}"),
        }
    }
}

/// A seeded, fingerprintable edge-update workload: a base
/// [`FamilySpec`] instance plus `checkpoints` batches of `rate` updates
/// each, insertions drawn with probability `insert_mix` (deletions
/// otherwise). See the module docs for the syntax and the determinism
/// contract.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateSchedule {
    /// The family the base instance is drawn from.
    pub base: FamilySpec,
    /// Updates applied before each checkpoint.
    pub rate: usize,
    /// Probability in `[0, 1]` that an update is an insertion.
    pub insert_mix: f64,
    /// Number of checkpoints (verdict positions) in the stream.
    pub checkpoints: usize,
}

impl UpdateSchedule {
    /// Parses a schedule label (`<family>@rate=R,mix=M,checkpoints=C`).
    /// The family part routes through the one shared [`FamilySpec`]
    /// parser, so unknown families list the catalog here too.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending part.
    pub fn parse(label: &str) -> Result<UpdateSchedule, String> {
        let label = label.trim();
        let Some((family, params)) = label.split_once('@') else {
            return Err(format!(
                "update schedule {label:?} lacks an '@' section; expected \
                 \"<family>@rate=R,mix=M,checkpoints=C\""
            ));
        };
        let base = FamilySpec::parse(family)?;
        let mut rate: Option<usize> = None;
        let mut mix: Option<f64> = None;
        let mut checkpoints: Option<usize> = None;
        for part in params.split(',') {
            let part = part.trim();
            let Some((key, value)) = part.split_once('=') else {
                return Err(format!(
                    "bad schedule parameter {part:?} in {label:?}; expected key=value"
                ));
            };
            match key.trim() {
                "rate" => {
                    let v: usize = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad rate {value:?} in schedule {label:?}"))?;
                    if v == 0 {
                        return Err(format!("rate must be positive in schedule {label:?}"));
                    }
                    rate = Some(v);
                }
                "mix" => {
                    let v: f64 = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad mix {value:?} in schedule {label:?}"))?;
                    if !(0.0..=1.0).contains(&v) {
                        return Err(format!(
                            "mix must be in [0, 1], got {value:?} in schedule {label:?}"
                        ));
                    }
                    mix = Some(v);
                }
                "checkpoints" => {
                    let v: usize = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad checkpoints {value:?} in schedule {label:?}"))?;
                    if v == 0 {
                        return Err(format!(
                            "checkpoints must be positive in schedule {label:?}"
                        ));
                    }
                    checkpoints = Some(v);
                }
                other => {
                    return Err(format!(
                        "unknown schedule parameter {other:?} in {label:?}; \
                         known: rate, mix, checkpoints"
                    ));
                }
            }
        }
        Ok(UpdateSchedule {
            base,
            rate: rate.ok_or_else(|| format!("schedule {label:?} is missing rate=R"))?,
            insert_mix: mix.ok_or_else(|| format!("schedule {label:?} is missing mix=M"))?,
            checkpoints: checkpoints
                .ok_or_else(|| format!("schedule {label:?} is missing checkpoints=C"))?,
        })
    }

    /// The canonical label: parses back to an equal schedule, and is
    /// the human-readable half of the schedule's identity (the machine
    /// half is the [`fingerprint`](UpdateSchedule::fingerprint)).
    pub fn canonical_label(&self) -> String {
        format!(
            "{}@rate={},mix={},checkpoints={}",
            self.base.canonical_label(),
            self.rate,
            self.insert_mix,
            self.checkpoints
        )
    }

    /// A stable 128-bit fingerprint of the schedule's full identity —
    /// base family (with parameters), rate, mix, and checkpoint count.
    /// FNV-1a over a versioned rendering of the canonical label, like
    /// [`FamilySpec::fingerprint`]; bump the version tag if the replay
    /// construction ever changes behavior for the same label.
    pub fn fingerprint(&self) -> u128 {
        let canonical = format!("update-schedule-v1|{}", self.canonical_label());
        let mut h: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
        for b in canonical.as_bytes() {
            h ^= u128::from(*b);
            h = h.wrapping_mul(0x0000_0000_0100_0000_0000_0000_0000_013b);
        }
        h
    }

    /// The fingerprint as 32 hex characters (the form the result store
    /// embeds in checkpoint unit keys).
    pub fn fingerprint_hex(&self) -> String {
        format!("{:032x}", self.fingerprint())
    }

    /// Total updates across the whole stream.
    pub fn total_updates(&self) -> usize {
        self.rate * self.checkpoints
    }

    /// The update positions at which checkpoints fire (after
    /// `rate, 2·rate, …, checkpoints·rate` updates).
    pub fn checkpoint_positions(&self) -> Vec<usize> {
        (1..=self.checkpoints).map(|c| c * self.rate).collect()
    }

    /// Generates the base instance and the full seeded update sequence
    /// for `(n, seed)` — deterministic: two calls yield byte-identical
    /// graphs and update vectors.
    ///
    /// Insertions sample uniform non-edges, deletions uniform present
    /// edges; an impossible draw (inserting into a complete graph,
    /// deleting from an empty one) falls back to the other kind, so the
    /// stream always carries exactly
    /// [`total_updates`](UpdateSchedule::total_updates) updates.
    pub fn generate(&self, n: usize, seed: u64) -> (Graph, Vec<EdgeUpdate>) {
        let base = self.base.build(n, seed);
        let n = base.node_count();
        // Mix the schedule identity into the update stream's seed, so
        // two schedules sharing a base family draw distinct sequences.
        let mut rng = StdRng::seed_from_u64(seed ^ (self.fingerprint() as u64));
        let mut edges: Vec<(NodeId, NodeId)> = base.edge_vec();
        let mut present: std::collections::HashSet<(NodeId, NodeId)> =
            edges.iter().copied().collect();
        let total_pairs = n * n.saturating_sub(1) / 2;
        let mut updates = Vec::with_capacity(self.total_updates());
        for _ in 0..self.total_updates() {
            let can_insert = edges.len() < total_pairs;
            let can_delete = !edges.is_empty();
            debug_assert!(can_insert || can_delete, "families snap n >= 2");
            let insert = match (can_insert, can_delete) {
                (true, false) => true,
                (false, true) => false,
                _ => rng.gen_bool(self.insert_mix),
            };
            if insert {
                let (u, v) = sample_non_edge(&mut rng, n, &present);
                present.insert((u, v));
                edges.push((u, v));
                updates.push(EdgeUpdate::Insert(u, v));
            } else {
                let i = rng.gen_range(0..edges.len());
                let (u, v) = edges.swap_remove(i);
                present.remove(&(u, v));
                updates.push(EdgeUpdate::Delete(u, v));
            }
        }
        (base, updates)
    }

    /// Starts a replay of the schedule at `(n, seed)`: a cursor that
    /// applies one checkpoint batch at a time and hands out CSR
    /// snapshots (byte-identical to building each checkpoint's edge set
    /// from scratch — see [`MutableGraph::snapshot`]).
    pub fn replay(&self, n: usize, seed: u64) -> ScheduleReplay {
        let (base, updates) = self.generate(n, seed);
        ScheduleReplay {
            graph: MutableGraph::from_graph(base),
            updates,
            applied: 0,
            rate: self.rate,
            checkpoints: self.checkpoints,
            emitted: 0,
        }
    }
}

impl std::fmt::Display for UpdateSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.canonical_label())
    }
}

/// Samples a uniform non-edge. Bounded rejection sampling with a
/// deterministic lexicographic fallback, so termination never depends
/// on luck in near-complete graphs.
fn sample_non_edge(
    rng: &mut StdRng,
    n: usize,
    present: &std::collections::HashSet<(NodeId, NodeId)>,
) -> (NodeId, NodeId) {
    for _ in 0..64 {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a == b {
            continue;
        }
        let (u, v) = if a < b { (a, b) } else { (b, a) };
        let key = (NodeId::new(u), NodeId::new(v));
        if !present.contains(&key) {
            return key;
        }
    }
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            let key = (NodeId::new(u), NodeId::new(v));
            if !present.contains(&key) {
                return key;
            }
        }
    }
    unreachable!("caller checked a non-edge exists")
}

/// A one-pass replay cursor over an [`UpdateSchedule`] instance; see
/// [`UpdateSchedule::replay`].
#[derive(Debug, Clone)]
pub struct ScheduleReplay {
    graph: MutableGraph,
    updates: Vec<EdgeUpdate>,
    applied: usize,
    rate: usize,
    checkpoints: usize,
    emitted: usize,
}

impl ScheduleReplay {
    /// The live mutable graph (positioned after the updates applied so
    /// far).
    pub fn graph(&self) -> &MutableGraph {
        &self.graph
    }

    /// Updates applied so far.
    pub fn updates_applied(&self) -> usize {
        self.applied
    }

    /// The full update sequence of the stream.
    pub fn updates(&self) -> &[EdgeUpdate] {
        &self.updates
    }

    /// Applies the next batch of `rate` updates and returns the
    /// 0-based checkpoint index plus the CSR snapshot at that point;
    /// `None` once every checkpoint has fired.
    pub fn next_checkpoint(&mut self) -> Option<(usize, Graph)> {
        if self.emitted >= self.checkpoints {
            return None;
        }
        let end = (self.applied + self.rate).min(self.updates.len());
        for i in self.applied..end {
            let update = self.updates[i];
            self.graph
                .apply(update)
                .expect("generated updates are always in range");
        }
        self.applied = end;
        let index = self.emitted;
        self.emitted += 1;
        Some((index, self.graph.snapshot()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize;
    use crate::GraphBuilder;

    #[test]
    fn labels_roundtrip_through_parse() {
        for label in [
            "planted:4@rate=8,mix=0.7,checkpoints=4",
            "trees@rate=1,mix=0,checkpoints=1",
            "ws:4:0.1@rate=16,mix=0.25,checkpoints=3",
        ] {
            let s = UpdateSchedule::parse(label).unwrap();
            assert_eq!(s.canonical_label(), label);
            assert_eq!(UpdateSchedule::parse(&s.canonical_label()).unwrap(), s);
        }
    }

    #[test]
    fn malformed_schedules_are_rejected_with_context() {
        for bad in [
            "planted:4",                                  // no '@' section
            "planted:4@rate=8,mix=0.7",                   // missing checkpoints
            "planted:4@rate=0,mix=0.7,checkpoints=4",     // zero rate
            "planted:4@rate=8,mix=1.5,checkpoints=4",     // mix out of range
            "planted:4@rate=8,mix=0.7,checkpoints=0",     // zero checkpoints
            "planted:4@rate=8,mix=0.7,checkpoints=4,x=1", // unknown key
            "planted:4@rate",                             // not key=value
            "nope@rate=8,mix=0.7,checkpoints=4",          // unknown family
        ] {
            let err = UpdateSchedule::parse(bad).unwrap_err();
            assert!(!err.is_empty(), "{bad:?}");
        }
        // The family error is the shared catalog error.
        let err = UpdateSchedule::parse("nope@rate=1,mix=0,checkpoints=1").unwrap_err();
        assert!(err.contains("known families"), "{err}");
    }

    #[test]
    fn fingerprints_cover_every_parameter() {
        let base = UpdateSchedule::parse("planted:4@rate=8,mix=0.7,checkpoints=4").unwrap();
        for other in [
            "planted:6@rate=8,mix=0.7,checkpoints=4",
            "planted:4@rate=9,mix=0.7,checkpoints=4",
            "planted:4@rate=8,mix=0.5,checkpoints=4",
            "planted:4@rate=8,mix=0.7,checkpoints=5",
        ] {
            assert_ne!(
                base.fingerprint(),
                UpdateSchedule::parse(other).unwrap().fingerprint(),
                "{other}"
            );
        }
        assert_eq!(base.fingerprint_hex().len(), 32);
        // And it must differ from the bare family fingerprint.
        assert_ne!(base.fingerprint(), base.base.fingerprint());
    }

    #[test]
    fn generation_is_deterministic_and_exact_length() {
        let s = UpdateSchedule::parse("er:3@rate=8,mix=0.6,checkpoints=3").unwrap();
        let (g1, u1) = s.generate(40, 5);
        let (g2, u2) = s.generate(40, 5);
        assert_eq!(g1, g2);
        assert_eq!(u1, u2);
        assert_eq!(u1.len(), s.total_updates());
        assert_eq!(s.checkpoint_positions(), vec![8, 16, 24]);
        // A different seed is allowed to differ (and essentially always
        // does for a stream this long).
        let (_, u3) = s.generate(40, 6);
        assert_ne!(u1, u3);
    }

    #[test]
    fn updates_are_always_applicable_in_order() {
        // Every insertion targets a non-edge, every deletion a present
        // edge — replaying the stream through a MutableGraph must
        // report `changed` for every single update.
        let s = UpdateSchedule::parse("trees@rate=12,mix=0.5,checkpoints=3").unwrap();
        let (base, updates) = s.generate(24, 2);
        let mut g = MutableGraph::from_graph(base);
        for u in updates {
            assert!(g.apply(u).unwrap(), "{u} must change the graph");
        }
    }

    #[test]
    fn saturated_mixes_fall_back_instead_of_stalling() {
        // All-delete on a tiny tree runs the edge set dry; the stream
        // must fall back to insertions rather than stall or panic.
        let s = UpdateSchedule::parse("trees@rate=30,mix=0,checkpoints=1").unwrap();
        let (base, updates) = s.generate(8, 1);
        assert_eq!(updates.len(), 30);
        assert!(updates.iter().any(|u| u.is_insert()));
        let mut g = MutableGraph::from_graph(base);
        for u in updates {
            g.apply(u).unwrap();
        }
        // All-insert on a tiny graph saturates the complete graph; the
        // stream must fall back to deletions.
        let s = UpdateSchedule::parse("trees@rate=30,mix=1,checkpoints=1").unwrap();
        let (_, updates) = s.generate(4, 1);
        assert_eq!(updates.len(), 30);
        assert!(updates.iter().any(|u| !u.is_insert()));
    }

    #[test]
    fn incremental_equals_rebuild_for_the_whole_catalog() {
        // The tentpole equivalence guarantee, for EVERY family in the
        // catalog: replay a seeded schedule through MutableGraph and
        // compare each checkpoint snapshot against a from-scratch CSR
        // build of the same edge set — byte-identical serialization
        // included. A compaction threshold of 0 additionally forces the
        // merge path after every single update.
        for spec in FamilySpec::examples() {
            let schedule = UpdateSchedule {
                base: spec.clone(),
                rate: 6,
                insert_mix: 0.6,
                checkpoints: 3,
            };
            let (base, updates) = schedule.generate(32, 7);
            let n = base.node_count();
            let mut incremental = MutableGraph::from_graph(base.clone());
            let mut compacting =
                MutableGraph::from_graph(base.clone()).with_compaction_threshold(0);
            let mut edges: std::collections::BTreeSet<(NodeId, NodeId)> =
                base.edge_vec().into_iter().collect();
            for (pos, &u) in updates.iter().enumerate() {
                incremental.apply(u).unwrap();
                compacting.apply(u).unwrap();
                match u {
                    EdgeUpdate::Insert(a, b) => edges.insert((a, b)),
                    EdgeUpdate::Delete(a, b) => edges.remove(&(a, b)),
                };
                if (pos + 1) % schedule.rate != 0 {
                    continue;
                }
                let mut b = GraphBuilder::new(n);
                for &(x, y) in &edges {
                    b.add_edge(x, y);
                }
                let rebuilt = b.build();
                let snap = incremental.snapshot();
                assert_eq!(snap, rebuilt, "{spec} diverged at update {}", pos + 1);
                assert_eq!(
                    serialize::to_text(&snap),
                    serialize::to_text(&rebuilt),
                    "{spec}: serialized bytes must match exactly"
                );
                assert_eq!(compacting.snapshot(), rebuilt, "{spec} (compacting)");
            }
        }
    }

    #[test]
    fn replay_cursor_matches_manual_application() {
        let s = UpdateSchedule::parse("planted:4@rate=5,mix=0.7,checkpoints=4").unwrap();
        let (base, updates) = s.generate(36, 3);
        let mut replay = s.replay(36, 3);
        let mut manual = MutableGraph::from_graph(base);
        let mut seen = 0;
        while let Some((index, snap)) = replay.next_checkpoint() {
            assert_eq!(index, seen);
            for &u in &updates[seen * s.rate..(seen + 1) * s.rate] {
                manual.apply(u).unwrap();
            }
            assert_eq!(snap, manual.snapshot());
            seen += 1;
        }
        assert_eq!(seen, s.checkpoints);
        assert!(replay.next_checkpoint().is_none());
        assert_eq!(replay.updates_applied(), s.total_updates());
    }
}
