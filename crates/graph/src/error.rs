//! Error types for graph construction and parsing.

use std::error::Error;
use std::fmt;

use crate::NodeId;

/// Errors produced when building or parsing a [`crate::Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge `(u, u)` was supplied; simple graphs have no self-loops.
    SelfLoop {
        /// The offending vertex.
        node: NodeId,
    },
    /// An edge endpoint was at least the vertex count.
    NodeOutOfRange {
        /// The offending vertex.
        node: NodeId,
        /// The number of vertices of the graph under construction.
        n: usize,
    },
    /// A serialized graph could not be parsed.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph on {n} vertices")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::SelfLoop {
            node: NodeId::new(7),
        };
        assert_eq!(e.to_string(), "self-loop at node 7");
        let e = GraphError::NodeOutOfRange {
            node: NodeId::new(9),
            n: 4,
        };
        assert_eq!(e.to_string(), "node 9 out of range for graph on 4 vertices");
        let e = GraphError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
