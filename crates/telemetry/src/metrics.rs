//! Lock-free metric primitives: [`Counter`], [`Gauge`], and a log2-bucketed
//! [`Histogram`].
//!
//! All three are plain atomics so hot paths (the simulator superstep loop,
//! the engine worker pool) can update them unconditionally: a metric update
//! is a handful of relaxed RMW operations and never allocates, takes a lock,
//! or touches the installed [`Recorder`](crate::Recorder).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta` to the counter.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Returns the current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (inflight requests, active connections).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge starting at zero.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Overwrites the gauge with `value`.
    #[inline]
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative) to the gauge.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one to the gauge.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one from the gauge.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Returns the current value.
    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of buckets in a [`Histogram`]: bucket 0 holds the value `0`,
/// bucket `i >= 1` holds values in `[2^(i-1), 2^i - 1]`, so bucket 64
/// holds `[2^63, u64::MAX]`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
///
/// Recording is four relaxed RMW operations plus two CAS-free min/max
/// updates; there is no locking and no allocation after construction.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Returns the bucket index for `value`: 0 for the value zero, otherwise
    /// `64 - value.leading_zeros()` (the position of the highest set bit,
    /// one-based).
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Returns the largest value that lands in bucket `index`, or `None` for
    /// the final bucket whose upper bound is unbounded in Prometheus terms
    /// (it still tops out at `u64::MAX`).
    pub fn bucket_upper_bound(index: usize) -> Option<u64> {
        match index {
            0 => Some(0),
            i if i < HISTOGRAM_BUCKETS - 1 => Some((1u64 << i) - 1),
            _ => None,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Total number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples (wrapping on overflow).
    pub sum: u64,
    /// Smallest recorded sample, or 0 when empty.
    pub min: u64,
    /// Largest recorded sample, or 0 when empty.
    pub max: u64,
    /// Per-bucket sample counts; see [`Histogram::bucket_index`].
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_cover_zero_and_max() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for i in 1..64usize {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(Histogram::bucket_index(lo), i, "low edge of bucket {i}");
            assert_eq!(Histogram::bucket_index(hi), i, "high edge of bucket {i}");
            assert_eq!(
                Histogram::bucket_index(hi + 1),
                i + 1,
                "first value past bucket {i}"
            );
        }
        assert_eq!(Histogram::bucket_index(1u64 << 63), 64);
    }

    #[test]
    fn bucket_upper_bounds_match_indexing() {
        assert_eq!(Histogram::bucket_upper_bound(0), Some(0));
        assert_eq!(Histogram::bucket_upper_bound(1), Some(1));
        assert_eq!(Histogram::bucket_upper_bound(2), Some(3));
        assert_eq!(Histogram::bucket_upper_bound(64), None);
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            let hi = Histogram::bucket_upper_bound(i).unwrap();
            assert_eq!(Histogram::bucket_index(hi), i);
        }
    }

    #[test]
    fn histogram_records_extremes() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, u64::MAX);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[64], 1);
    }

    #[test]
    fn concurrent_counter_increments_from_scoped_threads() {
        let counter = Counter::new();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    for _ in 0..per_thread {
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(counter.value(), threads * per_thread);
    }

    #[test]
    fn concurrent_histogram_records_from_scoped_threads() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..1_000u64 {
                        h.record(t * 1_000 + i);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 4_000);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 3_999);
    }

    #[test]
    fn gauge_tracks_signed_values() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.value(), 1);
        g.add(-5);
        assert_eq!(g.value(), -4);
        g.set(7);
        assert_eq!(g.value(), 7);
    }
}
