//! A [`Recorder`] that appends every event to a JSONL file.
//!
//! Each line is one flat JSON object (see [`Event::to_line`]); the schema
//! is stable and validated by CI: every line carries `ev` (one of
//! `counter`, `gauge`, `instant`, `span`), `name`, and `ts_us`; spans add
//! `dur_us` and `tid`; remaining keys are event arguments.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::recorder::{Event, Recorder};

/// A recorder writing one flat-JSON line per event to a file.
///
/// Writes are buffered; call [`crate::flush`] (or drop/uninstall the sink)
/// before reading the file back. I/O errors after creation are swallowed —
/// telemetry must never take down the run it is observing.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
    path: PathBuf,
}

impl JsonlSink {
    /// Creates (truncating) the sink file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlSink> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
            path,
        })
    }

    /// The path the sink writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Recorder for JsonlSink {
    fn record(&self, event: &Event) {
        let line = event.to_line();
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(writer, "{line}");
    }

    fn flush(&self) {
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writer.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        Recorder::flush(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_flat_line;

    #[test]
    fn sink_writes_parseable_lines() {
        let dir = std::env::temp_dir().join(format!("telemetry-jsonl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&Event::Counter {
            name: "c",
            ts_us: 1,
            value: 2,
        });
        sink.record(&Event::Span {
            name: "s",
            ts_us: 3,
            dur_us: 4,
            tid: 1,
            args: vec![("unit", "deadbeef".into())],
        });
        Recorder::flush(&sink);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(parse_flat_line(line).is_some(), "unparseable: {line}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
