//! Converts a JSONL event trace (written by [`JsonlSink`](crate::JsonlSink))
//! into Chrome `trace_event` format, openable in `about://tracing` or
//! <https://ui.perfetto.dev>.
//!
//! Mapping: spans become complete events (`"ph":"X"`), counters, gauges,
//! and numeric instants become counter tracks (`"ph":"C"`), and instants
//! with no numeric payload become thread-scoped instant events
//! (`"ph":"i"`).

use std::path::Path;

use crate::json::{json_escape, json_f64, parse_flat_line, FlatValue};

const RESERVED: &[&str] = &["ev", "name", "ts_us", "dur_us", "tid", "value"];

/// Converts JSONL trace text to a Chrome `trace_event` JSON document.
/// Unparseable lines are skipped; the result always contains a
/// `traceEvents` array.
pub fn chrome_trace(jsonl: &str) -> String {
    let mut events = Vec::new();
    for line in jsonl.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some(fields) = parse_flat_line(line) else {
            continue;
        };
        if let Some(event) = convert_line(&fields) {
            events.push(event);
        }
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}",
        events.join(",")
    )
}

/// Reads the JSONL trace at `input`, writes the Chrome-format document to
/// `output`, and returns the number of converted events.
pub fn convert_file(input: &Path, output: &Path) -> std::io::Result<usize> {
    let jsonl = std::fs::read_to_string(input)?;
    let document = chrome_trace(&jsonl);
    let converted = jsonl
        .lines()
        .filter(|l| parse_flat_line(l.trim()).is_some())
        .count();
    std::fs::write(output, document)?;
    Ok(converted)
}

fn convert_line(fields: &[(String, FlatValue)]) -> Option<String> {
    let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    let ev = get("ev")?.as_str()?.to_string();
    let name = get("name")?.as_str()?.to_string();
    let ts = get("ts_us")?.as_f64()?;
    let tid = get("tid").and_then(|v| v.as_f64()).unwrap_or(0.0);
    let args: Vec<&(String, FlatValue)> = fields
        .iter()
        .filter(|(k, _)| !RESERVED.contains(&k.as_str()))
        .collect();
    match ev.as_str() {
        "span" => {
            let dur = get("dur_us")?.as_f64()?;
            Some(format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{}}}",
                json_escape(&name),
                json_num(ts),
                json_num(dur),
                json_num(tid),
                args_object(&args)
            ))
        }
        "counter" | "gauge" => {
            let value = get("value")?.as_f64()?;
            Some(format!(
                "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":0,\"args\":{{\"value\":{}}}}}",
                json_escape(&name),
                json_num(ts),
                json_num(value)
            ))
        }
        "instant" => {
            let numeric: Vec<&(String, FlatValue)> = args
                .iter()
                .filter(|(_, v)| v.as_f64().is_some())
                .copied()
                .collect();
            if numeric.is_empty() {
                Some(format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{}}}",
                    json_escape(&name),
                    json_num(ts),
                    json_num(tid),
                    args_object(&args)
                ))
            } else {
                Some(format!(
                    "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":0,\"args\":{}}}",
                    json_escape(&name),
                    json_num(ts),
                    args_object(&numeric)
                ))
            }
        }
        _ => None,
    }
}

fn args_object(args: &[&(String, FlatValue)]) -> String {
    let parts: Vec<String> = args
        .iter()
        .map(|(key, value)| {
            let rendered = match value {
                FlatValue::Num(v) => json_num(*v),
                FlatValue::Str(s) => format!("\"{}\"", json_escape(s)),
                FlatValue::Bool(b) => b.to_string(),
                FlatValue::Null => "null".to_string(),
            };
            format!("\"{}\":{rendered}", json_escape(key))
        })
        .collect();
    format!("{{{}}}", parts.join(","))
}

fn json_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        json_f64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converts_span_counter_and_round() {
        let jsonl = "\
{\"ev\":\"span\",\"name\":\"engine.unit\",\"ts_us\":10,\"dur_us\":5,\"tid\":2,\"det\":\"bfs\",\"n\":64}
{\"ev\":\"counter\",\"name\":\"engine.units.executed\",\"ts_us\":16,\"value\":1}
{\"ev\":\"instant\",\"name\":\"sim.round\",\"ts_us\":12,\"tid\":2,\"superstep\":0,\"messages\":8}
garbage line
";
        let doc = chrome_trace(jsonl);
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"name\":\"engine.unit\""));
        assert!(doc.contains("\"args\":{\"det\":\"bfs\",\"n\":64}"));
        assert!(doc.contains("\"ph\":\"C\""));
        assert!(doc.contains("\"messages\":8"));
        assert!(!doc.contains("garbage"));
    }

    #[test]
    fn empty_input_still_yields_document() {
        assert_eq!(
            chrome_trace(""),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"
        );
    }
}
