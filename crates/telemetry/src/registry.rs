//! A named-metric registry with flat-JSON and Prometheus-style renderers.
//!
//! Handles are `Arc`s: resolve them once (per struct, per run, or in a
//! `OnceLock`) and update lock-free afterwards. The registry itself is only
//! locked on resolution and snapshot, never on update.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::{json_escape, json_f64};
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

/// A collection of named counters, gauges, and histograms.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<&'static str, Arc<Counter>>,
    gauges: BTreeMap<&'static str, Arc<Gauge>>,
    histograms: BTreeMap<&'static str, Arc<Histogram>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the process-global registry every layer records into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Resolves (creating on first use) the counter named `name`.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.counters.entry(name).or_default().clone()
    }

    /// Resolves (creating on first use) the gauge named `name`.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.gauges.entry(name).or_default().clone()
    }

    /// Resolves (creating on first use) the histogram named `name`.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.histograms.entry(name).or_default().clone()
    }

    /// Takes a point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(name, c)| (name.to_string(), c.value()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(name, g)| (name.to_string(), g.value()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| (name.to_string(), h.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`Registry`], ready to render.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram snapshots, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Renders the snapshot as one flat JSON object. Histograms are
    /// flattened to `<name>.count`, `<name>.sum`, `<name>.min`,
    /// `<name>.max`, and `<name>.mean` keys.
    pub fn to_flat_json(&self) -> String {
        let mut parts = Vec::new();
        for (name, value) in &self.counters {
            parts.push(format!("\"{}\":{value}", json_escape(name)));
        }
        for (name, value) in &self.gauges {
            parts.push(format!("\"{}\":{value}", json_escape(name)));
        }
        for (name, h) in &self.histograms {
            let name = json_escape(name);
            parts.push(format!("\"{name}.count\":{}", h.count));
            parts.push(format!("\"{name}.sum\":{}", h.sum));
            parts.push(format!("\"{name}.min\":{}", h.min));
            parts.push(format!("\"{name}.max\":{}", h.max));
            let mean = if h.count == 0 {
                0.0
            } else {
                h.sum as f64 / h.count as f64
            };
            parts.push(format!("\"{name}.mean\":{}", json_f64(mean)));
        }
        format!("{{{}}}", parts.join(","))
    }

    /// Renders the snapshot as Prometheus-style text exposition. Metric
    /// names are prefixed with `prefix` and dots become underscores;
    /// histograms render cumulative `_bucket{le=...}` series plus `_sum`
    /// and `_count`.
    pub fn to_prometheus(&self, prefix: &str) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let metric = prom_name(prefix, name);
            out.push_str(&format!("# TYPE {metric} counter\n{metric} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let metric = prom_name(prefix, name);
            out.push_str(&format!("# TYPE {metric} gauge\n{metric} {value}\n"));
        }
        for (name, h) in &self.histograms {
            let metric = prom_name(prefix, name);
            out.push_str(&format!("# TYPE {metric} histogram\n"));
            let mut cumulative = 0u64;
            for (index, bucket) in h.buckets.iter().enumerate() {
                if *bucket == 0 {
                    continue;
                }
                cumulative += bucket;
                let le = match Histogram::bucket_upper_bound(index) {
                    Some(bound) => bound.to_string(),
                    None => "+Inf".to_string(),
                };
                out.push_str(&format!("{metric}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{metric}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{metric}_sum {}\n", h.sum));
            out.push_str(&format!("{metric}_count {}\n", h.count));
        }
        out
    }
}

fn prom_name(prefix: &str, name: &str) -> String {
    let mut out = String::with_capacity(prefix.len() + name.len() + 1);
    out.push_str(prefix);
    if !prefix.is_empty() && !prefix.ends_with('_') {
        out.push('_');
    }
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_flat_line;

    #[test]
    fn handles_are_shared() {
        let registry = Registry::new();
        registry.counter("a.b").add(2);
        registry.counter("a.b").add(3);
        assert_eq!(registry.counter("a.b").value(), 5);
    }

    #[test]
    fn flat_json_snapshot_parses_back() {
        let registry = Registry::new();
        registry.counter("units.executed").add(7);
        registry.gauge("inflight").set(-2);
        registry.histogram("latency_ns").record(100);
        let json = registry.snapshot().to_flat_json();
        let fields = parse_flat_line(&json).expect("snapshot must be flat JSON");
        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(get("units.executed").unwrap().as_f64(), Some(7.0));
        assert_eq!(get("inflight").unwrap().as_f64(), Some(-2.0));
        assert_eq!(get("latency_ns.count").unwrap().as_f64(), Some(1.0));
        assert_eq!(get("latency_ns.mean").unwrap().as_f64(), Some(100.0));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let registry = Registry::new();
        registry.counter("serve.connections.total").add(4);
        registry.histogram("serve.op_ns.ping").record(900);
        let text = registry.snapshot().to_prometheus("even_cycle");
        assert!(text.contains("# TYPE even_cycle_serve_connections_total counter"));
        assert!(text.contains("even_cycle_serve_connections_total 4"));
        assert!(text.contains("# TYPE even_cycle_serve_op_ns_ping histogram"));
        assert!(text.contains("even_cycle_serve_op_ns_ping_bucket{le=\"1023\"} 1"));
        assert!(text.contains("even_cycle_serve_op_ns_ping_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("even_cycle_serve_op_ns_ping_sum 900"));
        assert!(text.contains("even_cycle_serve_op_ns_ping_count 1"));
    }
}
