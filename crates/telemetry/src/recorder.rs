//! The event side of telemetry: [`Event`], the [`Recorder`] trait, the
//! process-global recorder slot, and RAII [`Span`] timers.
//!
//! Events are only *constructed* when a recorder is installed and enabled;
//! the disabled path is a single relaxed atomic load and performs no
//! allocation, which is what lets instrumentation sit inside the simulator
//! superstep loop.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

use crate::json::{json_escape, json_f64};

/// A value attached to an [`Event`] as a named argument.
#[derive(Debug, Clone)]
pub enum ArgValue {
    /// An unsigned integer, rendered unquoted.
    U64(u64),
    /// A signed integer, rendered unquoted.
    I64(i64),
    /// A float, rendered unquoted (`null` when non-finite).
    F64(f64),
    /// A string, rendered quoted and escaped.
    Str(String),
}

impl ArgValue {
    /// Renders the value as a flat-JSON fragment.
    pub fn to_json(&self) -> String {
        match self {
            ArgValue::U64(v) => v.to_string(),
            ArgValue::I64(v) => v.to_string(),
            ArgValue::F64(v) => json_f64(*v),
            ArgValue::Str(s) => format!("\"{}\"", json_escape(s)),
        }
    }

    /// Returns the value as `f64` when it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ArgValue::U64(v) => Some(*v as f64),
            ArgValue::I64(v) => Some(*v as f64),
            ArgValue::F64(v) => Some(*v),
            ArgValue::Str(_) => None,
        }
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(u64::from(v))
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::U64(u64::from(v))
    }
}

/// Named arguments attached to an event.
pub type Args = Vec<(&'static str, ArgValue)>;

/// A single telemetry event handed to the installed [`Recorder`].
#[derive(Debug, Clone)]
pub enum Event {
    /// A counter delta observed at a point in time.
    Counter {
        /// Metric name (dotted lowercase, e.g. `engine.units.executed`).
        name: &'static str,
        /// Microseconds since the process telemetry epoch.
        ts_us: u64,
        /// Counter value or delta.
        value: u64,
    },
    /// A gauge level observed at a point in time.
    Gauge {
        /// Metric name.
        name: &'static str,
        /// Microseconds since the process telemetry epoch.
        ts_us: u64,
        /// Gauge level.
        value: i64,
    },
    /// A point event with structured arguments (e.g. one simulator round).
    Instant {
        /// Event name.
        name: &'static str,
        /// Microseconds since the process telemetry epoch.
        ts_us: u64,
        /// Logical thread id (small dense integers, see [`thread_id`]).
        tid: u64,
        /// Named arguments.
        args: Args,
    },
    /// A completed timed region.
    Span {
        /// Span name.
        name: &'static str,
        /// Start time, microseconds since the process telemetry epoch.
        ts_us: u64,
        /// Duration in microseconds.
        dur_us: u64,
        /// Logical thread id.
        tid: u64,
        /// Named arguments.
        args: Args,
    },
}

impl Event {
    /// Renders the event as one flat-JSON line (no trailing newline).
    ///
    /// Reserved top-level keys are `ev`, `name`, `ts_us`, `dur_us`, `tid`,
    /// and `value`; arguments are flattened alongside them, so argument
    /// names must avoid the reserved set.
    pub fn to_line(&self) -> String {
        let mut out = String::with_capacity(96);
        match self {
            Event::Counter { name, ts_us, value } => {
                out.push_str(&format!(
                    "{{\"ev\":\"counter\",\"name\":\"{}\",\"ts_us\":{ts_us},\"value\":{value}",
                    json_escape(name)
                ));
            }
            Event::Gauge { name, ts_us, value } => {
                out.push_str(&format!(
                    "{{\"ev\":\"gauge\",\"name\":\"{}\",\"ts_us\":{ts_us},\"value\":{value}",
                    json_escape(name)
                ));
            }
            Event::Instant {
                name,
                ts_us,
                tid,
                args,
            } => {
                out.push_str(&format!(
                    "{{\"ev\":\"instant\",\"name\":\"{}\",\"ts_us\":{ts_us},\"tid\":{tid}",
                    json_escape(name)
                ));
                for (key, value) in args {
                    out.push_str(&format!(",\"{}\":{}", json_escape(key), value.to_json()));
                }
            }
            Event::Span {
                name,
                ts_us,
                dur_us,
                tid,
                args,
            } => {
                out.push_str(&format!(
                    "{{\"ev\":\"span\",\"name\":\"{}\",\"ts_us\":{ts_us},\"dur_us\":{dur_us},\"tid\":{tid}",
                    json_escape(name)
                ));
                for (key, value) in args {
                    out.push_str(&format!(",\"{}\":{}", json_escape(key), value.to_json()));
                }
            }
        }
        out.push('}');
        out
    }
}

/// Sink for telemetry events.
///
/// Implementations must be cheap and must never panic: they run inside the
/// simulator hot loop and the serve connection threads. Telemetry is
/// observational only — a recorder must not influence results (the workspace
/// asserts store bytes and reports are byte-identical with a recorder on or
/// off).
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// Whether events should be constructed and delivered at all.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Accepts one event.
    fn record(&self, event: &Event);

    /// Flushes any buffered output.
    fn flush(&self) {}
}

/// A recorder that drops every event; the default when nothing is installed.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn is_enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: &Event) {}
}

static RECORDER: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Installs `recorder` as the process-global event sink, replacing any
/// previous one (the previous recorder is flushed on the way out).
///
/// Unlike a write-once global, the slot is swappable so one process can
/// compare recorder-on and recorder-off runs (simbench does exactly this).
pub fn install(recorder: Arc<dyn Recorder>) {
    let enabled = recorder.is_enabled();
    let previous = {
        let mut slot = RECORDER.write().unwrap_or_else(|e| e.into_inner());
        slot.replace(recorder)
    };
    ENABLED.store(enabled, Ordering::SeqCst);
    if let Some(previous) = previous {
        previous.flush();
    }
}

/// Removes the installed recorder (flushing it) and returns to the no-op
/// default.
pub fn uninstall() {
    ENABLED.store(false, Ordering::SeqCst);
    let previous = {
        let mut slot = RECORDER.write().unwrap_or_else(|e| e.into_inner());
        slot.take()
    };
    if let Some(previous) = previous {
        previous.flush();
    }
}

/// Whether an enabled recorder is installed. This is the hot-path guard:
/// one relaxed atomic load, no lock.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Delivers `event` to the installed recorder, if any.
pub fn record(event: Event) {
    if !enabled() {
        return;
    }
    let slot = RECORDER.read().unwrap_or_else(|e| e.into_inner());
    if let Some(recorder) = slot.as_ref() {
        recorder.record(&event);
    }
}

/// Flushes the installed recorder, if any.
pub fn flush() {
    let slot = RECORDER.read().unwrap_or_else(|e| e.into_inner());
    if let Some(recorder) = slot.as_ref() {
        recorder.flush();
    }
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The process telemetry epoch: the instant timestamps are measured from.
/// Fixed the first time any telemetry timestamp is taken.
pub fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed between the telemetry epoch and now.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Microseconds elapsed between the telemetry epoch and `at` (saturating to
/// zero for instants before the epoch).
pub fn instant_us(at: Instant) -> u64 {
    at.saturating_duration_since(epoch()).as_micros() as u64
}

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// A small dense integer identifying the calling thread, stable for the
/// thread's lifetime. (`std::thread::ThreadId` has no stable integer form,
/// and Chrome's trace viewer wants small numeric `tid`s.)
pub fn thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

/// Emits an [`Event::Instant`] if a recorder is enabled; `args` is only
/// invoked (and only allocates) on the enabled path.
pub fn instant_event(name: &'static str, args: impl FnOnce() -> Args) {
    if !enabled() {
        return;
    }
    record(Event::Instant {
        name,
        ts_us: now_us(),
        tid: thread_id(),
        args: args(),
    });
}

/// An RAII timed region. Construct with [`Span::begin`]; the span event is
/// emitted when the value drops. When no recorder is enabled the span is
/// inert: no clock read, no allocation, no event.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    args: Args,
}

impl Span {
    /// Starts a span named `name` (inert when telemetry is disabled).
    pub fn begin(name: &'static str) -> Span {
        let start = if enabled() {
            Some(Instant::now())
        } else {
            None
        };
        Span {
            name,
            start,
            args: Vec::new(),
        }
    }

    /// Whether the span is live (a recorder was enabled at `begin` time).
    pub fn is_active(&self) -> bool {
        self.start.is_some()
    }

    /// Attaches an argument (builder form). No-op on an inert span.
    pub fn with(mut self, key: &'static str, value: impl Into<ArgValue>) -> Span {
        self.push(key, value);
        self
    }

    /// Attaches an argument after construction (for values only known once
    /// the timed work has produced them). No-op on an inert span.
    pub fn push(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if self.start.is_some() {
            self.args.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let dur_us = start.elapsed().as_micros() as u64;
            record(Event::Span {
                name: self.name,
                ts_us: instant_us(start),
                dur_us,
                tid: thread_id(),
                args: std::mem::take(&mut self.args),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Debug, Default)]
    struct CollectingRecorder {
        events: Mutex<Vec<Event>>,
    }

    impl Recorder for CollectingRecorder {
        fn record(&self, event: &Event) {
            self.events.lock().unwrap().push(event.clone());
        }
    }

    #[test]
    fn span_emits_event_with_args_when_enabled() {
        let recorder = Arc::new(CollectingRecorder::default());
        install(recorder.clone());
        {
            let mut span = Span::begin("test.span").with("det", "bfs");
            span.push("n", 64u64);
        }
        uninstall();
        let events = recorder.events.lock().unwrap();
        let found = events.iter().any(|e| {
            matches!(e, Event::Span { name, args, .. }
                if *name == "test.span" && args.len() == 2)
        });
        assert!(found, "span event missing from {events:?}");
    }

    #[test]
    fn inert_span_emits_nothing() {
        uninstall();
        {
            let _span = Span::begin("test.inert").with("k", 1u64);
        }
        let recorder = Arc::new(CollectingRecorder::default());
        install(recorder.clone());
        install(Arc::new(NoopRecorder));
        {
            let _span = Span::begin("test.inert2");
        }
        uninstall();
        assert!(recorder.events.lock().unwrap().is_empty());
    }

    #[test]
    fn event_lines_are_flat_json() {
        let line = Event::Span {
            name: "unit",
            ts_us: 10,
            dur_us: 5,
            tid: 3,
            args: vec![("det", ArgValue::Str("bfs\"x".into())), ("n", 64u64.into())],
        }
        .to_line();
        assert_eq!(
            line,
            "{\"ev\":\"span\",\"name\":\"unit\",\"ts_us\":10,\"dur_us\":5,\"tid\":3,\"det\":\"bfs\\\"x\",\"n\":64}"
        );
        let counter = Event::Counter {
            name: "c",
            ts_us: 1,
            value: 2,
        }
        .to_line();
        assert_eq!(
            counter,
            "{\"ev\":\"counter\",\"name\":\"c\",\"ts_us\":1,\"value\":2}"
        );
    }
}
