//! Std-only telemetry for the even-cycle workspace.
//!
//! Two decoupled halves:
//!
//! - **Metrics** — [`Counter`], [`Gauge`], and log2-bucketed [`Histogram`]
//!   handles resolved from the process-global [`Registry`]. Updates are
//!   relaxed atomics, always on, and power the serve `metrics` op
//!   (Prometheus-style exposition via [`Snapshot::to_prometheus`]) and the
//!   flat-JSON snapshot ([`Snapshot::to_flat_json`]).
//! - **Events** — [`Span`] timers and [`instant_event`] point events
//!   delivered to an installed [`Recorder`]. The default is the no-op
//!   recorder: the disabled path is one relaxed atomic load with no clock
//!   read and no allocation. [`JsonlSink`] appends events to a JSONL file
//!   (enabled by `sweep --trace FILE` or `EVEN_CYCLE_TRACE`), and
//!   [`chrome_trace`] converts that file for `about://tracing`.
//!
//! Telemetry is strictly observational: recorders see copies of event data
//! and metric handles never feed back into detector logic, so reports and
//! store bytes are byte-identical with a recorder on or off (the facade
//! crate asserts this registry-wide).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod json;
mod jsonl;
mod metrics;
mod recorder;
mod registry;

pub use chrome::{chrome_trace, convert_file};
pub use json::{json_escape, json_f64, parse_flat_line, FlatValue};
pub use jsonl::JsonlSink;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use recorder::{
    enabled, epoch, flush, install, instant_event, instant_us, now_us, record, thread_id,
    uninstall, ArgValue, Args, Event, NoopRecorder, Recorder, Span,
};
pub use registry::{Registry, Snapshot};

/// Environment variable naming a JSONL trace file; when set, the bins
/// install a [`JsonlSink`] writing there (the `--trace` flag takes
/// precedence).
pub const TRACE_ENV: &str = "EVEN_CYCLE_TRACE";

/// Reads [`TRACE_ENV`], returning the trace path when set and non-empty.
pub fn trace_path_from_env() -> Option<String> {
    match std::env::var(TRACE_ENV) {
        Ok(value) if !value.trim().is_empty() => Some(value),
        _ => None,
    }
}
