//! Minimal flat-JSON helpers, mirroring the serde-free house style used by
//! the result store: hand-rolled escaping plus a tolerant single-level
//! parser for the event lines this crate itself writes.

/// Escapes `s` for embedding inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as JSON: plain decimal for finite values, `null`
/// otherwise (JSON has no NaN/Inf).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// A parsed flat-JSON scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum FlatValue {
    /// A JSON number (parsed as `f64`).
    Num(f64),
    /// A JSON string (unescaped).
    Str(String),
    /// `true` or `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl FlatValue {
    /// Returns the numeric value, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FlatValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the string value, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FlatValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one flat-JSON object line (`{"key":scalar,...}`, no nesting) into
/// ordered key/value pairs. Returns `None` on malformed input.
pub fn parse_flat_line(line: &str) -> Option<Vec<(String, FlatValue)>> {
    let bytes = line.trim().as_bytes();
    if bytes.first() != Some(&b'{') || bytes.last() != Some(&b'}') {
        return None;
    }
    let mut fields = Vec::new();
    let inner = &line.trim()[1..line.trim().len() - 1];
    let mut chars = inner.char_indices().peekable();
    loop {
        skip_ws(inner, &mut chars);
        if chars.peek().is_none() {
            break;
        }
        let key = parse_string(inner, &mut chars)?;
        skip_ws(inner, &mut chars);
        match chars.next() {
            Some((_, ':')) => {}
            _ => return None,
        }
        skip_ws(inner, &mut chars);
        let value = parse_scalar(inner, &mut chars)?;
        fields.push((key, value));
        skip_ws(inner, &mut chars);
        match chars.next() {
            Some((_, ',')) => continue,
            None => break,
            _ => return None,
        }
    }
    Some(fields)
}

type CharStream<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn skip_ws(_src: &str, chars: &mut CharStream<'_>) {
    while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(_src: &str, chars: &mut CharStream<'_>) -> Option<String> {
    match chars.next() {
        Some((_, '"')) => {}
        _ => return None,
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            Some((_, '"')) => return Some(out),
            Some((_, '\\')) => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'b')) => out.push('\u{8}'),
                Some((_, 'f')) => out.push('\u{c}'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (_, c) = chars.next()?;
                        code = code * 16 + c.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            Some((_, c)) => out.push(c),
            None => return None,
        }
    }
}

fn parse_scalar(src: &str, chars: &mut CharStream<'_>) -> Option<FlatValue> {
    match chars.peek().copied() {
        Some((_, '"')) => parse_string(src, chars).map(FlatValue::Str),
        Some((start, _)) => {
            let mut end = src.len();
            while let Some((i, c)) = chars.peek().copied() {
                if c == ',' || c == '}' || c.is_whitespace() {
                    end = i;
                    break;
                }
                chars.next();
            }
            let token = &src[start..end];
            match token {
                "null" => Some(FlatValue::Null),
                "true" => Some(FlatValue::Bool(true)),
                "false" => Some(FlatValue::Bool(false)),
                _ => token.parse::<f64>().ok().map(FlatValue::Num),
            }
        }
        None => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_scalars() {
        let fields =
            parse_flat_line("{\"ev\":\"span\",\"ts_us\":12,\"ok\":true,\"x\":null,\"f\":1.5}")
                .unwrap();
        assert_eq!(fields[0], ("ev".into(), FlatValue::Str("span".into())));
        assert_eq!(fields[1], ("ts_us".into(), FlatValue::Num(12.0)));
        assert_eq!(fields[2], ("ok".into(), FlatValue::Bool(true)));
        assert_eq!(fields[3], ("x".into(), FlatValue::Null));
        assert_eq!(fields[4], ("f".into(), FlatValue::Num(1.5)));
    }

    #[test]
    fn round_trips_escapes() {
        let raw = "a\"b\\c\nd";
        let line = format!("{{\"k\":\"{}\"}}", json_escape(raw));
        let fields = parse_flat_line(&line).unwrap();
        assert_eq!(fields[0].1.as_str(), Some(raw));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_flat_line("not json").is_none());
        assert!(parse_flat_line("{\"k\":}").is_none());
        assert!(parse_flat_line("{\"k\" 1}").is_none());
    }

    #[test]
    fn json_f64_always_reads_back_as_number() {
        assert_eq!(json_f64(1.0), "1.0");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
