//! Asserts the disabled-recorder path allocates nothing.
//!
//! This file deliberately contains the only `unsafe` in the crate (the
//! counting global allocator shim); the library itself is
//! `#![forbid(unsafe_code)]`. It must stay a single `#[test]` so no other
//! test thread allocates while the window is open.

// The one sanctioned exception to the workspace-wide unsafe_code deny.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn noop_recorder_path_allocates_nothing() {
    congest_telemetry::uninstall();
    assert!(!congest_telemetry::enabled());

    // Resolve handles and warm thread-locals up front; resolution may
    // allocate, steady-state updates must not.
    let registry = congest_telemetry::Registry::global();
    let counter = registry.counter("noop.test.counter");
    let gauge = registry.gauge("noop.test.gauge");
    let histogram = registry.histogram("noop.test.histogram");
    let _ = congest_telemetry::thread_id();
    let _ = congest_telemetry::now_us();

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        counter.inc();
        gauge.set(i as i64);
        histogram.record(i);
        let mut span = congest_telemetry::Span::begin("noop.test.span");
        span.push("i", i);
        drop(span);
        congest_telemetry::instant_event("noop.test.instant", || vec![("i", i.into())]);
        congest_telemetry::record(congest_telemetry::Event::Counter {
            name: "noop.test.event",
            ts_us: 0,
            value: i,
        });
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "disabled-recorder telemetry must not allocate"
    );
    assert_eq!(counter.value(), 10_000);
}
