//! Criterion bench for E8: gadget construction and the metered
//! reduction run.

use congest_lowerbounds::disjointness::Disjointness;
use congest_lowerbounds::gadgets::{C4Gadget, EvenCycleGadget, OddCycleGadget};
use congest_lowerbounds::reduction::measure_even_detection;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use even_cycle::Params;

fn bench_gadget_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("gadget_construction");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for q in [7u64, 13, 19] {
        group.bench_with_input(BenchmarkId::new("c4_polarity", q), &q, |b, &q| {
            let gadget = C4Gadget::new(q);
            let inst = Disjointness::random(gadget.universe(), 0.3, 1);
            b.iter(|| gadget.build(&inst));
        });
    }
    for s in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::new("even_k3", s), &s, |b, &s| {
            let gadget = EvenCycleGadget::new(3, s);
            let inst = Disjointness::random(s * s, 0.3, 1);
            b.iter(|| gadget.build(&inst));
        });
        group.bench_with_input(BenchmarkId::new("odd_k2", s), &s, |b, &s| {
            let gadget = OddCycleGadget::new(2, s);
            let inst = Disjointness::random(s * s, 0.3, 1);
            b.iter(|| gadget.build(&inst));
        });
    }
    group.finish();
}

fn bench_metered_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("metered_reduction_run");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    for q in [7u64, 11] {
        let gadget = C4Gadget::new(q);
        let (inst, _) =
            Disjointness::random_with_planted_intersection(gadget.universe(), 2);
        let built = gadget.build(&inst);
        group.bench_with_input(
            BenchmarkId::from_parameter(built.graph.node_count()),
            &built,
            |b, built| {
                let params = Params::practical(2).with_repetitions(4);
                b.iter(|| measure_even_detection(built, &params, 4, 5));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gadget_construction, bench_metered_reduction);
criterion_main!(benches);
