//! Bench for E8: gadget construction and the metered reduction run.

use congest_lowerbounds::disjointness::Disjointness;
use congest_lowerbounds::gadgets::{C4Gadget, EvenCycleGadget, OddCycleGadget};
use congest_lowerbounds::reduction::measure_even_detection;
use even_cycle::Params;
use even_cycle_bench::timing::bench_case;

fn main() {
    for q in [7u64, 13, 19] {
        let gadget = C4Gadget::new(q);
        let inst = Disjointness::random(gadget.universe(), 0.3, 1);
        bench_case(
            "gadget_construction/c4_polarity",
            &q.to_string(),
            20,
            || gadget.build(&inst),
        );
    }
    for s in [8usize, 16, 32] {
        let even = EvenCycleGadget::new(3, s);
        let inst = Disjointness::random(s * s, 0.3, 1);
        bench_case("gadget_construction/even_k3", &s.to_string(), 20, || {
            even.build(&inst)
        });
        let odd = OddCycleGadget::new(2, s);
        bench_case("gadget_construction/odd_k2", &s.to_string(), 20, || {
            odd.build(&inst)
        });
    }
    for q in [7u64, 11] {
        let gadget = C4Gadget::new(q);
        let (inst, _) = Disjointness::random_with_planted_intersection(gadget.universe(), 2);
        let built = gadget.build(&inst);
        bench_case(
            "metered_reduction_run",
            &built.graph.node_count().to_string(),
            10,
            || {
                let params = Params::practical(2).with_repetitions(4);
                measure_even_detection(&built, &params, 4, 5)
            },
        );
    }
}
