//! Bench for E7: Theorem 3 amplification across success probabilities
//! (the quadratic `1/√ε` law's cost in simulation).

use congest_quantum::{FnAlgorithm, GroverMode, McOutcome, MonteCarloAmplifier, StateVector};
use even_cycle_bench::timing::bench_case;

fn main() {
    for exp in [8u32, 10, 12] {
        let inv_eps = 1u64 << exp;
        let alg = FnAlgorithm::new(
            move |seed| McOutcome {
                rejected: seed % inv_eps == 1,
                rounds: 1,
            },
            1,
            1.0 / inv_eps as f64,
        );
        bench_case("amplification/analytic", &inv_eps.to_string(), 20, || {
            MonteCarloAmplifier::new(0.1).amplify(&alg, 3)
        });
        bench_case("amplification/sampled", &inv_eps.to_string(), 20, || {
            MonteCarloAmplifier::new(0.1)
                .with_mode(GroverMode::Sampled { samples: 32 })
                .amplify(&alg, 3)
        });
    }
    for dim in [1usize << 8, 1 << 12, 1 << 16] {
        let mut psi = StateVector::uniform(dim);
        bench_case("statevector_grover_iteration", &dim.to_string(), 10, || {
            psi.grover_iteration(|x| x == 0);
            psi.probability_of(|x| x == 0)
        });
    }
}
