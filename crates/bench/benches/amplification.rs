//! Criterion bench for E7: Theorem 3 amplification across success
//! probabilities (the quadratic `1/√ε` law's cost in simulation).

use congest_quantum::{FnAlgorithm, GroverMode, McOutcome, MonteCarloAmplifier};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_amplification(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte_carlo_amplification");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(20);
    for exp in [8u32, 10, 12] {
        let inv_eps = 1u64 << exp;
        let alg = FnAlgorithm::new(
            move |seed| McOutcome {
                rejected: seed % inv_eps == 1,
                rounds: 1,
            },
            1,
            1.0 / inv_eps as f64,
        );
        group.bench_with_input(
            BenchmarkId::new("analytic", inv_eps),
            &alg,
            |b, alg| {
                let amp = MonteCarloAmplifier::new(0.1);
                b.iter(|| amp.amplify(alg, 3));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sampled", inv_eps),
            &alg,
            |b, alg| {
                let amp = MonteCarloAmplifier::new(0.1)
                    .with_mode(GroverMode::Sampled { samples: 32 });
                b.iter(|| amp.amplify(alg, 3));
            },
        );
    }
    group.finish();
}

fn bench_statevector(c: &mut Criterion) {
    use congest_quantum::StateVector;
    let mut group = c.benchmark_group("statevector_grover_iteration");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for dim in [1usize << 8, 1 << 12, 1 << 16] {
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, &dim| {
            let mut psi = StateVector::uniform(dim);
            b.iter(|| {
                psi.grover_iteration(|x| x == 0);
                psi.probability_of(|x| x == 0)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_amplification, bench_statevector);
criterion_main!(benches);
