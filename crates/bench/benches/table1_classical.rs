//! Bench for E1: Algorithm 1's per-iteration wall cost across sizes
//! (the Table 1 classical rows). Plain timing harness; see
//! `even_cycle_bench::timing`.

use even_cycle_bench::timing::bench_case;
use even_cycle_bench::{c4_free_hosts, k3_hosts, measure_classical_per_iteration};

fn main() {
    for g in &c4_free_hosts(&[11, 17, 23]) {
        bench_case(
            "algorithm1_k2_per_iteration",
            &g.node_count().to_string(),
            10,
            || measure_classical_per_iteration(g, 2, 2, 7),
        );
    }
    for g in &k3_hosts(&[128, 256], 5) {
        bench_case(
            "algorithm1_k3_per_iteration",
            &g.node_count().to_string(),
            10,
            || measure_classical_per_iteration(g, 3, 2, 7),
        );
    }
}
