//! Criterion bench for E1: Algorithm 1's per-iteration wall cost and
//! round cost across sizes (the Table 1 classical rows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use even_cycle_bench::{c4_free_hosts, k3_hosts, measure_classical_per_iteration};

fn bench_classical_k2(c: &mut Criterion) {
    let hosts = c4_free_hosts(&[11, 17, 23]);
    let mut group = c.benchmark_group("algorithm1_k2_per_iteration");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    for g in &hosts {
        group.bench_with_input(
            BenchmarkId::from_parameter(g.node_count()),
            g,
            |b, g| {
                b.iter(|| measure_classical_per_iteration(g, 2, 2, 7));
            },
        );
    }
    group.finish();
}

fn bench_classical_k3(c: &mut Criterion) {
    let hosts = k3_hosts(&[128, 256], 5);
    let mut group = c.benchmark_group("algorithm1_k3_per_iteration");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    for g in &hosts {
        group.bench_with_input(
            BenchmarkId::from_parameter(g.node_count()),
            g,
            |b, g| {
                b.iter(|| measure_classical_per_iteration(g, 3, 2, 7));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_classical_k2, bench_classical_k3);
criterion_main!(benches);
