//! Criterion bench for E3/E9: the quantum pipeline's simulated cost
//! across sizes (the Table 1 quantum rows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use even_cycle_bench::{measure_quantum_odd_rounds, measure_quantum_rounds, sparse_hosts};

fn bench_quantum_even(c: &mut Criterion) {
    let hosts = sparse_hosts(&[128, 256, 512], 3);
    let mut group = c.benchmark_group("quantum_pipeline_k2");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    for g in &hosts {
        group.bench_with_input(BenchmarkId::from_parameter(g.node_count()), g, |b, g| {
            b.iter(|| measure_quantum_rounds(g, 2, 11));
        });
    }
    group.finish();
}

fn bench_quantum_odd(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantum_odd_k2");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    for n in [128usize, 256, 512] {
        let g = congest_graph::generators::random_bipartite(n / 2, n / 2, 0.05, 5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| measure_quantum_odd_rounds(g, 2, 13));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quantum_even, bench_quantum_odd);
criterion_main!(benches);
