//! Bench for E3/E9: the quantum pipeline's simulated cost across sizes
//! (the Table 1 quantum rows).

use even_cycle_bench::timing::bench_case;
use even_cycle_bench::{measure_quantum_odd_rounds, measure_quantum_rounds, sparse_hosts};

fn main() {
    for g in &sparse_hosts(&[128, 256, 512], 3) {
        bench_case(
            "quantum_pipeline_k2",
            &g.node_count().to_string(),
            10,
            || measure_quantum_rounds(g, 2, 11),
        );
    }
    for n in [128usize, 256, 512] {
        let g = congest_graph::generators::random_bipartite(n / 2, n / 2, 0.05, 5);
        bench_case("quantum_odd_k2", &n.to_string(), 10, || {
            measure_quantum_odd_rounds(&g, 2, 13)
        });
    }
}
