//! Criterion bench for the core primitive: one `color-BFS` call
//! (Algorithm 1's inner loop) and its randomized variant (Algorithm 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use even_cycle::{random_coloring, run_color_bfs, Params};

fn bench_color_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("color_bfs_single_call");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(20);
    for q in [11u64, 17, 23] {
        let g = congest_graph::generators::polarity_graph(q);
        let n = g.node_count();
        let inst = Params::practical(2).instantiate(n);
        let colors = random_coloring(n, 4, 5);
        let all = vec![true; n];
        group.bench_with_input(BenchmarkId::new("threshold_tau", n), &g, |b, g| {
            b.iter(|| run_color_bfs(g, 2, &colors, &all, &all, None, inst.tau, 9));
        });
        group.bench_with_input(BenchmarkId::new("randomized_t4", n), &g, |b, g| {
            b.iter(|| {
                run_color_bfs(
                    g,
                    2,
                    &colors,
                    &all,
                    &all,
                    Some(1.0 / inst.tau as f64),
                    4,
                    9,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_color_bfs);
criterion_main!(benches);
