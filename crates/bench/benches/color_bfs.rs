//! Bench for the core primitive: one `color-BFS` call (Algorithm 1's
//! inner loop) and its randomized variant (Algorithm 2).

use even_cycle::{random_coloring, run_color_bfs, Params};
use even_cycle_bench::timing::bench_case;

fn main() {
    for q in [11u64, 17, 23] {
        let g = congest_graph::generators::polarity_graph(q);
        let n = g.node_count();
        let inst = Params::practical(2).instantiate(n);
        let colors = random_coloring(n, 4, 5);
        let all = vec![true; n];
        bench_case("color_bfs/threshold_tau", &n.to_string(), 20, || {
            run_color_bfs(&g, 2, &colors, &all, &all, None, inst.tau, 9)
        });
        bench_case("color_bfs/randomized_t4", &n.to_string(), 20, || {
            run_color_bfs(
                &g,
                2,
                &colors,
                &all,
                &all,
                Some(1.0 / inst.tau as f64),
                4,
                9,
            )
        });
    }
}
