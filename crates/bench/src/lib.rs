//! Shared measurement harness for the Table 1 / Figure 1 reproduction.
//!
//! The binaries in `src/bin` regenerate the paper's evaluation artifacts
//! (see EXPERIMENTS.md at the workspace root); this library holds the
//! instance families, measurement drivers, exponent fitting, and table
//! rendering they share. Everything is deterministic given the seeds
//! embedded in the drivers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod timing;

use congest_graph::{generators, Graph};
use congest_quantum::GroverMode;
use even_cycle::{
    Budget, CycleDetector, Detector, Params, QuantumCycleDetector, QuantumOddCycleDetector,
};

pub use even_cycle::theory::fit_exponent;

/// One `(n, value)` measurement sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Number of vertices.
    pub n: usize,
    /// The measured quantity (rounds, congestion, …).
    pub value: f64,
}

/// A measured scaling series with its fitted exponent.
#[derive(Debug, Clone)]
pub struct Series {
    /// Human-readable label.
    pub label: String,
    /// The samples, in increasing `n`.
    pub samples: Vec<Sample>,
    /// Fitted exponent `α` of `value ≈ c·n^α`.
    pub alpha: f64,
    /// Fitted constant `c`.
    pub constant: f64,
}

impl Series {
    /// Fits a power law to labelled samples.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two samples.
    pub fn fit(label: impl Into<String>, samples: Vec<Sample>) -> Series {
        let pairs: Vec<(f64, f64)> = samples
            .iter()
            .map(|s| (s.n as f64, s.value.max(1e-9)))
            .collect();
        let (alpha, constant) = fit_exponent(&pairs);
        Series {
            label: label.into(),
            samples,
            alpha,
            constant,
        }
    }

    /// Renders the series as an aligned text block.
    pub fn render(&self) -> String {
        let mut out = format!("{} (fitted n^{:.3}):\n", self.label, self.alpha);
        for s in &self.samples {
            out.push_str(&format!("  n = {:>6}  ->  {:>14.1}\n", s.n, s.value));
        }
        out
    }
}

/// The worst-case-density C4-free hosts for the `k = 2` experiments:
/// polarity graphs `ER_q` (extremal `Θ(n^{3/2})` edges, no C4).
pub fn c4_free_hosts(primes: &[u64]) -> Vec<Graph> {
    primes
        .iter()
        .map(|&q| generators::polarity_graph(q))
        .collect()
}

/// Sparse hosts (random trees) of the given sizes.
pub fn sparse_hosts(sizes: &[usize], seed: u64) -> Vec<Graph> {
    sizes
        .iter()
        .map(|&n| generators::random_tree(n, seed ^ n as u64))
        .collect()
}

/// Denser hosts for `k = 3`: near-regular graphs of degree
/// `≈ n^{1/3}` (the light/heavy boundary of Algorithm 1 at `k = 3`).
pub fn k3_hosts(sizes: &[usize], seed: u64) -> Vec<Graph> {
    sizes
        .iter()
        .map(|&n| {
            let d = (n as f64).powf(1.0 / 3.0).ceil() as usize + 1;
            let n_even = n + (n * d) % 2;
            generators::random_regular_ish(n_even, d, seed ^ n as u64)
        })
        .collect()
}

/// Measures a detector's rounds through the unified [`Detector`]
/// surface, averaging the metric over nothing (single run).
///
/// # Errors
///
/// Propagates the simulator error of a failed run.
pub fn measure_rounds(
    det: &dyn Detector,
    g: &Graph,
    seed: u64,
    budget: &Budget,
) -> Result<f64, congest_sim::SimError> {
    Ok(det.detect(g, seed, budget)?.cost.rounds as f64)
}

/// Measures a detector's per-iteration rounds (total rounds divided by
/// outer-loop iterations) — the quantity whose `n`-scaling Table 1
/// reports for the color-BFS family, since the repetition count `K` is
/// `n`-independent.
///
/// # Errors
///
/// Propagates the simulator error of a failed run.
pub fn measure_per_iteration(
    det: &dyn Detector,
    g: &Graph,
    seed: u64,
    budget: &Budget,
) -> Result<f64, congest_sim::SimError> {
    let d = det.detect(g, seed, budget)?;
    Ok(d.cost.rounds as f64 / d.cost.iterations.max(1) as f64)
}

/// Measures a detector's peak per-edge congestion.
///
/// # Errors
///
/// Propagates the simulator error of a failed run.
pub fn measure_congestion(
    det: &dyn Detector,
    g: &Graph,
    seed: u64,
    budget: &Budget,
) -> Result<f64, congest_sim::SimError> {
    Ok(det.detect(g, seed, budget)?.cost.max_congestion as f64)
}

/// Algorithm 1's per-coloring-iteration round cost on a host, through
/// the [`Detector`] surface (`reps` iterations, averaged). The
/// full-algorithm cost is `K ×` this with `K` independent of `n`, so
/// the fitted exponent of this series is the Table 1 exponent.
pub fn measure_classical_per_iteration(g: &Graph, k: usize, reps: usize, seed: u64) -> f64 {
    let det = CycleDetector::new(Params::practical(k));
    measure_per_iteration(&det, g, seed, &Budget::classical().with_repetitions(reps))
        .expect("color-BFS simulation cannot fail within its step bound")
}

/// The congestion (max words per edge per round) of Algorithm 1 over
/// `reps` iterations, through the [`Detector`] surface.
pub fn measure_classical_congestion(g: &Graph, k: usize, reps: usize, seed: u64) -> f64 {
    let det = CycleDetector::new(Params::practical(k));
    measure_congestion(&det, g, seed, &Budget::classical().with_repetitions(reps))
        .expect("color-BFS simulation cannot fail within its step bound")
}

/// The quantum `C_{2k}` pipeline cost (Theorem 2: decomposition +
/// per-component Theorem 3 amplification of the Lemma 12 detector),
/// through the [`Detector`] surface. Sampled Grover keeps the simulation
/// cost bounded; the round accounting is unaffected.
pub fn measure_quantum_rounds(g: &Graph, k: usize, seed: u64) -> f64 {
    let det = QuantumCycleDetector::new(Params::practical(k).with_repetitions(8), 0.1)
        .with_mode(GroverMode::Sampled { samples: 16 });
    measure_rounds(&det, g, seed, &Budget::classical())
        .expect("quantum pipeline simulation cannot fail")
}

/// The amplified odd-cycle pipeline cost (§3.4 → `Õ(√n)`), through the
/// [`Detector`] surface.
pub fn measure_quantum_odd_rounds(g: &Graph, k: usize, seed: u64) -> f64 {
    let det =
        QuantumOddCycleDetector::new(k, 8, 0.1).with_mode(GroverMode::Sampled { samples: 16 });
    measure_rounds(&det, g, seed, &Budget::classical())
        .expect("quantum pipeline simulation cannot fail")
}

/// Renders an aligned text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = format!("== {title} ==\n");
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:>w$}", w = widths[i]))
        .collect();
    out.push_str(&header_line.join("  "));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_fit_recovers_slope() {
        let samples: Vec<Sample> = [64usize, 128, 256, 512]
            .iter()
            .map(|&n| Sample {
                n,
                value: 2.0 * (n as f64).powf(0.75),
            })
            .collect();
        let s = Series::fit("test", samples);
        assert!((s.alpha - 0.75).abs() < 1e-9);
        assert!((s.constant - 2.0).abs() < 1e-6);
        assert!(s.render().contains("n^0.750"));
    }

    #[test]
    fn hosts_have_requested_shapes() {
        let hosts = c4_free_hosts(&[3, 5]);
        assert_eq!(hosts[0].node_count(), 13);
        let sparse = sparse_hosts(&[30, 50], 1);
        assert_eq!(sparse[1].node_count(), 50);
        assert_eq!(sparse[1].edge_count(), 49);
        let k3 = k3_hosts(&[40], 2);
        assert!(k3[0].max_degree() >= 3);
    }

    #[test]
    fn classical_measurement_positive_and_deterministic() {
        let g = generators::random_tree(48, 3);
        let a = measure_classical_per_iteration(&g, 2, 3, 7);
        let b = measure_classical_per_iteration(&g, 2, 3, 7);
        assert!(a > 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn quantum_measurement_positive() {
        let g = generators::random_tree(32, 4);
        assert!(measure_quantum_rounds(&g, 2, 1) > 0.0);
        let b = generators::random_bipartite(16, 16, 0.1, 2);
        assert!(measure_quantum_odd_rounds(&b, 2, 1) > 0.0);
    }

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            "demo",
            &["col a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(t.contains("== demo =="));
        assert!(t.contains("col a"));
    }
}
