//! Ablations of Algorithm 1's design choices.
//!
//! ```text
//! cargo run --release -p even-cycle-bench --bin ablation
//! ```
//!
//! * **A1 — threshold sensitivity**: scale the global threshold `τ` by
//!   `{0, 0.01, 0.1, 1}` and watch the detection rate collapse when the
//!   threshold discards working sets (the reason `τ` must be *global*,
//!   `Θ(n^{1-1/k})`: a too-small bound silently kills the heavy search).
//! * **A2 — activation probability** (the Lemma 12 trade): sweep the
//!   `randomized-color-BFS` activation from `1/τ` to 1 and chart the
//!   congestion/success frontier. At `1/τ` the congestion is `O(1)` and
//!   the success small; at 1 the success is Algorithm 1's but so is the
//!   congestion.
//! * **A3 — why `W` needs `k²` selected neighbors**: replace `k²` by
//!   smaller constants in the `W`-definition; the detector stays *sound*
//!   (one-sidedness never depends on it) — the constant buys the
//!   completeness argument (Lemma 3 / Fact 3), not safety.

use congest_graph::{generators, FamilySpec};
use even_cycle::{random_coloring, run_color_bfs, CycleDetector, Params, RunOptions};
use even_cycle_bench::render_table;

fn main() {
    // ---------- A1: threshold sensitivity ----------
    // planted-polarity:4 at n = 133 is the ER_11 host with a planted C4
    // (the shared catalog family; no ad-hoc construction).
    let g = FamilySpec::PlantedPolarity { l: 4 }.build(133, 5);
    let n = g.node_count();
    let trials = 20u64;
    let mut rows = Vec::new();
    for scale in [0.0f64, 0.01, 0.1, 1.0] {
        let base = Params::practical(2);
        let inst = base.instantiate(n);
        let tau = (inst.tau as f64 * scale) as u64;
        // Run the three phases manually with the overridden τ.
        let mut detected = 0;
        for seed in 0..trials {
            let det = CycleDetector::new(base.clone().with_repetitions(1));
            let (_, m) = det.build_memberships(&g, seed, &RunOptions::default());
            let all = vec![true; n];
            let not_s: Vec<bool> = m.s_mask.iter().map(|&b| !b).collect();
            let mut hit = false;
            for r in 0..120u64 {
                let colors = random_coloring(n, 4, seed ^ (r << 8));
                let phases: [(&[bool], &[bool]); 3] = [
                    (&m.u_mask, &m.u_mask),
                    (&all, &m.s_mask),
                    (&not_s, &m.w_mask),
                ];
                for (ci, (h, x)) in phases.into_iter().enumerate() {
                    let res =
                        run_color_bfs(&g, 2, &colors, h, x, None, tau, seed ^ (r << 4) ^ ci as u64);
                    if res.rejection.is_some() {
                        hit = true;
                    }
                }
                if hit {
                    break;
                }
            }
            if hit {
                detected += 1;
            }
        }
        rows.push(vec![
            format!("{scale}"),
            format!("{tau}"),
            format!("{detected}/{trials}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            "A1 — detection rate vs threshold scale (planted C4, 120 colorings/trial)",
            &["tau scale", "tau", "detected"],
            &rows
        )
    );

    // ---------- A2: the congestion/success frontier ----------
    let g = FamilySpec::PlantedPolarity { l: 4 }.build(133, 9);
    let n = g.node_count();
    let inst = Params::practical(2).instantiate(n);
    let mut rows = Vec::new();
    for mult in [1.0f64, 4.0, 16.0, 64.0, f64::INFINITY] {
        let activation = if mult.is_infinite() {
            1.0
        } else {
            (mult / inst.tau as f64).min(1.0)
        };
        let all = vec![true; n];
        let mut max_congestion = 0u64;
        let mut successes = 0u64;
        let trials = 400u64;
        for seed in 0..trials {
            let colors = random_coloring(n, 4, seed * 31 + 7);
            let res = run_color_bfs(
                &g,
                2,
                &colors,
                &all,
                &all,
                Some(activation),
                4,
                seed * 17 + 3,
            );
            max_congestion = max_congestion.max(res.report.congestion.max_words_per_edge_step);
            if res.rejection.is_some() {
                successes += 1;
            }
        }
        rows.push(vec![
            format!("{activation:.5}"),
            format!("{max_congestion}"),
            format!("{successes}/{trials}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            "A2 — randomized-color-BFS: activation vs congestion vs success (threshold 4)",
            &["activation", "max edge load", "single-call successes"],
            &rows
        )
    );
    println!("(Lemma 12 operates at the first row: O(1) congestion, ~1/tau success, which Theorem 3 amplifies quadratically.)\n");

    // ---------- A3: the k² constant in W ----------
    // Soundness is unconditional; measure detection of a heavy cycle as
    // the W-threshold shrinks (completeness degrades gracefully on easy
    // instances, but the k² constant is what the Density Lemma's
    // counting needs in the worst case).
    let (g, planted) = generators::plant_cycle_on_heavy_hub(&generators::empty(24), 4, 80, 3);
    let n = g.node_count();
    let mut rows = Vec::new();
    for w_threshold in [1usize, 2, 4] {
        let mut detected = 0;
        let trials = 12u64;
        for seed in 0..trials {
            // Force S to a fixed half of the hub's leaves, then define W
            // with the ablated threshold.
            let mut s_mask = vec![false; n];
            s_mask[24..24 + 40].fill(true);
            let w_mask: Vec<bool> = (0..n)
                .map(|v| {
                    !s_mask[v]
                        && g.neighbors(congest_graph::NodeId::new(v as u32))
                            .iter()
                            .filter(|u| s_mask[u.index()])
                            .count()
                            >= w_threshold
                })
                .collect();
            let not_s: Vec<bool> = s_mask.iter().map(|&b| !b).collect();
            let inst = Params::practical(2).instantiate(n);
            let mut hit = false;
            for r in 0..200u64 {
                let colors = random_coloring(n, 4, seed ^ (r << 9));
                let res = run_color_bfs(
                    &g,
                    2,
                    &colors,
                    &not_s,
                    &w_mask,
                    None,
                    inst.tau,
                    seed ^ (r << 3),
                );
                if res.rejection.is_some() {
                    hit = true;
                    break;
                }
            }
            if hit {
                detected += 1;
            }
        }
        rows.push(vec![
            format!("{w_threshold}"),
            format!("{detected}/{trials}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            "A3 — heavy-phase detection vs W-membership threshold (k² = 4 is the paper's)",
            &["|N(u) ∩ S| >=", "detected"],
            &rows
        )
    );
    let _ = planted;
}
