//! E5: empirical validation of Theorem 1's one-sided error guarantee,
//! driven through the unified `Detector` surface.
//!
//! ```text
//! cargo run --release -p even-cycle-bench --bin error_prob
//! ```
//!
//! * On `C_{2k}`-free inputs, the acceptance rate must be exactly 1
//!   (one-sided error: rejection implies a certified cycle).
//! * On planted-cycle inputs at the paper's `K = ⌈ln(3/ε)(2k)^{2k}⌉`,
//!   the rejection rate must be at least `1 - ε`.

use congest_graph::FamilySpec;
use even_cycle::{Budget, CycleDetector, Detector, Params};
use even_cycle_bench::render_table;

fn main() {
    let trials = 30u64;
    let budget = Budget::classical();

    // Soundness: free inputs — all built through the shared family
    // catalog (`trees`, `polarity`, `cycle`), no ad-hoc constructions.
    let mut rows = Vec::new();
    let free_inputs: Vec<(&str, congest_graph::Graph)> = vec![
        ("random tree (n=96)", FamilySpec::RandomTrees.build(96, 2)),
        (
            "polarity ER_11 (C4-free)",
            FamilySpec::Polarity.build(133, 0),
        ),
        ("C9 (girth 9)", FamilySpec::Cycle.build(9, 0)),
    ];
    let det = CycleDetector::new(Params::practical(2).with_repetitions(64));
    for (name, g) in &free_inputs {
        let rejections = (0..trials)
            .filter(|&s| {
                det.detect(g, s, &budget)
                    .expect("color-BFS simulation cannot fail")
                    .rejected()
            })
            .count();
        rows.push(vec![
            name.to_string(),
            format!("{trials}"),
            format!("{rejections}"),
            "must be 0".to_string(),
        ]);
        assert_eq!(rejections, 0, "one-sided error violated on {name}");
    }
    println!(
        "{}",
        render_table(
            "E5a — soundness (C4-free inputs, k = 2)",
            &["input", "trials", "rejections", "requirement"],
            &rows
        )
    );

    // Completeness at the paper's constants.
    let mut rows = Vec::new();
    for eps in [1.0 / 3.0, 0.1] {
        let params = Params::paper(2, eps);
        let det = CycleDetector::new(params.clone());
        let g = FamilySpec::Planted { l: 4 }.build(128, 7);
        let detected = (0..trials)
            .filter(|&s| {
                det.detect(&g, s, &budget)
                    .expect("color-BFS simulation cannot fail")
                    .rejected()
            })
            .count();
        let rate = detected as f64 / trials as f64;
        rows.push(vec![
            format!("eps = {eps:.3}"),
            format!("K = {}", params.repetitions),
            format!("{detected}/{trials}"),
            format!("{rate:.3}"),
            format!(">= {:.3}", 1.0 - eps),
        ]);
        assert!(
            rate >= 1.0 - eps,
            "empirical rejection rate {rate} below 1 - eps"
        );
    }
    println!(
        "{}",
        render_table(
            "E5b — completeness on planted C4 (n = 128, paper constants)",
            &[
                "target",
                "repetitions",
                "detected",
                "rate",
                "Theorem 1 bound"
            ],
            &rows
        )
    );

    // The per-iteration detection probability underlying Fact 1.
    let g = FamilySpec::Planted { l: 4 }.build(128, 7);
    let single = CycleDetector::new(Params::practical(2));
    let one_rep = Budget::classical().with_repetitions(1);
    let hits = (0..400u64)
        .filter(|&s| {
            single
                .detect(&g, s, &one_rep)
                .expect("color-BFS simulation cannot fail")
                .rejected()
        })
        .count();
    println!(
        "single-iteration detection rate: {}/400 = {:.4} (Fact 1 floor: (1/2k)^2k = {:.5} per well-colored orientation; planted C4 admits 8 favorable colorings -> {:.4})",
        hits,
        hits as f64 / 400.0,
        (1.0f64 / 4.0).powi(4),
        8.0 * (1.0f64 / 4.0).powi(4),
    );
}
