//! `simbench` — the simulator's perf trajectory, machine-readable.
//!
//! Times every registry detector over a fixed, seeded n-grid on the
//! sequential and parallel simulation backends (wall time, supersteps,
//! supersteps/sec), plus a deliver-scaling microbenchmark that pins
//! the touched-edge accounting of the superstep core: at fixed `n`,
//! the per-superstep cost of a quiet protocol must stay flat as the
//! total edge count grows (an `O(m)`-per-superstep deliver shows up
//! here immediately), plus a streaming section that replays one fixed
//! seeded [`UpdateSchedule`] and reports edge-update throughput
//! (updates/sec through `MutableGraph`) and per-checkpoint verdict
//! latency (snapshot + detect at every checkpoint), plus a `crossover`
//! section sweeping a sparse 4-regular family at large n on the
//! sequential and pooled-parallel backends — the measurement
//! `Backend::DEFAULT_AUTO_NODE_THRESHOLD` is tuned from.
//!
//! ```text
//! cargo run --release -p even-cycle-bench --bin simbench -- \
//!     [--smoke] [--out BENCH_sim.json]
//! ```
//!
//! The output is a single JSON object (see `BENCH_sim.json`); CI runs
//! `--smoke` and uploads the file as an artifact, so regressions in
//! the superstep core leave a visible trail.

use std::process::ExitCode;
use std::time::Instant;

use congest_graph::{generators, MutableGraph, NodeId};
use congest_sim::{run_with_backend, Backend, Control, Ctx, Outbox, Program};
use rand::Rng;
use even_cycle_congest::engine::store::json_escape;
use even_cycle_congest::registry::DetectorRegistry;
use even_cycle_congest::scenario::GraphFamily;
use even_cycle_congest::{Budget, RunProfile, UpdateSchedule};

/// The seed every measurement derives from (fixed: the grid must be
/// comparable across commits).
const SEED: u64 = 1;

struct Args {
    smoke: bool,
    out: String,
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        smoke: false,
        out: "BENCH_sim.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => {
                args.out = it
                    .next()
                    .ok_or_else(|| "--out expects a path".to_string())?;
            }
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(Some(args))
}

/// One quiet node keeps a single edge busy while everyone else halts
/// immediately: per superstep the deliver touches O(1) edges on a
/// graph whose directed-edge count the grid grows.
#[derive(Debug)]
struct QuietPing {
    steps: usize,
    holder: bool,
}

impl Program for QuietPing {
    type Msg = u32;
    fn init(&mut self, ctx: &mut Ctx, out: &mut Outbox<u32>) {
        if self.holder {
            out.send(ctx.neighbors[0], 0);
        }
    }
    fn step(
        &mut self,
        ctx: &mut Ctx,
        s: usize,
        _inbox: &[(NodeId, u32)],
        out: &mut Outbox<u32>,
    ) -> Control {
        if self.holder && s + 1 < self.steps {
            out.send(ctx.neighbors[0], s as u32);
            Control::Continue
        } else {
            Control::Halt
        }
    }
}

/// Every node stays live every superstep: broadcast gossip plus a
/// slice of per-node RNG work. This is the workload shape the worker
/// pool can actually speed up — the step phase dominates and spreads
/// across chunks, while delivery stays sequential by contract — so it
/// is what the crossover grid sweeps.
#[derive(Debug)]
struct SparseGossip {
    steps: usize,
    acc: u64,
}

impl Program for SparseGossip {
    type Msg = u32;
    fn init(&mut self, ctx: &mut Ctx, out: &mut Outbox<u32>) {
        out.broadcast(ctx.rng.gen_range(0..1u32 << 30));
    }
    fn step(
        &mut self,
        ctx: &mut Ctx,
        s: usize,
        inbox: &[(NodeId, u32)],
        out: &mut Outbox<u32>,
    ) -> Control {
        for &(_, m) in inbox {
            self.acc = self
                .acc
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(u64::from(m));
        }
        for _ in 0..8 {
            self.acc ^= u64::from(ctx.rng.gen_range(0..u32::MAX));
        }
        if s + 1 < self.steps {
            out.broadcast((self.acc >> 32) as u32);
            Control::Continue
        } else {
            Control::Halt
        }
    }
}

/// Times one run and returns (wall_ns, supersteps); takes the best of
/// `samples` timed runs after one warm-up (seed-determinism makes the
/// work identical; the minimum strips scheduler noise).
fn time_run<P, F>(
    g: &congest_graph::Graph,
    backend: Backend,
    build: F,
    max_supersteps: u64,
    samples: usize,
) -> (u128, u64)
where
    P: Program + Send,
    P::Msg: Send,
    F: Fn(NodeId, usize) -> P + Copy,
{
    let _ = run_with_backend(g, SEED, backend, 1, None, build, max_supersteps);
    let mut best = u128::MAX;
    let mut supersteps = 0;
    for _ in 0..samples.max(1) {
        let t = Instant::now();
        let (report, _) = run_with_backend(g, SEED, backend, 1, None, build, max_supersteps)
            .expect("benchmark programs cannot violate the model");
        best = best.min(t.elapsed().as_nanos());
        supersteps = report.supersteps;
    }
    (best, supersteps)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => {
            println!("usage: simbench [--smoke] [--out PATH]");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let sizes: &[usize] = if args.smoke {
        &[24, 32]
    } else {
        &[64, 128, 256]
    };
    let backends = [Backend::Sequential, Backend::Parallel { threads: 2 }];
    let registry = DetectorRegistry::with_profile(2, RunProfile::FastCi);
    // The families the grid times, parsed through the shared catalog:
    // the standard planted yes-instance for the full registry, plus a
    // small-world row (one detector) so BENCH_sim.json tracks the new
    // catalog families release over release.
    let grid_family = GraphFamily::parse("planted:4").expect("catalog family");
    let extra_family = GraphFamily::parse("ws:4:0.1").expect("catalog family");

    // --- per-detector wall time and supersteps/sec over the grid ---
    let mut detector_rows: Vec<String> = Vec::new();
    let mut bench_one = |entry: &even_cycle_congest::registry::RegistryEntry,
                         family: &GraphFamily,
                         n: usize|
     -> Result<(), String> {
        let g = family.build(n, SEED);
        for backend in backends {
            let budget = Budget::classical().with_backend(backend);
            // One unmeasured warm-up, then the best of three timed
            // runs: the runs are seed-deterministic (identical work),
            // so the minimum is the run least disturbed by host
            // scheduling noise — single samples swing by 2x and worse
            // on a shared host.
            let _ = entry.detector.detect(&g, SEED, &budget);
            let mut wall_ns = u128::MAX;
            let mut detection = None;
            for _ in 0..3 {
                let t = Instant::now();
                let d = entry
                    .detector
                    .detect(&g, SEED, &budget)
                    .map_err(|e| format!("{}: n = {n}: {e}", entry.id))?;
                wall_ns = wall_ns.min(t.elapsed().as_nanos());
                detection = Some(d);
            }
            let detection = detection.expect("three samples always ran");
            let supersteps = detection.cost.supersteps;
            let sps = if wall_ns > 0 && supersteps > 0 {
                format!("{:.1}", supersteps as f64 / (wall_ns as f64 / 1e9))
            } else {
                "null".to_string()
            };
            detector_rows.push(format!(
                "{{\"id\":\"{}\",\"family\":\"{}\",\"n\":{},\"node_count\":{},\"backend\":\"{}\",\"wall_ns\":{},\"rounds\":{},\"supersteps\":{},\"supersteps_per_sec\":{}}}",
                json_escape(&entry.id),
                json_escape(family.name()),
                n,
                g.node_count(),
                backend.label(),
                wall_ns,
                detection.cost.rounds,
                supersteps,
                sps,
            ));
            eprintln!(
                "{:<44} {:<12} n {:>4}  {:<12} {:>10} ns",
                entry.id,
                family.name(),
                n,
                backend.label(),
                wall_ns
            );
        }
        Ok(())
    };
    for entry in registry.iter() {
        for &n in sizes {
            if let Err(msg) = bench_one(entry, &grid_family, n) {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    // The new-family row: the classical C4 detector over the
    // small-world grid (one entry keeps the added cost a single row
    // per size × backend).
    let first = registry.iter().next().expect("registry is never empty");
    for &n in sizes {
        if let Err(msg) = bench_one(first, &extra_family, n) {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    }

    // --- deliver scaling: fixed n, growing edge count, quiet load ---
    // With touched-edge accounting the per-superstep cost must not
    // scale with the total (directed) edge count; before the unified
    // core, the parallel deliver zeroed the full edge_words vector
    // every superstep and this sweep grew linearly in m.
    let (dn, steps) = if args.smoke {
        (4_000, 128)
    } else {
        (20_000, 512)
    };
    let mut deliver_rows: Vec<String> = Vec::new();
    for deg in [2.0f64, 8.0, 32.0] {
        let g = generators::erdos_renyi(dn, deg / dn as f64, 7);
        // Sparse ER graphs have isolated vertices; the pinger must be
        // a node that actually has a neighbor to keep an edge busy.
        let holder = g
            .nodes()
            .find(|&v| g.degree(v) >= 1)
            .expect("bench graph has at least one edge");
        for backend in backends {
            let build = |v: NodeId, _: usize| QuietPing {
                steps,
                holder: v == holder,
            };
            // Warm-up, then timed.
            let _ = run_with_backend(&g, SEED, backend, 1, None, build, steps as u64 + 4);
            let t = Instant::now();
            let (report, _) = run_with_backend(&g, SEED, backend, 1, None, build, steps as u64 + 4)
                .expect("quiet ping cannot violate the model");
            let ns_per_superstep = t.elapsed().as_nanos() / u128::from(report.supersteps.max(1));
            deliver_rows.push(format!(
                "{{\"n\":{},\"directed_edges\":{},\"backend\":\"{}\",\"supersteps\":{},\"ns_per_superstep\":{}}}",
                dn,
                g.directed_edge_count(),
                backend.label(),
                report.supersteps,
                ns_per_superstep,
            ));
            eprintln!(
                "deliver n {dn:>6}  m_dir {:>8}  {:<12} {ns_per_superstep:>9} ns/superstep",
                g.directed_edge_count(),
                backend.label(),
            );
        }
    }

    // --- telemetry overhead: the disabled recorder must be free ---
    // The same quiet-ping microbench at one fixed config, measured
    // twice: with no recorder installed (the default for every library
    // consumer) and with the JSONL sink streaming every sim.round
    // event to a scratch file. The off row is the acceptance gate —
    // telemetry must not tax a run that never asked for a trace.
    let telemetry_row = {
        use even_cycle_congest::telemetry;
        let deg = 8.0f64;
        let g = generators::erdos_renyi(dn, deg / dn as f64, 7);
        let holder = g
            .nodes()
            .find(|&v| g.degree(v) >= 1)
            .expect("bench graph has at least one edge");
        let build = |v: NodeId, _: usize| QuietPing {
            steps,
            holder: v == holder,
        };
        let backend = Backend::Sequential;
        let measure = || {
            // Warm-up, then timed — same protocol as the deliver grid.
            let _ = run_with_backend(&g, SEED, backend, 1, None, build, steps as u64 + 4);
            let t = Instant::now();
            let (report, _) = run_with_backend(&g, SEED, backend, 1, None, build, steps as u64 + 4)
                .expect("quiet ping cannot violate the model");
            t.elapsed().as_nanos() / u128::from(report.supersteps.max(1))
        };
        // Alternate off/on samples and keep the best of each arm: a
        // single ~100ms sample is at the mercy of host scheduling, and
        // the quantity of interest here is the floor, not the mean.
        let trace_path = std::env::temp_dir().join("even-cycle-simbench-trace.jsonl");
        let mut off_ns = u128::MAX;
        let mut on_ns = u128::MAX;
        for _ in 0..9 {
            telemetry::uninstall();
            off_ns = off_ns.min(measure());
            let sink = telemetry::JsonlSink::create(&trace_path).expect("scratch trace file");
            telemetry::install(std::sync::Arc::new(sink));
            on_ns = on_ns.min(measure());
        }
        telemetry::uninstall();
        let _ = std::fs::remove_file(&trace_path);
        let overhead_pct = (on_ns as f64 - off_ns as f64) / off_ns.max(1) as f64 * 100.0;
        eprintln!(
            "telemetry n {dn:>6}  {:<12} off {off_ns:>7} ns/superstep  on {on_ns:>7} ns/superstep  ({overhead_pct:+.1}%)",
            backend.label(),
        );
        format!(
            "{{\"n\":{},\"directed_edges\":{},\"backend\":\"{}\",\"recorder_off_ns_per_superstep\":{},\"recorder_on_ns_per_superstep\":{},\"overhead_pct\":{:.1}}}",
            dn,
            g.directed_edge_count(),
            backend.label(),
            off_ns,
            on_ns,
            overhead_pct,
        )
    };

    // --- streaming: updates/sec + checkpoint-verdict latency on one
    // --- fixed seeded schedule ---
    // The schedule label is part of the benchmark's identity: changing
    // it breaks comparability across commits, exactly like SEED.
    let schedule = UpdateSchedule::parse("planted:4@rate=32,mix=0.6,checkpoints=4")
        .expect("fixed benchmark schedule");
    let stream_detector = registry.iter().next().expect("registry is never empty");
    let mut streaming_rows: Vec<String> = Vec::new();
    for &n in sizes {
        // Update throughput: the full seeded stream applied through
        // MutableGraph, no snapshots in the timed region (warm-up run
        // first, as above).
        let (base, updates) = schedule.generate(n, SEED);
        for _ in 0..2 {
            let mut g = MutableGraph::from_graph(base.clone());
            for &u in &updates {
                g.apply(u).expect("generated updates are always in range");
            }
        }
        let t = Instant::now();
        let mut g = MutableGraph::from_graph(base.clone());
        for &u in &updates {
            g.apply(u).expect("generated updates are always in range");
        }
        let update_wall_ns = t.elapsed().as_nanos();
        let updates_per_sec = if update_wall_ns > 0 {
            format!(
                "{:.1}",
                updates.len() as f64 / (update_wall_ns as f64 / 1e9)
            )
        } else {
            "null".to_string()
        };

        for backend in backends {
            // Verdict latency: snapshot + detect at every checkpoint of
            // the replayed stream.
            let budget = Budget::classical().with_backend(backend);
            let mut replay = schedule.replay(n, SEED);
            let mut verdict_ns: Vec<u128> = Vec::new();
            loop {
                // The checkpoint's update batch + snapshot folds into
                // the verdict latency: that pair IS the cost of asking
                // "and now?" on a live stream.
                let t = Instant::now();
                let Some((_, snap)) = replay.next_checkpoint() else {
                    break;
                };
                if let Err(e) = stream_detector.detector.detect(&snap, SEED, &budget) {
                    eprintln!("{}: streaming n = {n}: {e}", stream_detector.id);
                    return ExitCode::FAILURE;
                }
                verdict_ns.push(t.elapsed().as_nanos());
            }
            let mean = verdict_ns.iter().sum::<u128>() / verdict_ns.len().max(1) as u128;
            let per_checkpoint: Vec<String> = verdict_ns.iter().map(|ns| ns.to_string()).collect();
            streaming_rows.push(format!(
                "{{\"schedule\":\"{}\",\"id\":\"{}\",\"n\":{},\"seed\":{},\"backend\":\"{}\",\"updates\":{},\"update_wall_ns\":{},\"updates_per_sec\":{},\"checkpoint_verdict_ns\":[{}],\"mean_verdict_ns\":{}}}",
                json_escape(&schedule.canonical_label()),
                json_escape(&stream_detector.id),
                n,
                SEED,
                backend.label(),
                updates.len(),
                update_wall_ns,
                updates_per_sec,
                per_checkpoint.join(","),
                mean,
            ));
            eprintln!(
                "stream {:<38} n {n:>4}  {:<12} {updates_per_sec:>12} upd/s  {mean:>9} ns/verdict",
                schedule.canonical_label(),
                backend.label(),
            );
        }
    }

    // --- crossover: sparse large-n grid, sequential vs pooled parallel ---
    // The question this section answers is *where* the persistent
    // worker pool starts paying for its coordination: the same seeded
    // workload on `Backend::Sequential` and `Backend::Parallel` over a
    // sparse 4-regular-ish family, sizes spanning the claimed 10k–1M
    // range (plus smaller rows to bracket the flip point). The
    // microbench arm (every node live every superstep) is the
    // workload the pool is built for; the detector arm confirms the
    // flip on a real registry entry. `measured_crossover_n` — the
    // smallest microbench n where parallel wins — is what
    // `Backend::DEFAULT_AUTO_NODE_THRESHOLD` is tuned from.
    let host_parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let cross_sizes: &[usize] = if args.smoke {
        &[4_000, 20_000]
    } else {
        &[1_000, 4_000, 10_000, 100_000, 1_000_000]
    };
    let cross_threads = 2usize;
    let cross_backend = Backend::Parallel {
        threads: cross_threads,
    };
    let gossip_steps = 6usize;
    let mut crossover_rows: Vec<String> = Vec::new();
    let mut measured_crossover_n: Option<usize> = None;
    let sps = |supersteps: u64, wall_ns: u128| -> f64 {
        supersteps as f64 / (wall_ns.max(1) as f64 / 1e9)
    };
    for &n in cross_sizes {
        let g = generators::random_regular_ish(n, 4, SEED);
        let samples = if n >= 500_000 { 2 } else { 3 };
        let build = |_: NodeId, _: usize| SparseGossip {
            steps: gossip_steps,
            acc: 0,
        };
        let max = gossip_steps as u64 + 4;
        let (seq_ns, supersteps) = time_run(&g, Backend::Sequential, build, max, samples);
        let (par_ns, par_ss) = time_run(&g, cross_backend, build, max, samples);
        assert_eq!(
            supersteps, par_ss,
            "backends must agree on superstep count at n = {n}"
        );
        let speedup = seq_ns as f64 / par_ns.max(1) as f64;
        if par_ns <= seq_ns && measured_crossover_n.is_none() {
            measured_crossover_n = Some(n);
        }
        crossover_rows.push(format!(
            "{{\"kind\":\"microbench\",\"family\":\"regular:4\",\"n\":{},\"threads\":{},\"supersteps\":{},\"seq_wall_ns\":{},\"par_wall_ns\":{},\"seq_sps\":{:.1},\"par_sps\":{:.1},\"speedup\":{:.3}}}",
            n,
            cross_threads,
            supersteps,
            seq_ns,
            par_ns,
            sps(supersteps, seq_ns),
            sps(supersteps, par_ns),
            speedup,
        ));
        eprintln!(
            "crossover microbench n {n:>8}  seq {seq_ns:>12} ns  par:{cross_threads} {par_ns:>12} ns  speedup {speedup:.3}"
        );
    }
    // The detector arm: the first registry entry over the same sparse
    // family, warm-up + best-of-samples like the microbench.
    let cross_detector = registry.iter().next().expect("registry is never empty");
    for &n in cross_sizes {
        let g = generators::random_regular_ish(n, 4, SEED);
        let samples = if n >= 500_000 { 2 } else { 3 };
        let detect_best = |backend: Backend| -> Result<(u128, u64), String> {
            let budget = Budget::classical().with_backend(backend);
            let _ = cross_detector.detector.detect(&g, SEED, &budget);
            let mut best = u128::MAX;
            let mut supersteps = 0;
            for _ in 0..samples {
                let t = Instant::now();
                let detection = cross_detector
                    .detector
                    .detect(&g, SEED, &budget)
                    .map_err(|e| format!("{}: crossover n = {n}: {e}", cross_detector.id))?;
                best = best.min(t.elapsed().as_nanos());
                supersteps = detection.cost.supersteps;
            }
            Ok((best, supersteps))
        };
        let (seq_ns, supersteps) = match detect_best(Backend::Sequential) {
            Ok(v) => v,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        };
        let (par_ns, _) = match detect_best(cross_backend) {
            Ok(v) => v,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        };
        let speedup = seq_ns as f64 / par_ns.max(1) as f64;
        crossover_rows.push(format!(
            "{{\"kind\":\"detector\",\"id\":\"{}\",\"family\":\"regular:4\",\"n\":{},\"threads\":{},\"supersteps\":{},\"seq_wall_ns\":{},\"par_wall_ns\":{},\"seq_sps\":{:.1},\"par_sps\":{:.1},\"speedup\":{:.3}}}",
            json_escape(&cross_detector.id),
            n,
            cross_threads,
            supersteps,
            seq_ns,
            par_ns,
            sps(supersteps, seq_ns),
            sps(supersteps, par_ns),
            speedup,
        ));
        eprintln!(
            "crossover detector   n {n:>8}  seq {seq_ns:>12} ns  par:{cross_threads} {par_ns:>12} ns  speedup {speedup:.3}"
        );
    }
    let crossover_json = format!(
        "{{\"family\":\"regular:4\",\"host_parallelism\":{},\"threads\":{},\"default_auto_node_threshold\":{},\"measured_crossover_n\":{},\"rows\":[{}]}}",
        host_parallelism,
        cross_threads,
        Backend::DEFAULT_AUTO_NODE_THRESHOLD,
        measured_crossover_n
            .map(|n| n.to_string())
            .unwrap_or_else(|| "null".to_string()),
        crossover_rows.join(","),
    );

    let json = format!(
        "{{\"bench\":\"sim\",\"smoke\":{},\"seed\":{},\"profile\":\"{}\",\"detectors\":[{}],\"deliver_scaling\":[{}],\"telemetry_overhead\":[{}],\"streaming\":[{}],\"crossover\":{}}}",
        args.smoke,
        SEED,
        RunProfile::FastCi.name(),
        detector_rows.join(","),
        deliver_rows.join(","),
        telemetry_row,
        streaming_rows.join(","),
        crossover_json,
    );
    if let Err(e) = std::fs::write(&args.out, format!("{json}\n")) {
        eprintln!("cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("{json}");
    ExitCode::SUCCESS
}
