//! E6: the congestion-reduction trade of Lemma 12, measured.
//!
//! ```text
//! cargo run --release -p even-cycle-bench --bin congestion
//! ```
//!
//! Algorithm 1's `color-BFS` tolerates per-edge loads up to
//! `τ = Θ(n^{1-1/k})`; `randomized-color-BFS` (Algorithm 2) caps them at
//! the constant 4 while the success probability drops to `1/(3τ)` —
//! the trade quantum amplification then wins back quadratically. Both
//! detectors are driven through the unified `Detector` surface.

use congest_graph::FamilySpec;
use even_cycle::{Budget, CycleDetector, Detector, LowProbDetector, Params};
use even_cycle_bench::{render_table, Sample, Series};

fn main() {
    // The polarity catalog family snaps a requested size n down to the
    // largest prime q with q² + q + 1 ≤ n; these sizes hit q = 11, 17,
    // 23, 31 exactly (the instance ladder the old per-prime loop
    // hard-coded).
    let sizes = [133usize, 307, 553, 993];
    let hosts: Vec<_> = sizes
        .iter()
        .map(|&n| FamilySpec::Polarity.build(n, 0))
        .collect();

    // Congestion of Algorithm 1 (threshold τ) vs Algorithm 2 (threshold
    // 4) on the same hosts, both through Detector::detect.
    let classical_det = CycleDetector::new(Params::practical(2));
    let low_det = LowProbDetector::new(Params::practical(2));
    let budget = Budget::classical().with_repetitions(4);
    let mut rows = Vec::new();
    let mut cong_samples = Vec::new();
    for g in &hosts {
        let n = g.node_count();
        let classical = classical_det
            .detect(g, 3, &budget)
            .expect("color-BFS simulation cannot fail")
            .cost
            .max_congestion;
        let randomized = low_det
            .detect(g, 3, &budget)
            .expect("randomized color-BFS simulation cannot fail")
            .cost
            .max_congestion;
        let tau = Params::practical(2).instantiate(n).tau;
        rows.push(vec![
            format!("{n}"),
            format!("{tau}"),
            format!("{classical}"),
            format!("{randomized}"),
        ]);
        assert!(randomized <= 4, "Lemma 12 congestion bound violated");
        cong_samples.push(Sample {
            n,
            value: (classical as f64).max(1.0),
        });
    }
    println!(
        "{}",
        render_table(
            "E6 — congestion: color-BFS vs randomized-color-BFS (k = 2)",
            &["n", "tau(n)", "max load, Alg.1", "max load, Alg.2 (<= 4)"],
            &rows
        )
    );
    let s = Series::fit("Algorithm 1 congestion growth", cong_samples);
    println!("{}", s.render());

    // The success-probability side of the trade: empirical rejection
    // rate of single low-probability runs on a yes-instance vs 1/(3τ).
    let g = FamilySpec::PlantedPolarity { l: 4 }.build(133, 5);
    let n = g.node_count();
    let low = LowProbDetector::new(Params::practical(2));
    let single = Budget::classical().with_repetitions(1);
    let trials = 3000u64;
    let hits = (0..trials)
        .filter(|&s| {
            low.detect(&g, s, &single)
                .expect("randomized color-BFS simulation cannot fail")
                .rejected()
        })
        .count();
    let declared = low.success_probability(n);
    println!(
        "single-repetition success on a planted C4 at n = {n}: {}/{} = {:.5}",
        hits,
        trials,
        hits as f64 / trials as f64
    );
    println!(
        "Lemma 12 declared lower bound 1/(3tau) = {declared:.6} (must not exceed the empirical rate)"
    );
}
