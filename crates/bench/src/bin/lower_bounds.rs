//! E8: the Set-Disjointness reductions — gadget scaling, iff-property
//! spot checks, cut communication, and the implied lower bounds.
//!
//! ```text
//! cargo run --release -p even-cycle-bench --bin lower_bounds
//! ```

use congest_graph::analysis;
use congest_lowerbounds::disjointness::Disjointness;
use congest_lowerbounds::gadgets::{C4Gadget, EvenCycleGadget, OddCycleGadget};
use congest_lowerbounds::reduction::measure_even_detection;
use congest_lowerbounds::theory;
use even_cycle::Params;
use even_cycle_bench::{render_table, Sample, Series};

fn main() {
    // Gadget scaling: fitted power laws N ~ n^alpha per family.
    let c4: Vec<Sample> = [5u64, 7, 11, 13, 17, 23]
        .iter()
        .map(|&q| {
            let g = C4Gadget::new(q);
            Sample {
                n: g.node_count(),
                value: g.universe() as f64,
            }
        })
        .collect();
    println!(
        "{}",
        Series::fit("E8a — C4 gadget universe N(n), paper alpha = 1.5", c4).render()
    );
    let c6: Vec<Sample> = [4usize, 8, 16, 32]
        .iter()
        .map(|&s| {
            let g = EvenCycleGadget::new(3, s);
            // Vertices with all elements present: 4s + 2·s²·(k-2).
            let inst = Disjointness::new(vec![true; s * s], vec![true; s * s]);
            let built = g.build(&inst);
            Sample {
                n: built.graph.node_count(),
                value: g.universe() as f64,
            }
        })
        .collect();
    println!(
        "{}",
        Series::fit("E8a — C6 gadget universe N(n), paper alpha = 1.0", c6).render()
    );
    let c5: Vec<Sample> = [4usize, 8, 16, 32]
        .iter()
        .map(|&t| {
            let g = OddCycleGadget::new(2, t);
            let inst = Disjointness::new(vec![true; t * t], vec![true; t * t]);
            let built = g.build(&inst);
            Sample {
                n: built.graph.node_count(),
                value: g.universe() as f64,
            }
        })
        .collect();
    println!(
        "{}",
        Series::fit("E8a — C5 gadget universe N(n), paper alpha = 2.0", c5).render()
    );

    // Iff-property spot checks at larger-than-test sizes.
    let gadget = C4Gadget::new(13);
    let mut ok = 0;
    for seed in 0..6 {
        let inst = Disjointness::random(gadget.universe(), 0.2, seed);
        let built = gadget.build(&inst);
        let has = analysis::has_cycle_exact(&built.graph, 4, Some(500_000_000));
        assert_eq!(has, inst.intersects(), "iff violated at seed {seed}");
        ok += 1;
    }
    println!("E8b — iff-property: {ok}/6 random instances over ER_13 agree (C4 ⇔ intersection)\n");

    // Cut communication of Algorithm 1 on the gadget vs the protocol
    // bound.
    let mut rows = Vec::new();
    for q in [7u64, 11, 13] {
        let gadget = C4Gadget::new(q);
        let (inst, _) = Disjointness::random_with_planted_intersection(gadget.universe(), 3);
        let built = gadget.build(&inst);
        let m = measure_even_detection(&built, &Params::practical(2).with_repetitions(16), 16, 2);
        let n = built.graph.node_count();
        rows.push(vec![
            format!("ER_{q}"),
            format!("{n}"),
            format!("{}", m.rounds),
            format!("{}", m.cut_bits()),
            format!("{}", m.protocol_bound()),
            format!("{}", gadget.universe()),
        ]);
    }
    println!(
        "{}",
        render_table(
            "E8c — cut communication of Algorithm 1 on the C4 gadget (16 iterations)",
            &["base", "n", "rounds", "cut bits", "T*cut*logn", "N"],
            &rows
        )
    );
    println!("(The reduction says: an o(N/(cut·log n))-round algorithm would break the Ω(N) disjointness bound.)\n");

    // Implied bounds at experiment scale and at paper scale.
    let mut rows = Vec::new();
    for exp in [10u32, 14, 20, 30] {
        let n = 1usize << exp;
        rows.push(vec![
            format!("2^{exp}"),
            format!("{:.1}", theory::c4_quantum_lower_bound(n)),
            format!("{:.1}", theory::c2k_quantum_lower_bound(n)),
            format!("{:.1}", theory::odd_quantum_lower_bound(n)),
            format!(
                "{:.1}",
                even_cycle::theory::Table1Row::ThisPaperQuantum.rounds(n, 2)
            ),
        ]);
    }
    println!(
        "{}",
        render_table(
            "E8d — implied quantum round lower bounds vs the C4 upper bound",
            &[
                "n",
                "C4 lower",
                "C2k lower",
                "C2k+1 lower",
                "C4 upper n^1/4"
            ],
            &rows
        )
    );
}
