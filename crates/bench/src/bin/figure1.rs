//! Regenerates Figure 1: the Lemma 6 cycle construction for `k = 5`,
//! `i = 2` (`q = 1`, nested sets `IN(v,0) ⊆ IN(v,1) ⊆ IN(v,2) ⊆ IN(v)`).
//!
//! ```text
//! cargo run --release -p even-cycle-bench --bin figure1
//! ```
//!
//! Prints the nested edge sets, the three paths `P`, `P′`, `P″`, the
//! assembled 10-cycle, and a GraphViz rendering of the instance with the
//! cycle highlighted.

use even_cycle::sparsify::{layered_density_instance, Sparsification};

fn main() {
    let k = 5usize;
    let i = 2usize;
    let sigma = 30usize;
    let (base_graph, mut input, apex) = layered_density_instance(k, i, sigma, 4);
    // Enrich the instance with "weak" S vertices (one W₀ neighbor each):
    // their E(S, W₀) edges have s-degree 1 and are discarded by the top
    // filter (Eq. 5), making the inclusion IN(v, 2q) ⊂ IN(v) strict —
    // the regime Figure 1 draws.
    let weak = 6u32;
    let mut b = congest_graph::GraphBuilder::new(base_graph.node_count());
    for (u, v) in base_graph.edges() {
        b.add_edge(u, v);
    }
    let first_weak = b.add_nodes(weak as usize);
    for t in 0..weak {
        let s_new = congest_graph::NodeId::new(first_weak.raw() + t);
        let w0 = congest_graph::NodeId::new((sigma as u32) + t); // some W₀ vertex
        b.add_edge(s_new, w0);
        input.s_mask.push(true);
        input.w0_mask.push(false);
        input.layer.push(None);
    }
    let graph = b.build();
    println!("Figure 1 reproduction: k = {k} (10-cycle), trigger at layer i = {i}");
    println!(
        "instance: n = {}, m = {}, |S| = {}, |W0| = {}",
        graph.node_count(),
        graph.edge_count(),
        input.s_mask.iter().filter(|&&b| b).count(),
        input.w0_mask.iter().filter(|&&b| b).count(),
    );

    let sp = Sparsification::new(&graph, input.clone()).expect("valid instance");
    let q = sp.q_of(apex).expect("apex is layered");
    println!("\napex v = {apex} ∈ V_{i}, q = ⌊(k-i)/2⌋ = {q}");
    println!("nested sequence at v (Figure 1's IN(v,0) ⊆ IN(v,1) ⊆ IN(v,2)):");
    for (gamma, set) in sp.nested_sets(apex).iter().enumerate() {
        println!("  |IN(v,{gamma})| = {:>4} edges", set.len());
    }
    println!("  |IN(v)|   = {:>4} edges", sp.in_set(apex).len());

    // The verdicts of the supporting lemmas.
    println!(
        "\nLemma 7 data: |W0(v)| = {} vs bound 2^(i-1)(k-1)|S| = {:.0}",
        sp.w0_reachable(apex).len(),
        sp.density_bound(apex).expect("layered")
    );
    println!("IN(v,0) non-empty -> Lemma 6 constructs the cycle:");

    let witness = sp.construct_cycle(apex).expect("Lemma 6 construction");
    // Classify the cycle's vertices the way the figure does.
    let role = |v: &congest_graph::NodeId| -> &'static str {
        if input.s_mask[v.index()] {
            "S"
        } else if input.w0_mask[v.index()] {
            "W0"
        } else if let Some(layer) = input.layer[v.index()] {
            match layer {
                1 => "V1",
                2 => "V2",
                _ => "V?",
            }
        } else {
            "?"
        }
    };
    println!("\nassembled 10-cycle (vertex: role):");
    for v in witness.nodes() {
        println!("  {v:>4}: {}", role(v));
    }
    assert!(witness.is_valid(&graph), "must validate against the graph");
    assert_eq!(witness.len(), 2 * k);
    println!("\nvalid = true, length = {} = 2k ✓", witness.len());
    println!(
        "meets S = {} ✓ (the cycle the second color-BFS would have caught)",
        witness.nodes().iter().any(|u| input.s_mask[u.index()])
    );

    // The figure itself, as DOT (the full bipartite S×W0 block is dense;
    // we render only the cycle's closed neighborhood for readability).
    let keep: Vec<bool> = graph
        .nodes()
        .map(|v| {
            witness.nodes().contains(&v)
                || graph
                    .neighbors(v)
                    .iter()
                    .filter(|u| witness.nodes().contains(u))
                    .count()
                    >= 2
        })
        .collect();
    let (sub, back) = graph.induced_subgraph(&keep);
    let sub_cycle: Vec<congest_graph::NodeId> = witness
        .nodes()
        .iter()
        .map(|v| congest_graph::NodeId::new(back.iter().position(|u| u == v).expect("kept") as u32))
        .collect();
    println!("\nGraphViz (cycle neighborhood; highlighted = the 10-cycle):\n");
    println!("{}", congest_graph::serialize::to_dot(&sub, &sub_cycle));
}
