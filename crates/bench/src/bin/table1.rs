//! Regenerates Table 1: the round-complexity landscape, with measured
//! scaling exponents next to the paper's theoretical ones.
//!
//! ```text
//! cargo run --release -p even-cycle-bench --bin table1
//! ```
//!
//! Prints (a) the full 16-row Table 1 with theory exponents and each
//! row's implementation status *derived from the detector registry*
//! (a row is "measured" iff some registered detector claims it), and
//! (b) measured scaling series for every row we execute, all driven
//! through the unified `Detector` trait and the scenario runner — no
//! per-algorithm wiring. Every measured report is also appended as a
//! JSONL line to `target/table1.jsonl` (override with `TABLE1_JSONL`)
//! for machine consumption.

use congest_baselines::censor_hillel::LocalThresholdDetector;
use even_cycle::theory::Table1Row;
use even_cycle::{Budget, CycleDetector, Params, QuantumOddCycleDetector};
use even_cycle_bench::render_table;
use even_cycle_congest::engine::RunProfile;
use even_cycle_congest::registry::DetectorRegistry;
use even_cycle_congest::scenario::{GraphFamily, Metric, Scenario, ScenarioReport};

fn main() {
    // Rendered tables go to stdout; every measured report additionally
    // lands in a JSONL stream (fresh per invocation).
    let jsonl_path =
        std::env::var("TABLE1_JSONL").unwrap_or_else(|_| "target/table1.jsonl".to_string());
    let _ = std::fs::remove_file(&jsonl_path);
    let emit = |report: ScenarioReport| {
        println!("{}", report.render());
        if let Err(e) = report.write_jsonl(&jsonl_path) {
            eprintln!("warning: could not append to {jsonl_path}: {e}");
        }
    };

    // ---------- Part 1: the 16 rows, annotated from the registry ----------
    let registries: Vec<DetectorRegistry> = [2usize, 3]
        .into_iter()
        .map(|k| RunProfile::Practical.registry(k))
        .collect();
    let implemented = |row: Table1Row| {
        registries
            .iter()
            .flat_map(|r| r.iter())
            .find(|e| e.descriptor.table1 == Some(row))
            .map(|e| e.id.clone())
    };
    let mut rows = Vec::new();
    for row in Table1Row::ALL {
        let k_shown = 3usize;
        rows.push(vec![
            row.label().to_string(),
            if row.is_quantum() {
                "quantum"
            } else {
                "classical"
            }
            .to_string(),
            if row.is_upper_bound() {
                "upper"
            } else {
                "lower"
            }
            .to_string(),
            format!("n^{:.3} (k=3)", row.exponent(k_shown)),
            implemented(row).unwrap_or_else(|| "theory only".to_string()),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Table 1 — deciding C_k-freeness in CONGEST (exponents at k = 3)",
            &["row", "model", "bound", "complexity", "registry entry"],
            &rows
        )
    );

    // ---------- Part 2: measured scaling, scenario-driven ----------
    println!("Measured scaling (per-coloring-iteration rounds; the paper's K is n-independent):\n");

    // E1: this paper, k = 2, on extremal C4-free hosts.
    let ours_k2 = CycleDetector::new(Params::practical(2));
    let report = Scenario::new("this paper, C4 (k=2)", GraphFamily::polarity())
        .sizes(&[150, 330, 560, 1000])
        .seeds(11..12)
        .budget(Budget::classical().with_repetitions(4).exhaustive())
        .metric(Metric::RoundsPerIteration)
        .run(&[&ours_k2]);
    emit(report);

    // E1-adversarial: funnel hosts drive the per-edge load of the second
    // color-BFS to Θ(n·p) = Θ(n^{1-1/k}) — the worst case the threshold
    // τ is sized for — so the measured congestion realizes the Table 1
    // exponent, not just bounds it. The constant-scaled profile (see
    // Params::with_probability_scale) moves the p = min(1, ·) clamp
    // below the simulated sizes; exponents are unaffected.
    for (k, sizes) in [
        (2usize, [1024usize, 2048, 4096, 8192, 16384]),
        (3, [4096, 8192, 16384, 32768, 65536]),
    ] {
        let det = CycleDetector::new(
            Params::practical(k)
                .with_repetitions(6)
                .with_probability_scale(0.3),
        );
        let report = Scenario::new(
            format!(
                "this paper, C{} (k={k}), funnel-host peak congestion",
                2 * k
            ),
            GraphFamily::funnel(4, k),
        )
        .sizes(&sizes)
        .seeds(3..4)
        .metric(Metric::MaxCongestion)
        .run(&[&det]);
        emit(report);
    }

    // E1: this paper, k = 3, on degree-n^{1/3} hosts.
    let ours_k3 = CycleDetector::new(Params::practical(3));
    let report = Scenario::new("this paper, C6 (k=3)", GraphFamily::regularish_boundary(3))
        .sizes(&[128, 256, 512, 1024])
        .seeds(13..14)
        .budget(Budget::classical().with_repetitions(4).exhaustive())
        .metric(Metric::RoundsPerIteration)
        .run(&[&ours_k3]);
    emit(report);

    // E2: the [10] local-threshold baseline at k = 2 (attempt count is
    // the n-dependent factor; per-attempt cost is constant).
    let local = LocalThresholdDetector::new(2).with_attempts(1.0, 1 << 20);
    let report = Scenario::new("[10] local threshold, C4", GraphFamily::polarity())
        .sizes(&[150, 330, 560, 1000])
        .seeds(3..4)
        .metric(Metric::Rounds)
        .run(&[&local]);
    emit(report);

    // E2: deterministic gathering baseline (odd rows' Θ̃(n) on sparse
    // hosts). The gather simulation is the one genuinely fallible
    // detector; the scenario runner surfaces failures in its `errors`
    // column instead of unwrapping.
    let gather = congest_baselines::deterministic::GatherDetector::new(5);
    let report = Scenario::new("[15,30] deterministic gather", GraphFamily::random_trees())
        .sizes(&[64, 128, 256, 512])
        .seeds(9..10)
        .metric(Metric::Rounds)
        .run(&[&gather]);
    emit(report);

    // E3: the quantum pipelines, k = 2 and k = 3 — theory n^{1/4} and
    // n^{1/3} (+ polylog).
    for (k, label) in [(2usize, "C4 (k=2)"), (3, "C6 (k=3)")] {
        let det =
            even_cycle::QuantumCycleDetector::new(Params::practical(k).with_repetitions(8), 0.1)
                .with_mode(congest_quantum::GroverMode::Sampled { samples: 16 });
        let report = Scenario::new(
            format!("this paper quantum, {label}"),
            GraphFamily::random_trees(),
        )
        .sizes(&[128, 256, 512, 1024, 2048])
        .seeds(17..18)
        .metric(Metric::Rounds)
        .run(&[&det]);
        emit(report);
    }

    // E9: quantum odd cycles — theory √n.
    let qodd = QuantumOddCycleDetector::new(2, 8, 0.1)
        .with_mode(congest_quantum::GroverMode::Sampled { samples: 16 });
    let report = Scenario::new(
        "this paper quantum, C5 (k=2 odd)",
        GraphFamily::random_bipartite(0.05),
    )
    .sizes(&[64, 128, 256, 512, 1024])
    .seeds(29..30)
    .metric(Metric::Rounds)
    .run(&[&qodd]);
    emit(report);

    // E10: our quantum F2k exponent vs [33] (model comparison).
    println!("Quantum F_2k model comparison (rounds at n = 2^20):");
    for k in [2usize, 3, 4, 5] {
        let ours = Table1Row::ThisPaperQuantumF2k.rounds(1 << 20, k);
        let theirs =
            congest_baselines::apeldoorn_devos::ApeldoornDeVosModel::new(k).round_bound(1 << 20);
        println!(
            "  k = {k}: ours n^{:.3} = {ours:>10.0}   [33] n^{:.3} = {theirs:>10.0}   ({:.2}x)",
            Table1Row::ThisPaperQuantumF2k.exponent(k),
            0.5 - 1.0 / (4.0 * k as f64 + 2.0),
            theirs / ours
        );
    }

    // E2: the k ≥ 6 crossover against Eden et al.
    println!("\nClassical exponent landscape (ours vs [16], the k >= 6 improvement):");
    for k in [3usize, 4, 5, 6, 7, 8, 10, 12] {
        let ours = Table1Row::ThisPaperClassical.exponent(k);
        let eden = if k % 2 == 0 {
            Table1Row::EdenEvenK.exponent(k)
        } else {
            Table1Row::EdenOddK.exponent(k)
        };
        let status = if k <= 5 {
            "[10] already matched"
        } else {
            "this paper improves"
        };
        println!("  k = {k:>2}: ours n^{ours:.4}   [16] n^{eden:.4}   {status}");
    }
}
