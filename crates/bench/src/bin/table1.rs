//! Regenerates Table 1: the round-complexity landscape, with measured
//! scaling exponents next to the paper's theoretical ones.
//!
//! ```text
//! cargo run --release -p even-cycle-bench --bin table1
//! ```
//!
//! Prints (a) the full 16-row Table 1 with theory exponents and each
//! row's status in this reproduction, and (b) measured scaling series
//! with fitted exponents for every row we execute.

use even_cycle::theory::Table1Row;
use even_cycle_bench::{
    c4_free_hosts, k3_hosts, measure_classical_per_iteration, measure_quantum_odd_rounds,
    measure_quantum_rounds, render_table, sparse_hosts, Sample, Series,
};

fn main() {
    // ---------- Part 1: the 16 rows with theory exponents ----------
    let mut rows = Vec::new();
    for row in Table1Row::ALL {
        let k_shown = 3usize;
        rows.push(vec![
            row.label().to_string(),
            if row.is_quantum() { "quantum" } else { "classical" }.to_string(),
            if row.is_upper_bound() { "upper" } else { "lower" }.to_string(),
            format!("n^{:.3} (k=3)", row.exponent(k_shown)),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Table 1 — deciding C_k-freeness in CONGEST (exponents at k = 3)",
            &["row", "model", "bound", "complexity"],
            &rows
        )
    );

    // ---------- Part 2: measured scaling ----------
    println!("Measured scaling (per-coloring-iteration rounds; the paper's K is n-independent):\n");

    // E1: this paper, k = 2, on extremal C4-free hosts.
    let hosts = c4_free_hosts(&[11, 17, 23, 31]);
    let samples: Vec<Sample> = hosts
        .iter()
        .map(|g| Sample {
            n: g.node_count(),
            value: measure_classical_per_iteration(g, 2, 4, 11),
        })
        .collect();
    let s = Series::fit("this paper, C4 (k=2), polarity hosts — theory n^0.5", samples);
    println!("{}", s.render());

    // E1-adversarial: funnel hosts drive the per-edge load of the second
    // color-BFS to Θ(n·p) = Θ(n^{1-1/k}) — the worst case the threshold
    // τ is sized for — so the measured rounds realize the Table 1
    // exponent, not just bound it. The constant-scaled profile (see
    // Params::with_probability_scale) moves the p = min(1, ·) clamp
    // below the simulated sizes; exponents are unaffected.
    for (k, sizes) in [
        (2usize, [1024usize, 2048, 4096, 8192, 16384]),
        (3, [4096, 8192, 16384, 32768, 65536]),
    ] {
        let samples: Vec<Sample> = sizes
            .iter()
            .map(|&n| {
                let g = congest_graph::generators::funnel(n, 4, k);
                let params = even_cycle::Params::practical(k)
                    .with_repetitions(6)
                    .with_probability_scale(0.3);
                let det = even_cycle::CycleDetector::new(params);
                let opts = even_cycle::RunOptions {
                    continue_after_reject: true,
                    ..Default::default()
                };
                let outcome = det.run_with(&g, 3, &opts);
                // Congestion (max words on any edge in a round) is the
                // floor-free proxy: the per-superstep round charge is
                // exactly the max load, and the constant superstep floor
                // washes out of the congestion statistic.
                Sample {
                    n,
                    value: outcome.report.congestion.max_words_per_edge_step as f64,
                }
            })
            .collect();
        let s = Series::fit(
            format!(
                "this paper, C{} (k={k}), funnel-host peak congestion — theory n^{:.3}",
                2 * k,
                1.0 - 1.0 / k as f64
            ),
            samples,
        );
        println!("{}", s.render());
    }

    // E1: this paper, k = 3, on degree-n^{1/3} hosts.
    let hosts = k3_hosts(&[128, 256, 512, 1024], 5);
    let samples: Vec<Sample> = hosts
        .iter()
        .map(|g| Sample {
            n: g.node_count(),
            value: measure_classical_per_iteration(g, 3, 4, 13),
        })
        .collect();
    let s = Series::fit(
        "this paper, C6 (k=3), n^{1/3}-regular hosts — theory n^0.667",
        samples,
    );
    println!("{}", s.render());

    // E2: the [10] local-threshold baseline at k = 2 (attempt count is
    // the n-dependent factor; per-attempt cost is constant).
    let hosts = c4_free_hosts(&[11, 17, 23, 31]);
    let samples: Vec<Sample> = hosts
        .iter()
        .map(|g| {
            let det = congest_baselines::censor_hillel::LocalThresholdDetector::new(2)
                .with_attempts(1.0, 1 << 20);
            let o = det.run(g, 3);
            Sample {
                n: g.node_count(),
                value: o.report.rounds as f64,
            }
        })
        .collect();
    let s = Series::fit("[10] local threshold, C4 — theory n^0.5", samples);
    println!("{}", s.render());

    // E2: deterministic gathering baseline (odd rows' Θ̃(n) on sparse
    // hosts).
    let hosts = sparse_hosts(&[64, 128, 256, 512], 9);
    let samples: Vec<Sample> = hosts
        .iter()
        .map(|g| {
            let o = congest_baselines::deterministic::gather_and_decide(g, 5, 0)
                .expect("gather cannot fail");
            Sample {
                n: g.node_count(),
                value: o.report.rounds as f64,
            }
        })
        .collect();
    let s = Series::fit("[15,30] deterministic gather (sparse) — theory n^1", samples);
    println!("{}", s.render());

    // E3: quantum pipeline, k = 2 — theory n^{1/4} (+ polylog).
    let hosts = sparse_hosts(&[128, 256, 512, 1024, 2048], 21);
    let samples: Vec<Sample> = hosts
        .iter()
        .map(|g| Sample {
            n: g.node_count(),
            value: measure_quantum_rounds(g, 2, 17),
        })
        .collect();
    let s = Series::fit("this paper quantum, C4 (k=2) — theory n^0.25·polylog", samples);
    println!("{}", s.render());

    // E3: quantum pipeline, k = 3 — theory n^{1/3} (+ polylog).
    let hosts = sparse_hosts(&[128, 256, 512, 1024, 2048], 23);
    let samples: Vec<Sample> = hosts
        .iter()
        .map(|g| Sample {
            n: g.node_count(),
            value: measure_quantum_rounds(g, 3, 19),
        })
        .collect();
    let s = Series::fit(
        "this paper quantum, C6 (k=3) — theory n^0.333·polylog",
        samples,
    );
    println!("{}", s.render());

    // E9: quantum odd cycles — theory √n.
    let sizes = [64usize, 128, 256, 512, 1024];
    let samples: Vec<Sample> = sizes
        .iter()
        .map(|&n| {
            let g = congest_graph::generators::random_bipartite(n / 2, n / 2, 0.05, 31);
            Sample {
                n,
                value: measure_quantum_odd_rounds(&g, 2, 29),
            }
        })
        .collect();
    let s = Series::fit("this paper quantum, C5 (k=2 odd) — theory n^0.5·polylog", samples);
    println!("{}", s.render());

    // E10: our quantum F2k exponent vs [33] (model comparison).
    println!("Quantum F_2k model comparison (rounds at n = 2^20):");
    for k in [2usize, 3, 4, 5] {
        let ours = Table1Row::ThisPaperQuantumF2k.rounds(1 << 20, k);
        let theirs = congest_baselines::apeldoorn_devos::ApeldoornDeVosModel::new(k)
            .round_bound(1 << 20);
        println!(
            "  k = {k}: ours n^{:.3} = {ours:>10.0}   [33] n^{:.3} = {theirs:>10.0}   ({:.2}x)",
            Table1Row::ThisPaperQuantumF2k.exponent(k),
            0.5 - 1.0 / (4.0 * k as f64 + 2.0),
            theirs / ours
        );
    }

    // E2: the k ≥ 6 crossover against Eden et al.
    println!("\nClassical exponent landscape (ours vs [16], the k >= 6 improvement):");
    for k in [3usize, 4, 5, 6, 7, 8, 10, 12] {
        let ours = Table1Row::ThisPaperClassical.exponent(k);
        let eden = if k % 2 == 0 {
            Table1Row::EdenEvenK.exponent(k)
        } else {
            Table1Row::EdenOddK.exponent(k)
        };
        let status = if k <= 5 { "[10] already matched" } else { "this paper improves" };
        println!("  k = {k:>2}: ours n^{ours:.4}   [16] n^{eden:.4}   {status}");
    }
}
