//! A minimal wall-clock benchmarking harness (std-only).
//!
//! The build environment has no access to crates.io, so the bench
//! targets use this instead of criterion: warm-up, a fixed sample
//! count, and median/min/mean reporting. Bench targets are plain
//! `harness = false` binaries run by `cargo bench`.

use std::time::Instant;

/// Runs `f` `samples` times after `warmup` unmeasured runs and prints
/// one aligned result line. Returns the median per-run nanoseconds.
pub fn bench_case<R>(group: &str, id: &str, samples: u32, mut f: impl FnMut() -> R) -> u128 {
    assert!(samples > 0, "need at least one sample");
    let warmup = samples.div_ceil(4);
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    let median = times[times.len() / 2];
    let min = times[0];
    let mean = times.iter().sum::<u128>() / times.len() as u128;
    println!(
        "{group:<32} {id:<24} median {:>12}  min {:>12}  mean {:>12}  ({samples} samples)",
        format_ns(median),
        format_ns(min),
        format_ns(mean),
    );
    median
}

/// Formats nanoseconds with a readable unit.
fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_case_runs_and_reports() {
        let mut calls = 0u32;
        let median = bench_case("test", "noop", 5, || {
            calls += 1;
            calls
        });
        // 5 samples + 2 warm-up runs.
        assert_eq!(calls, 7);
        assert!(median < 1_000_000_000);
    }

    #[test]
    fn format_units() {
        assert!(format_ns(12).ends_with("ns"));
        assert!(format_ns(12_000).ends_with("us"));
        assert!(format_ns(12_000_000).ends_with("ms"));
        assert!(format_ns(12_000_000_000).ends_with(" s"));
    }
}
