// audit:fixture(as: src/engine/fixture_stale.rs)
//! Stale negative: a waiver outliving its violation.
use std::collections::BTreeMap;

pub fn render(rows: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    // audit:allow(R1): this map was a HashMap once; the waiver outlived the fix
    for (name, value) in rows {
        out.push_str(&format!("{name}={value}\n"));
    }
    out
}
