// audit:fixture(as: src/engine/fixture_lexer.rs)
//! Clean: rule-shaped text hiding in literals and comments.

/* Instant::now() in a block comment /* nested: thread::spawn */ stays out */
pub fn describe<'a>(tag: &'a str) -> String {
    let raw = r#"Instant::now() and map.iter() and "x.unwrap()""#;
    let quote = '"';
    let escaped = "say \"thread::spawn\" aloud";
    format!("{tag}:{raw}:{quote}:{escaped}")
}
