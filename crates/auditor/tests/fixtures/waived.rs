// audit:fixture(as: crates/core/src/fixture_waived.rs)
//! Positive: a violation acknowledged by a well-formed waiver.
use std::time::Instant;

pub fn probe() -> u128 {
    // audit:allow(R2): demonstration waiver for the fixture corpus
    let t = Instant::now();
    t.elapsed().as_nanos()
}
