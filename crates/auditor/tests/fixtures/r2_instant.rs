// audit:fixture(as: crates/core/src/fixture_r2.rs)
//! R2 negative: a detector-layer wall-clock read.
use std::time::Instant;

pub fn decide(n: u128) -> bool {
    let start = Instant::now();
    n > start.elapsed().as_nanos()
}
