// audit:fixture(as: src/engine/fixture_r1_sorted.rs)
//! Clean: unordered iteration immediately collected and sorted.
use std::collections::HashMap;

pub fn render(rows: &HashMap<String, u64>) -> String {
    let mut pairs: Vec<_> = rows.iter().collect();
    pairs.sort();
    pairs
        .into_iter()
        .map(|(name, value)| format!("{name}={value}\n"))
        .collect()
}
