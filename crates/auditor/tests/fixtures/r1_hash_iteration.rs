// audit:fixture(as: src/engine/fixture_r1.rs)
//! R1 negative: HashMap iteration feeding rendered output.
use std::collections::HashMap;

pub fn render(rows: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (name, value) in rows {
        out.push_str(&format!("{name}={value}\n"));
    }
    out
}
