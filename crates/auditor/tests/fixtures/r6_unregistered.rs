// audit:fixture(as: crates/core/src/fixture_r6.rs)
//! R6 negative: a Detector impl missing from the registry.

pub struct GhostDetector;

impl Detector for GhostDetector {
    fn id(&self) -> &'static str {
        "ghost"
    }
}
