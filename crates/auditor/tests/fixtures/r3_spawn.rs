// audit:fixture(as: crates/graph/src/fixture_r3.rs)
//! R3 negative: ad-hoc threading in the graph layer.

pub fn build_parallel() -> i32 {
    let handle = std::thread::spawn(|| 42);
    handle.join().unwrap_or(0)
}
