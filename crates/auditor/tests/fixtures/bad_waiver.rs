// audit:fixture(as: src/engine/fixture_bad_waiver.rs)
//! Bad-waiver negative: a waiver with no reason is malformed.
use std::time::Instant;

pub fn probe() -> Instant {
    // audit:allow(R2)
    Instant::now()
}
