// audit:fixture(as: src/serve.rs)
//! R4 negative: a bare unwrap on the protocol surface.

pub fn parse_port(line: &str) -> u16 {
    line.trim().parse().unwrap()
}

pub fn parse_port_checked(line: &str) -> Result<u16, String> {
    line.trim().parse().map_err(|e| format!("bad port: {e}"))
}
