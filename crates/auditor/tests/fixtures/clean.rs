// audit:fixture(as: src/engine/fixture_clean.rs)
//! Clean: ordered iteration, lookups, and collect-and-sort pass every rule.
use std::collections::{BTreeMap, HashMap};

pub fn render(rows: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (name, value) in rows {
        out.push_str(&format!("{name}={value}\n"));
    }
    out
}

pub fn lookup(index: &HashMap<String, u64>, name: &str) -> Option<u64> {
    index.get(name).copied()
}
