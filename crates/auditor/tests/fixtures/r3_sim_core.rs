// audit:fixture(as: crates/congest/src/core.rs)
//! R3 negative: ad-hoc threading in the superstep core. Threads may
//! only be created by the simulator's persistent pool module
//! (`crates/congest/src/pool.rs`); everywhere else in the simulator a
//! spawn bypasses the chunk-claim protocol the transcripts rely on.

pub fn spawn_in_core() -> i32 {
    let worker = std::thread::spawn(|| 7);
    worker.join().unwrap_or(0)
}
