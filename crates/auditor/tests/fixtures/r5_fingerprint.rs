// audit:fixture(as: src/engine/fixture_r5.rs)
//! R5 negative: truncating cast and float formatting in key builders.

pub fn unit_key(seed: u64) -> String {
    format!("unit:{}", seed as u32)
}

pub fn fingerprint(p: f64) -> String {
    format!("noisy:{}", p)
}
