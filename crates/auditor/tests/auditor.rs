//! End-to-end audits over the committed fixture corpus and the real
//! workspace tree.
//!
//! The negative fixtures each carry an `audit:fixture(as: …)` directive
//! so the real path classifier runs against them, and each asserts its
//! *exact* `file:line:col [rule-id]` diagnostics — the acceptance
//! criterion for the rule catalog. The final test audits the shipped
//! workspace itself and requires it clean, which is what keeps these
//! rules enforceable in CI.

use congest_auditor::{audit_files, audit_workspace, report};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // crates/auditor -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists above crates/auditor")
        .to_path_buf()
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Audits one fixture and returns (rule, line, col) triples in order.
fn diagnose(name: &str) -> Vec<(String, usize, usize)> {
    let outcome = audit_files(&repo_root(), &[fixture(name)]).expect("fixture audits");
    outcome
        .diagnostics
        .iter()
        .map(|d| (d.rule.clone(), d.line, d.col))
        .collect()
}

/// One expected diagnostic: (rule, line, col).
type Expected = (&'static str, usize, usize);

#[test]
fn negative_fixtures_produce_exact_diagnostics() {
    let expected: [(&str, &[Expected]); 8] = [
        ("r1_hash_iteration.rs", &[("R1", 7, 26)]),
        ("r2_instant.rs", &[("R2", 6, 17)]),
        ("r3_spawn.rs", &[("R3", 5, 23)]),
        ("r3_sim_core.rs", &[("R3", 8, 23)]),
        ("r4_unwrap.rs", &[("R4", 5, 25)]),
        ("r5_fingerprint.rs", &[("R5", 5, 29), ("R5", 9, 5)]),
        ("r6_unregistered.rs", &[("R6", 6, 19)]),
        ("bad_waiver.rs", &[("bad-waiver", 6, 5), ("R2", 7, 5)]),
    ];
    for (name, want) in expected {
        let got = diagnose(name);
        let want: Vec<(String, usize, usize)> = want
            .iter()
            .map(|(r, l, c)| (r.to_string(), *l, *c))
            .collect();
        assert_eq!(got, want, "{name}");
    }
}

#[test]
fn stale_waiver_is_an_error() {
    let got = diagnose("stale_waiver.rs");
    assert_eq!(got, vec![("stale-waiver".to_string(), 7, 5)]);
    let outcome = audit_files(&repo_root(), &[fixture("stale_waiver.rs")]).expect("audits");
    assert!(!outcome.clean(), "a stale waiver must fail the audit");
    let (violations, stale, bad) = outcome.counts();
    assert_eq!((violations, stale, bad), (0, 1, 0));
    assert!(
        outcome.diagnostics[0].message.contains("delete the waiver"),
        "{:?}",
        outcome.diagnostics[0]
    );
}

#[test]
fn clean_fixtures_pass() {
    for name in ["clean.rs", "r1_sorted_collect.rs", "lexer_red_herrings.rs"] {
        let got = diagnose(name);
        assert!(got.is_empty(), "{name}: {got:?}");
    }
}

#[test]
fn waived_fixture_is_clean_and_reports_the_waiver() {
    let outcome = audit_files(&repo_root(), &[fixture("waived.rs")]).expect("audits");
    assert!(outcome.clean(), "{:?}", outcome.diagnostics);
    assert_eq!(outcome.waived.len(), 1);
    assert_eq!(outcome.waived[0].rule, "R2");
    assert_eq!(outcome.waived[0].line, 7);
    assert!(outcome.waived[0].reason.contains("demonstration"));
}

#[test]
fn diagnostics_render_in_file_line_col_rule_format() {
    let outcome = audit_files(&repo_root(), &[fixture("r1_hash_iteration.rs")]).expect("audits");
    let line = outcome.diagnostics[0].render();
    assert!(line.contains("r1_hash_iteration.rs:7:26 [R1] "), "{line}");
}

#[test]
fn json_report_covers_diagnostics_and_waivers() {
    let outcome = audit_files(
        &repo_root(),
        &[fixture("r1_hash_iteration.rs"), fixture("waived.rs")],
    )
    .expect("audits");
    let json = report::render_json(&outcome);
    assert!(json.starts_with("{\"kind\":\"audit-report\",\"version\":1,"));
    assert!(json.contains("\"files_scanned\":2"), "{json}");
    assert!(json.contains("\"violations\":1"), "{json}");
    assert!(json.contains("\"waived\":1"), "{json}");
    assert!(json.contains("\"clean\":false"), "{json}");
    assert!(json.contains("\"rule\":\"R1\""), "{json}");
    assert!(json.contains("\"rule\":\"R2\""), "{json}");
    assert!(!json.contains('\n'), "flat report is a single line");
}

#[test]
fn shipped_workspace_tree_is_clean() {
    let outcome = audit_workspace(&repo_root()).expect("workspace audits");
    let rendered: Vec<String> = outcome.diagnostics.iter().map(|d| d.render()).collect();
    assert!(
        outcome.clean(),
        "shipped tree must audit clean:\n{rendered:#?}"
    );
    assert!(
        outcome.files_scanned > 100,
        "the walk should cover the whole workspace, saw {}",
        outcome.files_scanned
    );
    assert_eq!(
        outcome.fixtures_skipped, 13,
        "every fixture is skipped during workspace walks"
    );
    assert!(
        !outcome.waived.is_empty(),
        "the shipped tree documents its waivers (engine timing, scoped spawns)"
    );
}
