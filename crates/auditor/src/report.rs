//! Flat-JSON rendering of an [`AuditOutcome`](crate::AuditOutcome),
//! matching the house style used by the sweep reports and the serve
//! protocol: one object, scalar fields first, arrays of flat objects,
//! keys in a fixed order, no pretty-printing — so two identical audits
//! render byte-identical reports.

use crate::AuditOutcome;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the outcome as one line of flat JSON.
pub fn render_json(outcome: &AuditOutcome) -> String {
    let (violations, stale, bad) = outcome.counts();
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"kind\":\"audit-report\",\"version\":1,\"files_scanned\":{},\
         \"fixtures_skipped\":{},\"violations\":{},\"stale_waivers\":{},\
         \"bad_waivers\":{},\"waived\":{},\"clean\":{}",
        outcome.files_scanned,
        outcome.fixtures_skipped,
        violations,
        stale,
        bad,
        outcome.waived.len(),
        outcome.clean(),
    ));
    out.push_str(",\"diagnostics\":[");
    for (i, d) in outcome.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"path\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&d.path),
            d.line,
            d.col,
            json_escape(&d.rule),
            json_escape(&d.message),
        ));
    }
    out.push_str("],\"waivers\":[");
    for (i, w) in outcome.waived.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"path\":\"{}\",\"line\":{},\"rule\":\"{}\",\"reason\":\"{}\"}}",
            json_escape(&w.path),
            w.line,
            json_escape(&w.rule),
            json_escape(&w.reason),
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Diagnostic, WaivedViolation};

    #[test]
    fn report_is_flat_single_line_and_escaped() {
        let outcome = AuditOutcome {
            files_scanned: 2,
            fixtures_skipped: 1,
            diagnostics: vec![Diagnostic {
                path: "src/engine/mod.rs".to_string(),
                line: 3,
                col: 7,
                rule: "R1".to_string(),
                message: "iteration over `pending` with \"quotes\"".to_string(),
            }],
            waived: vec![WaivedViolation {
                path: "src/engine/cache.rs".to_string(),
                line: 171,
                rule: "R1".to_string(),
                reason: "counting only".to_string(),
            }],
        };
        let json = render_json(&outcome);
        assert!(!json.contains('\n'));
        assert!(json.starts_with("{\"kind\":\"audit-report\",\"version\":1,"));
        assert!(json.contains("\"violations\":1"));
        assert!(json.contains("\"clean\":false"));
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\"waivers\":[{\"path\":\"src/engine/cache.rs\""));
    }

    #[test]
    fn empty_outcome_is_clean() {
        let outcome = AuditOutcome::default();
        let json = render_json(&outcome);
        assert!(json.contains("\"clean\":true"));
        assert!(json.ends_with("\"diagnostics\":[],\"waivers\":[]}"));
    }
}
