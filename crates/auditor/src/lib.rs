//! Determinism auditor for the even-cycle workspace.
//!
//! Every guarantee this reproduction ships — byte-identical reports
//! across backends and worker counts, zero-re-execution replay from
//! content-addressed stores, result-invariant telemetry — is a
//! *determinism* invariant. This crate enforces those invariants at
//! the source level: a std-only lexer ([`lexer`]) scrubs comments and
//! literals out of each `.rs` file, a rule catalog ([`rules`],
//! R1–R6) token-scans the remainder, and this module stitches the
//! per-file passes into a workspace audit with waiver handling.
//!
//! Waivers are inline comments of the form
//! `// audit:allow(<rule-id>): <reason>` (ids comma-separated; the
//! reason is mandatory). A waiver written on its own line covers the
//! next code line; a trailing waiver covers its own line. A waiver
//! that matches no violation is itself an error — **stale-waiver
//! detection** — so the waiver baseline can only shrink.
//!
//! Fixture files (the auditor's own test corpus) start with a
//! `// audit:fixture(as: <pretend-path>)` directive: during workspace
//! walks any file containing that directive is skipped outright, and
//! when such a file is passed explicitly on the command line it is
//! audited *as if* it lived at the pretend path, exercising the real
//! classifier.

pub mod lexer;
pub mod report;
pub mod rules;

use rules::{DetectorImpl, FileClass, Violation};
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One reportable problem: a rule violation, a stale waiver, or a
/// malformed waiver/directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    pub line: usize,
    pub col: usize,
    /// `R1`–`R6`, `stale-waiver`, or `bad-waiver`.
    pub rule: String,
    pub message: String,
}

impl Diagnostic {
    /// The canonical one-line rendering: `file:line:col [rule] message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{} [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// A violation that an in-tree waiver acknowledged (reported for
/// transparency, not failure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaivedViolation {
    pub path: String,
    pub line: usize,
    pub rule: String,
    pub reason: String,
}

/// The result of one audit run.
#[derive(Debug, Default)]
pub struct AuditOutcome {
    pub files_scanned: usize,
    /// Fixture files skipped during the workspace walk.
    pub fixtures_skipped: usize,
    /// Everything that fails the audit, sorted by (path, line, col).
    pub diagnostics: Vec<Diagnostic>,
    /// Violations acknowledged by a waiver, same order.
    pub waived: Vec<WaivedViolation>,
}

impl AuditOutcome {
    /// Whether the audited tree passes (no violations, no stale or
    /// malformed waivers).
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Counts split by diagnostic kind: (violations, stale, bad).
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut v = 0;
        let mut stale = 0;
        let mut bad = 0;
        for d in &self.diagnostics {
            match d.rule.as_str() {
                "stale-waiver" => stale += 1,
                "bad-waiver" => bad += 1,
                _ => v += 1,
            }
        }
        (v, stale, bad)
    }
}

/// Classifies a workspace-relative path (forward slashes) onto the
/// rule surfaces. This is the single source of truth for the
/// allowlists documented in the README's rule catalog.
pub fn classify(rel: &str) -> FileClass {
    let has_component = |name: &str| rel.split('/').any(|c| c == name);
    let starts = |prefixes: &[&str]| prefixes.iter().any(|p| rel.starts_with(p));
    FileClass {
        test_code: has_component("tests") || has_component("benches"),
        // Files whose bytes reach reports, stores, traces, or wire
        // replies — where iteration order becomes output order.
        output_scope: starts(&[
            "src/engine/",
            "src/serve.rs",
            "src/scenario.rs",
            "src/stream.rs",
            "src/suite.rs",
            "src/registry.rs",
            "crates/graph/src/serialize.rs",
            "crates/graph/src/spec.rs",
            "crates/graph/src/stream.rs",
            "crates/telemetry/src/",
        ]),
        // The layers allowed to read wall clocks: work distribution,
        // scheduling caps, the server, CLI drivers, telemetry, bench,
        // and the simulator's worker pool (busy/idle accounting).
        timing_allowed: starts(&[
            "src/engine/pool.rs",
            "src/engine/schedule.rs",
            "src/serve.rs",
            "src/bin/",
            "crates/telemetry/",
            "crates/bench/",
            "crates/congest/src/pool.rs",
        ]),
        // The layers allowed to create threads: the engine's sweep
        // pool, the server, CLI drivers, and the simulator's persistent
        // superstep pool — and nothing else in the simulator.
        spawn_allowed: starts(&[
            "src/engine/pool.rs",
            "src/serve.rs",
            "src/bin/",
            "crates/congest/src/pool.rs",
        ]),
        protocol_surface: rel == "src/serve.rs",
        // The vendored compat shims reproduce upstream rand algorithms
        // (ChaCha is all deliberate u32 arithmetic); everything else
        // answers for its key hygiene.
        key_hygiene: !rel.starts_with("crates/compat/"),
    }
}

/// A parsed waiver comment.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Waiver {
    rule_ids: Vec<String>,
    reason: String,
    /// Line/col of the comment itself (where stale errors point).
    line: usize,
    col: usize,
    /// The code line this waiver covers.
    target_line: Option<usize>,
}

const ALLOW_PREFIX: &str = "audit:allow(";
const FIXTURE_PREFIX: &str = "audit:fixture(";

/// What a comment means to the auditor.
enum Directive {
    Allow {
        rule_ids: Vec<String>,
        reason: String,
    },
    Fixture(String),
    Bad(String),
    None,
}

fn parse_directive(text: &str) -> Directive {
    // Only comments that *begin* with a directive count, so prose that
    // mentions the syntax mid-sentence is inert. Doc-comment markers
    // (`///`, `//!`) are part of the text and stripped here.
    let t = text
        .trim_start_matches(|c: char| c == '/' || c == '!' || c.is_whitespace())
        .trim_end();
    if let Some(rest) = t.strip_prefix(ALLOW_PREFIX) {
        let Some(close) = rest.find(')') else {
            return Directive::Bad("waiver is missing its closing parenthesis".to_string());
        };
        let ids: Vec<String> = rest[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .collect();
        if ids.iter().any(|id| !rules::known_rule(id)) {
            return Directive::Bad(format!(
                "waiver names an unknown rule id in ({}); known ids are R1..R6",
                &rest[..close]
            ));
        }
        let after = rest[close + 1..].trim_start();
        let Some(reason) = after.strip_prefix(':') else {
            return Directive::Bad(
                "waiver is missing `: reason` after the rule list — every waiver must \
                 say why the violation is acceptable"
                    .to_string(),
            );
        };
        let reason = reason.trim();
        if reason.is_empty() {
            return Directive::Bad(
                "waiver has an empty reason — every waiver must say why the violation \
                 is acceptable"
                    .to_string(),
            );
        }
        Directive::Allow {
            rule_ids: ids,
            reason: reason.to_string(),
        }
    } else if let Some(rest) = t.strip_prefix(FIXTURE_PREFIX) {
        let Some(close) = rest.find(')') else {
            return Directive::Bad("fixture directive is missing its closing parenthesis".into());
        };
        let inner = rest[..close].trim();
        let Some(path) = inner.strip_prefix("as:") else {
            return Directive::Bad(
                "fixture directive must read `as: <pretend-path>` so the file is \
                 classified like a real workspace file"
                    .to_string(),
            );
        };
        Directive::Fixture(path.trim().to_string())
    } else {
        Directive::None
    }
}

/// Per-file audit state before cross-file checks.
struct FileAudit {
    rel: String,
    violations: Vec<Violation>,
    waivers: Vec<Waiver>,
    bad: Vec<Diagnostic>,
    impls: Vec<DetectorImpl>,
    /// A well-formed fixture directive's pretend path, if any. The
    /// detection is comment-anchored — a file that merely *mentions*
    /// the directive syntax in prose or a string literal is not a
    /// fixture.
    fixture_as: Option<String>,
}

/// Whether to honor fixture directives: explicit CLI file arguments
/// reclassify; workspace walks skip fixture files entirely.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FixtureMode {
    Reclassify,
    Ignore,
}

fn audit_source(rel: &str, source: &str, mode: FixtureMode) -> FileAudit {
    let scrubbed = lexer::scrub(source);
    let code = lexer::code_lines(&scrubbed.text);
    let mut waivers = Vec::new();
    let mut bad = Vec::new();
    let mut fixture_as = None;
    for c in &scrubbed.comments {
        match parse_directive(&c.text) {
            Directive::Allow { rule_ids, reason } => {
                let target_line = if c.own_line {
                    // A standalone waiver covers the next code line.
                    (c.line..code.len())
                        .find(|&l| code.get(l).copied().unwrap_or(false))
                        .map(|l| l + 1)
                } else {
                    Some(c.line)
                };
                waivers.push(Waiver {
                    rule_ids,
                    reason,
                    line: c.line,
                    col: c.col,
                    target_line,
                });
            }
            Directive::Bad(message) => bad.push(Diagnostic {
                path: rel.to_string(),
                line: c.line,
                col: c.col,
                rule: "bad-waiver".to_string(),
                message,
            }),
            Directive::Fixture(pretend) => {
                if fixture_as.is_none() {
                    fixture_as = Some(pretend);
                }
            }
            Directive::None => {}
        }
    }

    let class = match (&fixture_as, mode) {
        (Some(pretend), FixtureMode::Reclassify) => classify(pretend),
        _ => classify(rel),
    };
    let tokens = lexer::tokenize(&scrubbed.text);
    let spans = lexer::test_spans(&tokens);
    let violations = rules::run_file_rules(&tokens, &spans, &class);
    let impls = if class.test_code {
        Vec::new()
    } else {
        rules::detector_impls(&tokens, &spans)
    };

    FileAudit {
        rel: rel.to_string(),
        violations,
        waivers,
        bad,
        impls,
        fixture_as,
    }
}

/// Applies `audit.waivers` to `audit.violations`: matched violations
/// move to `waived`; waiver ids that match nothing become stale-waiver
/// diagnostics. Returns (diagnostics, waived).
fn apply_waivers(audit: FileAudit) -> (Vec<Diagnostic>, Vec<WaivedViolation>) {
    let FileAudit {
        rel,
        mut violations,
        waivers,
        mut bad,
        ..
    } = audit;
    let mut waived = Vec::new();
    for w in &waivers {
        for id in &w.rule_ids {
            let before = violations.len();
            violations.retain(|v| {
                let hit = v.rule == id && Some(v.line) == w.target_line;
                if hit {
                    waived.push(WaivedViolation {
                        path: rel.clone(),
                        line: v.line,
                        rule: id.clone(),
                        reason: w.reason.clone(),
                    });
                }
                !hit
            });
            if violations.len() == before {
                bad.push(Diagnostic {
                    path: rel.clone(),
                    line: w.line,
                    col: w.col,
                    rule: "stale-waiver".to_string(),
                    message: format!(
                        "waiver for {id} matches no violation on its target line \
                         ({}): the code was fixed or moved — delete the waiver",
                        w.target_line
                            .map_or("<none>".to_string(), |l| l.to_string())
                    ),
                });
            }
        }
    }
    let mut diagnostics = bad;
    diagnostics.extend(violations.into_iter().map(|v| Diagnostic {
        path: rel.clone(),
        line: v.line,
        col: v.col,
        rule: v.rule.to_string(),
        message: v.message,
    }));
    diagnostics.sort_by(|a, b| (a.line, a.col, &a.rule).cmp(&(b.line, b.col, &b.rule)));
    (diagnostics, waived)
}

/// The identifier set of `src/registry.rs`, for R6. `None` when the
/// root has no registry file (then R6 has nothing to check against).
fn registry_idents(root: &Path) -> Option<BTreeSet<String>> {
    let source = fs::read_to_string(root.join("src/registry.rs")).ok()?;
    let tokens = lexer::tokenize(&lexer::scrub(&source).text);
    Some(
        tokens
            .into_iter()
            .filter(|t| t.word)
            .map(|t| t.text)
            .collect(),
    )
}

/// Appends R6 violations for detector impls absent from the registry.
fn check_registry(audits: &mut [FileAudit], registry: Option<&BTreeSet<String>>) {
    let Some(registry) = registry else {
        return;
    };
    for audit in audits.iter_mut() {
        for imp in &audit.impls {
            if !registry.contains(&imp.type_name) {
                audit.violations.push(Violation {
                    rule: "R6",
                    line: imp.line,
                    col: imp.col,
                    message: format!(
                        "`impl Detector for {}` is not registered in src/registry.rs: \
                         unregistered detectors escape the conformance suite and the \
                         sweep grid",
                        imp.type_name
                    ),
                });
            }
        }
    }
}

/// Recursively collects `.rs` files under `root/{src,crates,tests}`,
/// skipping `target/` and hidden directories, in sorted order.
fn walk_rs(root: &Path) -> io::Result<Vec<PathBuf>> {
    fn recurse(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
        let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if name.starts_with('.') || name == "target" {
                continue;
            }
            if path.is_dir() {
                recurse(&path, out)?;
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut files = Vec::new();
    for sub in ["src", "crates", "tests"] {
        let dir = root.join(sub);
        if dir.is_dir() {
            recurse(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn to_rel(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn finish(mut audits: Vec<FileAudit>, root: &Path, outcome: &mut AuditOutcome) {
    let registry = registry_idents(root);
    check_registry(&mut audits, registry.as_ref());
    for audit in audits {
        let (diagnostics, waived) = apply_waivers(audit);
        outcome.diagnostics.extend(diagnostics);
        outcome.waived.extend(waived);
    }
}

/// Audits every workspace source file under `root`. Files containing
/// a fixture directive are skipped (they are negative test corpora,
/// not workspace code).
pub fn audit_workspace(root: &Path) -> io::Result<AuditOutcome> {
    let mut outcome = AuditOutcome::default();
    let mut audits = Vec::new();
    for path in walk_rs(root)? {
        let source = fs::read_to_string(&path)?;
        let audit = audit_source(&to_rel(root, &path), &source, FixtureMode::Ignore);
        if audit.fixture_as.is_some() {
            // Negative test corpora, not workspace code. (A *malformed*
            // fixture directive does not skip: it surfaces as a
            // bad-waiver diagnostic, loudly.)
            outcome.fixtures_skipped += 1;
            continue;
        }
        outcome.files_scanned += 1;
        audits.push(audit);
    }
    finish(audits, root, &mut outcome);
    Ok(outcome)
}

/// Audits exactly `files`. A `audit:fixture(as: <path>)` directive
/// reclassifies the file as if it lived at `<path>` — this is how the
/// negative fixtures exercise scoped rules from inside the auditor's
/// own test tree. R6 still resolves against `root`'s registry.
pub fn audit_files(root: &Path, files: &[PathBuf]) -> io::Result<AuditOutcome> {
    let mut outcome = AuditOutcome::default();
    let mut audits = Vec::new();
    for path in files {
        let source = fs::read_to_string(path)?;
        outcome.files_scanned += 1;
        audits.push(audit_source(
            &to_rel(root, path),
            &source,
            FixtureMode::Reclassify,
        ));
    }
    finish(audits, root, &mut outcome);
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_the_documented_surfaces() {
        let engine = classify("src/engine/mod.rs");
        assert!(engine.output_scope && !engine.timing_allowed && !engine.spawn_allowed);
        let pool = classify("src/engine/pool.rs");
        assert!(pool.timing_allowed && pool.spawn_allowed);
        let serve = classify("src/serve.rs");
        assert!(serve.protocol_surface && serve.timing_allowed && serve.spawn_allowed);
        let graph = classify("crates/graph/src/spec.rs");
        assert!(graph.output_scope && !graph.timing_allowed);
        let detector = classify("crates/core/src/randomized.rs");
        assert!(!detector.output_scope && !detector.timing_allowed && !detector.spawn_allowed);
        let sim_pool = classify("crates/congest/src/pool.rs");
        assert!(sim_pool.timing_allowed && sim_pool.spawn_allowed);
        // The rest of the simulator may neither spawn nor read clocks
        // without a reviewed waiver: the pool is the whole surface.
        for rel in [
            "crates/congest/src/core.rs",
            "crates/congest/src/parallel.rs",
            "crates/congest/src/backend.rs",
        ] {
            let c = classify(rel);
            assert!(!c.spawn_allowed && !c.timing_allowed, "{rel}");
        }
        let compat = classify("crates/compat/rand_chacha/src/lib.rs");
        assert!(!compat.key_hygiene);
        let test = classify("crates/telemetry/tests/noop_overhead.rs");
        assert!(test.test_code);
    }

    #[test]
    fn waiver_parsing_accepts_good_and_rejects_bad() {
        match parse_directive(" audit:allow(R1): counting only, order-free") {
            Directive::Allow { rule_ids, reason } => {
                assert_eq!(rule_ids, ["R1"]);
                assert_eq!(reason, "counting only, order-free");
            }
            _ => panic!("good waiver rejected"),
        }
        match parse_directive(" audit:allow(R2, R3): scoped simulation threads") {
            Directive::Allow { rule_ids, .. } => assert_eq!(rule_ids, ["R2", "R3"]),
            _ => panic!("multi-id waiver rejected"),
        }
        assert!(matches!(
            parse_directive(" audit:allow(R9): nope"),
            Directive::Bad(_)
        ));
        assert!(matches!(
            parse_directive(" audit:allow(R1)"),
            Directive::Bad(_)
        ));
        assert!(matches!(
            parse_directive(" audit:allow(R1):   "),
            Directive::Bad(_)
        ));
        // Prose that merely mentions the syntax is inert.
        assert!(matches!(
            parse_directive(" waivers look like audit:allow(R1): reason"),
            Directive::None
        ));
    }

    #[test]
    fn trailing_waiver_covers_its_line_and_standalone_covers_next() {
        let src = "fn f(m: &std::collections::HashMap<u32, u32>) {\n\
                   for x in m { use_(x); } // audit:allow(R1): documented\n\
                   // audit:allow(R1): also documented\n\
                   for y in m { use_(y); }\n\
                   }\n";
        let audit = audit_source("src/engine/x.rs", src, FixtureMode::Ignore);
        assert_eq!(audit.violations.len(), 2);
        let (diags, waived) = apply_waivers(audit);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(waived.len(), 2);
    }

    #[test]
    fn unmatched_waiver_goes_stale() {
        let src = "fn f() {} // audit:allow(R2): nothing here times anything\n";
        let audit = audit_source("src/engine/x.rs", src, FixtureMode::Ignore);
        let (diags, waived) = apply_waivers(audit);
        assert!(waived.is_empty());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "stale-waiver");
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn multi_id_waiver_is_stale_per_unused_id() {
        let src = "// audit:allow(R2, R3): only the clock is real\n\
                   fn f() { let t = std::time::Instant::now(); }\n";
        let audit = audit_source("crates/core/src/x.rs", src, FixtureMode::Ignore);
        let (diags, waived) = apply_waivers(audit);
        assert_eq!(waived.len(), 1);
        assert_eq!(waived[0].rule, "R2");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "stale-waiver");
        assert!(diags[0].message.contains("R3"), "{diags:?}");
    }
}
