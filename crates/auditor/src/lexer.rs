//! A small, std-only Rust source scrubber and token scanner.
//!
//! The auditor deliberately avoids `syn`/proc-macro machinery (house
//! style: no external dependencies), so its "parser" is a character
//! state machine that *scrubs* a source file — replacing the interiors
//! of comments, string literals, raw strings, byte strings, and char
//! literals with spaces while preserving every newline and every
//! character column — followed by a flat token scan over the scrubbed
//! text. Positions therefore line up exactly with the original file,
//! and rule patterns can never match text that lives inside a literal
//! or a comment.
//!
//! The tricky cases the scrubber must get right (each covered by a
//! unit test below and by the fixture corpus):
//!
//! * raw strings `r"…"` / `r#"…"#` / `br##"…"##` with any hash count,
//!   whose bodies may contain unbalanced quotes and `//` sequences;
//! * nested block comments (`/* outer /* inner */ still out */`),
//!   which Rust permits and C-style scanners get wrong;
//! * char literals vs. lifetimes: `'a'` is a literal, `<'a>` is not,
//!   `'\n'` and `b'\''` are literals with escapes;
//! * escaped quotes inside ordinary strings (`"\""`).

/// One `//` line comment, kept (with its text) for waiver and
/// directive parsing. Block comments are scrubbed but not recorded:
/// waivers are line-oriented annotations by design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineComment {
    /// 1-based line of the `//`.
    pub line: usize,
    /// 1-based character column of the `//`.
    pub col: usize,
    /// The comment text *after* the `//`, untrimmed.
    pub text: String,
    /// Whether only whitespace precedes the comment on its line (a
    /// standalone comment annotates the next code line; a trailing
    /// comment annotates its own line).
    pub own_line: bool,
}

/// The scrubbed form of one source file.
#[derive(Debug)]
pub struct Scrubbed {
    /// The source with comment and literal interiors replaced by
    /// spaces, one space per character, newlines preserved — so every
    /// (line, column) in the scrub maps to the same (line, column) in
    /// the original.
    pub text: String,
    /// Every `//` comment, in file order.
    pub comments: Vec<LineComment>,
}

/// Scrubs `source`: blanks comments and literal interiors, collects
/// line comments.
pub fn scrub(source: &str) -> Scrubbed {
    let chars: Vec<char> = source.chars().collect();
    let mut out: Vec<char> = Vec::with_capacity(chars.len());
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut line_has_code = false;
    let mut i = 0usize;

    // Pushes one character to the scrub, tracking position state.
    macro_rules! emit {
        ($c:expr) => {{
            let c: char = $c;
            out.push(c);
            if c == '\n' {
                line += 1;
                col = 1;
                line_has_code = false;
            } else {
                col += 1;
                if !c.is_whitespace() {
                    line_has_code = true;
                }
            }
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        // Line comment: record text, blank to end of line.
        if c == '/' && next == Some('/') {
            let start_line = line;
            let start_col = col;
            let own_line = !line_has_code;
            let mut text = String::new();
            i += 2;
            emit!(' ');
            emit!(' ');
            while i < chars.len() && chars[i] != '\n' {
                text.push(chars[i]);
                emit!(' ');
                i += 1;
            }
            comments.push(LineComment {
                line: start_line,
                col: start_col,
                text,
                own_line,
            });
            continue;
        }

        // Block comment, nested per the Rust grammar.
        if c == '/' && next == Some('*') {
            let mut depth = 1usize;
            emit!(' ');
            emit!(' ');
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    emit!(' ');
                    emit!(' ');
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    emit!(' ');
                    emit!(' ');
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        emit!('\n');
                    } else {
                        emit!(' ');
                    }
                    i += 1;
                }
            }
            continue;
        }

        // Raw (and raw byte) strings: r"…", r#"…"#, br##"…"##. Only
        // when the `r`/`br` is not the tail of a longer identifier.
        let prev_is_ident = i > 0 && is_ident_char(chars[i - 1]);
        if !prev_is_ident && (c == 'r' || (c == 'b' && next == Some('r'))) {
            let prefix = if c == 'b' { 2 } else { 1 };
            let mut j = i + prefix;
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"') {
                // Emit the prefix, hashes, and opening quote as-is
                // (they are structural, not content).
                for _ in 0..(prefix + hashes + 1) {
                    emit!(chars[i]);
                    i += 1;
                }
                // Blank the body until `"` + hashes `#`s.
                'body: while i < chars.len() {
                    if chars[i] == '"' {
                        let mut k = 0usize;
                        while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            for _ in 0..=hashes {
                                emit!(chars[i]);
                                i += 1;
                            }
                            break 'body;
                        }
                    }
                    if chars[i] == '\n' {
                        emit!('\n');
                    } else {
                        emit!(' ');
                    }
                    i += 1;
                }
                continue;
            }
        }

        // Ordinary (and byte) strings. A `b` prefix was already emitted
        // as an identifier character; the quote is what matters.
        if c == '"' {
            emit!('"');
            i += 1;
            while i < chars.len() {
                match chars[i] {
                    '\\' => {
                        // Escape: blank both characters.
                        emit!(' ');
                        i += 1;
                        if i < chars.len() {
                            if chars[i] == '\n' {
                                emit!('\n');
                            } else {
                                emit!(' ');
                            }
                            i += 1;
                        }
                    }
                    '"' => {
                        emit!('"');
                        i += 1;
                        break;
                    }
                    '\n' => {
                        emit!('\n');
                        i += 1;
                    }
                    _ => {
                        emit!(' ');
                        i += 1;
                    }
                }
            }
            continue;
        }

        // Char literal vs. lifetime. `'\…'` and `'x'` are literals;
        // anything else after `'` is a lifetime or loop label, left
        // intact. A quote immediately after an identifier character
        // can only close a label position (`'outer:`) — but labels
        // never *follow* identifiers, so the simple checks suffice.
        if c == '\'' {
            if next == Some('\\') {
                // Escaped char literal: blank to the closing quote.
                emit!('\'');
                i += 1;
                while i < chars.len() && chars[i] != '\'' {
                    if chars[i] == '\n' {
                        emit!('\n');
                    } else {
                        emit!(' ');
                    }
                    i += 1;
                }
                if i < chars.len() {
                    emit!('\'');
                    i += 1;
                }
                continue;
            }
            if chars.get(i + 2) == Some(&'\'') && next != Some('\'') {
                // One-character literal like 'a' or '"'.
                emit!('\'');
                emit!(' ');
                emit!('\'');
                i += 3;
                continue;
            }
            // Lifetime / label: keep as-is.
            emit!('\'');
            i += 1;
            continue;
        }

        emit!(c);
        i += 1;
    }

    Scrubbed {
        text: out.into_iter().collect(),
        comments,
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// One token of the scrubbed source: a word (identifier, keyword, or
/// number) or a punctuation glyph (`::` merged into one token; every
/// other punct is a single character).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text.
    pub text: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based character column.
    pub col: usize,
    /// Whether this is a word token (identifier/keyword/number).
    pub word: bool,
}

impl Token {
    /// Shorthand: does the token read exactly `s`?
    pub fn is(&self, s: &str) -> bool {
        self.text == s
    }
}

/// Token-scans scrubbed text. (Running this on unscrubbed source would
/// happily tokenize comment bodies — always pair it with [`scrub`].)
pub fn tokenize(scrubbed: &str) -> Vec<Token> {
    let chars: Vec<char> = scrubbed.chars().collect();
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            col = 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            col += 1;
            i += 1;
            continue;
        }
        if is_ident_char(c) {
            let start_col = col;
            let mut text = String::new();
            while i < chars.len() && is_ident_char(chars[i]) {
                text.push(chars[i]);
                col += 1;
                i += 1;
            }
            tokens.push(Token {
                text,
                line,
                col: start_col,
                word: true,
            });
            continue;
        }
        // `::` as one token; every other punct is single-character.
        if c == ':' && chars.get(i + 1) == Some(&':') {
            tokens.push(Token {
                text: "::".to_string(),
                line,
                col,
                word: false,
            });
            col += 2;
            i += 2;
            continue;
        }
        tokens.push(Token {
            text: c.to_string(),
            line,
            col,
            word: false,
        });
        col += 1;
        i += 1;
    }
    tokens
}

/// The 1-based line ranges covered by `#[cfg(test)]` items (test
/// modules and test-only functions). Violations inside these ranges
/// are exempt: test code may spawn threads, time itself, and unwrap
/// freely without touching any shipped byte.
pub fn test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // Match `# [ cfg ( test ) ]`.
        let is_cfg_test = tokens[i].is("#")
            && tokens.get(i + 1).is_some_and(|t| t.is("["))
            && tokens.get(i + 2).is_some_and(|t| t.is("cfg"))
            && tokens.get(i + 3).is_some_and(|t| t.is("("))
            && tokens.get(i + 4).is_some_and(|t| t.is("test"))
            && tokens.get(i + 5).is_some_and(|t| t.is(")"))
            && tokens.get(i + 6).is_some_and(|t| t.is("]"));
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        let mut j = i + 7;
        // Skip any further attributes on the same item.
        while tokens.get(j).is_some_and(|t| t.is("#"))
            && tokens.get(j + 1).is_some_and(|t| t.is("["))
        {
            let mut depth = 0usize;
            while let Some(t) = tokens.get(j) {
                if t.is("[") {
                    depth += 1;
                } else if t.is("]") {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Find the item's body: the first `{` before any `;`. A `;`
        // first means an out-of-line `mod tests;` — covers one line.
        let mut end_line = start_line;
        let mut k = j;
        let mut found_body = false;
        while let Some(t) = tokens.get(k) {
            if t.is(";") {
                end_line = t.line;
                break;
            }
            if t.is("{") {
                found_body = true;
                break;
            }
            k += 1;
        }
        if found_body {
            let mut depth = 0usize;
            while let Some(t) = tokens.get(k) {
                if t.is("{") {
                    depth += 1;
                } else if t.is("}") {
                    depth -= 1;
                    if depth == 0 {
                        end_line = t.line;
                        k += 1;
                        break;
                    }
                }
                k += 1;
            }
            i = k;
        } else {
            i = k + 1;
        }
        spans.push((start_line, end_line));
    }
    spans
}

/// Whether `line` falls inside any of `spans`.
pub fn in_spans(spans: &[(usize, usize)], line: usize) -> bool {
    spans.iter().any(|&(a, b)| line >= a && line <= b)
}

/// For each 1-based line, whether the scrubbed text has any
/// non-whitespace on it (i.e., the line carries code after comments
/// and literals are blanked). Standalone waiver comments attach to the
/// next such line.
pub fn code_lines(scrubbed: &str) -> Vec<bool> {
    scrubbed.lines().map(|l| !l.trim().is_empty()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrubbed(source: &str) -> String {
        scrub(source).text
    }

    #[test]
    fn line_comments_are_blanked_and_recorded() {
        let s = scrub("let x = 1; // trailing HashMap\n// own line\nlet y = 2;\n");
        assert!(!s.text.contains("HashMap"));
        assert_eq!(s.comments.len(), 2);
        assert_eq!(s.comments[0].line, 1);
        assert!(!s.comments[0].own_line);
        assert_eq!(s.comments[0].text, " trailing HashMap");
        assert!(s.comments[1].own_line);
        // Positions are preserved exactly.
        assert!(s.text.starts_with("let x = 1;"));
    }

    #[test]
    fn nested_block_comments_scrub_to_their_true_end() {
        let src = "a /* outer /* inner */ still comment */ b\n";
        let s = scrubbed(src);
        assert!(s.contains('a'));
        assert!(s.contains('b'));
        assert!(!s.contains("outer"));
        assert!(!s.contains("still"));
        // A C-style scanner would have ended the comment at the first
        // `*/` and leaked `still comment` as code.
        assert_eq!(s.chars().count(), src.chars().count());
    }

    #[test]
    fn raw_strings_hide_their_bodies_at_any_hash_count() {
        for src in [
            "let s = r\"Instant::now()\";",
            "let s = r#\"say \"Instant::now()\" loud\"#;",
            "let s = br##\"thread::spawn // not code\"##;",
        ] {
            let s = scrubbed(src);
            assert!(!s.contains("Instant"), "{src} -> {s}");
            assert!(!s.contains("spawn"), "{src} -> {s}");
            assert!(!s.contains("//"), "{src} -> {s}");
        }
        // An identifier ending in `r` does not start a raw string.
        let s = scrubbed("let var\"x\" = 1;");
        assert!(s.contains("var"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings_early() {
        let s = scrubbed(r#"let s = "a \" HashMap \\" ; let t = HashMap;"#);
        // The first literal swallows the escaped quote; the second
        // HashMap is real code and must survive.
        assert!(!s.contains("a "));
        assert!(s.matches("HashMap").count() == 1, "{s}");
    }

    #[test]
    fn char_literals_scrub_but_lifetimes_survive() {
        let s = scrubbed("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; let n = '\\n'; }");
        assert!(s.contains("'a"), "{s}");
        assert!(!s.contains('x') || !s.contains("'x'"), "{s}");
        assert!(!s.contains("\\n"), "{s}");
        // Columns unchanged: scrub length equals source length.
    }

    #[test]
    fn scrub_preserves_line_and_column_geometry() {
        let src = "let a = \"two\nlines\"; /* c\nc */ 'q';\nlet done = r#\"x\ny\"#;\n";
        let s = scrubbed(src);
        assert_eq!(s.lines().count(), src.lines().count());
        for (orig, scrub) in src.lines().zip(s.lines()) {
            assert_eq!(
                orig.chars().count(),
                scrub.chars().count(),
                "{orig:?} vs {scrub:?}"
            );
        }
    }

    #[test]
    fn tokenizer_merges_path_separators_and_positions() {
        let toks = tokenize("Instant::now()");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["Instant", "::", "now", "(", ")"]);
        assert_eq!(toks[0].col, 1);
        assert_eq!(toks[2].col, 10);
    }

    #[test]
    fn cfg_test_spans_cover_the_module_body() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let s = scrub(src);
        let toks = tokenize(&s.text);
        let spans = test_spans(&toks);
        assert_eq!(spans, vec![(2, 5)]);
        assert!(in_spans(&spans, 4));
        assert!(!in_spans(&spans, 6));
    }

    #[test]
    fn cfg_test_with_extra_attributes_still_spans() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { }\nfn code() {}\n";
        let spans = test_spans(&tokenize(&scrub(src).text));
        assert_eq!(spans, vec![(1, 3)]);
    }
}
