//! The determinism rule catalog (R1–R6).
//!
//! Each rule is a token-scan over a scrubbed file (see [`crate::lexer`])
//! plus a file classification describing which surfaces the file
//! touches. The rules are deliberately heuristic — they over-approximate
//! (that is what waivers are for) but they must never *miss* the
//! canonical nondeterminism shapes:
//!
//! | id | shape | why it breaks byte-identity |
//! |----|-------|------------------------------|
//! | R1 | `HashMap`/`HashSet` iteration in an output-producing file | iteration order is randomized per process; any byte derived from it differs across runs |
//! | R2 | `Instant::now`/`SystemTime::now` outside the timing allowlist | results that read the clock differ across machines and runs |
//! | R3 | `thread::spawn`/`thread::scope` outside the pool modules/serve | ad-hoc threads race on shared state the engine cannot order |
//! | R4 | bare `.unwrap()` on the serve protocol surface | malformed network input must produce an error reply, not a worker panic |
//! | R5 | lossy casts / float `format!` in key- or fingerprint-building functions | truncation and locale-free-but-rounded decimals silently merge distinct units |
//! | R6 | `impl Detector for T` with `T` absent from `src/registry.rs` | unregistered detectors escape the conformance suite and the sweep grid |

use crate::lexer::{in_spans, Token};
use std::collections::BTreeMap;

/// Every rule id the engine knows, with a one-line summary (used by
/// the JSON report and by waiver validation).
pub const RULES: [(&str, &str); 6] = [
    (
        "R1",
        "no HashMap/HashSet iteration in files that produce serialized, reported, or fingerprinted output",
    ),
    (
        "R2",
        "Instant::now/SystemTime::now only in the timing allowlist (engine pool, schedule, serve, bin drivers, telemetry, bench, sim worker pool)",
    ),
    (
        "R3",
        "thread::spawn and scoped spawns only in the engine pool, the simulator's superstep pool, and serve modules",
    ),
    (
        "R4",
        "no bare unwrap() on the serve protocol surface; use error replies or expect(\"documented invariant\")",
    ),
    (
        "R5",
        "fingerprint hygiene: no truncating as-u32/as-usize casts and no float formatting inside key/fingerprint/canonical/hash builders",
    ),
    (
        "R6",
        "every concrete `impl Detector for T` must be registered in src/registry.rs",
    ),
];

/// Whether `id` names a rule in the catalog.
pub fn known_rule(id: &str) -> bool {
    RULES.iter().any(|(r, _)| *r == id)
}

/// One diagnostic produced by a rule, positioned in the audited file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: &'static str,
    pub line: usize,
    pub col: usize,
    pub message: String,
}

/// Which rule surfaces a file belongs to, derived from its
/// workspace-relative path (see [`crate::classify`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileClass {
    /// Test or bench code (under a `tests/`/`benches/` component):
    /// every rule is exempt — test threads, clocks, and unwraps touch
    /// no shipped byte.
    pub test_code: bool,
    /// The file produces serialized/reported/fingerprinted bytes (R1).
    pub output_scope: bool,
    /// The file may read wall clocks (R2 allowlist).
    pub timing_allowed: bool,
    /// The file may spawn threads (R3 allowlist).
    pub spawn_allowed: bool,
    /// The file parses network input (R4: the serve protocol surface).
    pub protocol_surface: bool,
    /// R5 applies (everything except the vendored compat shims, which
    /// reproduce upstream rand algorithms full of intentional u32 ops).
    pub key_hygiene: bool,
}

/// A concrete (non-generic) `impl … Detector for TypeName` site, for
/// the cross-file R6 registry check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectorImpl {
    pub type_name: String,
    pub line: usize,
    pub col: usize,
}

/// Runs every per-file rule. R6 collection is separate (see
/// [`detector_impls`]) because its check needs the registry file.
pub fn run_file_rules(
    tokens: &[Token],
    test_spans: &[(usize, usize)],
    class: &FileClass,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    if class.test_code {
        return violations;
    }
    if class.output_scope {
        violations.extend(r1_map_iteration(tokens));
    }
    if !class.timing_allowed {
        violations.extend(r2_wall_clock(tokens));
    }
    if !class.spawn_allowed {
        violations.extend(r3_thread_spawn(tokens));
    }
    if class.protocol_surface {
        violations.extend(r4_bare_unwrap(tokens));
    }
    if class.key_hygiene {
        violations.extend(r5_key_hygiene(tokens));
    }
    violations.retain(|v| !in_spans(test_spans, v.line));
    violations.sort_by_key(|v| (v.line, v.col, v.rule));
    violations
}

const UNORDERED_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];
const SORT_EVIDENCE: [&str; 8] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
];

/// R1: iteration over identifiers bound to `HashMap`/`HashSet` in an
/// output-scoped file, unless sorted within the next few statements.
fn r1_map_iteration(tokens: &[Token]) -> Vec<Violation> {
    let tracked = tracked_idents(tokens, &UNORDERED_TYPES);
    let mut violations = Vec::new();
    let flag = |violations: &mut Vec<Violation>, t: &Token, ident: &str, decl_line: usize| {
        violations.push(Violation {
            rule: "R1",
            line: t.line,
            col: t.col,
            message: format!(
                "iteration over `{ident}` (declared as an unordered map/set on line \
                 {decl_line}) in an output-producing file: switch to BTreeMap/BTreeSet \
                 or sort before any byte leaves the process"
            ),
        });
    };
    let mut i = 0;
    while i < tokens.len() {
        // `tracked.iter()` / `tracked.keys()` / … method calls.
        if tokens[i].is(".")
            && i > 0
            && tokens[i - 1].word
            && tokens.get(i + 1).is_some_and(|t| t.word)
            && tokens.get(i + 2).is_some_and(|t| t.is("("))
        {
            let recv = &tokens[i - 1];
            let method = &tokens[i + 1];
            if ITER_METHODS.contains(&method.text.as_str()) {
                if let Some(&decl_line) = tracked.get(recv.text.as_str()) {
                    if !sorted_nearby(tokens, i) {
                        flag(&mut violations, method, &recv.text, decl_line);
                    }
                }
            }
        }
        // `for pat in [&][mut] path.ending.in.tracked {`.
        if tokens[i].is("for") {
            if let Some((t, ident, decl_line)) = for_in_tracked(tokens, i, &tracked) {
                if !sorted_nearby(tokens, i) {
                    flag(&mut violations, t, ident, decl_line);
                }
            }
        }
        i += 1;
    }
    violations
}

/// Identifiers whose declaration window mentions one of `types`:
/// `ident: …Type…` (fields, params, let ascriptions) and
/// `let [mut] ident = …Type…;` initializers. Returns ident → first
/// declaration line.
fn tracked_idents(tokens: &[Token], types: &[&str]) -> BTreeMap<String, usize> {
    let mut tracked: BTreeMap<String, usize> = BTreeMap::new();
    for i in 0..tokens.len() {
        // Pattern A: `ident :` followed by a type window.
        if tokens[i].word && tokens.get(i + 1).is_some_and(|t| t.is(":")) {
            let mut angle = 0i32;
            let mut paren = 0i32;
            let mut bracket = 0i32;
            for t in tokens.iter().skip(i + 2).take(48) {
                match t.text.as_str() {
                    "<" => angle += 1,
                    ">" if angle > 0 => angle -= 1,
                    "(" => paren += 1,
                    "[" => bracket += 1,
                    "]" if bracket > 0 => bracket -= 1,
                    ")" => {
                        if paren == 0 {
                            break;
                        }
                        paren -= 1;
                    }
                    "," | ";" | "{" | "=" if angle == 0 && paren == 0 && bracket == 0 => break,
                    _ => {
                        if t.word && types.contains(&t.text.as_str()) {
                            tracked
                                .entry(tokens[i].text.clone())
                                .or_insert(tokens[i].line);
                            break;
                        }
                    }
                }
            }
        }
        // Pattern B: `let [mut] ident = … Type … ;`.
        if tokens[i].is("let") {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.is("mut")) {
                j += 1;
            }
            let Some(name) = tokens.get(j).filter(|t| t.word) else {
                continue;
            };
            if !tokens.get(j + 1).is_some_and(|t| t.is("=") || t.is(":")) {
                continue;
            }
            let mut brace = 0i32;
            for t in tokens.iter().skip(j + 1).take(120) {
                match t.text.as_str() {
                    "{" => brace += 1,
                    "}" => brace -= 1,
                    ";" if brace <= 0 => break,
                    _ => {
                        if t.word && types.contains(&t.text.as_str()) {
                            tracked.entry(name.text.clone()).or_insert(name.line);
                            break;
                        }
                    }
                }
            }
        }
    }
    tracked
}

/// For a `for` keyword at `i`, resolves `for pat in expr {` where
/// `expr` is a plain (optionally borrowed) path: returns the path's
/// final segment token if that segment is tracked.
fn for_in_tracked<'t>(
    tokens: &'t [Token],
    i: usize,
    tracked: &BTreeMap<String, usize>,
) -> Option<(&'t Token, &'t str, usize)> {
    // Find `in` at pattern depth 0 (the pattern may contain parens).
    let mut depth = 0i32;
    let mut j = i + 1;
    loop {
        let t = tokens.get(j)?;
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "in" if depth == 0 => break,
            "{" | ";" => return None,
            _ => {}
        }
        j += 1;
    }
    j += 1;
    while tokens.get(j).is_some_and(|t| t.is("&") || t.is("mut")) {
        j += 1;
    }
    // A plain path: words joined by `.`/`::`, terminated by `{`.
    let mut last_word: Option<&Token> = None;
    while let Some(t) = tokens.get(j) {
        if t.word {
            last_word = Some(t);
        } else if !(t.is(".") || t.is("::")) {
            break;
        }
        j += 1;
    }
    if !tokens.get(j).is_some_and(|t| t.is("{")) {
        return None;
    }
    let t = last_word?;
    let decl = *tracked.get(t.text.as_str())?;
    Some((t, t.text.as_str(), decl))
}

/// Whether evidence of sorting (or a sorted collection target) appears
/// shortly after token `i` — the collect-and-sort escape hatch.
fn sorted_nearby(tokens: &[Token], i: usize) -> bool {
    tokens
        .iter()
        .skip(i)
        .take(60)
        .any(|t| t.word && SORT_EVIDENCE.contains(&t.text.as_str()))
}

/// R2: `Instant::now()` / `SystemTime::now()` outside the allowlist.
fn r2_wall_clock(tokens: &[Token]) -> Vec<Violation> {
    let mut violations = Vec::new();
    for i in 0..tokens.len() {
        let clock = tokens[i].text.as_str();
        if (clock == "Instant" || clock == "SystemTime")
            && tokens.get(i + 1).is_some_and(|t| t.is("::"))
            && tokens.get(i + 2).is_some_and(|t| t.is("now"))
        {
            violations.push(Violation {
                rule: "R2",
                line: tokens[i].line,
                col: tokens[i].col,
                message: format!(
                    "{clock}::now() outside the timing allowlist: detector and graph \
                     code must not read wall clocks — route timing through the pool, \
                     scheduler, or telemetry layers"
                ),
            });
        }
    }
    violations
}

/// R3: `thread::spawn`, `thread::scope`, and `.spawn(` calls outside
/// the pool/backend/serve allowlist.
fn r3_thread_spawn(tokens: &[Token]) -> Vec<Violation> {
    let mut violations = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].is("thread")
            && tokens.get(i + 1).is_some_and(|t| t.is("::"))
            && tokens
                .get(i + 2)
                .is_some_and(|t| t.is("spawn") || t.is("scope"))
        {
            let what = &tokens[i + 2].text;
            violations.push(Violation {
                rule: "R3",
                line: tokens[i].line,
                col: tokens[i].col,
                message: format!(
                    "thread::{what} outside the pool/backend/serve allowlist: ad-hoc \
                     threads bypass the deterministic work distribution"
                ),
            });
            continue;
        }
        // Scoped handles: `scope.spawn(…)`, `builder.spawn(…)`.
        if tokens[i].is(".")
            && tokens.get(i + 1).is_some_and(|t| t.is("spawn"))
            && tokens.get(i + 2).is_some_and(|t| t.is("("))
        {
            violations.push(Violation {
                rule: "R3",
                line: tokens[i + 1].line,
                col: tokens[i + 1].col,
                message: ".spawn(…) outside the pool/backend/serve allowlist: ad-hoc \
                     threads bypass the deterministic work distribution"
                    .to_string(),
            });
        }
    }
    violations
}

/// R4: bare `.unwrap()` on the protocol surface. `.expect("…")` is the
/// sanctioned form for internal invariants (the message documents why
/// the panic is unreachable from network input), and `unwrap_or*` is
/// total — neither is flagged.
fn r4_bare_unwrap(tokens: &[Token]) -> Vec<Violation> {
    let mut violations = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].is(".")
            && tokens.get(i + 1).is_some_and(|t| t.is("unwrap"))
            && tokens.get(i + 2).is_some_and(|t| t.is("("))
        {
            violations.push(Violation {
                rule: "R4",
                line: tokens[i + 1].line,
                col: tokens[i + 1].col,
                message: "bare unwrap() on the serve protocol surface: reply with a \
                     protocol error for malformed input, or expect(\"…\") a documented \
                     internal invariant"
                    .to_string(),
            });
        }
    }
    violations
}

const KEY_FN_MARKERS: [&str; 4] = ["key", "fingerprint", "canonical", "hash"];
const FLOAT_TYPES: [&str; 2] = ["f64", "f32"];
const FORMAT_MACROS: [&str; 4] = ["format", "write", "writeln", "print"];

/// R5: inside functions whose names mark them as key/fingerprint
/// builders, flag truncating casts and floats reaching a formatting
/// macro (floats in key material must go through a bit-exact encoder).
fn r5_key_hygiene(tokens: &[Token]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is("fn") {
            i += 1;
            continue;
        }
        let Some(name) = tokens.get(i + 1).filter(|t| t.word) else {
            i += 1;
            continue;
        };
        let lowered = name.text.to_lowercase();
        if !KEY_FN_MARKERS.iter().any(|m| lowered.contains(m)) {
            i += 1;
            continue;
        }
        // Find the body: first `{` before a depth-0 `;` (trait method
        // declarations have no body).
        let mut j = i + 2;
        let mut body: Option<(usize, usize)> = None;
        while let Some(t) = tokens.get(j) {
            if t.is(";") {
                break;
            }
            if t.is("{") {
                let mut depth = 0i32;
                let start = j;
                while let Some(b) = tokens.get(j) {
                    if b.is("{") {
                        depth += 1;
                    } else if b.is("}") {
                        depth -= 1;
                        if depth == 0 {
                            body = Some((start, j));
                            break;
                        }
                    }
                    j += 1;
                }
                break;
            }
            j += 1;
        }
        let Some((start, end)) = body else {
            i = j + 1;
            continue;
        };
        let body_tokens = &tokens[start..=end];
        // Track floats over the whole item (signature included): a
        // `p: f64` parameter is as hazardous as a local.
        let floats = tracked_idents(&tokens[i..=end], &FLOAT_TYPES);
        for (k, t) in body_tokens.iter().enumerate() {
            if t.is("as") {
                if let Some(target) = body_tokens.get(k + 1) {
                    if target.is("u32") || target.is("usize") {
                        violations.push(Violation {
                            rule: "R5",
                            line: t.line,
                            col: t.col,
                            message: format!(
                                "truncating `as {}` cast inside key builder `{}`: keys \
                                 must hash full-width values (use u64/u128 or try_from)",
                                target.text, name.text
                            ),
                        });
                    }
                }
            }
            // A formatting macro whose argument span touches a float.
            if t.word
                && FORMAT_MACROS.contains(&t.text.as_str())
                && body_tokens.get(k + 1).is_some_and(|n| n.is("!"))
                && body_tokens.get(k + 2).is_some_and(|n| n.is("("))
            {
                let mut depth = 0i32;
                for a in body_tokens.iter().skip(k + 2) {
                    if a.is("(") {
                        depth += 1;
                    } else if a.is(")") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if a.word
                        && (FLOAT_TYPES.contains(&a.text.as_str())
                            || floats.contains_key(a.text.as_str()))
                    {
                        violations.push(Violation {
                            rule: "R5",
                            line: t.line,
                            col: t.col,
                            message: format!(
                                "float `{}` formatted inside key builder `{}`: decimal \
                                 rendering rounds — encode via to_bits() for byte-stable \
                                 keys",
                                a.text, name.text
                            ),
                        });
                        break;
                    }
                }
            }
        }
        i = end + 1;
    }
    violations
}

/// Collects concrete `impl … Detector for TypeName` sites for R6.
/// Generic impls (`impl<…>`) are skipped: those are the blanket
/// forwarding impls (`&D`, `Box<D>`), not detectors.
pub fn detector_impls(tokens: &[Token], test_spans: &[(usize, usize)]) -> Vec<DetectorImpl> {
    let mut impls = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is("impl") {
            i += 1;
            continue;
        }
        if tokens.get(i + 1).is_some_and(|t| t.is("<")) {
            i += 1;
            continue;
        }
        // Scan the trait path up to `for`; bail at a body/semicolon
        // (inherent impls have no `for`).
        let mut j = i + 1;
        let mut last_trait_word: Option<&str> = None;
        let mut found_for = false;
        while let Some(t) = tokens.get(j) {
            if t.is("for") {
                found_for = true;
                break;
            }
            if t.is("{") || t.is(";") {
                break;
            }
            if t.word {
                last_trait_word = Some(t.text.as_str());
            }
            j += 1;
        }
        if !found_for || last_trait_word != Some("Detector") {
            i = j + 1;
            continue;
        }
        // The implementing type: last path segment before `<`/`{`/`where`.
        j += 1;
        let mut type_tok: Option<&Token> = None;
        while let Some(t) = tokens.get(j) {
            if t.word && !t.is("where") {
                type_tok = Some(t);
            } else if !(t.is("::") || t.is("&") || t.is("mut")) {
                break;
            }
            j += 1;
        }
        if let Some(t) = type_tok {
            if !in_spans(test_spans, t.line) {
                impls.push(DetectorImpl {
                    type_name: t.text.clone(),
                    line: t.line,
                    col: t.col,
                });
            }
        }
        i = j;
    }
    impls
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{scrub, test_spans, tokenize};

    fn toks(src: &str) -> Vec<Token> {
        tokenize(&scrub(src).text)
    }

    fn run(src: &str, class: &FileClass) -> Vec<Violation> {
        let tokens = toks(src);
        let spans = test_spans(&tokens);
        run_file_rules(&tokens, &spans, class)
    }

    fn output_class() -> FileClass {
        FileClass {
            output_scope: true,
            key_hygiene: true,
            ..FileClass::default()
        }
    }

    #[test]
    fn r1_flags_iteration_methods_and_for_loops() {
        let src = "use std::collections::HashMap;\n\
                   struct S { map: HashMap<String, u32> }\n\
                   fn f(s: &S) { for (k, v) in &s.map { emit(k, v); } }\n\
                   fn g(s: &S) { let _ = s.map.keys().count(); }\n";
        let v = run(src, &output_class());
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "R1"));
        assert_eq!(v[0].line, 3);
        assert_eq!(v[1].line, 4);
    }

    #[test]
    fn r1_ignores_lookups_and_sorted_iteration() {
        let src = "use std::collections::HashMap;\n\
                   fn f(map: &HashMap<String, u32>) -> Option<u32> {\n\
                       map.get(\"k\").copied()\n\
                   }\n\
                   fn g(map: &HashMap<String, u32>) -> Vec<(String, u32)> {\n\
                       let mut rows: Vec<_> = map.iter().map(|(k, v)| (k.clone(), *v)).collect();\n\
                       rows.sort();\n\
                       rows\n\
                   }\n";
        let v = run(src, &output_class());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r1_only_applies_in_output_scope() {
        let src = "fn f(m: &std::collections::HashMap<u32, u32>) { for x in m { use_(x); } }";
        assert!(run(src, &FileClass::default()).is_empty());
        assert_eq!(run(src, &output_class()).len(), 1);
    }

    #[test]
    fn r2_flags_clocks_unless_allowlisted() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n\
                   fn g() { let t = SystemTime::now(); }\n";
        let v = run(src, &FileClass::default());
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "R2"));
        let allowed = FileClass {
            timing_allowed: true,
            ..FileClass::default()
        };
        assert!(run(src, &allowed).is_empty());
    }

    #[test]
    fn r3_flags_spawn_shapes() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n\
                   fn g() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
        let v = run(src, &FileClass::default());
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "R3"));
    }

    #[test]
    fn r4_flags_bare_unwrap_but_not_expect() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   fn g(x: Option<u32>) -> u32 { x.expect(\"invariant: set at accept\") }\n\
                   fn h(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
        let class = FileClass {
            protocol_surface: true,
            ..FileClass::default()
        };
        let v = run(src, &class);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "R4");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn r5_flags_truncating_casts_and_float_formatting_in_key_fns() {
        let src = "fn store_key(n: u64) -> String { format!(\"{}\", n as u32) }\n\
                   fn fingerprint(p: f64) -> String { format!(\"{p}\", p = p) }\n\
                   fn unrelated(p: f64, n: u64) -> String { format!(\"{p}:{}\", n as u32) }\n";
        let v = run(src, &output_class());
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "R5"));
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].line, 2);
    }

    #[test]
    fn r5_allows_bit_exact_key_material() {
        let src = "fn unit_key(canonical: &str) -> String {\n\
                       let mut h: u128 = 3;\n\
                       for b in canonical.as_bytes() { h ^= u128::from(*b); }\n\
                       format!(\"{h:032x}\")\n\
                   }\n\
                   fn noisy_key(p: f64) -> String { format!(\"{}\", p.to_bits()) }\n";
        let v = run(src, &output_class());
        // `p` is float-tracked and appears in the format span: the
        // heuristic flags it even through `.to_bits()` — that case is
        // what waivers document. Everything in `unit_key` is clean.
        assert!(v.iter().all(|v| v.line == 6), "{v:?}");
    }

    #[test]
    fn rules_skip_cfg_test_modules_and_test_files() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let x: Option<u32> = None; x.unwrap(); std::thread::spawn(|| {}); }\n}\n";
        let class = FileClass {
            protocol_surface: true,
            ..FileClass::default()
        };
        assert!(run(src, &class).is_empty());
        let test_file = FileClass {
            test_code: true,
            protocol_surface: true,
            ..FileClass::default()
        };
        let bare = "fn t(x: Option<u32>) { x.unwrap(); }";
        assert!(run(bare, &test_file).is_empty());
    }

    #[test]
    fn r6_collects_concrete_impls_and_skips_blankets() {
        let src = "impl Detector for CycleDetector {}\n\
                   impl crate::Detector for LowProbDetector {}\n\
                   impl<D: Detector + ?Sized> Detector for &D {}\n\
                   impl CycleDetector { fn inherent(&self) {} }\n\
                   impl Display for CycleDetector {}\n";
        let tokens = toks(src);
        let impls = detector_impls(&tokens, &[]);
        let names: Vec<&str> = impls.iter().map(|d| d.type_name.as_str()).collect();
        assert_eq!(names, ["CycleDetector", "LowProbDetector"], "{impls:?}");
        assert_eq!(impls[1].line, 2);
    }
}
