//! Baseline cycle-detection algorithms — the Table 1 comparators.
//!
//! * [`censor_hillel`] — the *local threshold* algorithm of Censor-Hillel
//!   et al. [10] for `C_{2k}`, `k ∈ {2,…,5}`: a single random source per
//!   attempt, constant threshold, `O(n^{1-1/k})` attempts. The technique
//!   provably does **not** extend to `k ≥ 6` (Fraigniaud–Luce–Todinca
//!   [23]) — which is exactly the gap the paper's global threshold
//!   closes.
//! * [`deterministic`] — the deterministic baseline for the
//!   `Θ̃(n)`-rounds odd-cycle row ([15, 30]): full-graph gathering with
//!   honest `O(m + D)` round accounting plus local exact detection
//!   (substitution documented in DESIGN.md §2.6: matches the
//!   Korhonen–Rybicki bound on the sparse benchmark families).
//! * [`eden`] — an Eden-et-al.-style [16] two-level degree-threshold
//!   detector exposing the `Õ(n^{1-2/(k²-2k+4)})` shape that the paper
//!   improves for `k ≥ 6`.
//! * [`apeldoorn_devos`] — the van Apeldoorn–de Vos [33] quantum
//!   framework model (`Õ(n^{1/2-1/(4k+2)})`), for the quantum Table 1
//!   rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apeldoorn_devos;
pub mod censor_hillel;
pub mod deterministic;
pub mod eden;
