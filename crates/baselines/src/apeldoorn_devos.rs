//! The van Apeldoorn–de Vos [33] quantum framework, as a cost model and a
//! simulated comparator for the paper's §3.5 improvement.
//!
//! [33] decide `{C_ℓ | 3 ≤ ℓ ≤ 2k}`-freeness in `Õ(n^{1/2-1/(4k+2)})`
//! quantum rounds by quantizing only the *heavy* search of [10] with a
//! different degree split `d_max = n^{(k+1)/(2k+1)}`. The paper improves
//! this to `Õ(n^{1/2-1/2k})` by keeping `d_max = n^{1/k}` and quantizing
//! both searches (§3.5).
//!
//! **Substitution note** (DESIGN.md §2.6): we model [33] as quantum
//! amplification at their effective success probability
//! `ε = 1/(3·n^{1-1/(2k+1)})` — the balance their exponent
//! `1/2 - 1/(4k+2) = (1 - 1/(2k+1))/2` encodes — over the same low-cost
//! classical detector. The experiments compare round *models*, which is
//! all Table 1 states.

use congest_graph::Graph;
use congest_quantum::{
    GroverMode, McOutcome, MonteCarloAlgorithm, MonteCarloAmplifier, WithSuccess,
};
use even_cycle::{
    Budget, Descriptor, DetectResult, Detection, Detector, F2kDetector, Model, RunCost, Target,
    Verdict,
};

/// The [33] cost model.
#[derive(Debug, Clone)]
pub struct ApeldoornDeVosModel {
    k: usize,
}

impl ApeldoornDeVosModel {
    /// Creates the model for `{C_ℓ | ℓ ≤ 2k}`, `k ≥ 2`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "the framework targets k ≥ 2");
        ApeldoornDeVosModel { k }
    }

    /// Their complexity exponent `1/2 - 1/(4k+2)`.
    pub fn exponent(&self) -> f64 {
        0.5 - 1.0 / (4.0 * self.k as f64 + 2.0)
    }

    /// Their round bound `n^{1/2-1/(4k+2)}` (polylogs normalized).
    pub fn round_bound(&self, n: usize) -> f64 {
        (n as f64).powf(self.exponent())
    }

    /// The effective one-sided success probability their balance implies
    /// for the amplified classical subroutine.
    pub fn effective_success(&self, n: usize) -> f64 {
        1.0 / (3.0 * (n as f64).powf(1.0 - 1.0 / (2.0 * self.k as f64 + 1.0)))
    }

    /// Simulates the framework's amplification cost over a stand-in
    /// classical subroutine with per-run cost `base_rounds`, returning
    /// the quantum rounds charged. (The detection behaviour itself is
    /// exercised by our own `F2kDetector`; this comparator exists for
    /// the Table 1 round-model comparison.)
    pub fn simulate_rounds(&self, n: usize, base_rounds: u64, seed: u64) -> u64 {
        let eps = self.effective_success(n);
        // A synthetic subroutine whose rejection rate equals the model's
        // ε: marked seeds are those hashing below ε.
        let alg = SyntheticSubroutine {
            eps,
            rounds: base_rounds,
        };
        let amp = MonteCarloAmplifier::new(0.05).with_mode(GroverMode::Sampled { samples: 64 });
        amp.amplify(&alg, seed).quantum_rounds
    }
}

/// A synthetic Monte-Carlo subroutine rejecting on an `ε`-fraction of
/// seeds (hash-based, deterministic per seed).
#[derive(Debug, Clone)]
struct SyntheticSubroutine {
    eps: f64,
    rounds: u64,
}

impl MonteCarloAlgorithm for SyntheticSubroutine {
    fn run(&self, seed: u64) -> McOutcome {
        // SplitMix-style hash to a uniform [0,1) value.
        let h = congest_sim::derive_seed(seed, 0x51);
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        McOutcome {
            rejected: u < self.eps,
            rounds: self.rounds,
        }
    }

    fn round_bound(&self) -> u64 {
        self.rounds
    }

    fn success_probability(&self) -> f64 {
        self.eps
    }
}

/// The [33] framework as a runnable [`Detector`]: quantum amplification
/// of the same constant-congestion classical `F_{2k}` subroutine the
/// paper's §3.5 pipeline uses, but at [33]'s effective success
/// probability `ε = 1/(3·n^{1-1/(2k+1)})` — the balance their exponent
/// encodes. Verdicts and witnesses are genuine (the base subroutine
/// really runs and rejections are re-verified); the charged rounds
/// follow their `Õ(n^{1/2-1/(4k+2)})` model.
#[derive(Debug, Clone)]
pub struct ApeldoornDeVosDetector {
    model: ApeldoornDeVosModel,
    repetitions: usize,
    delta: f64,
    mode: GroverMode,
}

impl ApeldoornDeVosDetector {
    /// Creates the detector for `{C_ℓ | ℓ ≤ 2k}` (`k ≥ 2`);
    /// `repetitions` configures the classical base subroutine.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `repetitions == 0`.
    pub fn new(k: usize, repetitions: usize) -> Self {
        assert!(repetitions >= 1, "at least one repetition");
        ApeldoornDeVosDetector {
            model: ApeldoornDeVosModel::new(k),
            repetitions,
            delta: 0.1,
            mode: GroverMode::Sampled { samples: 48 },
        }
    }

    /// Overrides the base repetition count.
    ///
    /// # Panics
    ///
    /// Panics if `repetitions == 0`.
    pub fn with_repetitions(mut self, repetitions: usize) -> Self {
        assert!(repetitions >= 1, "at least one repetition");
        self.repetitions = repetitions;
        self
    }

    /// Selects the Grover simulation mode (default sampled — the [33]
    /// seed space is `Θ(n^{1-1/(2k+1)})`, too large for exhaustive
    /// analytic scans at experiment sizes).
    pub fn with_mode(mut self, mode: GroverMode) -> Self {
        self.mode = mode;
        self
    }

    /// The wrapped cost model.
    pub fn model(&self) -> &ApeldoornDeVosModel {
        &self.model
    }
}

impl Detector for ApeldoornDeVosDetector {
    fn descriptor(&self) -> Descriptor {
        let k = self.model.k;
        Descriptor {
            name: "quantized heavy-search framework",
            reference: "[33]",
            model: Model::Quantum,
            target: Target::F2k { k },
            exponent: self.model.exponent(),
            table1: Some(even_cycle::theory::Table1Row::ApeldoornDeVosF2k),
        }
    }

    fn detect(&self, g: &Graph, seed: u64, budget: &Budget) -> DetectResult {
        let n = g.node_count();
        let k = self.model.k;
        let reps = budget.repetitions.unwrap_or(self.repetitions);
        let base = F2kDetector::new(k).with_repetitions(reps).randomized();
        let mc = base.as_monte_carlo(g).with_bandwidth(budget.bandwidth);
        // Declaring [33]'s (smaller) effective ε only enlarges the seed
        // space, so one-sidedness and completeness are unaffected while
        // the amplification cost follows their balance.
        let declared = self.model.effective_success(n).min(1.0);
        let wrapped = WithSuccess::new(mc, declared);
        let diameter = congest_graph::analysis::diameter(g).unwrap_or(0) as u64;
        let amp = MonteCarloAmplifier::new(self.delta)
            .with_diameter(diameter)
            .with_mode(self.mode);
        let report = amp.amplify(&wrapped, seed);

        let verdict = if report.rejected {
            let ws = report.witness_seed.expect("rejected implies witness seed");
            let o = base.run_with_bandwidth(g, ws, budget.bandwidth);
            let witness = o.witness.expect("witness seed reproduces the rejection");
            assert!(witness.is_valid(g), "witness must validate");
            Verdict::Reject {
                cycle_length: Some(witness.len()),
                witness: Some(witness),
            }
        } else {
            Verdict::Accept
        };
        Ok(budget.enforce(Detection {
            algorithm: self.descriptor(),
            verdict,
            cost: RunCost {
                rounds: report.quantum_rounds,
                supersteps: 0,
                messages: 0,
                words: 0,
                max_congestion: 0,
                iterations: report.iterations,
            },
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_formula() {
        assert!((ApeldoornDeVosModel::new(2).exponent() - 0.4).abs() < 1e-12);
        assert!((ApeldoornDeVosModel::new(3).exponent() - (0.5 - 1.0 / 14.0)).abs() < 1e-12);
    }

    #[test]
    fn this_paper_improves_for_every_k() {
        for k in 2..30 {
            let ours = 0.5 - 1.0 / (2.0 * k as f64);
            assert!(ApeldoornDeVosModel::new(k).exponent() > ours, "k = {k}");
        }
    }

    #[test]
    fn simulated_rounds_scale_like_the_exponent() {
        // Quantum rounds across n should grow roughly like n^{exponent}
        // (BBHT noise allowed: average over seeds, compare within 2x).
        let model = ApeldoornDeVosModel::new(2);
        let avg = |n: usize| -> f64 {
            (0..10)
                .map(|s| model.simulate_rounds(n, 1, s) as f64)
                .sum::<f64>()
                / 10.0
        };
        let a = avg(1 << 10);
        let b = avg(1 << 14);
        let measured_ratio = b / a;
        let predicted_ratio = model.round_bound(1 << 14) / model.round_bound(1 << 10);
        assert!(
            measured_ratio > predicted_ratio / 2.5 && measured_ratio < predicted_ratio * 2.5,
            "measured {measured_ratio} vs predicted {predicted_ratio}"
        );
    }

    #[test]
    fn synthetic_subroutine_rate() {
        let alg = SyntheticSubroutine {
            eps: 0.125,
            rounds: 1,
        };
        let hits = (0..4000).filter(|&s| alg.run(s).rejected).count();
        assert!(
            (hits as f64 / 4000.0 - 0.125).abs() < 0.03,
            "empirical rate {hits}/4000"
        );
    }
}
