//! An Eden-et-al.-style [16] detector for `C_{2k}`, `k ≥ 3`.
//!
//! Eden, Fiat, Fischer, Kuhn, Oshman decide `C_{2k}`-freeness in
//! `Õ(n^{1-2/(k²-2k+4)})` rounds (even `k`; `Õ(n^{1-2/(k²-k+2)})` for odd
//! `k`) by splitting vertices at the degree threshold
//! `d_max = n^{2/(k²-2k+4)}` and searching light and heavy cycles with
//! color-BFS whose congestion is balanced at `τ = n^{1-2/(k²-2k+4)}`.
//!
//! **Substitution note** (DESIGN.md §2.6). The full algorithm of [16] is
//! a paper of its own; this module implements a faithful *shape* model —
//! the same degree split, the same threshold and repetition balance, on
//! top of our `color-BFS` — plus their exact complexity formulas
//! ([`EdenModel::round_bound`]). Table 1 rows derived from it are
//! labelled "model" by the harness. The crossover experiment
//! (ours beats [16] for every `k ≥ 6`) uses the exact formulas of both
//! papers.

use congest_graph::{CycleWitness, Graph};
use congest_sim::{derive_seed, RunReport};
use even_cycle::{
    extract_even_witness, random_coloring, run_color_bfs_bw, Budget, Descriptor, DetectResult,
    Detection, Detector, Model, RunCost, Target, Verdict,
};

/// The outcome of an [`EdenModel`] run.
#[derive(Debug, Clone)]
pub struct EdenOutcome {
    /// Whether a `2k`-cycle was found.
    pub rejected: bool,
    /// The verified witness.
    pub witness: Option<CycleWitness>,
    /// Coloring repetitions executed (stops at the first rejection).
    pub iterations: u64,
    /// Accumulated CONGEST costs.
    pub report: RunReport,
}

/// The [16]-style two-level threshold detector.
#[derive(Debug, Clone)]
pub struct EdenModel {
    k: usize,
    repetitions: usize,
}

impl EdenModel {
    /// Creates the model for `C_{2k}`, `k ≥ 3`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 3` ([16] targets `k ≥ 3`; `k = 2` is [15]'s
    /// `O(√n)`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 3, "the Eden et al. algorithm targets k ≥ 3");
        EdenModel {
            k,
            repetitions: 256,
        }
    }

    /// Overrides the repetition budget.
    pub fn with_repetitions(mut self, repetitions: usize) -> Self {
        assert!(repetitions >= 1);
        self.repetitions = repetitions;
        self
    }

    /// The [16] complexity exponent for this `k`:
    /// `1 - 2/(k²-2k+4)` for even `k`, `1 - 2/(k²-k+2)` for odd `k`.
    pub fn exponent(&self) -> f64 {
        let kf = self.k as f64;
        if self.k.is_multiple_of(2) {
            1.0 - 2.0 / (kf * kf - 2.0 * kf + 4.0)
        } else {
            1.0 - 2.0 / (kf * kf - kf + 2.0)
        }
    }

    /// The degree threshold `d_max = n^{1 - exponent}` separating light
    /// from heavy vertices in [16]'s balance.
    pub fn degree_threshold(&self, n: usize) -> f64 {
        (n as f64).powf(1.0 - self.exponent())
    }

    /// The [16] round bound `n^{exponent}` (polylog normalized to 1).
    pub fn round_bound(&self, n: usize) -> f64 {
        (n as f64).powf(self.exponent())
    }

    /// Runs the model detector: light-cycle color-BFS below `d_max`,
    /// plus a full-graph color-BFS thresholded at `τ = n^{exponent}`.
    pub fn run(&self, g: &Graph, seed: u64) -> EdenOutcome {
        self.run_with_bandwidth(g, seed, 1)
    }

    /// [`EdenModel::run`] at per-edge bandwidth `B`.
    pub fn run_with_bandwidth(&self, g: &Graph, seed: u64, bandwidth: u64) -> EdenOutcome {
        let n = g.node_count();
        let k = self.k;
        let d_max = self.degree_threshold(n);
        let tau = self.round_bound(n).ceil() as u64;
        let light: Vec<bool> = g.nodes().map(|v| (g.degree(v) as f64) <= d_max).collect();
        let all = vec![true; n];
        let mut total = RunReport::empty();
        let mut iterations = 0u64;
        for r in 0..self.repetitions as u64 {
            iterations = r + 1;
            let colors = random_coloring(n, 2 * k, derive_seed(seed, 0xED0 + r));
            let calls: [(&[bool], &[bool]); 2] = [(&light, &light), (&all, &all)];
            for (ci, (h_mask, x_mask)) in calls.into_iter().enumerate() {
                let result = run_color_bfs_bw(
                    g,
                    k,
                    &colors,
                    h_mask,
                    x_mask,
                    None,
                    tau,
                    bandwidth,
                    derive_seed(seed, 0xED00 + r * 2 + ci as u64),
                );
                total.absorb(&result.report);
                if let Some((v, origin)) = result.rejection {
                    let witness = extract_even_witness(g, h_mask, &colors, k, origin, v)
                        .expect("rejection must be certifiable");
                    return EdenOutcome {
                        rejected: true,
                        witness: Some(witness),
                        iterations,
                        report: total,
                    };
                }
            }
        }
        EdenOutcome {
            rejected: false,
            witness: None,
            iterations,
            report: total,
        }
    }
}

impl Detector for EdenModel {
    fn descriptor(&self) -> Descriptor {
        let row = if self.k.is_multiple_of(2) {
            even_cycle::theory::Table1Row::EdenEvenK
        } else {
            even_cycle::theory::Table1Row::EdenOddK
        };
        Descriptor {
            name: "two-level threshold model",
            reference: "[16]",
            model: Model::Classical,
            target: Target::Even { k: self.k },
            exponent: self.exponent(),
            table1: Some(row),
        }
    }

    fn detect(&self, g: &Graph, seed: u64, budget: &Budget) -> DetectResult {
        let det = match budget.repetitions {
            Some(r) => self.clone().with_repetitions(r),
            None => self.clone(),
        };
        let o = det.run_with_bandwidth(g, seed, budget.bandwidth);
        let verdict = if o.rejected {
            let cycle_length = o.witness.as_ref().map(|w| w.len());
            Verdict::Reject {
                witness: o.witness,
                cycle_length,
            }
        } else {
            Verdict::Accept
        };
        Ok(budget.enforce(Detection {
            algorithm: self.descriptor(),
            verdict,
            cost: RunCost::from_report(&o.report, o.iterations),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    #[test]
    fn exponents_match_table1() {
        assert!((EdenModel::new(6).exponent() - (1.0 - 2.0 / 28.0)).abs() < 1e-12);
        assert!((EdenModel::new(7).exponent() - (1.0 - 2.0 / 44.0)).abs() < 1e-12);
    }

    #[test]
    fn this_paper_wins_for_k_at_least_6() {
        for k in 6..20 {
            let ours = 1.0 - 1.0 / k as f64;
            assert!(
                EdenModel::new(k).exponent() > ours,
                "k = {k}: [16] must be worse"
            );
        }
        // The gap shrinks toward 1 as k grows but never closes — for
        // k ≥ 6, [16] was simply the best known before this paper.
        let gap6 = EdenModel::new(6).exponent() - (1.0 - 1.0 / 6.0);
        let gap12 = EdenModel::new(12).exponent() - (1.0 - 1.0 / 12.0);
        assert!(gap6 > gap12 && gap12 > 0.0);
    }

    #[test]
    fn finds_planted_c6() {
        let host = generators::random_tree(36, 5);
        let (g, _) = generators::plant_cycle(&host, 6, 5);
        let det = EdenModel::new(3).with_repetitions(512);
        let found = (0..6).any(|seed| {
            let o = det.run(&g, seed);
            if o.rejected {
                assert!(o.witness.as_ref().unwrap().is_valid(&g));
            }
            o.rejected
        });
        assert!(found, "model never found the planted C6");
    }

    #[test]
    fn soundness() {
        let det = EdenModel::new(3).with_repetitions(32);
        for seed in 0..4 {
            let g = generators::random_tree(40, seed);
            assert!(!det.run(&g, seed).rejected);
        }
    }
}
