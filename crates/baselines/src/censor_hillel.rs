//! The local-threshold algorithm of Censor-Hillel et al. [10]
//! (paper §1.1.1) for `C_{2k}`-freeness, `k ∈ {2, 3, 4, 5}`.
//!
//! Each attempt selects one source `s` uniformly at random; the neighbors
//! of `s` colored 0 launch a colored BFS with a *constant* threshold
//! `τ_k`. The key lemma of [10] — valid only for `k ≤ 5` — says a
//! constant fraction of sources either lie on a `2k`-cycle or never push
//! any node past `τ_k`, so each attempt costs `O(k·τ_k)` rounds and
//! `O(n^{1-1/k})` attempts suffice. Fraigniaud–Luce–Todinca [23] showed
//! the *local* threshold cannot work for `k ≥ 6`; the constructor
//! enforces the `k ≤ 5` restriction accordingly.

use congest_graph::{CycleWitness, Graph, NodeId};
use congest_sim::{derive_seed, RunReport};
use even_cycle::{
    extract_even_witness, random_coloring, run_color_bfs_bw, Budget, Descriptor, DetectResult,
    Detection, Detector, Model, RunCost, Target, Verdict,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The outcome of a [`LocalThresholdDetector`] run.
#[derive(Debug, Clone)]
pub struct LocalThresholdOutcome {
    /// Whether a `2k`-cycle was found.
    pub rejected: bool,
    /// The verified witness, when found.
    pub witness: Option<CycleWitness>,
    /// Attempts executed (≤ the configured budget; stops at first find).
    pub attempts: u64,
    /// Accumulated CONGEST costs.
    pub report: RunReport,
}

/// The [10] local-threshold `C_{2k}` detector, `k ∈ {2,…,5}`.
///
/// ```
/// use congest_graph::generators;
/// use congest_baselines::censor_hillel::LocalThresholdDetector;
/// let host = generators::random_tree(40, 3);
/// let (g, _) = generators::plant_cycle(&host, 4, 3);
/// let det = LocalThresholdDetector::new(2);
/// let found = (0..6).any(|seed| det.run(&g, seed).rejected);
/// assert!(found);
/// ```
#[derive(Debug, Clone)]
pub struct LocalThresholdDetector {
    k: usize,
    /// The constant threshold `τ_k`.
    tau: u64,
    /// Cap on the number of attempts (the theory wants
    /// `Θ(n^{1-1/k}·(2k)^{2k})`; experiments scale this).
    attempt_factor: f64,
    max_attempts: u64,
}

impl LocalThresholdDetector {
    /// Creates the detector for `C_{2k}`.
    ///
    /// # Panics
    ///
    /// Panics unless `k ∈ {2, 3, 4, 5}` — the local-threshold lemma of
    /// [10] does not hold beyond `k = 5` [23].
    pub fn new(k: usize) -> Self {
        assert!(
            (2..=5).contains(&k),
            "the local threshold technique only works for k in 2..=5 [23]"
        );
        LocalThresholdDetector {
            k,
            tau: 16,
            attempt_factor: 8.0,
            max_attempts: 4096,
        }
    }

    /// Overrides the constant threshold `τ_k`.
    pub fn with_tau(mut self, tau: u64) -> Self {
        self.tau = tau.max(1);
        self
    }

    /// Overrides the attempt budget: `factor · n^{1-1/k}` attempts,
    /// capped at `max`.
    pub fn with_attempts(mut self, factor: f64, max: u64) -> Self {
        assert!(factor > 0.0);
        self.attempt_factor = factor;
        self.max_attempts = max.max(1);
        self
    }

    /// The attempt budget for an `n`-vertex graph.
    pub fn attempts_for(&self, n: usize) -> u64 {
        let want = (self.attempt_factor * (n as f64).powf(1.0 - 1.0 / self.k as f64)).ceil() as u64;
        want.clamp(1, self.max_attempts)
    }

    /// Runs the detector on `g` with randomness from `seed`.
    pub fn run(&self, g: &Graph, seed: u64) -> LocalThresholdOutcome {
        self.run_with_bandwidth(g, seed, 1)
    }

    /// [`LocalThresholdDetector::run`] at per-edge bandwidth `B`.
    pub fn run_with_bandwidth(
        &self,
        g: &Graph,
        seed: u64,
        bandwidth: u64,
    ) -> LocalThresholdOutcome {
        let n = g.node_count();
        let k = self.k;
        let mut total = RunReport::empty();
        let attempts = self.attempts_for(n);
        let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(seed, 0x10CA1));
        let all = vec![true; n];

        for attempt in 0..attempts {
            // One uniformly random source; its neighbors form X.
            let s = NodeId::new(rng.gen_range(0..n as u32));
            let mut x_mask = vec![false; n];
            for &u in g.neighbors(s) {
                x_mask[u.index()] = true;
            }
            let colors = random_coloring(n, 2 * k, derive_seed(seed, 0x5000 + attempt));
            let result = run_color_bfs_bw(
                g,
                k,
                &colors,
                &all,
                &x_mask,
                None,
                self.tau,
                bandwidth,
                derive_seed(seed, 0x6000 + attempt),
            );
            total.absorb(&result.report);
            if let Some((v, origin)) = result.rejection {
                let witness = extract_even_witness(g, &all, &colors, k, origin, v)
                    .expect("rejection must be certifiable");
                return LocalThresholdOutcome {
                    rejected: true,
                    witness: Some(witness),
                    attempts: attempt + 1,
                    report: total,
                };
            }
        }
        LocalThresholdOutcome {
            rejected: false,
            witness: None,
            attempts,
            report: total,
        }
    }
}

impl Detector for LocalThresholdDetector {
    fn descriptor(&self) -> Descriptor {
        Descriptor {
            name: "local-threshold sampling",
            reference: "[10]",
            model: Model::Classical,
            target: Target::Even { k: self.k },
            exponent: even_cycle::theory::Table1Row::CensorHillelEven.exponent(self.k),
            table1: Some(even_cycle::theory::Table1Row::CensorHillelEven),
        }
    }

    fn detect(&self, g: &Graph, seed: u64, budget: &Budget) -> DetectResult {
        let det = match budget.repetitions {
            // The [10] outer loop counts *attempts*, so the repetition
            // override caps the attempt budget.
            Some(r) => self.clone().with_attempts(self.attempt_factor, r as u64),
            None => self.clone(),
        };
        let o = det.run_with_bandwidth(g, seed, budget.bandwidth);
        let verdict = if o.rejected {
            let cycle_length = o.witness.as_ref().map(|w| w.len());
            Verdict::Reject {
                witness: o.witness,
                cycle_length,
            }
        } else {
            Verdict::Accept
        };
        Ok(budget.enforce(Detection {
            algorithm: self.descriptor(),
            verdict,
            cost: RunCost::from_report(&o.report, o.attempts),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    #[test]
    fn finds_planted_c4() {
        let host = generators::random_tree(40, 3);
        let (g, _) = generators::plant_cycle(&host, 4, 3);
        let det = LocalThresholdDetector::new(2);
        let found = (0..6).any(|seed| {
            let o = det.run(&g, seed);
            if o.rejected {
                let w = o.witness.as_ref().unwrap();
                assert_eq!(w.len(), 4);
                assert!(w.is_valid(&g));
            }
            o.rejected
        });
        assert!(found, "local threshold never found the planted C4");
    }

    #[test]
    fn soundness_on_c4_free() {
        let det = LocalThresholdDetector::new(2);
        let g = generators::polarity_graph(3);
        for seed in 0..4 {
            assert!(!det.run(&g, seed).rejected);
        }
        for seed in 0..4 {
            let t = generators::random_tree(50, seed);
            assert!(!det.run(&t, seed).rejected);
        }
    }

    #[test]
    fn congestion_bounded_by_constant_tau() {
        let det = LocalThresholdDetector::new(2).with_tau(8);
        let g = generators::erdos_renyi(80, 0.06, 2);
        let o = det.run(&g, 1);
        // Hello rounds carry 1 word; forwarding ≤ τ words.
        assert!(o.report.congestion.max_words_per_edge_step <= 8);
    }

    #[test]
    fn attempt_budget_scales() {
        let det = LocalThresholdDetector::new(2).with_attempts(2.0, 1 << 30);
        let a = det.attempts_for(100);
        let b = det.attempts_for(10_000);
        // n^{1/2} scaling: 100x n → 10x attempts.
        assert!(b >= 9 * a && b <= 11 * a, "a = {a}, b = {b}");
    }

    #[test]
    #[should_panic(expected = "only works for k in 2..=5")]
    fn k6_rejected() {
        LocalThresholdDetector::new(6);
    }
}
