//! The deterministic baseline (Table 1 rows [15, 30]): `C_ℓ` detection by
//! full-graph gathering with honest `O(m + D)` round accounting.
//!
//! **Substitution note** (DESIGN.md §2.6). Korhonen–Rybicki [30] decide
//! `C_ℓ`-freeness deterministically in `Õ(n)` rounds of broadcast
//! CONGEST via derandomized color-coding. We substitute the simplest
//! deterministic algorithm with the same upper-bound shape on the sparse
//! families the experiments use (`m = O(n)`): pipeline every edge record
//! to every node (`O(m + D)` rounds — each node must receive `m` tokens
//! over at least one incident edge, so this is also optimal for full
//! gathering), then decide locally by exact search. On sparse inputs the
//! measured rounds grow as `Θ(n)`, matching the `Θ̃(n)` row; the
//! experiments only ever compare *shapes*.

use congest_graph::{analysis, CycleWitness, Graph, NodeId};
use congest_sim::{Backend, Control, Ctx, Decision, Outbox, Program, RunReport, SimError};
use even_cycle::{
    run_program, Budget, Descriptor, DetectResult, Detection, Detector, Model, RunCost, Target,
    Verdict,
};

/// An edge record `(u, v)` flooded through the network; two identifier
/// words.
type EdgeRecord = (u32, u32);

/// The gathering program: every node floods all edge records it knows;
/// after quiescence every node knows the whole graph and decides locally.
#[derive(Debug, Clone)]
struct GatherProgram {
    /// Target cycle length to decide.
    cycle_len: usize,
    /// Every edge record this node has seen (sorted).
    known: Vec<EdgeRecord>,
    /// Records not yet forwarded.
    fresh: Vec<EdgeRecord>,
    /// Verdict after the final local decision.
    found: Option<CycleWitness>,
    /// Rounds of silence before a node assumes quiescence. In a real
    /// network termination uses an `O(D)`-round echo wave; the simulator
    /// reaches global quiescence naturally, and the executor stops when
    /// all nodes halt.
    quiet: usize,
}

impl Program for GatherProgram {
    type Msg = Vec<EdgeRecord>;

    fn init(&mut self, ctx: &mut Ctx, out: &mut Outbox<Vec<EdgeRecord>>) {
        // Seed with the local incident edges.
        let me = ctx.node.raw();
        for &nbr in ctx.neighbors {
            let rec = ordered(me, nbr.raw());
            self.known.push(rec);
            self.fresh.push(rec);
        }
        self.known.sort_unstable();
        self.known.dedup();
        out.broadcast(self.fresh.drain(..).collect::<Vec<_>>());
    }

    fn step(
        &mut self,
        _ctx: &mut Ctx,
        _superstep: usize,
        inbox: &[(NodeId, Vec<EdgeRecord>)],
        out: &mut Outbox<Vec<EdgeRecord>>,
    ) -> Control {
        for (_, records) in inbox {
            for &rec in records {
                if self.known.binary_search(&rec).is_err() {
                    let pos = self.known.partition_point(|&r| r < rec);
                    self.known.insert(pos, rec);
                    self.fresh.push(rec);
                }
            }
        }
        if !self.fresh.is_empty() {
            self.quiet = 0;
            out.broadcast(self.fresh.drain(..).collect::<Vec<_>>());
            return Control::Continue;
        }
        self.quiet += 1;
        if self.quiet >= 2 {
            // Quiescent: decide locally from the gathered graph.
            let n = self
                .known
                .iter()
                .map(|&(a, b)| a.max(b) as usize + 1)
                .max()
                .unwrap_or(0);
            if n > 0 {
                let g = Graph::from_edges(n, self.known.iter().copied())
                    .expect("gathered records form a graph");
                self.found = analysis::find_cycle_exact(&g, self.cycle_len, None);
            }
            Control::Halt
        } else {
            Control::Continue
        }
    }

    fn decision(&self) -> Decision {
        if self.found.is_some() {
            Decision::Reject
        } else {
            Decision::Accept
        }
    }
}

fn ordered(a: u32, b: u32) -> EdgeRecord {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The outcome of the deterministic gather-and-decide baseline.
#[derive(Debug, Clone)]
pub struct GatherOutcome {
    /// Whether a `C_ℓ` exists (exact — this baseline has no error at
    /// all).
    pub rejected: bool,
    /// The witness found by the (arbitrary) first rejecting node.
    pub witness: Option<CycleWitness>,
    /// CONGEST costs (`rounds = Θ(m + D)` by construction).
    pub report: RunReport,
}

/// Decides `C_ℓ`-freeness deterministically by full gathering.
///
/// # Errors
///
/// Propagates simulator errors (step-limit; cannot happen with the
/// default limit of `4(m + n) + 64` supersteps).
///
/// ```
/// use congest_graph::generators;
/// use congest_baselines::deterministic::gather_and_decide;
/// let g = generators::cycle(7);
/// let outcome = gather_and_decide(&g, 7, 1)?;
/// assert!(outcome.rejected);
/// let outcome = gather_and_decide(&g, 5, 1)?;
/// assert!(!outcome.rejected);
/// # Ok::<(), congest_sim::SimError>(())
/// ```
pub fn gather_and_decide(
    g: &Graph,
    cycle_len: usize,
    seed: u64,
) -> Result<GatherOutcome, SimError> {
    gather_and_decide_bw(g, cycle_len, seed, 1)
}

/// [`gather_and_decide`] at per-edge bandwidth `B` (words per round).
///
/// # Errors
///
/// Propagates simulator errors, as [`gather_and_decide`].
pub fn gather_and_decide_bw(
    g: &Graph,
    cycle_len: usize,
    seed: u64,
    bandwidth: u64,
) -> Result<GatherOutcome, SimError> {
    gather_and_decide_on(g, cycle_len, seed, bandwidth, Backend::Sequential)
}

/// [`gather_and_decide_bw`] on an explicit simulation [`Backend`]; the
/// outcome is byte-identical whatever the backend.
///
/// # Errors
///
/// Propagates simulator errors, as [`gather_and_decide`].
pub fn gather_and_decide_on(
    g: &Graph,
    cycle_len: usize,
    seed: u64,
    bandwidth: u64,
    backend: Backend,
) -> Result<GatherOutcome, SimError> {
    let limit = 4 * (g.edge_count() as u64 + g.node_count() as u64) + 64;
    let (report, nodes) = run_program(
        g,
        seed,
        backend,
        bandwidth,
        None,
        |_, _| GatherProgram {
            cycle_len,
            known: Vec::new(),
            fresh: Vec::new(),
            found: None,
            quiet: 0,
        },
        limit,
    )?;
    let witness = report
        .rejecting_nodes
        .first()
        .and_then(|&v| nodes[v as usize].found.clone());
    Ok(GatherOutcome {
        rejected: report.rejected(),
        witness,
        report,
    })
}

/// The gather-and-decide baseline as a [`Detector`]: decides a single
/// cycle length `ℓ` exactly (no error at all), at `Θ(m + D)` rounds.
///
/// This is the one detector whose simulation can genuinely fail (the
/// flooding step count depends on the input); [`Detector::detect`]
/// surfaces that as the shared fallible path instead of a panic.
#[derive(Debug, Clone)]
pub struct GatherDetector {
    cycle_len: usize,
}

impl GatherDetector {
    /// Creates the detector for `C_ℓ` (`ℓ ≥ 3`).
    ///
    /// # Panics
    ///
    /// Panics if `cycle_len < 3`.
    pub fn new(cycle_len: usize) -> Self {
        assert!(cycle_len >= 3, "cycles start at C3");
        GatherDetector { cycle_len }
    }

    /// The decided cycle length.
    pub fn cycle_length(&self) -> usize {
        self.cycle_len
    }
}

impl Detector for GatherDetector {
    fn descriptor(&self) -> Descriptor {
        // Table 1's [15,30] deterministic row is specifically the odd
        // family; the even-length gather has no Table 1 row of its own.
        let (target, table1) = if self.cycle_len.is_multiple_of(2) {
            (
                Target::Even {
                    k: self.cycle_len / 2,
                },
                None,
            )
        } else {
            (
                Target::Odd {
                    k: (self.cycle_len - 1) / 2,
                },
                Some(even_cycle::theory::Table1Row::KorhonenRybickiOdd),
            )
        };
        Descriptor {
            name: "deterministic gather",
            reference: "[15,30]",
            model: Model::Classical,
            target,
            exponent: 1.0,
            table1,
        }
    }

    fn detect(&self, g: &Graph, seed: u64, budget: &Budget) -> DetectResult {
        // Deterministic and exact: the repetition override has nothing
        // to repeat, so only the bandwidth and backend apply.
        let o = gather_and_decide_on(g, self.cycle_len, seed, budget.bandwidth, budget.backend)?;
        let verdict = if o.rejected {
            let cycle_length = o.witness.as_ref().map(|w| w.len());
            Verdict::Reject {
                witness: o.witness,
                cycle_length,
            }
        } else {
            Verdict::Accept
        };
        Ok(budget.enforce(Detection {
            algorithm: self.descriptor(),
            verdict,
            cost: RunCost::from_report(&o.report, 1),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    #[test]
    fn exact_on_cycles() {
        let g = generators::cycle(9);
        assert!(gather_and_decide(&g, 9, 0).unwrap().rejected);
        assert!(!gather_and_decide(&g, 7, 0).unwrap().rejected);
        assert!(!gather_and_decide(&g, 4, 0).unwrap().rejected);
    }

    #[test]
    fn witness_is_valid() {
        let host = generators::random_tree(25, 2);
        let (g, _) = generators::plant_cycle(&host, 5, 2);
        let o = gather_and_decide(&g, 5, 1).unwrap();
        assert!(o.rejected);
        let w = o.witness.unwrap();
        assert_eq!(w.len(), 5);
        assert!(w.is_valid(&g));
    }

    #[test]
    fn rounds_scale_with_edges() {
        // Gathering m records through a bottleneck edge costs Ω(m).
        let a = gather_and_decide(&generators::cycle(16), 3, 0).unwrap();
        let b = gather_and_decide(&generators::cycle(64), 3, 0).unwrap();
        assert!(
            b.report.rounds >= 3 * a.report.rounds,
            "rounds must grow ~linearly: {} vs {}",
            a.report.rounds,
            b.report.rounds
        );
    }

    #[test]
    fn deterministic_across_seeds() {
        // The decision is seed-independent (no randomness in the
        // protocol at all).
        let g = generators::erdos_renyi(24, 0.15, 5);
        let a = gather_and_decide(&g, 4, 1).unwrap();
        let c = gather_and_decide(&g, 4, 2).unwrap();
        assert_eq!(a.rejected, c.rejected);
        assert_eq!(a.report.rounds, c.report.rounds);
    }
}
