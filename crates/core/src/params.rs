//! Parameter derivation for Algorithm 1 (paper Instructions 1–6).

/// Tunable parameters of the `C_{2k}`-freeness detector.
///
/// The paper's Algorithm 1 derives everything from `k` and the target
/// one-sided error `ε`:
///
/// * `ε̂ = ln(3/ε)` — the per-ingredient confidence budget;
/// * selection probability `p = ε̂ · 2k² / n^{1/k}` (Instruction 2);
/// * repetitions `K = ⌈ε̂ · (2k)^{2k}⌉` (Instruction 6);
/// * threshold `τ = k · 2^k · n·p` (Instruction 6).
///
/// [`Params::paper`] reproduces those constants exactly;
/// [`Params::practical`] keeps `p` and `τ` but caps `K` — the paper
/// constants are astronomically conservative (`K ≈ 563` already for
/// `k = 2`, `ε = 1/3`), and the per-iteration round cost, whose
/// `n`-scaling Table 1 reports, does not depend on `K`. Experiments state
/// which profile they use.
///
/// ```
/// use even_cycle::Params;
/// let params = Params::paper(2, 1.0 / 3.0);
/// let inst = params.instantiate(10_000);
/// assert_eq!(params.k, 2);
/// assert!(inst.tau > 0);
/// assert!(inst.selection_probability < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Half the target cycle length: the algorithm decides
    /// `C_{2k}`-freeness.
    pub k: usize,
    /// Target one-sided error probability `ε`.
    pub eps: f64,
    /// Number of repetitions `K` of the coloring loop (Instruction 7).
    pub repetitions: usize,
    /// Multiplier on the selection probability (and hence `τ`), default
    /// one. The paper's constant `ε̂·2k²` keeps `p` clamped at 1 until
    /// `n^{1/k} > ε̂·2k²` (`n ≈ 6·10⁴` already for `k = 3`); scaling
    /// experiments shrink the constant to reach the asymptotic regime at
    /// simulation sizes — the `n`-exponents of `p` and `τ` are
    /// unaffected. See [`Params::with_probability_scale`].
    pub probability_scale: f64,
}

/// Per-graph-size instantiation of [`Params`].
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// `n`, the number of vertices.
    pub n: usize,
    /// `ε̂ = ln(3/ε)`.
    pub eps_hat: f64,
    /// Degree threshold `n^{1/k}` separating light from heavy nodes
    /// (Instruction 1).
    pub degree_threshold: f64,
    /// Selection probability `p = min(1, scale·ε̂·2k²/n^{1/k})`
    /// (Instruction 2; `scale = 1` reproduces the paper exactly).
    pub selection_probability: f64,
    /// Threshold `τ = ⌈k·2^k·n·p⌉` (Instruction 6).
    pub tau: u64,
    /// `k²`, the selected-neighbor count defining `W` (Instruction 5).
    pub k_squared: usize,
}

impl Params {
    /// The paper's exact parameters for `C_{2k}`-freeness with one-sided
    /// error `ε` (Theorem 1).
    ///
    /// # Panics
    ///
    /// Panics unless `k ≥ 2` and `0 < ε < 1`.
    pub fn paper(k: usize, eps: f64) -> Self {
        assert!(k >= 2, "the paper's algorithm requires k ≥ 2");
        assert!(eps > 0.0 && eps < 1.0, "ε must be in (0,1)");
        let eps_hat = (3.0 / eps).ln();
        let reps = (eps_hat * (2.0 * k as f64).powi(2 * k as i32)).ceil() as usize;
        Params {
            k,
            eps,
            repetitions: reps,
            probability_scale: 1.0,
        }
    }

    /// The paper's parameters at `ε = 1/3` with the repetition count
    /// capped at `max_repetitions` (experiment profile; see type docs).
    pub fn practical(k: usize) -> Self {
        let mut p = Params::paper(k, 1.0 / 3.0);
        p.repetitions = p.repetitions.min(1024);
        p
    }

    /// Overrides the repetition count (e.g., for forced-coloring tests
    /// where a single repetition suffices).
    pub fn with_repetitions(mut self, repetitions: usize) -> Self {
        assert!(repetitions >= 1, "at least one repetition required");
        self.repetitions = repetitions;
        self
    }

    /// Scales the selection probability and threshold by `scale`
    /// (see the field docs on [`Params::probability_scale`]).
    ///
    /// # Panics
    ///
    /// Panics unless `scale > 0`.
    pub fn with_probability_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        self.probability_scale = scale;
        self
    }

    /// Derives the size-dependent quantities for an `n`-vertex graph.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn instantiate(&self, n: usize) -> Instance {
        assert!(n > 0, "graph must be non-empty");
        let eps_hat = (3.0 / self.eps).ln();
        let nf = n as f64;
        let degree_threshold = nf.powf(1.0 / self.k as f64);
        let p_raw =
            self.probability_scale * eps_hat * 2.0 * (self.k * self.k) as f64 / degree_threshold;
        let p = p_raw.min(1.0);
        let tau = (self.k as f64 * 2f64.powi(self.k as i32) * nf * p).ceil() as u64;
        Instance {
            n,
            eps_hat,
            degree_threshold,
            selection_probability: p,
            tau: tau.max(1),
            k_squared: self.k * self.k,
        }
    }

    /// The paper's round-complexity bound for these parameters
    /// (Theorem 1): `K · k · τ = O(log²(1/ε)·2^{3k}·k^{2k+3}·n^{1-1/k})`.
    pub fn round_bound(&self, n: usize) -> f64 {
        let inst = self.instantiate(n);
        self.repetitions as f64 * self.k as f64 * inst.tau as f64
    }

    /// The number of colors used by the coloring loop (`2k`).
    pub fn color_count(&self) -> usize {
        2 * self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_k2() {
        let p = Params::paper(2, 1.0 / 3.0);
        // K = ⌈ln(9)·4⁴⌉ = ⌈2.197·256⌉ = 563.
        assert_eq!(p.repetitions, 563);
        let inst = p.instantiate(4096);
        assert!((inst.degree_threshold - 64.0).abs() < 1e-9);
        // p = ln(9)·8/64 ≈ 0.2747.
        assert!((inst.selection_probability - (9f64).ln() * 8.0 / 64.0).abs() < 1e-9);
        // τ = 2·4·n·p.
        let expected_tau = (8.0 * 4096.0 * inst.selection_probability).ceil() as u64;
        assert_eq!(inst.tau, expected_tau);
        assert_eq!(inst.k_squared, 4);
    }

    #[test]
    fn probability_capped_for_tiny_graphs() {
        let p = Params::paper(2, 1.0 / 3.0);
        let inst = p.instantiate(16);
        assert_eq!(inst.selection_probability, 1.0);
    }

    #[test]
    fn smaller_eps_means_more_repetitions() {
        let loose = Params::paper(2, 1.0 / 3.0);
        let tight = Params::paper(2, 1.0 / 100.0);
        assert!(tight.repetitions > loose.repetitions);
        let inst_l = loose.instantiate(1 << 20);
        let inst_t = tight.instantiate(1 << 20);
        assert!(inst_t.selection_probability > inst_l.selection_probability);
        assert!(inst_t.tau > inst_l.tau);
    }

    #[test]
    fn practical_caps_repetitions() {
        assert_eq!(Params::practical(2).repetitions, 563);
        assert_eq!(Params::practical(3).repetitions, 1024);
    }

    #[test]
    fn round_bound_scaling() {
        // For fixed k, bound/n^{1-1/k} should be constant in n.
        let p = Params::paper(2, 1.0 / 3.0);
        let big = 1u64 << 30;
        let r1 = p.round_bound(big as usize) / (big as f64).powf(0.5);
        let r2 = p.round_bound((big * 4) as usize) / ((big * 4) as f64).powf(0.5);
        assert!((r1 / r2 - 1.0).abs() < 0.01, "{r1} vs {r2}");
    }

    #[test]
    #[should_panic(expected = "k ≥ 2")]
    fn k1_rejected() {
        Params::paper(1, 0.5);
    }

    #[test]
    fn color_count() {
        assert_eq!(Params::paper(3, 0.5).color_count(), 6);
    }

    #[test]
    fn probability_scale_shrinks_p_and_tau() {
        let base = Params::paper(3, 1.0 / 3.0).instantiate(1000);
        let scaled = Params::paper(3, 1.0 / 3.0)
            .with_probability_scale(0.05)
            .instantiate(1000);
        assert!(scaled.selection_probability < base.selection_probability);
        assert!(scaled.tau < base.tau);
        // At this scale p leaves the clamp; the exponent is unchanged:
        let a = Params::paper(3, 1.0 / 3.0)
            .with_probability_scale(0.05)
            .instantiate(1 << 12);
        let b = Params::paper(3, 1.0 / 3.0)
            .with_probability_scale(0.05)
            .instantiate(1 << 24);
        // τ ~ n^{1-1/k}: 2^12 → 2^24 is ×2^12 in n, ×2^8 in τ.
        let ratio = b.tau as f64 / a.tau as f64;
        assert!(
            (ratio.log2() - 8.0).abs() < 0.2,
            "τ ratio 2^{}",
            ratio.log2()
        );
    }
}
