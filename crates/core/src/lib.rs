//! Even-cycle detection in the randomized and quantum CONGEST model —
//! the algorithms of Fraigniaud, Luce, Magniez, Todinca (PODC 2024).
//!
//! * [`CycleDetector`] — Algorithm 1: `C_{2k}`-freeness with one-sided
//!   error `ε` in `O(log²(1/ε)·2^{3k}·k^{2k+3}·n^{1-1/k})` rounds
//!   (Theorem 1). The detector is built from three calls to
//!   [`color_bfs::ColorBfs`] per coloring iteration (light cycles,
//!   cycles through the random set `S`, heavy cycles launched from `W`).
//! * [`LowProbDetector`] — Lemma 12: the same algorithm with
//!   `randomized-color-BFS` (Algorithm 2), running in `k^{O(k)}` rounds
//!   with constant congestion and success probability `1/(3τ)`.
//! * [`QuantumCycleDetector`] — Theorem 2 / Lemma 13: diameter reduction
//!   and quantum Monte-Carlo amplification of the low-probability
//!   detector, in `k^{O(k)}·polylog(n)·n^{1/2-1/2k}` rounds.
//! * [`OddCycleDetector`] — §3.4: `C_{2k+1}`-freeness with success
//!   `Ω(1/n)` in constant rounds; amplified to `Õ(√n)`.
//! * [`F2kDetector`] — §3.5: `{C_ℓ | 3 ≤ ℓ ≤ 2k}`-freeness.
//! * [`sparsify`] — the Density Lemma machinery (Lemmas 4–7) with the
//!   constructive cycle extraction of Lemma 6 (Figure 1).
//! * [`theory`] — closed-form round complexities for every row of
//!   Table 1.
//!
//! Every rejection is *certified*: the library extracts an explicit cycle
//! witness and validates it against the input graph before reporting.
//!
//! All detectors also implement the unified [`Detector`] trait
//! (`detect(&graph, seed, &budget) → Result<Detection>`), the one
//! polymorphic entry point shared with the Table 1 baseline comparators;
//! see [`api`](crate::Detection) for the outcome types and the facade
//! crate for the registry and scenario runner built on top.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
pub mod color_bfs;
mod detector;
mod f2k;
mod odd;
mod params;
mod quantum_detector;
mod randomized;
pub mod sparsify;
pub mod theory;
mod witness;

pub use api::{
    run_program, Budget, Descriptor, DetectResult, Detection, Detector, Model, RunCost, Target,
    Verdict,
};
pub use congest_sim::Backend;
pub use detector::{
    random_coloring, run_color_bfs, run_color_bfs_backend, run_color_bfs_bw, ColorBfsResult,
    CycleDetector, Memberships, RunOptions,
};
pub use f2k::{F2kDetector, F2kMc, F2kOutcome};
pub use odd::OddCycleDetector;
pub use params::{Instance, Params};
pub use quantum_detector::{
    QuantumCycleDetector, QuantumF2kDetector, QuantumOddCycleDetector, QuantumOutcome,
};
pub use randomized::{LowProbDetector, LowProbMc, RANDOMIZED_THRESHOLD};
pub use witness::{
    certify, extract_even_witness, extract_odd_witness, find_colored_path, DetectionOutcome, Phase,
    SetsSummary,
};
