//! The Density Lemma machinery (paper §2.2.3, Lemmas 4–7) — constructive.
//!
//! This module implements, verbatim, the sparsification of the proof of
//! Lemma 4: the edge sets `OUT(v)` and `IN(v)` (Eqs. 3–4), the nested
//! sequence `IN(v,0) ⊆ IN(v,1) ⊆ … ⊆ IN(v,2q)` (Eqs. 5–7), and `OUT(v)`
//! for layered vertices (Eq. 8); then the **constructive** Lemma 6: when
//! some `IN(v,0)` is non-empty, it assembles the three paths `P`
//! (Claim 1), `P′` and `P″` (Claim 2) into an explicit `2k`-cycle
//! intersecting `S` — exactly the object Figure 1 depicts for `k = 5`,
//! `i = 2` — and Lemma 7's counting bound when every `IN(v,0)` is empty.
//!
//! The machinery is what makes Algorithm 1's third `color-BFS` sound:
//! if a node would have to forward identifiers of more than
//! `2^{i-1}(k-1)|S|` vertices of `W₀`, a `2k`-cycle through `S` exists
//! (and would have been caught by the second `color-BFS`).

use std::collections::{HashMap, HashSet, VecDeque};
use std::error::Error;
use std::fmt;

use congest_graph::{CycleWitness, Graph, NodeId};

/// Errors from the density machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DensityError {
    /// The input masks/layers violate the Density Lemma's premises.
    InvalidInput(String),
    /// The Lemma 6 construction failed — impossible if the input
    /// invariants hold; indicates a bug (or a violated premise).
    Construction(String),
}

impl fmt::Display for DensityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DensityError::InvalidInput(m) => write!(f, "invalid density input: {m}"),
            DensityError::Construction(m) => write!(f, "cycle construction failed: {m}"),
        }
    }
}

impl Error for DensityError {}

/// Input to the sparsification: the disjoint sets
/// `S, W₀, V₁, …, V_{k-1}` of Lemma 4.
///
/// `layer[v] = Some(i)` places `v` in `V_i` (`1 ≤ i ≤ k-1`); `W₀` plays
/// the role of `V₀`. In Algorithm 1's analysis the layers are the color
/// classes `V_i = {v ∈ V∖S : c(v) = i}` restricted to the exploration,
/// but the lemma — and this code — works for arbitrary disjoint sets.
#[derive(Debug, Clone)]
pub struct DensityInput {
    /// `k ≥ 2` (the target cycle has length `2k`).
    pub k: usize,
    /// Membership mask of `S`.
    pub s_mask: Vec<bool>,
    /// Membership mask of `W₀` (every member needs ≥ `k²` `S`-neighbors).
    pub w0_mask: Vec<bool>,
    /// Layer assignment (`Some(i)` ⇒ `v ∈ V_i`, `1 ≤ i ≤ k-1`).
    pub layer: Vec<Option<u8>>,
}

/// The computed sparsification with the Lemma 6 cycle constructor.
#[derive(Debug)]
pub struct Sparsification<'a> {
    g: &'a Graph,
    input: DensityInput,
    /// Edges of `E(S, W₀)` as `(s, w)` pairs.
    edges: Vec<(NodeId, NodeId)>,
    /// Lookup `(s, w) → edge id`.
    edge_ids: HashMap<(NodeId, NodeId), u32>,
    /// `OUT(v)` per vertex (sorted edge-id sets; empty for unlayered).
    out_sets: Vec<Vec<u32>>,
    /// `IN(v)` per layered vertex.
    in_sets: Vec<Vec<u32>>,
    /// `IN(v, γ)` for `γ = 0..=2q(v)` per layered vertex.
    nested: Vec<Vec<Vec<u32>>>,
}

/// The dichotomy established by Lemma 4: either the reachability sets are
/// small everywhere, or an explicit `2k`-cycle through `S` exists.
#[derive(Debug, Clone)]
pub enum DensityVerdict {
    /// All `IN(v,0)` empty; `|W₀(v)| ≤ 2^{i-1}(k-1)|S|` verified for
    /// every layered `v`. Carries the maximum observed ratio
    /// `|W₀(v)| / (2^{i-1}(k-1)|S|) ≤ 1`.
    BoundHolds {
        /// Maximum of `|W₀(v)|` over the Lemma 7 bound, over all layered
        /// vertices (≤ 1 when the verdict holds).
        max_ratio: f64,
    },
    /// Some `IN(v,0) ≠ ∅`; the constructed cycle (length `2k`,
    /// intersecting `S`, validated against the graph).
    CycleFound(CycleWitness),
}

impl<'a> Sparsification<'a> {
    /// Computes the full sparsification.
    ///
    /// # Errors
    ///
    /// [`DensityError::InvalidInput`] if the sets are not disjoint, a
    /// layer index is out of range, or some `w ∈ W₀` has fewer than `k²`
    /// neighbors in `S`.
    pub fn new(g: &'a Graph, input: DensityInput) -> Result<Self, DensityError> {
        let n = g.node_count();
        let k = input.k;
        if k < 2 {
            return Err(DensityError::InvalidInput("k must be at least 2".into()));
        }
        for len in [input.s_mask.len(), input.w0_mask.len(), input.layer.len()] {
            if len != n {
                return Err(DensityError::InvalidInput(format!(
                    "mask length {len} != n = {n}"
                )));
            }
        }
        for v in 0..n {
            let in_s = input.s_mask[v];
            let in_w0 = input.w0_mask[v];
            let in_layer = input.layer[v].is_some();
            if (in_s as u8 + in_w0 as u8 + in_layer as u8) > 1 {
                return Err(DensityError::InvalidInput(format!(
                    "vertex {v} belongs to multiple sets"
                )));
            }
            if let Some(i) = input.layer[v] {
                if i == 0 || i as usize >= k {
                    return Err(DensityError::InvalidInput(format!(
                        "vertex {v} has layer {i} outside 1..k-1"
                    )));
                }
            }
        }
        // Edge set E(S, W₀) and the k² premise.
        let mut edges = Vec::new();
        let mut edge_ids = HashMap::new();
        for w in g.nodes() {
            if !input.w0_mask[w.index()] {
                continue;
            }
            let mut s_deg = 0usize;
            for &s in g.neighbors(w) {
                if input.s_mask[s.index()] {
                    let id = edges.len() as u32;
                    edges.push((s, w));
                    edge_ids.insert((s, w), id);
                    s_deg += 1;
                }
            }
            if s_deg < k * k {
                return Err(DensityError::InvalidInput(format!(
                    "w0 vertex {w} has only {s_deg} < k² = {} S-neighbors",
                    k * k
                )));
            }
        }

        let mut sp = Sparsification {
            g,
            input,
            edges,
            edge_ids,
            out_sets: vec![Vec::new(); n],
            in_sets: vec![Vec::new(); n],
            nested: vec![Vec::new(); n],
        };
        sp.compute();
        Ok(sp)
    }

    /// The `(s, w)` endpoints of edge `id`.
    pub fn edge(&self, id: u32) -> (NodeId, NodeId) {
        self.edges[id as usize]
    }

    /// Number of edges in `E(S, W₀)`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// `IN(v)` (empty for unlayered vertices).
    pub fn in_set(&self, v: NodeId) -> &[u32] {
        &self.in_sets[v.index()]
    }

    /// `OUT(v)`.
    pub fn out_set(&self, v: NodeId) -> &[u32] {
        &self.out_sets[v.index()]
    }

    /// The nested sets `IN(v, 0..=2q)` of a layered vertex.
    pub fn nested_sets(&self, v: NodeId) -> &[Vec<u32>] {
        &self.nested[v.index()]
    }

    /// `q = ⌊(k - i)/2⌋` for `v ∈ V_i`.
    pub fn q_of(&self, v: NodeId) -> Option<usize> {
        self.input.layer[v.index()].map(|i| (self.input.k - i as usize) / 2)
    }

    /// Vertices with non-empty `IN(v, 0)`, in increasing layer order —
    /// the triggers of Lemma 6.
    pub fn nonempty_in0(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .g
            .nodes()
            .filter(|v| {
                self.input.layer[v.index()].is_some()
                    && !self.nested[v.index()].first().is_none_or(Vec::is_empty)
            })
            .collect();
        out.sort_by_key(|v| self.input.layer[v.index()]);
        out
    }

    /// The reachability set `W₀(v)`: vertices `w ∈ W₀` with a path
    /// `(w, v_1, …, v_i = v)`, `v_j ∈ V_j` (the sets Lemma 7 bounds, and
    /// the identifiers `v` would forward in the third `color-BFS`).
    pub fn w0_reachable(&self, v: NodeId) -> Vec<NodeId> {
        let Some(layer) = self.input.layer[v.index()] else {
            return Vec::new();
        };
        // Backward layered BFS.
        let mut frontier: HashSet<NodeId> = HashSet::from([v]);
        for j in (1..layer).rev() {
            let mut next = HashSet::new();
            for &u in &frontier {
                for &w in self.g.neighbors(u) {
                    if self.input.layer[w.index()] == Some(j) {
                        next.insert(w);
                    }
                }
            }
            frontier = next;
        }
        let mut out: HashSet<NodeId> = HashSet::new();
        for &u in &frontier {
            for &w in self.g.neighbors(u) {
                if self.input.w0_mask[w.index()] {
                    out.insert(w);
                }
            }
        }
        let mut v: Vec<NodeId> = out.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// The Lemma 7 bound `2^{i-1}(k-1)|S|` for `v ∈ V_i`.
    pub fn density_bound(&self, v: NodeId) -> Option<f64> {
        let i = self.input.layer[v.index()]?;
        let s_size = self.input.s_mask.iter().filter(|&&b| b).count();
        Some(2f64.powi(i as i32 - 1) * (self.input.k - 1) as f64 * s_size as f64)
    }

    /// Runs the Lemma 4 dichotomy: constructs a `2k`-cycle through `S`
    /// if some `IN(v,0)` is non-empty, otherwise verifies the Lemma 7
    /// bound everywhere.
    ///
    /// # Errors
    ///
    /// Propagates [`DensityError::Construction`] (a bug if it happens).
    pub fn verdict(&self) -> Result<DensityVerdict, DensityError> {
        if let Some(&v) = self.nonempty_in0().first() {
            return Ok(DensityVerdict::CycleFound(self.construct_cycle(v)?));
        }
        let mut max_ratio: f64 = 0.0;
        for v in self.g.nodes() {
            if self.input.layer[v.index()].is_none() {
                continue;
            }
            let reach = self.w0_reachable(v).len() as f64;
            let bound = self.density_bound(v).expect("layered");
            if bound > 0.0 {
                max_ratio = max_ratio.max(reach / bound);
            } else if reach > 0.0 {
                max_ratio = f64::INFINITY;
            }
        }
        if max_ratio > 1.0 {
            return Err(DensityError::Construction(format!(
                "Lemma 7 bound violated (ratio {max_ratio}) with all IN(v,0) empty"
            )));
        }
        Ok(DensityVerdict::BoundHolds { max_ratio })
    }

    /// The constructive Lemma 6: given `v` with `IN(v,0) ≠ ∅`, builds the
    /// paths `P`, `P′`, `P″` and returns their union — a validated
    /// `2k`-cycle intersecting `S`.
    ///
    /// # Errors
    ///
    /// [`DensityError::Construction`] if `IN(v,0)` is empty or an
    /// invariant fails.
    pub fn construct_cycle(&self, v: NodeId) -> Result<CycleWitness, DensityError> {
        let k = self.input.k;
        let i = self.input.layer[v.index()]
            .ok_or_else(|| DensityError::Construction(format!("{v} is not a layered vertex")))?
            as usize;
        let q = (k - i) / 2;
        let nested = &self.nested[v.index()];
        let in0 = nested
            .first()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| DensityError::Construction(format!("IN({v},0) is empty")))?;

        // ---- Claim 1: the alternating path P inside IN(v, 2q). ----
        let mut deque: VecDeque<NodeId> = VecDeque::new();
        let mut used_s: HashSet<NodeId> = HashSet::new();
        let mut used_w: HashSet<NodeId> = HashSet::new();
        let (s1, _) = self.edge(in0[0]);
        deque.push_back(s1);
        used_s.insert(s1);

        for gamma in 0..q {
            // Extend both ends with fresh W₀ vertices via IN(v, 2γ+1).
            for front in [true, false] {
                let s_end = *if front { deque.front() } else { deque.back() }.expect("non-empty");
                let w_new = self
                    .pick_partner(&nested[2 * gamma + 1], s_end, true, &used_w)
                    .ok_or_else(|| {
                        DensityError::Construction(format!(
                            "no fresh W₀ extension for {s_end} at γ = {gamma}"
                        ))
                    })?;
                used_w.insert(w_new);
                if front {
                    deque.push_front(w_new);
                } else {
                    deque.push_back(w_new);
                }
            }
            // Extend both ends with fresh S vertices via IN(v, 2γ+2).
            for front in [true, false] {
                let w_end = *if front { deque.front() } else { deque.back() }.expect("non-empty");
                let s_new = self
                    .pick_partner(&nested[2 * gamma + 2], w_end, false, &used_s)
                    .ok_or_else(|| {
                        DensityError::Construction(format!(
                            "no fresh S extension for {w_end} at γ = {gamma}"
                        ))
                    })?;
                used_s.insert(s_new);
                if front {
                    deque.push_front(s_new);
                } else {
                    deque.push_back(s_new);
                }
            }
        }
        debug_assert_eq!(deque.len(), 4 * q + 1);

        if (k - i).is_multiple_of(2) {
            // 4q+1 = 2(k-i)+1: drop one S endpoint.
            deque.pop_back();
        } else {
            // 4q+1 = 2(k-i)-1: extend the front S endpoint with a fresh
            // w via IN(v, 2q).
            let s_end = *deque.front().expect("non-empty");
            let w_new = self
                .pick_partner(&nested[2 * q], s_end, true, &used_w)
                .ok_or_else(|| {
                    DensityError::Construction(format!("no final W₀ extension for {s_end}"))
                })?;
            used_w.insert(w_new);
            deque.push_front(w_new);
        }
        // Normalize: P runs from its W₀ end to its S end.
        let mut p: Vec<NodeId> = deque.into();
        if !self.input.w0_mask[p[0].index()] {
            p.reverse();
        }
        debug_assert_eq!(p.len(), 2 * (k - i));
        let w_end = p[0];
        let s_end = *p.last().expect("non-empty");
        debug_assert!(self.input.w0_mask[w_end.index()]);
        debug_assert!(self.input.s_mask[s_end.index()]);

        // ---- Claim 2, path P′: Lemma 5 walk for the edge of P at w. ----
        let e_w = *self
            .edge_ids
            .get(&(p[1], w_end))
            .ok_or_else(|| DensityError::Construction("P edge at w missing".into()))?;
        let p_prime = self.lemma5_path(v, e_w)?; // [w, v'_1, ..., v'_{i-1}, v]
        debug_assert_eq!(p_prime[0], w_end);

        // ---- Claim 2, path P″: an IN(v)[s] edge avoiding P and all
        // OUT(v'_j). ----
        let p_w0: HashSet<NodeId> = p
            .iter()
            .copied()
            .filter(|u| self.input.w0_mask[u.index()])
            .collect();
        let avoid_out: Vec<&Vec<u32>> = p_prime[1..p_prime.len() - 1]
            .iter()
            .map(|u| &self.out_sets[u.index()])
            .collect();
        let e2 = self.in_sets[v.index()]
            .iter()
            .copied()
            .find(|&e| {
                let (s, w) = self.edge(e);
                s == s_end
                    && !p_w0.contains(&w)
                    && !avoid_out.iter().any(|o| o.binary_search(&e).is_ok())
            })
            .ok_or_else(|| {
                DensityError::Construction(format!("no admissible IN(v)[{s_end}] edge"))
            })?;
        let p_second = self.lemma5_path(v, e2)?; // [w″, v″_1, ..., v]
        let (_, w2) = self.edge(e2);
        debug_assert_eq!(p_second[0], w2);

        // ---- Assemble: v, P′ reversed (v'_{i-1}..v'_1, w), P (w→s),
        // then s, w″, v″_1, ..., v″_{i-1}, back to v. ----
        let mut cycle: Vec<NodeId> = vec![v];
        for &u in p_prime[1..p_prime.len() - 1].iter().rev() {
            cycle.push(u);
        }
        cycle.extend_from_slice(&p); // w .. s
        for &u in &p_second[..p_second.len() - 1] {
            cycle.push(u); // w″, v″_1, ..., v″_{i-1}
        }
        let witness = CycleWitness::new(cycle);
        if witness.len() != 2 * k || !witness.is_valid(self.g) {
            return Err(DensityError::Construction(format!(
                "assembled object is not a valid 2k-cycle: {witness:?}"
            )));
        }
        if !witness.nodes().iter().any(|u| self.input.s_mask[u.index()]) {
            return Err(DensityError::Construction(
                "assembled cycle avoids S".into(),
            ));
        }
        Ok(witness)
    }

    /// Picks, within an edge set, a partner of `anchor` on the other side
    /// (`want_w`: pick the `w` endpoint of an edge whose `s` is `anchor`,
    /// or vice versa) avoiding `used`.
    fn pick_partner(
        &self,
        edge_set: &[u32],
        anchor: NodeId,
        want_w: bool,
        used: &HashSet<NodeId>,
    ) -> Option<NodeId> {
        for &e in edge_set {
            let (s, w) = self.edge(e);
            if want_w && s == anchor && !used.contains(&w) {
                return Some(w);
            }
            if !want_w && w == anchor && !used.contains(&s) {
                return Some(s);
            }
        }
        None
    }

    /// Lemma 5: for `e ∈ IN(v)` with `v ∈ V_i`, the path
    /// `(w, v_1, …, v_{i-1}, v)` with `e ∈ OUT(v_j)` for every `j`.
    fn lemma5_path(&self, v: NodeId, e: u32) -> Result<Vec<NodeId>, DensityError> {
        let i = self.input.layer[v.index()].expect("layered") as usize;
        let (_, w) = self.edge(e);
        let mut chain = vec![v];
        let mut cur = v;
        for j in (1..i).rev() {
            let next = self
                .g
                .neighbors(cur)
                .iter()
                .copied()
                .find(|u| {
                    self.input.layer[u.index()] == Some(j as u8)
                        && self.out_sets[u.index()].binary_search(&e).is_ok()
                })
                .ok_or_else(|| {
                    DensityError::Construction(format!(
                        "Lemma 5 walk stuck at layer {j} below {cur}"
                    ))
                })?;
            chain.push(next);
            cur = next;
        }
        // cur ∈ V_1 (or cur = v when i = 1): w must be adjacent.
        if !self.g.has_edge(cur, w) {
            return Err(DensityError::Construction(format!(
                "Lemma 5 terminal {cur} not adjacent to {w}"
            )));
        }
        chain.push(w);
        chain.reverse();
        Ok(chain)
    }

    /// Computes `OUT`/`IN`/nested sets bottom-up (Eqs. 3–8).
    fn compute(&mut self) {
        let k = self.input.k;
        let n = self.g.node_count();
        // Layer 0 = W₀: OUT(w) = E({w}, S).
        for e in 0..self.edges.len() as u32 {
            let (_, w) = self.edges[e as usize];
            self.out_sets[w.index()].push(e);
        }
        for v in 0..n {
            self.out_sets[v].sort_unstable();
        }

        for i in 1..k {
            // Gather V_i.
            let members: Vec<NodeId> = self
                .g
                .nodes()
                .filter(|v| self.input.layer[v.index()] == Some(i as u8))
                .collect();
            for &v in &members {
                // Eq. 4: IN(v) = ⋃ OUT(v') over (i-1)-layer neighbors
                // (W₀ neighbors when i = 1).
                let mut acc: Vec<u32> = Vec::new();
                for &u in self.g.neighbors(v) {
                    let is_prev = if i == 1 {
                        self.input.w0_mask[u.index()]
                    } else {
                        self.input.layer[u.index()] == Some((i - 1) as u8)
                    };
                    if is_prev {
                        acc.extend_from_slice(&self.out_sets[u.index()]);
                    }
                }
                acc.sort_unstable();
                acc.dedup();
                self.in_sets[v.index()] = acc;

                // Eqs. 5–7: the nested sequence.
                let q = (k - i) / 2;
                let in_v = &self.in_sets[v.index()];
                let top_threshold = 2f64.powi(i as i32 - 1) as u64 * (k as u64 - 1);
                let mut seq: Vec<Vec<u32>> = vec![Vec::new(); 2 * q + 1];
                seq[2 * q] = self.filter_by_degree(in_v, in_v, true, top_threshold);
                let mut gamma = q;
                while gamma >= 1 {
                    let from = seq[2 * gamma].clone();
                    seq[2 * gamma - 1] =
                        self.filter_by_degree(&from, &from, false, 2 * gamma as u64);
                    let mid = seq[2 * gamma - 1].clone();
                    seq[2 * gamma - 2] =
                        self.filter_by_degree(&mid, &mid, true, 2 * gamma as u64 - 1);
                    gamma -= 1;
                }
                self.nested[v.index()] = seq;

                // Eq. 8: OUT(v) = edges dropped by the s-degree filters.
                let nested = &self.nested[v.index()];
                let mut out: Vec<u32> = set_difference(in_v, &nested[2 * q]);
                for g2 in 1..=q {
                    out.extend(set_difference(&nested[2 * g2 - 1], &nested[2 * g2 - 2]));
                }
                out.sort_unstable();
                out.dedup();
                self.out_sets[v.index()] = out;
            }
        }
    }

    /// Keeps the edges of `subset` whose `s`-endpoint (if `by_s`) or
    /// `w`-endpoint has degree strictly greater than `threshold` within
    /// `degree_universe`.
    fn filter_by_degree(
        &self,
        subset: &[u32],
        degree_universe: &[u32],
        by_s: bool,
        threshold: u64,
    ) -> Vec<u32> {
        let mut deg: HashMap<NodeId, u64> = HashMap::new();
        for &e in degree_universe {
            let (s, w) = self.edge(e);
            *deg.entry(if by_s { s } else { w }).or_insert(0) += 1;
        }
        subset
            .iter()
            .copied()
            .filter(|&e| {
                let (s, w) = self.edge(e);
                deg.get(&if by_s { s } else { w }).copied().unwrap_or(0) > threshold
            })
            .collect()
    }
}

/// Sorted-set difference `a ∖ b`.
fn set_difference(a: &[u32], b: &[u32]) -> Vec<u32> {
    a.iter()
        .copied()
        .filter(|e| b.binary_search(e).is_err())
        .collect()
}

/// Builds a synthetic instance that triggers the Lemma 6 construction at
/// layer `i` exactly.
///
/// Structure: `S` of size `sigma ≥ k²` completely joined to a `W₀` of
/// size `(k-1)·hubs_top·2^{i-2}` (for `i ≥ 2`; `(k-1)·hubs_top` for
/// `i = 1`); `W₀` is partitioned into groups of size `k-1`, each hanging
/// off one `V_1` hub; hubs pair up in a binary tree through layers
/// `2, …, i-1`; a single apex vertex in `V_i` sees the whole top layer.
///
/// The sizes are tuned to the filter thresholds of Eqs. 5–7: a hub at
/// layer `j < i` accumulates `s`-degrees of exactly `2^{j-1}(k-1)` in its
/// `IN` set — *equal* to the layer-`j` threshold, so the top filter drops
/// everything (`IN(·, 2q) = ∅`, all edges fall into `OUT`), while the
/// apex accumulates `s`-degrees of `hubs_top·2^{i-2}·(k-1) >
/// 2^{i-1}(k-1)` (for `hubs_top ≥ 3`), so its `IN(v, 0)` is non-empty
/// and Lemma 6 fires there — and nowhere below.
///
/// Returns `(graph, input, apex)`.
///
/// # Panics
///
/// Panics unless `k ≥ 2`, `1 ≤ i < k`, `sigma ≥ k²`, and `hubs_top ≥ 3`.
pub fn layered_density_instance(
    k: usize,
    i: usize,
    sigma: usize,
    hubs_top: usize,
) -> (Graph, DensityInput, NodeId) {
    assert!(k >= 2 && i >= 1 && i < k, "need 1 ≤ i < k and k ≥ 2");
    assert!(sigma >= k * k, "need σ ≥ k² for the W₀ premise");
    assert!(hubs_top >= 3, "need ≥ 3 top hubs to clear the threshold");
    // Hub counts per layer j = 1..=i-1: hubs_top · 2^{i-1-j}.
    let hub_counts: Vec<usize> = (1..i).map(|j| hubs_top << (i - 1 - j)).collect();
    let groups = if i == 1 { hubs_top } else { hub_counts[0] };
    let omega = (k - 1) * groups;
    let total_hubs: usize = hub_counts.iter().sum();
    let n = sigma + omega + total_hubs + 1; // +1 apex
    let mut b = congest_graph::GraphBuilder::new(n);
    let s_id = |s: usize| NodeId::new(s as u32);
    let w_id = |w: usize| NodeId::new((sigma + w) as u32);
    // Hub layout: layer-1 hubs first, then layer 2, ...
    let mut hub_base = vec![0usize; i + 1];
    for j in 2..i {
        hub_base[j] = hub_base[j - 1] + hub_counts[j - 2];
    }
    let hub_id = |j: usize, m: usize| NodeId::new((sigma + omega + hub_base[j] + m) as u32);
    let apex = NodeId::new((n - 1) as u32);

    // Complete join S × W₀.
    for w in 0..omega {
        for s in 0..sigma {
            b.add_edge(s_id(s), w_id(w));
        }
    }
    if i == 1 {
        // Apex is the single V_1 vertex over all of W₀.
        for w in 0..omega {
            b.add_edge(apex, w_id(w));
        }
    } else {
        // Layer-1 hubs over their (k-1)-groups.
        for m in 0..hub_counts[0] {
            for t in 0..(k - 1) {
                b.add_edge(hub_id(1, m), w_id(m * (k - 1) + t));
            }
        }
        // Binary pairing up the tree.
        for j in 2..i {
            for m in 0..hub_counts[j - 1] {
                b.add_edge(hub_id(j, m), hub_id(j - 1, 2 * m));
                b.add_edge(hub_id(j, m), hub_id(j - 1, 2 * m + 1));
            }
        }
        // Apex sees the whole top hub layer.
        for m in 0..hub_counts[i - 2] {
            b.add_edge(apex, hub_id(i - 1, m));
        }
    }
    let g = b.build();
    let mut s_mask = vec![false; n];
    let mut w0_mask = vec![false; n];
    let mut layer = vec![None; n];
    s_mask[..sigma].fill(true);
    for w in 0..omega {
        w0_mask[sigma + w] = true;
    }
    for j in 1..i {
        for m in 0..hub_counts[j - 1] {
            layer[hub_id(j, m).index()] = Some(j as u8);
        }
    }
    layer[apex.index()] = Some(i as u8);
    (
        g,
        DensityInput {
            k,
            s_mask,
            w0_mask,
            layer,
        },
        apex,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_inputs_rejected() {
        let g = congest_graph::generators::complete(6);
        // Overlapping sets.
        let input = DensityInput {
            k: 2,
            s_mask: vec![true, false, false, false, false, false],
            w0_mask: vec![true, false, false, false, false, false],
            layer: vec![None; 6],
        };
        assert!(matches!(
            Sparsification::new(&g, input),
            Err(DensityError::InvalidInput(_))
        ));
        // W₀ vertex without k² S-neighbors.
        let input = DensityInput {
            k: 2,
            s_mask: vec![true, false, false, false, false, false],
            w0_mask: vec![false, true, false, false, false, false],
            layer: vec![None; 6],
        };
        assert!(matches!(
            Sparsification::new(&g, input),
            Err(DensityError::InvalidInput(_))
        ));
    }

    #[test]
    fn dense_instance_triggers_cycle_k2() {
        let (g, input, apex) = layered_density_instance(2, 1, 6, 4);
        let sp = Sparsification::new(&g, input).unwrap();
        assert_eq!(sp.nonempty_in0(), vec![apex], "apex is the only trigger");
        let w = sp.construct_cycle(apex).expect("construction succeeds");
        assert_eq!(w.len(), 4);
        assert!(w.is_valid(&g));
    }

    #[test]
    fn dense_instance_triggers_cycle_various_k_i() {
        for (k, i) in [(3usize, 1usize), (3, 2), (4, 2), (4, 3), (5, 2), (5, 4)] {
            let sigma = k * k + 4;
            let (g, input, apex) = layered_density_instance(k, i, sigma, 4);
            let sp = Sparsification::new(&g, input).unwrap();
            assert_eq!(
                sp.nonempty_in0(),
                vec![apex],
                "trigger must be exactly the apex (k={k}, i={i})"
            );
            match sp.verdict().expect("no construction error") {
                DensityVerdict::CycleFound(w) => {
                    assert_eq!(w.len(), 2 * k, "k={k}, i={i}");
                    assert!(w.is_valid(&g), "k={k}, i={i}");
                }
                DensityVerdict::BoundHolds { .. } => {
                    panic!("expected a cycle for k={k}, i={i} (dense instance)")
                }
            }
        }
    }

    #[test]
    fn figure1_scenario_k5_i2() {
        // The Figure 1 setting: k = 5, v ∈ V_2, q = 1,
        // IN(v,0) ⊆ IN(v,1) ⊆ IN(v,2) ⊆ IN(v).
        let k = 5;
        let sigma = 30;
        let (g, input, apex) = layered_density_instance(k, 2, sigma, 4);
        let sp = Sparsification::new(&g, input).unwrap();
        assert_eq!(sp.q_of(apex), Some(1));
        assert_eq!(sp.nested_sets(apex).len(), 3); // IN(v,0), IN(v,1), IN(v,2)
                                                   // Nesting is monotone.
        let sets = sp.nested_sets(apex);
        for g2 in 0..sets.len() - 1 {
            for e in &sets[g2] {
                assert!(
                    sets[g2 + 1].binary_search(e).is_ok(),
                    "IN(v,{g2}) ⊄ IN(v,{})",
                    g2 + 1
                );
            }
        }
        let w = sp.construct_cycle(apex).expect("Figure 1 cycle");
        assert_eq!(w.len(), 10);
        assert!(w.is_valid(&g));
        // The cycle meets S.
        assert!(w.nodes().iter().any(|u| u.index() < sigma));
    }

    #[test]
    fn sparse_instance_bound_holds() {
        // A thin instance: one V_1 vertex over a (k-1)-sized W₀ — the
        // top filter drops everything, no trigger, Lemma 7 bound holds.
        let k = 3;
        let sigma = k * k;
        let omega = k - 1;
        let n = sigma + omega + 1;
        let mut b = congest_graph::GraphBuilder::new(n);
        for w in 0..omega as u32 {
            for s in 0..sigma as u32 {
                b.add_edge(NodeId::new(s), NodeId::new(sigma as u32 + w));
            }
            b.add_edge(NodeId::new(sigma as u32 + w), NodeId::new((n - 1) as u32));
        }
        let g = b.build();
        let mut s_mask = vec![false; n];
        let mut w0_mask = vec![false; n];
        let mut layer = vec![None; n];
        s_mask[..sigma].fill(true);
        w0_mask[sigma..sigma + omega].fill(true);
        layer[n - 1] = Some(1);
        let sp = Sparsification::new(
            &g,
            DensityInput {
                k,
                s_mask,
                w0_mask,
                layer,
            },
        )
        .unwrap();
        match sp.verdict().unwrap() {
            DensityVerdict::BoundHolds { max_ratio } => {
                assert!(max_ratio <= 1.0);
                assert!(max_ratio > 0.0);
            }
            DensityVerdict::CycleFound(_) => panic!("no trigger expected"),
        }
    }

    #[test]
    fn out_sets_of_w0_are_incident_edges() {
        let (g, input, _) = layered_density_instance(2, 1, 5, 4);
        let sp = Sparsification::new(&g, input.clone()).unwrap();
        for w in g.nodes().filter(|w| input.w0_mask[w.index()]) {
            let out = sp.out_set(w);
            assert_eq!(out.len(), 5, "complete join to S");
            for &e in out {
                assert_eq!(sp.edge(e).1, w);
            }
        }
    }

    #[test]
    fn in_set_is_union_of_out_sets() {
        let (g, input, apex) = layered_density_instance(3, 1, 10, 4);
        let sp = Sparsification::new(&g, input.clone()).unwrap();
        // apex ∈ V_1 adjacent to all W₀: IN = all edges.
        assert_eq!(sp.in_set(apex).len(), sp.edge_count());
        let _ = g;
    }

    #[test]
    fn w0_reachable_counts() {
        let (g, input, apex) = layered_density_instance(3, 2, 10, 4);
        let sp = Sparsification::new(&g, input.clone()).unwrap();
        // The apex (V_2) reaches all of W₀ through the V_1 hubs.
        let omega = input.w0_mask.iter().filter(|&&b| b).count();
        assert_eq!(sp.w0_reachable(apex).len(), omega);
        let _ = g;
    }

    #[test]
    fn fact5_out_degree_bound() {
        // Fact 5: deg_{OUT(v)}(s) ≤ 2^{i-1}(k-1) for layered v.
        for (k, i) in [(3usize, 1usize), (4, 2), (5, 2)] {
            let sigma = k * k + 3;
            let (g, input, _) = layered_density_instance(k, i, sigma, 4);
            let sp = Sparsification::new(&g, input.clone()).unwrap();
            for v in g.nodes().filter(|v| input.layer[v.index()].is_some()) {
                let iv = input.layer[v.index()].unwrap() as i32;
                let bound = 2f64.powi(iv - 1) as usize * (k - 1);
                let mut deg: HashMap<NodeId, usize> = HashMap::new();
                for &e in sp.out_set(v) {
                    *deg.entry(sp.edge(e).0).or_insert(0) += 1;
                }
                for (&s, &d) in &deg {
                    assert!(
                        d <= bound,
                        "Fact 5 violated at v={v}, s={s}: {d} > {bound} (k={k}, i={i})"
                    );
                }
            }
        }
    }
}
