//! The quantum `C_{2k}`-freeness detector (Theorem 2 / Lemma 13).
//!
//! Pipeline: (1) reduce the success probability and congestion with the
//! Lemma 12 detector (`k^{O(k)}` rounds, success `1/(3τ)`); (2) amplify
//! quadratically with distributed quantum Monte-Carlo amplification
//! (Theorem 3); (3) remove the diameter dependence with the Lemma 9
//! network decomposition, running the amplified detector on each
//! diameter-`O(k log n)` component. Total:
//! `k^{O(k)}·polylog(n)·n^{1/2-1/2k}` rounds, one-sided error
//! `1/poly(n)`.

use congest_graph::{CycleWitness, Graph};
use congest_quantum::decomposition::{decompose, reduced_components};
use congest_quantum::{GroverMode, MonteCarloAmplifier, WithSuccess};
use congest_sim::derive_seed;

use crate::params::Params;
use crate::randomized::LowProbDetector;

/// The result of the quantum pipeline.
#[derive(Debug, Clone)]
pub struct QuantumOutcome {
    /// Whether a `C_{2k}` was found (one-sided: never true on a
    /// `C_{2k}`-free graph).
    pub rejected: bool,
    /// The verified witness, mapped back to the input graph's ids.
    pub witness: Option<CycleWitness>,
    /// Total quantum rounds charged: decomposition + per-color maxima of
    /// the amplified runs (components of one color run in parallel;
    /// colors run sequentially, per Lemma 9).
    pub quantum_rounds: u64,
    /// What classical amplification of the same low-probability detector
    /// would cost, summed the same way — the quadratic-speedup
    /// comparison.
    pub classical_rounds: u64,
    /// Rounds charged for the network decomposition (Lemma 10).
    pub decomposition_rounds: u64,
    /// Total Grover iterations over all components.
    pub iterations: u64,
    /// Number of diameter-reduced components processed.
    pub components: usize,
    /// Number of cluster colors in the decomposition.
    pub colors: u32,
    /// Classical base-detector runs spent by the simulator (not part of
    /// the quantum cost model).
    pub classical_evals: u64,
}

/// Theorem 2's quantum `C_{2k}`-freeness algorithm.
///
/// ```
/// use congest_graph::generators;
/// use even_cycle::{Params, QuantumCycleDetector};
///
/// let host = generators::random_tree(32, 5);
/// let (g, _) = generators::plant_cycle(&host, 4, 5);
/// let det = QuantumCycleDetector::new(Params::practical(2).with_repetitions(24), 0.1)
///     .with_declared_success(1.0 / 256.0);
/// let outcome = det.run(&g, 3);
/// assert!(outcome.rejected);
/// assert!(outcome.witness.unwrap().is_valid(&g));
/// ```
#[derive(Debug, Clone)]
pub struct QuantumCycleDetector {
    params: Params,
    delta: f64,
    mode: GroverMode,
    declared_success: Option<f64>,
}

impl QuantumCycleDetector {
    /// Creates the detector: `params` configure the underlying Lemma 12
    /// detector, `delta` is the target one-sided error (the paper takes
    /// `1/poly(n)`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < δ < 1`.
    pub fn new(params: Params, delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "δ must be in (0,1)");
        QuantumCycleDetector {
            params,
            delta,
            mode: GroverMode::Analytic,
            declared_success: None,
        }
    }

    /// Selects the Grover simulation mode (default
    /// [`GroverMode::Analytic`]; use [`GroverMode::Sampled`] for large
    /// seed spaces).
    pub fn with_mode(mut self, mode: GroverMode) -> Self {
        self.mode = mode;
        self
    }

    /// Declares a tighter (but still valid) success probability for the
    /// base detector than the pessimistic Lemma 12 bound `1/(3τ)`,
    /// shrinking the amplifier's seed space. See
    /// [`congest_quantum::WithSuccess`]; one-sidedness is unaffected.
    pub fn with_declared_success(mut self, eps: f64) -> Self {
        assert!(eps > 0.0 && eps <= 1.0, "ε must be in (0,1]");
        self.declared_success = Some(eps);
        self
    }

    /// Runs the full pipeline on `g`.
    pub fn run(&self, g: &Graph, seed: u64) -> QuantumOutcome {
        let k = self.params.k;
        // Lemma 9 uses the decomposition with separation parameter
        // 2k + 1 and enlargement radius k.
        let decomposition = decompose(g, 2 * k as u32 + 1, derive_seed(seed, 0xDEC));
        let components = reduced_components(g, &decomposition, k as u32);

        let mut per_color_quantum: std::collections::BTreeMap<u32, u64> =
            std::collections::BTreeMap::new();
        let mut per_color_classical: std::collections::BTreeMap<u32, u64> =
            std::collections::BTreeMap::new();
        let mut iterations = 0u64;
        let mut classical_evals = 0u64;
        let mut rejected = false;
        let mut witness: Option<CycleWitness> = None;

        for (ci, comp) in components.iter().enumerate() {
            if comp.graph.node_count() < 2 * k {
                continue; // cannot contain a 2k-cycle
            }
            let detector = LowProbDetector::new(self.params.clone());
            let base = detector.as_monte_carlo(&comp.graph);
            let declared = self
                .declared_success
                .unwrap_or_else(|| detector.success_probability(comp.graph.node_count()));
            let mc = WithSuccess::new(base, declared);
            let diameter = congest_graph::analysis::diameter(&comp.graph)
                .expect("components are connected") as u64;
            let amplifier = MonteCarloAmplifier::new(self.delta)
                .with_diameter(diameter)
                .with_mode(self.mode);
            let report = amplifier.amplify(&mc, derive_seed(seed, 0xA0_00 + ci as u64));
            iterations += report.iterations;
            classical_evals += report.classical_evals;
            let qc = per_color_quantum.entry(comp.color).or_insert(0);
            *qc = (*qc).max(report.quantum_rounds);
            let cc = per_color_classical.entry(comp.color).or_insert(0);
            *cc = (*cc).max(report.classical_rounds_baseline);

            if report.rejected && !rejected {
                rejected = true;
                // Re-run the base detector with the witness seed and map
                // the witness back to the original ids.
                let ws = report.witness_seed.expect("rejected implies witness seed");
                let local = detector.run(&comp.graph, ws);
                let local_witness = local
                    .witness
                    .expect("witness seed reproduces the rejection");
                let mapped = CycleWitness::new(
                    local_witness
                        .nodes()
                        .iter()
                        .map(|v| comp.original_ids[v.index()])
                        .collect(),
                );
                assert!(mapped.is_valid(g), "mapped witness must stay valid");
                witness = Some(mapped);
            }
        }

        QuantumOutcome {
            rejected,
            witness,
            quantum_rounds: decomposition.round_cost
                + per_color_quantum.values().sum::<u64>(),
            classical_rounds: decomposition.round_cost
                + per_color_classical.values().sum::<u64>(),
            decomposition_rounds: decomposition.round_cost,
            iterations,
            components: components.len(),
            colors: decomposition.colors,
            classical_evals,
        }
    }
}

/// Theorem 2's quantum `C_{2k+1}`-freeness algorithm (§3.4): the
/// constant-round odd-cycle detector with success `Ω(1/n)`, amplified by
/// Theorem 3 over the Lemma 9 components — `Õ(√n)` rounds, which the
/// paper proves optimal for `k ≥ 2`.
#[derive(Debug, Clone)]
pub struct QuantumOddCycleDetector {
    k: usize,
    repetitions: usize,
    delta: f64,
    mode: GroverMode,
    declared_success: Option<f64>,
}

impl QuantumOddCycleDetector {
    /// Creates the detector for `C_{2k+1}` (`k ≥ 1`); `repetitions`
    /// configures the base detector (see
    /// [`crate::OddCycleDetector::new`]).
    ///
    /// # Panics
    ///
    /// Panics unless `k ≥ 1`, `repetitions ≥ 1` and `0 < δ < 1`.
    pub fn new(k: usize, repetitions: usize, delta: f64) -> Self {
        assert!(k >= 1, "odd cycles start at C3");
        assert!(repetitions >= 1, "at least one repetition");
        assert!(delta > 0.0 && delta < 1.0, "δ must be in (0,1)");
        QuantumOddCycleDetector {
            k,
            repetitions,
            delta,
            mode: GroverMode::Analytic,
            declared_success: None,
        }
    }

    /// Selects the Grover simulation mode.
    pub fn with_mode(mut self, mode: GroverMode) -> Self {
        self.mode = mode;
        self
    }

    /// Declares a tighter success probability than the §3.4 bound
    /// (seed-space sizing only; one-sidedness unaffected).
    pub fn with_declared_success(mut self, eps: f64) -> Self {
        assert!(eps > 0.0 && eps <= 1.0, "ε must be in (0,1]");
        self.declared_success = Some(eps);
        self
    }

    /// Runs the full pipeline on `g`.
    pub fn run(&self, g: &Graph, seed: u64) -> QuantumOutcome {
        let k = self.k;
        let l = 2 * k + 1;
        let decomposition = decompose(g, l as u32 + 1, derive_seed(seed, 0x0DDD));
        // Radius k+1 covers any C_{2k+1} around any of its vertices.
        let components = reduced_components(g, &decomposition, k as u32 + 1);

        let mut per_color_quantum: std::collections::BTreeMap<u32, u64> =
            std::collections::BTreeMap::new();
        let mut per_color_classical: std::collections::BTreeMap<u32, u64> =
            std::collections::BTreeMap::new();
        let mut iterations = 0u64;
        let mut classical_evals = 0u64;
        let mut rejected = false;
        let mut witness: Option<CycleWitness> = None;

        for (ci, comp) in components.iter().enumerate() {
            if comp.graph.node_count() < l {
                continue;
            }
            let detector = crate::OddCycleDetector::new(k, self.repetitions);
            let base = detector.as_monte_carlo(&comp.graph);
            let declared = self
                .declared_success
                .unwrap_or_else(|| detector.success_probability(comp.graph.node_count()));
            let mc = WithSuccess::new(base, declared);
            let diameter = congest_graph::analysis::diameter(&comp.graph)
                .expect("components are connected") as u64;
            let amplifier = MonteCarloAmplifier::new(self.delta)
                .with_diameter(diameter)
                .with_mode(self.mode);
            let report = amplifier.amplify(&mc, derive_seed(seed, 0x0D_00 + ci as u64));
            iterations += report.iterations;
            classical_evals += report.classical_evals;
            let qc = per_color_quantum.entry(comp.color).or_insert(0);
            *qc = (*qc).max(report.quantum_rounds);
            let cc = per_color_classical.entry(comp.color).or_insert(0);
            *cc = (*cc).max(report.classical_rounds_baseline);

            if report.rejected && !rejected {
                rejected = true;
                let ws = report.witness_seed.expect("rejected implies witness seed");
                let local = detector.run(&comp.graph, ws);
                let local_witness = local
                    .witness
                    .expect("witness seed reproduces the rejection");
                let mapped = CycleWitness::new(
                    local_witness
                        .nodes()
                        .iter()
                        .map(|v| comp.original_ids[v.index()])
                        .collect(),
                );
                assert!(mapped.is_valid(g), "mapped witness must stay valid");
                witness = Some(mapped);
            }
        }

        QuantumOutcome {
            rejected,
            witness,
            quantum_rounds: decomposition.round_cost + per_color_quantum.values().sum::<u64>(),
            classical_rounds: decomposition.round_cost
                + per_color_classical.values().sum::<u64>(),
            decomposition_rounds: decomposition.round_cost,
            iterations,
            components: components.len(),
            colors: decomposition.colors,
            classical_evals,
        }
    }
}

/// The §3.5 quantum `{C_ℓ | 3 ≤ ℓ ≤ 2k}`-freeness algorithm: the
/// randomized (constant-congestion) `F_{2k}` detector amplified by
/// Theorem 3 over the Lemma 9 components — `Õ(n^{1/2-1/2k})` rounds,
/// improving van Apeldoorn–de Vos's `Õ(n^{1/2-1/(4k+2)})`.
#[derive(Debug, Clone)]
pub struct QuantumF2kDetector {
    k: usize,
    repetitions: usize,
    delta: f64,
    mode: GroverMode,
    declared_success: Option<f64>,
}

impl QuantumF2kDetector {
    /// Creates the detector for cycle lengths `3..=2k` (`k ≥ 2`).
    ///
    /// # Panics
    ///
    /// Panics unless `k ≥ 2`, `repetitions ≥ 1` and `0 < δ < 1`.
    pub fn new(k: usize, repetitions: usize, delta: f64) -> Self {
        assert!(k >= 2, "F_{{2k}} needs k ≥ 2");
        assert!(repetitions >= 1, "at least one repetition");
        assert!(delta > 0.0 && delta < 1.0, "δ must be in (0,1)");
        QuantumF2kDetector {
            k,
            repetitions,
            delta,
            mode: GroverMode::Analytic,
            declared_success: None,
        }
    }

    /// Selects the Grover simulation mode.
    pub fn with_mode(mut self, mode: GroverMode) -> Self {
        self.mode = mode;
        self
    }

    /// Declares a tighter success probability (seed-space sizing only).
    pub fn with_declared_success(mut self, eps: f64) -> Self {
        assert!(eps > 0.0 && eps <= 1.0, "ε must be in (0,1]");
        self.declared_success = Some(eps);
        self
    }

    /// Runs the full pipeline on `g`.
    pub fn run(&self, g: &Graph, seed: u64) -> QuantumOutcome {
        let k = self.k;
        let decomposition = decompose(g, 2 * k as u32 + 1, derive_seed(seed, 0xF2D));
        let components = reduced_components(g, &decomposition, k as u32);

        let mut per_color_quantum: std::collections::BTreeMap<u32, u64> =
            std::collections::BTreeMap::new();
        let mut per_color_classical: std::collections::BTreeMap<u32, u64> =
            std::collections::BTreeMap::new();
        let mut iterations = 0u64;
        let mut classical_evals = 0u64;
        let mut rejected = false;
        let mut witness: Option<CycleWitness> = None;

        for (ci, comp) in components.iter().enumerate() {
            if comp.graph.node_count() < 3 {
                continue; // cannot contain any cycle
            }
            let detector = crate::F2kDetector::new(k)
                .with_repetitions(self.repetitions)
                .randomized();
            let base = detector.as_monte_carlo(&comp.graph);
            let declared = self
                .declared_success
                .unwrap_or_else(|| detector.success_probability(comp.graph.node_count()));
            let mc = WithSuccess::new(base, declared);
            let diameter = congest_graph::analysis::diameter(&comp.graph)
                .expect("components are connected") as u64;
            let amplifier = MonteCarloAmplifier::new(self.delta)
                .with_diameter(diameter)
                .with_mode(self.mode);
            let report = amplifier.amplify(&mc, derive_seed(seed, 0xF2_00 + ci as u64));
            iterations += report.iterations;
            classical_evals += report.classical_evals;
            let qc = per_color_quantum.entry(comp.color).or_insert(0);
            *qc = (*qc).max(report.quantum_rounds);
            let cc = per_color_classical.entry(comp.color).or_insert(0);
            *cc = (*cc).max(report.classical_rounds_baseline);

            if report.rejected && !rejected {
                rejected = true;
                let ws = report.witness_seed.expect("rejected implies witness seed");
                let local = detector.run(&comp.graph, ws);
                let local_witness = local
                    .witness
                    .expect("witness seed reproduces the rejection");
                let mapped = CycleWitness::new(
                    local_witness
                        .nodes()
                        .iter()
                        .map(|v| comp.original_ids[v.index()])
                        .collect(),
                );
                assert!(mapped.is_valid(g), "mapped witness must stay valid");
                witness = Some(mapped);
            }
        }

        QuantumOutcome {
            rejected,
            witness,
            quantum_rounds: decomposition.round_cost + per_color_quantum.values().sum::<u64>(),
            classical_rounds: decomposition.round_cost
                + per_color_classical.values().sum::<u64>(),
            decomposition_rounds: decomposition.round_cost,
            iterations,
            components: components.len(),
            colors: decomposition.colors,
            classical_evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    /// Detection tests: analytic Grover over a compact seed space sized
    /// by an empirically-safe declared success probability.
    fn small_detector() -> QuantumCycleDetector {
        QuantumCycleDetector::new(Params::practical(2).with_repetitions(24), 0.1)
            .with_declared_success(1.0 / 256.0)
    }

    /// Soundness tests: the sampled mode is much cheaper and cannot
    /// break one-sidedness.
    fn sampled_detector() -> QuantumCycleDetector {
        QuantumCycleDetector::new(Params::practical(2).with_repetitions(12), 0.1)
            .with_mode(congest_quantum::GroverMode::Sampled { samples: 32 })
    }

    #[test]
    fn finds_planted_c4() {
        let host = generators::random_tree(32, 5);
        let (g, _) = generators::plant_cycle(&host, 4, 5);
        let outcome = small_detector().run(&g, 3);
        assert!(outcome.rejected);
        let w = outcome.witness.unwrap();
        assert_eq!(w.len(), 4);
        assert!(w.is_valid(&g));
        assert!(outcome.iterations > 0);
    }

    #[test]
    fn one_sided_on_trees() {
        let det = sampled_detector();
        for seed in 0..2 {
            let g = generators::random_tree(32, seed);
            let outcome = det.run(&g, seed);
            assert!(!outcome.rejected, "seed {seed}");
            assert!(outcome.witness.is_none());
        }
    }

    #[test]
    fn one_sided_on_polarity_graph() {
        let g = generators::polarity_graph(3);
        let outcome = sampled_detector().run(&g, 7);
        assert!(!outcome.rejected);
    }

    #[test]
    fn accounts_decomposition_and_components() {
        let host = generators::random_tree(40, 2);
        let (g, _) = generators::plant_cycle(&host, 4, 2);
        let outcome = small_detector().run(&g, 1);
        assert!(outcome.decomposition_rounds > 0);
        assert!(outcome.components >= 1);
        assert!(outcome.colors >= 1);
        assert!(outcome.quantum_rounds >= outcome.decomposition_rounds);
    }

    #[test]
    fn deterministic_by_seed() {
        let host = generators::random_tree(28, 4);
        let (g, _) = generators::plant_cycle(&host, 4, 4);
        let det = small_detector();
        let a = det.run(&g, 9);
        let b = det.run(&g, 9);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.quantum_rounds, b.quantum_rounds);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn quantum_odd_detects_c5() {
        // A C5 farm keeps the base success rate workable.
        let mut g = generators::cycle(5);
        for _ in 1..6 {
            g = generators::disjoint_union(&g, &generators::cycle(5));
        }
        let g = generators::disjoint_union(&g, &generators::path(10));
        let det = QuantumOddCycleDetector::new(2, 60, 0.1)
            .with_declared_success(1.0 / 64.0);
        let found = (0..4).any(|seed| {
            let o = det.run(&g, seed);
            if o.rejected {
                let w = o.witness.as_ref().unwrap();
                assert_eq!(w.len(), 5);
                assert!(w.is_valid(&g));
            }
            o.rejected
        });
        assert!(found, "quantum odd pipeline never found a C5");
    }

    #[test]
    fn quantum_odd_sound_on_bipartite() {
        let det = QuantumOddCycleDetector::new(2, 12, 0.1)
            .with_mode(congest_quantum::GroverMode::Sampled { samples: 16 });
        for seed in 0..2 {
            let g = generators::random_bipartite(16, 16, 0.15, seed);
            assert!(!det.run(&g, seed).rejected, "seed {seed}");
        }
    }

    #[test]
    fn quantum_f2k_detects_short_cycle() {
        // Plant a C4 in a tree; the quantum F2k pipeline (k = 2: lengths
        // 3..4) must find it with the declared-success shortcut.
        let host = generators::random_tree(36, 6);
        let (g, _) = generators::plant_cycle(&host, 4, 6);
        let det = QuantumF2kDetector::new(2, 40, 0.1).with_declared_success(1.0 / 128.0);
        let found = (0..4).any(|seed| {
            let o = det.run(&g, seed);
            if o.rejected {
                let w = o.witness.as_ref().unwrap();
                assert!(w.len() == 3 || w.len() == 4);
                assert!(w.is_valid(&g));
            }
            o.rejected
        });
        assert!(found, "quantum F2k pipeline never found the planted C4");
    }

    #[test]
    fn quantum_f2k_sound_on_high_girth() {
        // Girth > 6 input for k = 3 (lengths 3..6): must always accept.
        let det = QuantumF2kDetector::new(3, 12, 0.1)
            .with_mode(congest_quantum::GroverMode::Sampled { samples: 16 });
        for seed in 0..2 {
            let g = generators::high_girth(48, 6, 8, seed);
            assert!(!det.run(&g, seed).rejected, "seed {seed}");
        }
    }
}
