//! The quantum `C_{2k}`-freeness detector (Theorem 2 / Lemma 13) and its
//! odd-cycle / `F_{2k}` siblings.
//!
//! Pipeline (shared by all three, factored into [`run_pipeline`]):
//! (1) reduce the success probability and congestion with a
//! constant-congestion classical base detector; (2) amplify
//! quadratically with distributed quantum Monte-Carlo amplification
//! (Theorem 3); (3) remove the diameter dependence with the Lemma 9
//! network decomposition, running the amplified detector on each
//! diameter-`O(k log n)` component. Totals:
//! `k^{O(k)}·polylog(n)·n^{1/2-1/2k}` rounds for `C_{2k}` and `F_{2k}`,
//! `Õ(√n)` for `C_{2k+1}`, all with one-sided error.

use congest_graph::{CycleWitness, Graph};
use congest_quantum::decomposition::{decompose, reduced_components};
use congest_quantum::{GroverMode, McOutcome, MonteCarloAlgorithm, MonteCarloAmplifier};
use congest_sim::{derive_seed, Backend};

use crate::params::Params;
use crate::randomized::LowProbDetector;
use crate::{Budget, Descriptor, DetectResult, Detection, Detector, RunCost, Verdict};

/// The result of the quantum pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantumOutcome {
    /// Whether a target cycle was found (one-sided: never true on a
    /// target-free graph).
    pub rejected: bool,
    /// The verified witness, mapped back to the input graph's ids.
    pub witness: Option<CycleWitness>,
    /// Total quantum rounds charged: decomposition + per-color maxima of
    /// the amplified runs (components of one color run in parallel;
    /// colors run sequentially, per Lemma 9).
    pub quantum_rounds: u64,
    /// What classical amplification of the same low-probability detector
    /// would cost, summed the same way — the quadratic-speedup
    /// comparison.
    pub classical_rounds: u64,
    /// Rounds charged for the network decomposition (Lemma 10).
    pub decomposition_rounds: u64,
    /// Total Grover iterations over all components.
    pub iterations: u64,
    /// Number of diameter-reduced components processed.
    pub components: usize,
    /// Number of cluster colors in the decomposition.
    pub colors: u32,
    /// Classical base-detector runs spent by the simulator (not part of
    /// the quantum cost model).
    pub classical_evals: u64,
    /// Whether the component loop was aborted by a
    /// [`Budget`](crate::Budget) round cap (the decision is then
    /// untrusted; components after the abort were never amplified).
    pub budget_exceeded: bool,
}

impl QuantumOutcome {
    /// Converts into the unified [`Detection`] surface: `rounds` are the
    /// pipeline's quantum rounds, `iterations` the Grover iterations.
    /// Message/word/congestion statistics are not part of the quantum
    /// cost model and report 0.
    pub fn into_detection(self, algorithm: Descriptor) -> Detection {
        let cycle_length = self.witness.as_ref().map(|w| w.len());
        let verdict = if self.rejected {
            Verdict::Reject {
                witness: self.witness,
                cycle_length,
            }
        } else if self.budget_exceeded {
            Verdict::BudgetExceeded {
                rounds: self.quantum_rounds,
                messages: 0,
            }
        } else {
            Verdict::Accept
        };
        Detection {
            algorithm,
            verdict,
            cost: RunCost {
                rounds: self.quantum_rounds,
                supersteps: 0,
                messages: 0,
                words: 0,
                max_congestion: 0,
                iterations: self.iterations,
            },
        }
    }
}

/// A constant-congestion classical base detector the quantum pipeline
/// can amplify over a decomposition component.
trait PipelineBase {
    /// One run on `g`: `(rejected, rounds)` at the given bandwidth and
    /// simulation backend.
    fn run_once(&self, g: &Graph, seed: u64, bandwidth: u64, backend: Backend) -> (bool, u64);

    /// Re-runs the witness seed and extracts the certified cycle.
    fn witness_of(&self, g: &Graph, seed: u64, backend: Backend) -> Option<CycleWitness>;

    /// Round upper bound of one run at the given bandwidth.
    fn round_bound(&self, g: &Graph, bandwidth: u64) -> u64;

    /// The declared one-sided success probability on an `n`-vertex
    /// component.
    fn default_success(&self, n: usize) -> f64;
}

impl PipelineBase for LowProbDetector {
    fn run_once(&self, g: &Graph, seed: u64, bandwidth: u64, backend: Backend) -> (bool, u64) {
        let opts = crate::RunOptions {
            bandwidth,
            backend,
            ..Default::default()
        };
        let o = self.run_with(g, seed, &opts);
        (o.rejected(), o.report.rounds)
    }

    fn witness_of(&self, g: &Graph, seed: u64, backend: Backend) -> Option<CycleWitness> {
        let opts = crate::RunOptions {
            backend,
            ..Default::default()
        };
        self.run_with(g, seed, &opts).witness
    }

    fn round_bound(&self, g: &Graph, bandwidth: u64) -> u64 {
        self.round_bound_bw(g.node_count(), bandwidth)
    }

    fn default_success(&self, n: usize) -> f64 {
        self.success_probability(n)
    }
}

impl PipelineBase for crate::OddCycleDetector {
    fn run_once(&self, g: &Graph, seed: u64, bandwidth: u64, backend: Backend) -> (bool, u64) {
        let o = self.run_on_backend(g, seed, bandwidth, backend);
        (o.rejected(), o.report.rounds)
    }

    fn witness_of(&self, g: &Graph, seed: u64, backend: Backend) -> Option<CycleWitness> {
        self.run_on_backend(g, seed, 1, backend).witness
    }

    fn round_bound(&self, _g: &Graph, _bandwidth: u64) -> u64 {
        // Constant threshold 4; the B = 1 bound stays valid for B ≥ 1.
        self.round_bound()
    }

    fn default_success(&self, n: usize) -> f64 {
        self.success_probability(n)
    }
}

impl PipelineBase for crate::F2kDetector {
    fn run_once(&self, g: &Graph, seed: u64, bandwidth: u64, backend: Backend) -> (bool, u64) {
        let o = self.run_on_backend(g, seed, bandwidth, backend);
        (o.rejected, o.report.rounds)
    }

    fn witness_of(&self, g: &Graph, seed: u64, backend: Backend) -> Option<CycleWitness> {
        self.run_on_backend(g, seed, 1, backend).witness
    }

    fn round_bound(&self, _g: &Graph, _bandwidth: u64) -> u64 {
        self.round_bound()
    }

    fn default_success(&self, n: usize) -> f64 {
        self.success_probability(n)
    }
}

/// A [`PipelineBase`] restricted to one decomposition component, as the
/// [`MonteCarloAlgorithm`] Theorem 3 amplifies.
struct ComponentMc<'a, B: PipelineBase> {
    base: &'a B,
    g: &'a Graph,
    declared: f64,
    bandwidth: u64,
    backend: Backend,
}

impl<B: PipelineBase> MonteCarloAlgorithm for ComponentMc<'_, B> {
    fn run(&self, seed: u64) -> McOutcome {
        let (rejected, rounds) = self
            .base
            .run_once(self.g, seed, self.bandwidth, self.backend);
        McOutcome { rejected, rounds }
    }

    fn round_bound(&self) -> u64 {
        self.base.round_bound(self.g, self.bandwidth)
    }

    fn success_probability(&self) -> f64 {
        self.declared
    }
}

/// Shared parameters of one pipeline run.
struct PipelineSpec {
    /// Decomposition separation parameter (`2k+1` for even/F2k targets,
    /// `2k+2` for odd).
    separation: u32,
    /// Component enlargement radius (covers any target cycle around any
    /// of its vertices).
    radius: u32,
    /// Components smaller than this cannot contain a target cycle.
    min_nodes: usize,
    /// Seed stream labels for the decomposition and the per-component
    /// amplifications.
    dec_stream: u64,
    comp_stream: u64,
    /// Target one-sided error.
    delta: f64,
    /// Grover simulation mode.
    mode: GroverMode,
    /// Declared success-probability override (shrinks the seed space;
    /// one-sidedness unaffected).
    declared_success: Option<f64>,
    /// Per-edge bandwidth charged to the classical base runs and the
    /// decomposition (see
    /// [`Decomposition::round_cost_at`](congest_quantum::decomposition::Decomposition::round_cost_at)).
    bandwidth: u64,
    /// Simulation backend driving the classical base runs (see
    /// [`crate::Budget::backend`]); outcomes are byte-identical
    /// across backends.
    backend: Backend,
    /// Hard cap on accumulated quantum rounds: the component loop
    /// aborts once the charge so far passes it.
    round_cap: Option<u64>,
}

/// The Lemma 13 pipeline: decomposition, per-component amplification,
/// per-color cost maxima, witness recovery — the code previously
/// triplicated across the three quantum detectors.
fn run_pipeline<B: PipelineBase>(
    g: &Graph,
    seed: u64,
    base: &B,
    spec: &PipelineSpec,
) -> QuantumOutcome {
    let decomposition = decompose(g, spec.separation, derive_seed(seed, spec.dec_stream));
    let components = reduced_components(g, &decomposition, spec.radius);
    // Budget::bandwidth applies to the whole pipeline: the amplified
    // base runs (inside ComponentMc) and the decomposition construction.
    let decomposition_rounds = decomposition.round_cost_at(spec.bandwidth);

    let mut per_color_quantum: std::collections::BTreeMap<u32, u64> =
        std::collections::BTreeMap::new();
    let mut per_color_classical: std::collections::BTreeMap<u32, u64> =
        std::collections::BTreeMap::new();
    let mut iterations = 0u64;
    let mut classical_evals = 0u64;
    let mut rejected = false;
    let mut budget_exceeded = false;
    let mut witness: Option<CycleWitness> = None;

    for (ci, comp) in components.iter().enumerate() {
        if comp.graph.node_count() < spec.min_nodes {
            continue; // cannot contain a target cycle
        }
        if spec
            .round_cap
            .is_some_and(|cap| decomposition_rounds + per_color_quantum.values().sum::<u64>() > cap)
        {
            budget_exceeded = true;
            break;
        }
        let declared = spec
            .declared_success
            .unwrap_or_else(|| base.default_success(comp.graph.node_count()));
        let mc = ComponentMc {
            base,
            g: &comp.graph,
            declared,
            bandwidth: spec.bandwidth,
            backend: spec.backend,
        };
        let diameter = congest_graph::analysis::diameter(&comp.graph)
            .expect("components are connected") as u64;
        let amplifier = MonteCarloAmplifier::new(spec.delta)
            .with_diameter(diameter)
            .with_mode(spec.mode);
        let report = amplifier.amplify(&mc, derive_seed(seed, spec.comp_stream + ci as u64));
        iterations += report.iterations;
        classical_evals += report.classical_evals;
        let qc = per_color_quantum.entry(comp.color).or_insert(0);
        *qc = (*qc).max(report.quantum_rounds);
        let cc = per_color_classical.entry(comp.color).or_insert(0);
        *cc = (*cc).max(report.classical_rounds_baseline);

        if report.rejected && !rejected {
            rejected = true;
            // Re-run the base detector with the witness seed and map the
            // witness back to the original ids.
            let ws = report.witness_seed.expect("rejected implies witness seed");
            let local_witness = base
                .witness_of(&comp.graph, ws, spec.backend)
                .expect("witness seed reproduces the rejection");
            let mapped = CycleWitness::new(
                local_witness
                    .nodes()
                    .iter()
                    .map(|v| comp.original_ids[v.index()])
                    .collect(),
            );
            assert!(mapped.is_valid(g), "mapped witness must stay valid");
            witness = Some(mapped);
        }
    }

    QuantumOutcome {
        rejected,
        witness,
        quantum_rounds: decomposition_rounds + per_color_quantum.values().sum::<u64>(),
        classical_rounds: decomposition_rounds + per_color_classical.values().sum::<u64>(),
        decomposition_rounds,
        iterations,
        components: components.len(),
        colors: decomposition.colors,
        classical_evals,
        budget_exceeded,
    }
}

/// Theorem 2's quantum `C_{2k}`-freeness algorithm.
///
/// ```
/// use congest_graph::generators;
/// use even_cycle::{Params, QuantumCycleDetector};
///
/// let host = generators::random_tree(32, 5);
/// let (g, _) = generators::plant_cycle(&host, 4, 5);
/// let det = QuantumCycleDetector::new(Params::practical(2).with_repetitions(24), 0.1)
///     .with_declared_success(1.0 / 256.0);
/// let found = (0..4).any(|seed| {
///     let outcome = det.run(&g, seed);
///     if outcome.rejected {
///         assert!(outcome.witness.as_ref().unwrap().is_valid(&g));
///     }
///     outcome.rejected
/// });
/// assert!(found);
/// ```
#[derive(Debug, Clone)]
pub struct QuantumCycleDetector {
    params: Params,
    delta: f64,
    mode: GroverMode,
    declared_success: Option<f64>,
}

impl QuantumCycleDetector {
    /// Creates the detector: `params` configure the underlying Lemma 12
    /// detector, `delta` is the target one-sided error (the paper takes
    /// `1/poly(n)`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < δ < 1`.
    pub fn new(params: Params, delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "δ must be in (0,1)");
        QuantumCycleDetector {
            params,
            delta,
            mode: GroverMode::Analytic,
            declared_success: None,
        }
    }

    /// Selects the Grover simulation mode (default
    /// [`GroverMode::Analytic`]; use [`GroverMode::Sampled`] for large
    /// seed spaces).
    pub fn with_mode(mut self, mode: GroverMode) -> Self {
        self.mode = mode;
        self
    }

    /// Declares a tighter (but still valid) success probability for the
    /// base detector than the pessimistic Lemma 12 bound `1/(3τ)`,
    /// shrinking the amplifier's seed space. See
    /// [`congest_quantum::WithSuccess`]; one-sidedness is unaffected.
    pub fn with_declared_success(mut self, eps: f64) -> Self {
        assert!(eps > 0.0 && eps <= 1.0, "ε must be in (0,1]");
        self.declared_success = Some(eps);
        self
    }

    /// Overrides the base detector's repetition count.
    pub fn with_repetitions(mut self, repetitions: usize) -> Self {
        self.params = self.params.with_repetitions(repetitions);
        self
    }

    /// Runs the full pipeline on `g`.
    pub fn run(&self, g: &Graph, seed: u64) -> QuantumOutcome {
        self.run_with_bandwidth(g, seed, 1)
    }

    /// [`QuantumCycleDetector::run`] with the whole pipeline — the
    /// amplified base runs and the decomposition — charged at per-edge
    /// bandwidth `B`.
    pub fn run_with_bandwidth(&self, g: &Graph, seed: u64, bandwidth: u64) -> QuantumOutcome {
        self.run_capped(g, seed, bandwidth, Backend::Sequential, None)
    }

    fn run_capped(
        &self,
        g: &Graph,
        seed: u64,
        bandwidth: u64,
        backend: Backend,
        round_cap: Option<u64>,
    ) -> QuantumOutcome {
        let k = self.params.k;
        let base = LowProbDetector::new(self.params.clone());
        // Lemma 9 uses the decomposition with separation parameter
        // 2k + 1 and enlargement radius k.
        let spec = PipelineSpec {
            separation: 2 * k as u32 + 1,
            radius: k as u32,
            min_nodes: 2 * k,
            dec_stream: 0xDEC,
            comp_stream: 0xA0_00,
            delta: self.delta,
            mode: self.mode,
            declared_success: self.declared_success,
            bandwidth,
            backend,
            round_cap,
        };
        run_pipeline(g, seed, &base, &spec)
    }
}

impl Detector for QuantumCycleDetector {
    fn descriptor(&self) -> Descriptor {
        Descriptor {
            name: "amplified color-BFS pipeline",
            reference: "this paper Thm 2",
            model: crate::Model::Quantum,
            target: crate::Target::Even { k: self.params.k },
            exponent: crate::theory::Table1Row::ThisPaperQuantum.exponent(self.params.k),
            table1: Some(crate::theory::Table1Row::ThisPaperQuantum),
        }
    }

    fn detect(&self, g: &Graph, seed: u64, budget: &Budget) -> DetectResult {
        let det = match budget.repetitions {
            Some(r) => self.clone().with_repetitions(r),
            None => self.clone(),
        };
        let outcome = det.run_capped(g, seed, budget.bandwidth, budget.backend, budget.max_rounds);
        Ok(budget.enforce(outcome.into_detection(self.descriptor())))
    }
}

/// Theorem 2's quantum `C_{2k+1}`-freeness algorithm (§3.4): the
/// constant-round odd-cycle detector with success `Ω(1/n)`, amplified by
/// Theorem 3 over the Lemma 9 components — `Õ(√n)` rounds, which the
/// paper proves optimal for `k ≥ 2`.
#[derive(Debug, Clone)]
pub struct QuantumOddCycleDetector {
    k: usize,
    repetitions: usize,
    delta: f64,
    mode: GroverMode,
    declared_success: Option<f64>,
}

impl QuantumOddCycleDetector {
    /// Creates the detector for `C_{2k+1}` (`k ≥ 1`); `repetitions`
    /// configures the base detector (see
    /// [`crate::OddCycleDetector::new`]).
    ///
    /// # Panics
    ///
    /// Panics unless `k ≥ 1`, `repetitions ≥ 1` and `0 < δ < 1`.
    pub fn new(k: usize, repetitions: usize, delta: f64) -> Self {
        assert!(k >= 1, "odd cycles start at C3");
        assert!(repetitions >= 1, "at least one repetition");
        assert!(delta > 0.0 && delta < 1.0, "δ must be in (0,1)");
        QuantumOddCycleDetector {
            k,
            repetitions,
            delta,
            mode: GroverMode::Analytic,
            declared_success: None,
        }
    }

    /// Selects the Grover simulation mode.
    pub fn with_mode(mut self, mode: GroverMode) -> Self {
        self.mode = mode;
        self
    }

    /// Declares a tighter success probability than the §3.4 bound
    /// (seed-space sizing only; one-sidedness unaffected).
    pub fn with_declared_success(mut self, eps: f64) -> Self {
        assert!(eps > 0.0 && eps <= 1.0, "ε must be in (0,1]");
        self.declared_success = Some(eps);
        self
    }

    /// Overrides the base detector's repetition count.
    ///
    /// # Panics
    ///
    /// Panics if `repetitions == 0`.
    pub fn with_repetitions(mut self, repetitions: usize) -> Self {
        assert!(repetitions >= 1, "at least one repetition");
        self.repetitions = repetitions;
        self
    }

    /// Runs the full pipeline on `g`.
    pub fn run(&self, g: &Graph, seed: u64) -> QuantumOutcome {
        self.run_with_bandwidth(g, seed, 1)
    }

    /// [`QuantumOddCycleDetector::run`] with the whole pipeline charged
    /// at per-edge bandwidth `B`.
    pub fn run_with_bandwidth(&self, g: &Graph, seed: u64, bandwidth: u64) -> QuantumOutcome {
        self.run_capped(g, seed, bandwidth, Backend::Sequential, None)
    }

    fn run_capped(
        &self,
        g: &Graph,
        seed: u64,
        bandwidth: u64,
        backend: Backend,
        round_cap: Option<u64>,
    ) -> QuantumOutcome {
        let k = self.k;
        let l = 2 * k + 1;
        let base = crate::OddCycleDetector::new(k, self.repetitions);
        // Radius k+1 covers any C_{2k+1} around any of its vertices.
        let spec = PipelineSpec {
            separation: l as u32 + 1,
            radius: k as u32 + 1,
            min_nodes: l,
            dec_stream: 0x0DDD,
            comp_stream: 0x0D_00,
            delta: self.delta,
            mode: self.mode,
            declared_success: self.declared_success,
            bandwidth,
            backend,
            round_cap,
        };
        run_pipeline(g, seed, &base, &spec)
    }
}

impl Detector for QuantumOddCycleDetector {
    fn descriptor(&self) -> Descriptor {
        Descriptor {
            name: "amplified odd color-BFS pipeline",
            reference: "this paper §3.4",
            model: crate::Model::Quantum,
            target: crate::Target::Odd { k: self.k },
            exponent: crate::theory::Table1Row::ThisPaperQuantumOdd.exponent(self.k),
            table1: Some(crate::theory::Table1Row::ThisPaperQuantumOdd),
        }
    }

    fn detect(&self, g: &Graph, seed: u64, budget: &Budget) -> DetectResult {
        let det = match budget.repetitions {
            Some(r) => self.clone().with_repetitions(r),
            None => self.clone(),
        };
        let outcome = det.run_capped(g, seed, budget.bandwidth, budget.backend, budget.max_rounds);
        Ok(budget.enforce(outcome.into_detection(self.descriptor())))
    }
}

/// The §3.5 quantum `{C_ℓ | 3 ≤ ℓ ≤ 2k}`-freeness algorithm: the
/// randomized (constant-congestion) `F_{2k}` detector amplified by
/// Theorem 3 over the Lemma 9 components — `Õ(n^{1/2-1/2k})` rounds,
/// improving van Apeldoorn–de Vos's `Õ(n^{1/2-1/(4k+2)})`.
#[derive(Debug, Clone)]
pub struct QuantumF2kDetector {
    k: usize,
    repetitions: usize,
    delta: f64,
    mode: GroverMode,
    declared_success: Option<f64>,
}

impl QuantumF2kDetector {
    /// Creates the detector for cycle lengths `3..=2k` (`k ≥ 2`).
    ///
    /// # Panics
    ///
    /// Panics unless `k ≥ 2`, `repetitions ≥ 1` and `0 < δ < 1`.
    pub fn new(k: usize, repetitions: usize, delta: f64) -> Self {
        assert!(k >= 2, "F_{{2k}} needs k ≥ 2");
        assert!(repetitions >= 1, "at least one repetition");
        assert!(delta > 0.0 && delta < 1.0, "δ must be in (0,1)");
        QuantumF2kDetector {
            k,
            repetitions,
            delta,
            mode: GroverMode::Analytic,
            declared_success: None,
        }
    }

    /// Selects the Grover simulation mode.
    pub fn with_mode(mut self, mode: GroverMode) -> Self {
        self.mode = mode;
        self
    }

    /// Declares a tighter success probability (seed-space sizing only).
    pub fn with_declared_success(mut self, eps: f64) -> Self {
        assert!(eps > 0.0 && eps <= 1.0, "ε must be in (0,1]");
        self.declared_success = Some(eps);
        self
    }

    /// Overrides the base detector's per-pair repetition count.
    ///
    /// # Panics
    ///
    /// Panics if `repetitions == 0`.
    pub fn with_repetitions(mut self, repetitions: usize) -> Self {
        assert!(repetitions >= 1, "at least one repetition");
        self.repetitions = repetitions;
        self
    }

    /// Runs the full pipeline on `g`.
    pub fn run(&self, g: &Graph, seed: u64) -> QuantumOutcome {
        self.run_with_bandwidth(g, seed, 1)
    }

    /// [`QuantumF2kDetector::run`] with the whole pipeline charged at
    /// per-edge bandwidth `B`.
    pub fn run_with_bandwidth(&self, g: &Graph, seed: u64, bandwidth: u64) -> QuantumOutcome {
        self.run_capped(g, seed, bandwidth, Backend::Sequential, None)
    }

    fn run_capped(
        &self,
        g: &Graph,
        seed: u64,
        bandwidth: u64,
        backend: Backend,
        round_cap: Option<u64>,
    ) -> QuantumOutcome {
        let k = self.k;
        let base = crate::F2kDetector::new(k)
            .with_repetitions(self.repetitions)
            .randomized();
        let spec = PipelineSpec {
            separation: 2 * k as u32 + 1,
            radius: k as u32,
            min_nodes: 3,
            dec_stream: 0xF2D,
            comp_stream: 0xF2_00,
            delta: self.delta,
            mode: self.mode,
            declared_success: self.declared_success,
            bandwidth,
            backend,
            round_cap,
        };
        run_pipeline(g, seed, &base, &spec)
    }
}

impl Detector for QuantumF2kDetector {
    fn descriptor(&self) -> Descriptor {
        Descriptor {
            name: "amplified pairwise sweep pipeline",
            reference: "this paper §3.5",
            model: crate::Model::Quantum,
            target: crate::Target::F2k { k: self.k },
            exponent: crate::theory::Table1Row::ThisPaperQuantumF2k.exponent(self.k),
            table1: Some(crate::theory::Table1Row::ThisPaperQuantumF2k),
        }
    }

    fn detect(&self, g: &Graph, seed: u64, budget: &Budget) -> DetectResult {
        let det = match budget.repetitions {
            Some(r) => self.clone().with_repetitions(r),
            None => self.clone(),
        };
        let outcome = det.run_capped(g, seed, budget.bandwidth, budget.backend, budget.max_rounds);
        Ok(budget.enforce(outcome.into_detection(self.descriptor())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    /// Detection tests: analytic Grover over a compact seed space sized
    /// by an empirically-safe declared success probability.
    fn small_detector() -> QuantumCycleDetector {
        QuantumCycleDetector::new(Params::practical(2).with_repetitions(24), 0.1)
            .with_declared_success(1.0 / 256.0)
    }

    /// Soundness tests: the sampled mode is much cheaper and cannot
    /// break one-sidedness.
    fn sampled_detector() -> QuantumCycleDetector {
        QuantumCycleDetector::new(Params::practical(2).with_repetitions(12), 0.1)
            .with_mode(congest_quantum::GroverMode::Sampled { samples: 32 })
    }

    #[test]
    fn finds_planted_c4() {
        let host = generators::random_tree(32, 5);
        let (g, _) = generators::plant_cycle(&host, 4, 5);
        let det = small_detector();
        let found = (0..6).any(|seed| {
            let outcome = det.run(&g, seed);
            if outcome.rejected {
                let w = outcome.witness.as_ref().unwrap();
                assert_eq!(w.len(), 4);
                assert!(w.is_valid(&g));
                assert!(outcome.iterations > 0);
            }
            outcome.rejected
        });
        assert!(found, "planted C4 never found across seeds");
    }

    #[test]
    fn one_sided_on_trees() {
        let det = sampled_detector();
        for seed in 0..2 {
            let g = generators::random_tree(32, seed);
            let outcome = det.run(&g, seed);
            assert!(!outcome.rejected, "seed {seed}");
            assert!(outcome.witness.is_none());
        }
    }

    #[test]
    fn one_sided_on_polarity_graph() {
        let g = generators::polarity_graph(3);
        let outcome = sampled_detector().run(&g, 7);
        assert!(!outcome.rejected);
    }

    #[test]
    fn accounts_decomposition_and_components() {
        let host = generators::random_tree(40, 2);
        let (g, _) = generators::plant_cycle(&host, 4, 2);
        let outcome = small_detector().run(&g, 1);
        assert!(outcome.decomposition_rounds > 0);
        assert!(outcome.components >= 1);
        assert!(outcome.colors >= 1);
        assert!(outcome.quantum_rounds >= outcome.decomposition_rounds);
    }

    #[test]
    fn bandwidth_scales_decomposition_cost() {
        // Budget::bandwidth reaches the decomposition cost model, not
        // just the amplified base runs: single-word protocol, so B
        // words per edge divide the charge exactly.
        let g = generators::random_tree(32, 3);
        let det = sampled_detector();
        let b1 = det.run_with_bandwidth(&g, 1, 1);
        let b4 = det.run_with_bandwidth(&g, 1, 4);
        assert!(b1.decomposition_rounds > 1);
        assert_eq!(b4.decomposition_rounds, b1.decomposition_rounds.div_ceil(4));
        assert!(b4.quantum_rounds <= b1.quantum_rounds);
    }

    #[test]
    fn round_cap_aborts_component_loop() {
        use crate::Detector;
        let host = generators::random_tree(40, 2);
        let (g, _) = generators::plant_cycle(&host, 4, 2);
        let det = sampled_detector();
        let full = det.detect(&g, 1, &Budget::classical()).unwrap();
        assert!(full.cost.rounds > 2);
        let capped = det
            .detect(
                &g,
                1,
                &Budget::classical().with_round_cap(full.cost.rounds / 2),
            )
            .unwrap();
        // Either a certified rejection landed before the cap bit, or
        // the pipeline reported the overrun.
        assert!(capped.rejected() || capped.budget_exceeded());
    }

    #[test]
    fn deterministic_by_seed() {
        let host = generators::random_tree(28, 4);
        let (g, _) = generators::plant_cycle(&host, 4, 4);
        let det = small_detector();
        let a = det.run(&g, 9);
        let b = det.run(&g, 9);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.quantum_rounds, b.quantum_rounds);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn quantum_odd_detects_c5() {
        // A C5 farm keeps the base success rate workable.
        let mut g = generators::cycle(5);
        for _ in 1..6 {
            g = generators::disjoint_union(&g, &generators::cycle(5));
        }
        let g = generators::disjoint_union(&g, &generators::path(10));
        let det = QuantumOddCycleDetector::new(2, 60, 0.1).with_declared_success(1.0 / 64.0);
        let found = (0..6).any(|seed| {
            let o = det.run(&g, seed);
            if o.rejected {
                let w = o.witness.as_ref().unwrap();
                assert_eq!(w.len(), 5);
                assert!(w.is_valid(&g));
            }
            o.rejected
        });
        assert!(found, "quantum odd pipeline never found a C5");
    }

    #[test]
    fn quantum_odd_sound_on_bipartite() {
        let det = QuantumOddCycleDetector::new(2, 12, 0.1)
            .with_mode(congest_quantum::GroverMode::Sampled { samples: 16 });
        for seed in 0..2 {
            let g = generators::random_bipartite(16, 16, 0.15, seed);
            assert!(!det.run(&g, seed).rejected, "seed {seed}");
        }
    }

    #[test]
    fn quantum_f2k_detects_short_cycle() {
        // Plant a C4 in a tree; the quantum F2k pipeline (k = 2: lengths
        // 3..4) must find it with the declared-success shortcut.
        let host = generators::random_tree(36, 6);
        let (g, _) = generators::plant_cycle(&host, 4, 6);
        let det = QuantumF2kDetector::new(2, 40, 0.1).with_declared_success(1.0 / 128.0);
        let found = (0..6).any(|seed| {
            let o = det.run(&g, seed);
            if o.rejected {
                let w = o.witness.as_ref().unwrap();
                assert!(w.len() == 3 || w.len() == 4);
                assert!(w.is_valid(&g));
            }
            o.rejected
        });
        assert!(found, "quantum F2k pipeline never found the planted C4");
    }

    #[test]
    fn quantum_f2k_sound_on_high_girth() {
        // Girth > 6 input for k = 3 (lengths 3..6): must always accept.
        let det = QuantumF2kDetector::new(3, 12, 0.1)
            .with_mode(congest_quantum::GroverMode::Sampled { samples: 16 });
        for seed in 0..2 {
            let g = generators::high_girth(48, 6, 8, seed);
            assert!(!det.run(&g, seed).rejected, "seed {seed}");
        }
    }

    #[test]
    fn detect_matches_run_and_honors_budget() {
        use crate::Detector;
        let host = generators::random_tree(30, 8);
        let (g, _) = generators::plant_cycle(&host, 4, 8);
        let det = small_detector();
        for seed in 0..3 {
            let via_run = det.run(&g, seed);
            let via_detect = det.detect(&g, seed, &Budget::classical()).unwrap();
            assert_eq!(via_run.rejected, via_detect.rejected());
            assert_eq!(via_run.quantum_rounds, via_detect.rounds());
        }
        // A repetition override must actually reconfigure the base
        // detector (fewer repetitions => no more rounds than the
        // default's bound).
        let d = det
            .detect(&g, 0, &Budget::classical().with_repetitions(2))
            .unwrap();
        assert!(d.cost.rounds > 0);
    }
}
