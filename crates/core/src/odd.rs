//! Odd-cycle detection (§3.4): `C_{2k+1}`-freeness with one-sided success
//! probability `Ω(1/n)` in constant rounds, quantum-amplifiable to
//! `Õ(√n)` (tight by the paper's `Ω̃(√n)` lower bound).

use congest_graph::{CycleWitness, Graph, NodeId};
use congest_quantum::{McOutcome, MonteCarloAlgorithm};
use congest_sim::{derive_seed, Backend, Control, Ctx, Decision, MessageSize, Outbox, Program};
use rand::Rng;

use crate::api::run_program;
use crate::detector::random_coloring;
use crate::witness::{extract_odd_witness, DetectionOutcome, SetsSummary};

/// Messages of the odd-cycle protocol (same wire format as
/// [`crate::color_bfs::CbMsg`], with colors in `{0, …, 2k}`).
#[derive(Debug, Clone, PartialEq, Eq)]
enum OddMsg {
    Hello { color: u8 },
    Ids(Vec<u32>),
}

impl MessageSize for OddMsg {
    fn words(&self) -> usize {
        match self {
            OddMsg::Hello { .. } => 1,
            OddMsg::Ids(ids) => ids.len().max(1),
        }
    }
}

/// Per-node program: `randomized-color-BFS` over `2k+1` colors looking
/// for a cycle `(u_0, …, u_{2k})` with `c(u_i) = i`. The node colored `k`
/// receives the origin's id along a length-`k` path (colors
/// `0, 1, …, k`) and a length-`(k+1)` path (colors `0, 2k, …, k+1, k`).
#[derive(Debug, Clone)]
struct OddColorBfs {
    k: usize,
    color: u8,
    active_source: bool,
    tau: u64,
    nbr_color: Vec<u8>,
    low_ids: Vec<u32>,
    reject: Option<u32>,
}

impl OddColorBfs {
    /// The step at which this node forwards (or, for color `k`, first
    /// collects).
    fn action_step(&self) -> usize {
        let c = self.color as usize;
        let k = self.k;
        if c == 0 {
            0
        } else if c <= k {
            c
        } else {
            2 * k + 1 - c
        }
    }

    fn collect(&self, inbox: &[(NodeId, OddMsg)], ctx: &Ctx, expected: u8) -> Vec<u32> {
        let mut ids = Vec::new();
        for (from, msg) in inbox {
            if let OddMsg::Ids(payload) = msg {
                let pos = ctx
                    .neighbors
                    .binary_search(from)
                    .expect("sender is a neighbor");
                if self.nbr_color[pos] == expected {
                    ids.extend_from_slice(payload);
                }
            }
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    fn forward(&self, ctx: &Ctx, out: &mut Outbox<OddMsg>, ids: &[u32], next: u8) {
        if ids.is_empty() {
            return;
        }
        for (pos, &nbr) in ctx.neighbors.iter().enumerate() {
            if self.nbr_color[pos] == next {
                out.send(nbr, OddMsg::Ids(ids.to_vec()));
            }
        }
    }
}

impl Program for OddColorBfs {
    type Msg = OddMsg;

    fn init(&mut self, _ctx: &mut Ctx, out: &mut Outbox<OddMsg>) {
        out.broadcast(OddMsg::Hello { color: self.color });
    }

    fn step(
        &mut self,
        ctx: &mut Ctx,
        superstep: usize,
        inbox: &[(NodeId, OddMsg)],
        out: &mut Outbox<OddMsg>,
    ) -> Control {
        let k = self.k;
        if superstep == 0 {
            self.nbr_color = vec![0; ctx.neighbors.len()];
            for (from, msg) in inbox {
                if let OddMsg::Hello { color } = msg {
                    let pos = ctx
                        .neighbors
                        .binary_search(from)
                        .expect("sender is a neighbor");
                    self.nbr_color[pos] = *color;
                }
            }
            if self.active_source {
                let me = ctx.node.raw();
                for &nbr in ctx.neighbors.iter() {
                    out.send(nbr, OddMsg::Ids(vec![me]));
                }
            }
            return if self.action_step() == 0 {
                Control::Halt
            } else {
                Control::Continue
            };
        }

        let c = self.color as usize;
        let action = self.action_step();
        if c == k {
            // Collect the up-branch at step k, the down-branch at k+1.
            if superstep == k {
                self.low_ids = self.collect(inbox, ctx, (k - 1) as u8);
                return Control::Continue;
            }
            if superstep == k + 1 {
                let high = self.collect(inbox, ctx, (k + 1) as u8);
                if let Some(&x) = self.low_ids.iter().find(|x| high.binary_search(x).is_ok()) {
                    self.reject = Some(x);
                }
                return Control::Halt;
            }
            return Control::Continue;
        }
        if superstep < action {
            return Control::Continue;
        }
        if (1..k).contains(&c) {
            let ids = self.collect(inbox, ctx, (c - 1) as u8);
            if ids.len() as u64 <= self.tau {
                self.forward(ctx, out, &ids, (c + 1) as u8);
            }
        } else if c > k {
            let prev = if c == 2 * k { 0 } else { (c + 1) as u8 };
            let ids = self.collect(inbox, ctx, prev);
            if ids.len() as u64 <= self.tau {
                self.forward(ctx, out, &ids, (c - 1) as u8);
            }
        }
        Control::Halt
    }

    fn decision(&self) -> Decision {
        if self.reject.is_some() {
            Decision::Reject
        } else {
            Decision::Accept
        }
    }
}

/// The §3.4 odd-cycle detector: decides `C_{2k+1}`-freeness with
/// one-sided success probability `Ω(1/n)` per repetition, in constant
/// rounds per repetition.
///
/// Wrap with [`OddCycleDetector::as_monte_carlo`] and amplify with
/// [`congest_quantum::MonteCarloAmplifier`] for the `Õ(√n)` quantum
/// algorithm of Theorem 2.
///
/// ```
/// use congest_graph::generators;
/// use even_cycle::OddCycleDetector;
/// let g = generators::cycle(5);
/// // k = 2: looking for C5. Success is Ω(1/n) per repetition, so give
/// // it a few times n repetitions.
/// let det = OddCycleDetector::new(2, 64);
/// let found = (0..40).any(|seed| det.run(&g, seed).rejected());
/// assert!(found);
/// ```
#[derive(Debug, Clone)]
pub struct OddCycleDetector {
    k: usize,
    repetitions: usize,
}

impl OddCycleDetector {
    /// Creates a detector for `C_{2k+1}` (`k ≥ 1`) running `repetitions`
    /// coloring iterations per [`OddCycleDetector::run`].
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `repetitions == 0`.
    pub fn new(k: usize, repetitions: usize) -> Self {
        assert!(k >= 1, "odd cycles start at C3 (k = 1)");
        assert!(repetitions >= 1, "at least one repetition");
        OddCycleDetector { k, repetitions }
    }

    /// The target cycle length `2k + 1`.
    pub fn cycle_length(&self) -> usize {
        2 * self.k + 1
    }

    /// Overrides the repetition count.
    ///
    /// # Panics
    ///
    /// Panics if `repetitions == 0`.
    pub fn with_repetitions(mut self, repetitions: usize) -> Self {
        assert!(repetitions >= 1, "at least one repetition");
        self.repetitions = repetitions;
        self
    }

    /// Runs the detector; all randomness derives from `seed`.
    pub fn run(&self, g: &Graph, seed: u64) -> DetectionOutcome {
        self.run_with_bandwidth(g, seed, 1)
    }

    /// [`OddCycleDetector::run`] at per-edge bandwidth `B` (words per
    /// round); the protocol is unchanged, supersteps are charged
    /// `⌈load/B⌉` rounds.
    pub fn run_with_bandwidth(&self, g: &Graph, seed: u64, bandwidth: u64) -> DetectionOutcome {
        self.run_capped(g, seed, bandwidth, Backend::Sequential, None, None)
    }

    /// [`OddCycleDetector::run_with_bandwidth`] on an explicit
    /// simulation [`Backend`]; the outcome is byte-identical whatever
    /// the backend.
    pub fn run_on_backend(
        &self,
        g: &Graph,
        seed: u64,
        bandwidth: u64,
        backend: Backend,
    ) -> DetectionOutcome {
        self.run_capped(g, seed, bandwidth, backend, None, None)
    }

    /// [`OddCycleDetector::run_with_bandwidth`] with hard round/message
    /// caps: the repetition loop aborts (flagging the outcome) once the
    /// accumulated cost passes either cap.
    fn run_capped(
        &self,
        g: &Graph,
        seed: u64,
        bandwidth: u64,
        backend: Backend,
        round_cap: Option<u64>,
        message_cap: Option<u64>,
    ) -> DetectionOutcome {
        let k = self.k;
        let n = g.node_count();
        let colors_count = 2 * k + 1;
        let activation = 1.0 / n as f64;
        let mut total = congest_sim::RunReport::empty();
        let mut decision = Decision::Accept;
        let mut witness: Option<CycleWitness> = None;
        let mut iterations = 0u64;
        let mut budget_exceeded = false;
        let all = vec![true; n];

        for r in 0..self.repetitions as u64 {
            iterations = r + 1;
            let colors = random_coloring(n, colors_count, derive_seed(seed, 0x0DD + r));
            let call_seed = derive_seed(seed, 0xE000 + r);
            let active: Vec<bool> = {
                use rand::SeedableRng;
                let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(derive_seed(call_seed, 0xAC7));
                (0..n).map(|_| rng.gen_bool(activation)).collect()
            };
            let (report, nodes) = run_program(
                g,
                call_seed,
                backend,
                bandwidth,
                None,
                |v, _| OddColorBfs {
                    k,
                    color: colors[v.index()],
                    active_source: colors[v.index()] == 0 && active[v.index()],
                    tau: 4,
                    nbr_color: Vec::new(),
                    low_ids: Vec::new(),
                    reject: None,
                },
                (k + 4) as u64,
            )
            .expect("odd color-BFS cannot violate the model");
            total.absorb(&report);
            if let Some(&v) = report.rejecting_nodes.first() {
                decision = Decision::Reject;
                let origin = nodes[v as usize].reject.expect("evidence");
                let w =
                    extract_odd_witness(g, &all, &colors, k, NodeId::new(origin), NodeId::new(v))
                        .expect("rejection must be certifiable");
                witness = Some(w);
                break;
            }
            if crate::detector::report_caps_exceeded(&total, round_cap, message_cap) {
                budget_exceeded = true;
                break;
            }
        }

        DetectionOutcome {
            decision,
            witness,
            phase: None,
            iterations,
            report: total,
            sets: SetsSummary {
                u_size: n,
                s_size: 0,
                w_size: 0,
                tau: 4,
                selection_probability: activation,
            },
            budget_exceeded,
        }
    }

    /// An upper bound on the rounds of one run.
    pub fn round_bound(&self) -> u64 {
        let k = self.k as u64;
        self.repetitions as u64 * (2 + (k + 2) * 4)
    }

    /// The one-sided success probability per run (§3.4): a repetition
    /// succeeds when the cycle is well colored (probability
    /// `(2k+1)^{-(2k+1)}`), its origin activates (probability `1/n`), and
    /// no threshold discards (constant probability, bounded by ½ here).
    /// Repetitions add up; capped at ½.
    pub fn success_probability(&self, n: usize) -> f64 {
        let l = (2 * self.k + 1) as f64;
        let per_rep = (1.0 / l).powf(l) / (2.0 * n as f64);
        (per_rep * self.repetitions as f64).min(0.5)
    }

    /// Wraps the detector as a Monte-Carlo algorithm over a fixed graph.
    pub fn as_monte_carlo<'a>(&'a self, g: &'a Graph) -> OddMc<'a> {
        OddMc {
            det: self,
            g,
            bandwidth: 1,
        }
    }
}

impl crate::Detector for OddCycleDetector {
    fn descriptor(&self) -> crate::Descriptor {
        crate::Descriptor {
            name: "constant-round odd color-BFS",
            reference: "this paper §3.4",
            model: crate::Model::Classical,
            // Success Ω(1/n) per constant-round repetition: classical
            // amplification to constant success costs Θ̃(n), the [15,30]
            // row's shape.
            target: crate::Target::Odd { k: self.k },
            exponent: 1.0,
            table1: Some(crate::theory::Table1Row::KorhonenRybickiOdd),
        }
    }

    fn detect(&self, g: &Graph, seed: u64, budget: &crate::Budget) -> crate::DetectResult {
        let det = match budget.repetitions {
            Some(r) => self.clone().with_repetitions(r),
            None => self.clone(),
        };
        let outcome = det.run_capped(
            g,
            seed,
            budget.bandwidth,
            budget.backend,
            budget.max_rounds,
            budget.max_messages,
        );
        Ok(budget.enforce(outcome.into_detection(self.descriptor())))
    }
}

/// [`OddCycleDetector`] as a [`MonteCarloAlgorithm`].
#[derive(Debug, Clone)]
pub struct OddMc<'a> {
    det: &'a OddCycleDetector,
    g: &'a Graph,
    bandwidth: u64,
}

impl OddMc<'_> {
    /// Sets the per-edge bandwidth charged to the base runs.
    pub fn with_bandwidth(mut self, bandwidth: u64) -> Self {
        assert!(bandwidth > 0, "bandwidth must be positive");
        self.bandwidth = bandwidth;
        self
    }
}

impl MonteCarloAlgorithm for OddMc<'_> {
    fn run(&self, seed: u64) -> McOutcome {
        let o = self.det.run_with_bandwidth(self.g, seed, self.bandwidth);
        McOutcome {
            rejected: o.rejected(),
            rounds: o.report.rounds,
        }
    }

    fn round_bound(&self) -> u64 {
        self.det.round_bound()
    }

    fn success_probability(&self) -> f64 {
        self.det.success_probability(self.g.node_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    #[test]
    fn detects_c5_eventually() {
        let g = generators::cycle(5);
        let det = OddCycleDetector::new(2, 200);
        let mut found = false;
        for seed in 0..20 {
            let o = det.run(&g, seed);
            if o.rejected() {
                let w = o.witness().unwrap();
                assert_eq!(w.len(), 5);
                assert!(w.is_valid(&g));
                found = true;
                break;
            }
        }
        assert!(found, "C5 never detected across seeds");
    }

    #[test]
    fn detects_c3() {
        let g = generators::complete(4); // plenty of triangles
        let det = OddCycleDetector::new(1, 100);
        let mut found = false;
        for seed in 0..20 {
            let o = det.run(&g, seed);
            if o.rejected() {
                assert_eq!(o.witness().unwrap().len(), 3);
                assert!(o.witness().unwrap().is_valid(&g));
                found = true;
                break;
            }
        }
        assert!(found, "triangle never detected");
    }

    #[test]
    fn soundness_on_bipartite_graphs() {
        // Bipartite graphs have no odd cycles at all.
        let det = OddCycleDetector::new(2, 50);
        for seed in 0..5 {
            let g = generators::random_bipartite(20, 20, 0.2, seed);
            assert!(!det.run(&g, seed).rejected(), "seed {seed}");
        }
    }

    #[test]
    fn soundness_on_c7_free() {
        // C5 contains no C7; the k = 3 detector must accept it.
        let g = generators::cycle(5);
        let det = OddCycleDetector::new(3, 100);
        for seed in 0..5 {
            assert!(!det.run(&g, seed).rejected());
        }
    }

    #[test]
    fn congestion_constant() {
        let g = generators::erdos_renyi(100, 0.08, 1);
        let det = OddCycleDetector::new(2, 30);
        let o = det.run(&g, 2);
        assert!(o.report.congestion.max_words_per_edge_step <= 4);
    }

    #[test]
    fn monte_carlo_wrapper() {
        let g = generators::cycle(5);
        let det = OddCycleDetector::new(2, 50);
        let mc = det.as_monte_carlo(&g);
        assert!(mc.success_probability() > 0.0);
        assert!(mc.round_bound() > 0);
        assert_eq!(mc.run(3), mc.run(3));
    }
}
