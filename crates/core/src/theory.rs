//! Closed-form round complexities for every row of Table 1.
//!
//! These are the theoretical curves the benchmark harness
//! (`even-cycle-bench`, binary `table1`) plots measured data against.
//! `Õ`/`Ω̃` constants and polylog factors are normalized to 1 unless the
//! paper states them (Theorem 1's constant is available separately via
//! [`theorem1_constant`]).

/// A row of Table 1 (one algorithm/bound for one cycle family).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Table1Row {
    /// [11] Chang–Saranurak: `C3` in `Õ(n^{1/3})`, randomized.
    ChangSaranurakC3,
    /// [30] Korhonen–Rybicki: `C_{2k+1}`, `k ≥ 2`, deterministic `Õ(n)`
    /// (tight: `Ω̃(n)` randomized [15]).
    KorhonenRybickiOdd,
    /// [15] Drucker et al.: `C4` in `O(√n)` (tight).
    DruckerC4,
    /// [30] lower bound: `C_{2k}`, `k ≥ 2`, `Ω̃(√n)` randomized.
    EvenLowerBound,
    /// [10] Censor-Hillel et al.: `C_{2k}` for `k ∈ {2,…,5}` in
    /// `O(n^{1-1/k})`.
    CensorHillelEven,
    /// [16] Eden et al.: `C_{2k}` for even `k ≥ 6` in
    /// `Õ(n^{1-2/(k²-2k+4)})`.
    EdenEvenK,
    /// [16] Eden et al.: `C_{2k}` for odd `k ≥ 7` in
    /// `Õ(n^{1-2/(k²-k+2)})`.
    EdenOddK,
    /// [10] Censor-Hillel et al.: `{C_ℓ | 3 ≤ ℓ ≤ 2k}` in `Õ(n^{1-1/k})`.
    CensorHillelF2k,
    /// **This paper**: `C_{2k}` for every `k ≥ 2` in `O(n^{1-1/k})`
    /// (Theorem 1).
    ThisPaperClassical,
    /// [8] Censor-Hillel et al.: quantum `C3` in `Õ(n^{1/5})`.
    QuantumC3,
    /// [9] (unpublished): quantum `C4` in `Õ(n^{1/4})`.
    QuantumC4,
    /// [33] van Apeldoorn–de Vos: quantum `{C_ℓ | ℓ ≤ 2k}` in
    /// `Õ(n^{1/2-1/(4k+2)})`.
    ApeldoornDeVosF2k,
    /// **This paper**: quantum `C_{2k}` in `Õ(n^{1/2-1/2k})` (Theorem 2).
    ThisPaperQuantum,
    /// **This paper**: quantum lower bound `Ω̃(n^{1/4})` for `C_{2k}`.
    ThisPaperQuantumLowerBound,
    /// **This paper**: quantum `C_{2k+1}` in `Θ̃(√n)`.
    ThisPaperQuantumOdd,
    /// **This paper**: quantum `{C_ℓ | ℓ ≤ 2k}` in `Õ(n^{1/2-1/2k})`.
    ThisPaperQuantumF2k,
}

impl Table1Row {
    /// All rows, in the paper's order.
    pub const ALL: [Table1Row; 16] = [
        Table1Row::ChangSaranurakC3,
        Table1Row::KorhonenRybickiOdd,
        Table1Row::DruckerC4,
        Table1Row::EvenLowerBound,
        Table1Row::CensorHillelEven,
        Table1Row::EdenEvenK,
        Table1Row::EdenOddK,
        Table1Row::CensorHillelF2k,
        Table1Row::ThisPaperClassical,
        Table1Row::QuantumC3,
        Table1Row::QuantumC4,
        Table1Row::ApeldoornDeVosF2k,
        Table1Row::ThisPaperQuantum,
        Table1Row::ThisPaperQuantumLowerBound,
        Table1Row::ThisPaperQuantumOdd,
        Table1Row::ThisPaperQuantumF2k,
    ];

    /// The exponent `α` in the row's `n^α` complexity (for the given
    /// `k` where applicable).
    pub fn exponent(self, k: usize) -> f64 {
        let kf = k as f64;
        match self {
            Table1Row::ChangSaranurakC3 => 1.0 / 3.0,
            Table1Row::KorhonenRybickiOdd => 1.0,
            Table1Row::DruckerC4 => 0.5,
            Table1Row::EvenLowerBound => 0.5,
            Table1Row::CensorHillelEven
            | Table1Row::ThisPaperClassical
            | Table1Row::CensorHillelF2k => 1.0 - 1.0 / kf,
            Table1Row::EdenEvenK => 1.0 - 2.0 / (kf * kf - 2.0 * kf + 4.0),
            Table1Row::EdenOddK => 1.0 - 2.0 / (kf * kf - kf + 2.0),
            Table1Row::QuantumC3 => 0.2,
            Table1Row::QuantumC4 => 0.25,
            Table1Row::ApeldoornDeVosF2k => 0.5 - 1.0 / (4.0 * kf + 2.0),
            Table1Row::ThisPaperQuantum | Table1Row::ThisPaperQuantumF2k => 0.5 - 1.0 / (2.0 * kf),
            Table1Row::ThisPaperQuantumLowerBound => 0.25,
            Table1Row::ThisPaperQuantumOdd => 0.5,
        }
    }

    /// The row's round complexity at size `n` (constants and polylogs
    /// normalized to 1).
    pub fn rounds(self, n: usize, k: usize) -> f64 {
        (n as f64).powf(self.exponent(k))
    }

    /// Whether the row is an upper bound (`true`) or a lower bound.
    pub fn is_upper_bound(self) -> bool {
        !matches!(
            self,
            Table1Row::EvenLowerBound | Table1Row::ThisPaperQuantumLowerBound
        )
    }

    /// Whether the row concerns the quantum CONGEST model.
    pub fn is_quantum(self) -> bool {
        matches!(
            self,
            Table1Row::QuantumC3
                | Table1Row::QuantumC4
                | Table1Row::ApeldoornDeVosF2k
                | Table1Row::ThisPaperQuantum
                | Table1Row::ThisPaperQuantumLowerBound
                | Table1Row::ThisPaperQuantumOdd
                | Table1Row::ThisPaperQuantumF2k
        )
    }

    /// A short citation label matching Table 1.
    pub fn label(self) -> &'static str {
        match self {
            Table1Row::ChangSaranurakC3 => "[11] C3 rand.",
            Table1Row::KorhonenRybickiOdd => "[15,30] C_{2k+1} det./rand.",
            Table1Row::DruckerC4 => "[15] C4 rand.",
            Table1Row::EvenLowerBound => "[30] C_{2k} lower bound",
            Table1Row::CensorHillelEven => "[10] C_{2k}, k in 2..5",
            Table1Row::EdenEvenK => "[16] C_{2k}, k >= 6 even",
            Table1Row::EdenOddK => "[16] C_{2k}, k >= 7 odd",
            Table1Row::CensorHillelF2k => "[10] {C_l | l <= 2k}",
            Table1Row::ThisPaperClassical => "this paper C_{2k} rand.",
            Table1Row::QuantumC3 => "[8] C3 quantum",
            Table1Row::QuantumC4 => "[9] C4 quantum",
            Table1Row::ApeldoornDeVosF2k => "[33] {C_l | l <= 2k} quantum",
            Table1Row::ThisPaperQuantum => "this paper C_{2k} quantum",
            Table1Row::ThisPaperQuantumLowerBound => "this paper quantum lower bound",
            Table1Row::ThisPaperQuantumOdd => "this paper C_{2k+1} quantum",
            Table1Row::ThisPaperQuantumF2k => "this paper {C_l | l <= 2k} quantum",
        }
    }
}

/// The explicit constant of Theorem 1:
/// `log²(1/ε) · 2^{3k} · k^{2k+3}`.
pub fn theorem1_constant(k: usize, eps: f64) -> f64 {
    let kf = k as f64;
    (1.0 / eps).ln().powi(2) * 2f64.powi(3 * k as i32) * kf.powf(2.0 * kf + 3.0)
}

/// The Theorem 2 quantum round bound with its `k^{O(k)}` constant
/// realized as `k^k`: `k^k · log²(n) · n^{1/2 - 1/2k}`.
pub fn theorem2_rounds(n: usize, k: usize) -> f64 {
    let kf = k as f64;
    let nf = n as f64;
    kf.powf(kf) * nf.log2().powi(2) * nf.powf(0.5 - 1.0 / (2.0 * kf))
}

/// Fits a power law `rounds ≈ c·n^α` to `(n, rounds)` samples by least
/// squares on the log-log scale; returns `(α, c)`.
///
/// # Panics
///
/// Panics with fewer than two samples or non-positive values.
pub fn fit_exponent(samples: &[(f64, f64)]) -> (f64, f64) {
    assert!(samples.len() >= 2, "need at least two samples");
    let logs: Vec<(f64, f64)> = samples
        .iter()
        .map(|&(n, r)| {
            assert!(n > 0.0 && r > 0.0, "samples must be positive");
            (n.ln(), r.ln())
        })
        .collect();
    let m = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    let alpha = (m * sxy - sx * sy) / (m * sxx - sx * sx);
    let intercept = (sy - alpha * sx) / m;
    (alpha, intercept.exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn this_paper_beats_eden_for_all_k_at_least_6() {
        // The headline improvement: 1 - 1/k < 1 - 2/(k²-2k+4) for k ≥ 6
        // even, and likewise for the odd formula at k ≥ 7.
        for k in (6..40).step_by(2) {
            assert!(
                Table1Row::ThisPaperClassical.exponent(k) < Table1Row::EdenEvenK.exponent(k),
                "k = {k}"
            );
        }
        for k in (7..41).step_by(2) {
            assert!(
                Table1Row::ThisPaperClassical.exponent(k) < Table1Row::EdenOddK.exponent(k),
                "k = {k}"
            );
        }
    }

    #[test]
    fn matches_censor_hillel_for_small_k() {
        for k in 2..=5 {
            assert_eq!(
                Table1Row::ThisPaperClassical.exponent(k),
                Table1Row::CensorHillelEven.exponent(k)
            );
        }
    }

    #[test]
    fn quantum_f2k_beats_apeldoorn_devos() {
        // 1/2 - 1/2k < 1/2 - 1/(4k+2) for every k ≥ 2.
        for k in 2..30 {
            assert!(
                Table1Row::ThisPaperQuantumF2k.exponent(k)
                    < Table1Row::ApeldoornDeVosF2k.exponent(k),
                "k = {k}"
            );
        }
    }

    #[test]
    fn quantum_is_quadratic_speedup() {
        // (1/2 - 1/2k) = (1 - 1/k)/2 exactly.
        for k in 2..20 {
            let c = Table1Row::ThisPaperClassical.exponent(k);
            let q = Table1Row::ThisPaperQuantum.exponent(k);
            assert!((q - c / 2.0).abs() < 1e-12, "k = {k}");
        }
    }

    #[test]
    fn quantum_c4_matches_lower_bound() {
        assert_eq!(Table1Row::ThisPaperQuantum.exponent(2), 0.25);
        assert_eq!(Table1Row::ThisPaperQuantumLowerBound.exponent(2), 0.25);
    }

    #[test]
    fn classification_flags() {
        assert!(!Table1Row::EvenLowerBound.is_upper_bound());
        assert!(Table1Row::ThisPaperClassical.is_upper_bound());
        assert!(Table1Row::ThisPaperQuantum.is_quantum());
        assert!(!Table1Row::ThisPaperClassical.is_quantum());
        for row in Table1Row::ALL {
            assert!(!row.label().is_empty());
        }
    }

    #[test]
    fn fit_exponent_recovers_power_laws() {
        let samples: Vec<(f64, f64)> = (8..14)
            .map(|e| {
                let n = (1u64 << e) as f64;
                (n, 3.0 * n.powf(0.5))
            })
            .collect();
        let (alpha, c) = fit_exponent(&samples);
        assert!((alpha - 0.5).abs() < 1e-9);
        assert!((c - 3.0).abs() < 1e-6);
    }

    #[test]
    fn theorem1_constant_grows_with_k() {
        assert!(theorem1_constant(3, 1.0 / 3.0) > theorem1_constant(2, 1.0 / 3.0));
        assert!(theorem1_constant(2, 0.01) > theorem1_constant(2, 1.0 / 3.0));
    }

    #[test]
    fn rounds_monotone_in_n() {
        for row in Table1Row::ALL {
            assert!(row.rounds(1 << 20, 3) > row.rounds(1 << 10, 3), "{row:?}");
        }
    }
}
