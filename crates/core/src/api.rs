//! The unified detection API: one polymorphic surface over every cycle
//! detector in the workspace — the paper's algorithms and the Table 1
//! comparators alike.
//!
//! Table 1 of the paper is a *comparison*: the new randomized
//! `O(n^{1-1/k})` and quantum `Õ(n^{1/2-1/2k})` detectors against five
//! prior baselines. This module gives that comparison a common type:
//!
//! * [`Detector`] — `detect(&graph, seed, &budget) → Result<Detection>`;
//! * [`Detection`] — a [`Verdict`] (accept / reject with a validated
//!   [`CycleWitness`]), a [`RunCost`] (rounds, messages, congestion,
//!   iterations), and the algorithm's [`Descriptor`];
//! * [`Budget`] — the resource envelope of a run: per-edge
//!   [`bandwidth`](Budget::bandwidth) in words per round (`B = 1` is
//!   classical CONGEST) and an optional repetition override for
//!   experiment sweeps.
//!
//! Every implementation routes through the same fallible surface
//! (`Result<Detection, SimError>`): simulator-level failures (step-limit
//! overruns, model violations) surface as errors instead of panics,
//! matching what was previously only true of the deterministic
//! gathering baseline.
//!
//! The `DetectorRegistry` enumerating boxed implementations by
//! `(model, target, k)` lives in the facade crate (`even-cycle-congest`),
//! which can see the baselines as well; the trait and outcome types live
//! here so every algorithm crate can implement them.

use congest_graph::{CycleWitness, Graph, NodeId};
use congest_sim::{Backend, CutMeter, Program, RunReport, SimError};

use crate::theory::Table1Row;

/// Runs a CONGEST node program under a [`Backend`] — the single entry
/// point every detector hot loop in the workspace (and the baselines)
/// routes through, so one knob switches all of them between the
/// sequential and parallel superstep cores. Returns the run report and
/// the final per-node states; both are byte-identical whatever the
/// backend or thread count.
///
/// # Errors
///
/// Same as [`congest_sim::Executor::run`]: step-limit overruns and
/// model violations surface as [`SimError`]s.
#[allow(clippy::too_many_arguments)]
pub fn run_program<P, F>(
    g: &Graph,
    seed: u64,
    backend: Backend,
    bandwidth: u64,
    cut: Option<CutMeter>,
    factory: F,
    max_supersteps: u64,
) -> Result<(RunReport, Vec<P>), SimError>
where
    P: Program + Send,
    P::Msg: Send,
    F: FnMut(NodeId, usize) -> P,
{
    congest_sim::run_with_backend(g, seed, backend, bandwidth, cut, factory, max_supersteps)
}

/// Which CONGEST model an algorithm runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// Classical (randomized or deterministic) CONGEST.
    Classical,
    /// Quantum CONGEST (qubit messages, Grover-amplified subroutines).
    Quantum,
}

impl Model {
    /// A short lowercase label (`"classical"` / `"quantum"`).
    pub fn label(self) -> &'static str {
        match self {
            Model::Classical => "classical",
            Model::Quantum => "quantum",
        }
    }
}

/// The cycle family whose freeness a detector decides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// `C_{2k}`-freeness (the paper's headline problem).
    Even {
        /// Half the cycle length.
        k: usize,
    },
    /// `C_{2k+1}`-freeness (§3.4).
    Odd {
        /// The cycle length is `2k + 1`.
        k: usize,
    },
    /// `{C_ℓ | 3 ≤ ℓ ≤ 2k}`-freeness (§3.5).
    F2k {
        /// Half the maximum cycle length.
        k: usize,
    },
}

impl Target {
    /// The family parameter `k`.
    pub fn k(self) -> usize {
        match self {
            Target::Even { k } | Target::Odd { k } | Target::F2k { k } => k,
        }
    }

    /// Whether a cycle of length `len` belongs to the target family.
    pub fn matches_length(self, len: usize) -> bool {
        match self {
            Target::Even { k } => len == 2 * k,
            Target::Odd { k } => len == 2 * k + 1,
            Target::F2k { k } => (3..=2 * k).contains(&len),
        }
    }

    /// A compact label: `C4`, `C5`, `F6` (the latter meaning all lengths
    /// `3..=6`).
    pub fn label(self) -> String {
        match self {
            Target::Even { k } => format!("C{}", 2 * k),
            Target::Odd { k } => format!("C{}", 2 * k + 1),
            Target::F2k { k } => format!("F{}", 2 * k),
        }
    }
}

/// The resource envelope of one detection run.
#[derive(Debug, Clone, PartialEq)]
pub struct Budget {
    /// Per-edge bandwidth in words per round. `1` is classical CONGEST;
    /// larger values model CONGEST(B·log n). Classical detectors charge
    /// `⌈load/B⌉` rounds per superstep; the quantum pipelines apply the
    /// bandwidth both to their amplified base detector (the dominant
    /// term) and to the Lemma 10 decomposition cost.
    pub bandwidth: u64,
    /// Overrides the algorithm's repetition/attempt budget when `Some`
    /// (coloring iterations for the color-BFS family, attempts for the
    /// local-threshold baseline, base repetitions for the quantum
    /// pipelines). `None` keeps each algorithm's configured default.
    pub repetitions: Option<usize>,
    /// Keep iterating after the first rejection, spending the whole
    /// repetition budget (cost-scaling studies want every iteration's
    /// cost, not a run truncated at the first lucky coloring).
    /// Honored by the color-BFS family; detectors whose outer loop has
    /// no early exit ignore it.
    pub run_to_budget: bool,
    /// Hard cap on charged rounds. A detector whose outer loop notices
    /// the cap aborts between iterations and reports
    /// [`Verdict::BudgetExceeded`]; single-shot detectors and cost-model
    /// comparators are marked post hoc through [`Budget::enforce`]. The
    /// charged total may overshoot the cap by at most one iteration.
    pub max_rounds: Option<u64>,
    /// Hard cap on total point-to-point messages; same abort semantics
    /// as [`Budget::max_rounds`]. Only meaningful for detectors whose
    /// cost model tracks messages: the quantum pipelines and the
    /// cost-model comparators report `messages = 0`, so a message cap
    /// never binds them — cap rounds to bound those.
    pub max_messages: Option<u64>,
    /// The simulation backend every simulated superstep of the run
    /// uses ([`Backend::Sequential`] by default). Purely an execution
    /// knob: transcripts, verdicts, and costs are byte-identical
    /// across backends and thread counts, which is why the experiment
    /// store's unit key deliberately excludes it.
    pub backend: Backend,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            bandwidth: 1,
            repetitions: None,
            run_to_budget: false,
            max_rounds: None,
            max_messages: None,
            backend: Backend::Sequential,
        }
    }
}

impl Budget {
    /// The classical CONGEST budget (`B = 1`, algorithm defaults).
    pub fn classical() -> Self {
        Budget::default()
    }

    /// Sets the per-edge bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth == 0`.
    pub fn with_bandwidth(mut self, bandwidth: u64) -> Self {
        assert!(bandwidth > 0, "bandwidth must be positive");
        self.bandwidth = bandwidth;
        self
    }

    /// Overrides the repetition budget.
    ///
    /// # Panics
    ///
    /// Panics if `repetitions == 0`.
    pub fn with_repetitions(mut self, repetitions: usize) -> Self {
        assert!(repetitions > 0, "at least one repetition");
        self.repetitions = Some(repetitions);
        self
    }

    /// Keeps iterating after the first rejection (see
    /// [`Budget::run_to_budget`]).
    pub fn exhaustive(mut self) -> Self {
        self.run_to_budget = true;
        self
    }

    /// Caps the charged rounds (see [`Budget::max_rounds`]).
    ///
    /// # Panics
    ///
    /// Panics if `max_rounds == 0`.
    pub fn with_round_cap(mut self, max_rounds: u64) -> Self {
        assert!(max_rounds > 0, "round cap must be positive");
        self.max_rounds = Some(max_rounds);
        self
    }

    /// Caps the total messages (see [`Budget::max_messages`]).
    ///
    /// # Panics
    ///
    /// Panics if `max_messages == 0`.
    pub fn with_message_cap(mut self, max_messages: u64) -> Self {
        assert!(max_messages > 0, "message cap must be positive");
        self.max_messages = Some(max_messages);
        self
    }

    /// Selects the simulation backend (see [`Budget::backend`]).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Whether any hard cap is configured.
    pub fn has_caps(&self) -> bool {
        self.max_rounds.is_some() || self.max_messages.is_some()
    }

    /// Whether an accumulated cost has blown past the configured caps.
    pub fn caps_exceeded(&self, cost: &RunCost) -> bool {
        self.max_rounds.is_some_and(|cap| cost.rounds > cap)
            || self.max_messages.is_some_and(|cap| cost.messages > cap)
    }

    /// Enforces the caps on a finished run: an *accept* whose cost
    /// overran the budget is downgraded to [`Verdict::BudgetExceeded`] —
    /// a truncated run would never have reached that acceptance, so it
    /// cannot be trusted. A certified rejection stands regardless (the
    /// witness is proof however long the run took). Detectors with an
    /// iteration loop abort early on their own; this post-hoc pass is
    /// the uniform guarantee every [`Detector::detect`] implementation
    /// routes through.
    pub fn enforce(&self, mut detection: Detection) -> Detection {
        if matches!(detection.verdict, Verdict::Accept) && self.caps_exceeded(&detection.cost) {
            detection.verdict = Verdict::BudgetExceeded {
                rounds: detection.cost.rounds,
                messages: detection.cost.messages,
            };
        }
        detection
    }
}

/// Unified cost accounting — the fields every algorithm can report,
/// whatever its model (previously scattered across `RunReport`, ad-hoc
/// round counters, and the quantum outcome types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunCost {
    /// Rounds charged in the algorithm's own cost model (classical
    /// CONGEST rounds, or quantum rounds for the amplified pipelines).
    pub rounds: u64,
    /// Synchronous supersteps executed (0 where the cost model is
    /// analytic rather than simulated step by step).
    pub supersteps: u64,
    /// Total point-to-point messages.
    pub messages: u64,
    /// Total words sent over all edges and supersteps.
    pub words: u64,
    /// Maximum words carried by any directed edge in any superstep —
    /// the congestion statistic the paper's threshold `τ` bounds.
    pub max_congestion: u64,
    /// Iterations of the algorithm's outer loop: coloring repetitions,
    /// attempts, or Grover iterations, per the algorithm's docs.
    pub iterations: u64,
}

impl RunCost {
    /// Converts a simulator [`RunReport`] plus an iteration count.
    pub fn from_report(report: &RunReport, iterations: u64) -> RunCost {
        RunCost {
            rounds: report.rounds,
            supersteps: report.supersteps,
            messages: report.congestion.total_messages,
            words: report.congestion.total_words,
            max_congestion: report.congestion.max_words_per_edge_step,
            iterations,
        }
    }
}

/// The decision of one run, with its certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// No target cycle found (for one-sided detectors this is the only
    /// possible answer on target-free inputs).
    Accept,
    /// A target cycle was found.
    Reject {
        /// The certified cycle, validated against the input graph before
        /// being reported. `None` only for cost-model comparators that
        /// cannot reconstruct one.
        witness: Option<CycleWitness>,
        /// The detected cycle's length, when known.
        cycle_length: Option<usize>,
    },
    /// The run blew past a hard [`Budget`] cap and was aborted before it
    /// could decide; neither acceptance nor rejection can be concluded.
    BudgetExceeded {
        /// Rounds charged when the run was cut off.
        rounds: u64,
        /// Messages charged when the run was cut off.
        messages: u64,
    },
}

impl Verdict {
    /// Whether the run found a cycle.
    pub fn rejected(&self) -> bool {
        matches!(self, Verdict::Reject { .. })
    }

    /// Whether the run was aborted by a [`Budget`] cap.
    pub fn budget_exceeded(&self) -> bool {
        matches!(self, Verdict::BudgetExceeded { .. })
    }

    /// The witness, if any.
    pub fn witness(&self) -> Option<&CycleWitness> {
        match self {
            Verdict::Accept | Verdict::BudgetExceeded { .. } => None,
            Verdict::Reject { witness, .. } => witness.as_ref(),
        }
    }
}

/// Static metadata describing an algorithm — the information a Table 1
/// row carries.
#[derive(Debug, Clone, PartialEq)]
pub struct Descriptor {
    /// Human-readable algorithm name.
    pub name: &'static str,
    /// Citation tag (`"this paper"`, `"[10]"`, …).
    pub reference: &'static str,
    /// Classical or quantum CONGEST.
    pub model: Model,
    /// The cycle family decided.
    pub target: Target,
    /// The theoretical exponent `α` of the `n^α` round complexity
    /// (polylogs normalized), for plotting measured fits against.
    pub exponent: f64,
    /// The corresponding row of the paper's Table 1, when one exists.
    pub table1: Option<Table1Row>,
}

impl Descriptor {
    /// A stable registry identifier, e.g. `classical/C4/this-paper`.
    pub fn id(&self) -> String {
        format!(
            "{}/{}/{}",
            self.model.label(),
            self.target.label(),
            self.name.replace(' ', "-").to_lowercase()
        )
    }
}

/// The result of running a [`Detector`] — verdict, cost, and the
/// algorithm's metadata, in one comparable value.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Which algorithm produced this result.
    pub algorithm: Descriptor,
    /// The decision with its certificate.
    pub verdict: Verdict,
    /// What the run cost.
    pub cost: RunCost,
}

impl Detection {
    /// Whether the run found a cycle.
    pub fn rejected(&self) -> bool {
        self.verdict.rejected()
    }

    /// Whether the run was aborted by a [`Budget`] cap.
    pub fn budget_exceeded(&self) -> bool {
        self.verdict.budget_exceeded()
    }

    /// The witness, if any.
    pub fn witness(&self) -> Option<&CycleWitness> {
        self.verdict.witness()
    }

    /// Rounds charged in the algorithm's cost model.
    pub fn rounds(&self) -> u64 {
        self.cost.rounds
    }
}

/// The outcome type of [`Detector::detect`]: simulator failures
/// (step-limit overruns, model violations) surface as values, not
/// panics.
pub type DetectResult = Result<Detection, SimError>;

/// A cycle detector in the CONGEST model — the one polymorphic entry
/// point every algorithm in the workspace implements.
///
/// Contract:
///
/// * **Determinism**: all randomness derives from `seed`; equal
///   `(graph, seed, budget)` yields equal [`Detection`]s. Combined with
///   the `Send + Sync` supertraits, this is what lets the experiment
///   engine shard a sweep matrix across worker threads and still
///   produce byte-identical reports.
/// * **One-sidedness**: on inputs free of the target family, every
///   implementation accepts with probability 1 (rejecting such an input
///   is a bug, not bad luck).
/// * **Certification**: rejections carry a witness validated against the
///   input graph whenever the algorithm can reconstruct one, and the
///   witness's length belongs to the target family.
///
/// ```
/// use congest_graph::generators;
/// use even_cycle::{Budget, CycleDetector, Detector, Params};
///
/// let host = generators::random_tree(48, 3);
/// let (g, _) = generators::plant_cycle(&host, 4, 3);
/// let det = CycleDetector::new(Params::practical(2));
/// let detection = det.detect(&g, 1, &Budget::classical()).unwrap();
/// assert!(detection.rejected());
/// assert!(detection.witness().unwrap().is_valid(&g));
/// assert_eq!(det.descriptor().target.label(), "C4");
/// ```
pub trait Detector: Send + Sync + std::fmt::Debug {
    /// The algorithm's static metadata.
    fn descriptor(&self) -> Descriptor;

    /// A deterministic fingerprint of the detector's *configuration*
    /// (repetitions, modes, declared probabilities — everything that
    /// changes what a run computes beyond the descriptor id). The
    /// experiment store folds this into its config hash so two
    /// differently-tuned instances of the same algorithm can never
    /// replay each other's cached results. The default is the `Debug`
    /// rendering, which for the workspace's derive-based detectors
    /// captures every field.
    fn config_fingerprint(&self) -> String {
        format!("{self:?}")
    }

    /// Runs the detector on `g` with all randomness derived from `seed`,
    /// under the given resource budget.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SimError`] if the CONGEST simulation
    /// fails (step-limit exceeded, model violation) instead of
    /// panicking.
    fn detect(&self, g: &Graph, seed: u64, budget: &Budget) -> DetectResult;
}

impl<D: Detector + ?Sized> Detector for &D {
    fn descriptor(&self) -> Descriptor {
        (**self).descriptor()
    }

    fn config_fingerprint(&self) -> String {
        (**self).config_fingerprint()
    }

    fn detect(&self, g: &Graph, seed: u64, budget: &Budget) -> DetectResult {
        (**self).detect(g, seed, budget)
    }
}

impl<D: Detector + ?Sized> Detector for Box<D> {
    fn descriptor(&self) -> Descriptor {
        (**self).descriptor()
    }

    fn config_fingerprint(&self) -> String {
        (**self).config_fingerprint()
    }

    fn detect(&self, g: &Graph, seed: u64, budget: &Budget) -> DetectResult {
        (**self).detect(g, seed, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_labels_and_membership() {
        assert_eq!(Target::Even { k: 2 }.label(), "C4");
        assert_eq!(Target::Odd { k: 2 }.label(), "C5");
        assert_eq!(Target::F2k { k: 3 }.label(), "F6");
        assert!(Target::Even { k: 3 }.matches_length(6));
        assert!(!Target::Even { k: 3 }.matches_length(5));
        assert!(Target::F2k { k: 3 }.matches_length(3));
        assert!(Target::F2k { k: 3 }.matches_length(6));
        assert!(!Target::F2k { k: 3 }.matches_length(7));
        assert_eq!(Target::Odd { k: 4 }.k(), 4);
    }

    #[test]
    fn budget_builders() {
        let b = Budget::classical().with_bandwidth(4).with_repetitions(9);
        assert_eq!(b.bandwidth, 4);
        assert_eq!(b.repetitions, Some(9));
        assert_eq!(Budget::default().bandwidth, 1);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = Budget::classical().with_bandwidth(0);
    }

    #[test]
    fn caps_and_enforcement() {
        let b = Budget::classical().with_round_cap(10).with_message_cap(100);
        assert!(b.has_caps());
        assert!(!Budget::classical().has_caps());
        let under = RunCost {
            rounds: 10,
            messages: 100,
            ..Default::default()
        };
        assert!(!b.caps_exceeded(&under));
        let over = RunCost {
            rounds: 11,
            ..Default::default()
        };
        assert!(b.caps_exceeded(&over));

        let d = Descriptor {
            name: "x",
            reference: "y",
            model: Model::Classical,
            target: Target::Even { k: 2 },
            exponent: 0.5,
            table1: None,
        };
        let det = Detection {
            algorithm: d,
            verdict: Verdict::Accept,
            cost: over,
        };
        let enforced = b.enforce(det.clone());
        assert!(enforced.budget_exceeded());
        assert!(!enforced.rejected());
        assert!(enforced.witness().is_none());
        // Without caps, enforce is the identity.
        assert_eq!(Budget::classical().enforce(det.clone()), det);
    }

    #[test]
    fn run_cost_from_report() {
        let mut report = RunReport::empty();
        report.rounds = 10;
        report.supersteps = 4;
        report.congestion.total_words = 30;
        report.congestion.total_messages = 12;
        report.congestion.max_words_per_edge_step = 5;
        let cost = RunCost::from_report(&report, 3);
        assert_eq!(cost.rounds, 10);
        assert_eq!(cost.words, 30);
        assert_eq!(cost.messages, 12);
        assert_eq!(cost.max_congestion, 5);
        assert_eq!(cost.iterations, 3);
    }

    #[test]
    fn verdict_helpers() {
        assert!(!Verdict::Accept.rejected());
        let r = Verdict::Reject {
            witness: None,
            cycle_length: Some(4),
        };
        assert!(r.rejected());
        assert!(r.witness().is_none());
    }

    #[test]
    fn descriptor_id_is_stable() {
        let d = Descriptor {
            name: "color-BFS detector",
            reference: "this paper",
            model: Model::Classical,
            target: Target::Even { k: 2 },
            exponent: 0.5,
            table1: Some(Table1Row::ThisPaperClassical),
        };
        assert_eq!(d.id(), "classical/C4/color-bfs-detector");
    }
}
