//! `{C_ℓ | 3 ≤ ℓ ≤ 2k}`-freeness (paper §3.5).
//!
//! The detector processes length *pairs* `(C_{2ℓ-1}, C_{2ℓ})` for
//! `ℓ = 2, …, k`, each pair assuming no shorter cycle exists (shorter
//! cycles are caught by an earlier pair). Per pair, relative to
//! Algorithm 1: `W` becomes *all* neighbors of `S` (no degree
//! restriction), the threshold becomes `τ = 2np`, and the two heavy
//! `color-BFS` calls merge into one `color-BFS(G, c, W, τ)`. Odd cycles
//! `C_{2ℓ-1}` are caught on the fly: nodes colored `ℓ+1` also forward to
//! neighbors colored `ℓ-1`, which reject on a match with their own
//! collected set.

use congest_graph::{CycleWitness, Graph, NodeId};
use congest_sim::{
    derive_seed, Backend, Control, Ctx, Decision, MessageSize, Outbox, Program, RunReport,
};
use rand::Rng;

use crate::api::run_program;
use crate::detector::random_coloring;
use crate::witness::find_colored_path;

/// Messages of the pair protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PairMsg {
    Hello { color: u8, in_h: bool },
    Ids(Vec<u32>),
}

impl MessageSize for PairMsg {
    fn words(&self) -> usize {
        match self {
            PairMsg::Hello { .. } => 1,
            PairMsg::Ids(ids) => ids.len().max(1),
        }
    }
}

/// What a rejecting node certified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PairEvidence {
    /// A `C_{2ℓ}` (checked at color `ℓ`).
    Even { origin: u32 },
    /// A `C_{2ℓ-1}` (checked at color `ℓ-1`).
    Odd { origin: u32 },
}

/// Per-node program detecting the pair `(C_{2ℓ-1}, C_{2ℓ})` under a
/// `2ℓ`-coloring.
#[derive(Debug, Clone)]
struct PairColorBfs {
    l: usize,
    color: u8,
    in_h: bool,
    active_source: bool,
    tau: u64,
    nbr_color: Vec<u8>,
    nbr_in_h: Vec<bool>,
    /// For color ℓ-1: the collected up-chain set, kept for the odd check.
    my_ids: Vec<u32>,
    evidence: Option<PairEvidence>,
}

impl PairColorBfs {
    fn action_step(&self) -> usize {
        let c = self.color as usize;
        let l = self.l;
        match c {
            0 => 0,
            c if c <= l => c,
            c => 2 * l - c,
        }
    }

    fn collect(&self, inbox: &[(NodeId, PairMsg)], ctx: &Ctx, expected: u8) -> Vec<u32> {
        let mut ids = Vec::new();
        for (from, msg) in inbox {
            if let PairMsg::Ids(payload) = msg {
                let pos = ctx
                    .neighbors
                    .binary_search(from)
                    .expect("sender is a neighbor");
                if self.nbr_in_h[pos] && self.nbr_color[pos] == expected {
                    ids.extend_from_slice(payload);
                }
            }
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    fn forward(&self, ctx: &Ctx, out: &mut Outbox<PairMsg>, ids: &[u32], next: u8) {
        if ids.is_empty() {
            return;
        }
        for (pos, &nbr) in ctx.neighbors.iter().enumerate() {
            if self.nbr_in_h[pos] && self.nbr_color[pos] == next {
                out.send(nbr, PairMsg::Ids(ids.to_vec()));
            }
        }
    }
}

impl Program for PairColorBfs {
    type Msg = PairMsg;

    fn init(&mut self, _ctx: &mut Ctx, out: &mut Outbox<PairMsg>) {
        out.broadcast(PairMsg::Hello {
            color: self.color,
            in_h: self.in_h,
        });
    }

    fn step(
        &mut self,
        ctx: &mut Ctx,
        superstep: usize,
        inbox: &[(NodeId, PairMsg)],
        out: &mut Outbox<PairMsg>,
    ) -> Control {
        let l = self.l;
        if superstep == 0 {
            self.nbr_color = vec![0; ctx.neighbors.len()];
            self.nbr_in_h = vec![false; ctx.neighbors.len()];
            for (from, msg) in inbox {
                if let PairMsg::Hello { color, in_h } = msg {
                    let pos = ctx
                        .neighbors
                        .binary_search(from)
                        .expect("sender is a neighbor");
                    self.nbr_color[pos] = *color;
                    self.nbr_in_h[pos] = *in_h;
                }
            }
            if !self.in_h {
                return Control::Halt;
            }
            if self.active_source {
                let me = ctx.node.raw();
                for (pos, &nbr) in ctx.neighbors.iter().enumerate() {
                    if self.nbr_in_h[pos] {
                        out.send(nbr, PairMsg::Ids(vec![me]));
                    }
                }
            }
            return if self.action_step() == 0 {
                Control::Halt
            } else {
                Control::Continue
            };
        }

        let c = self.color as usize;
        if c == l - 1 && l >= 2 {
            // Up-chain step at ℓ-1 plus the odd check one step later.
            if superstep == l - 1 {
                let prev = if l == 2 { 0u8 } else { (l - 2) as u8 };
                let ids = self.collect(inbox, ctx, prev);
                if ids.len() as u64 <= self.tau {
                    self.forward(ctx, out, &ids, l as u8);
                    self.my_ids = ids;
                } else {
                    self.my_ids = Vec::new(); // discarded
                }
                return Control::Continue;
            }
            if superstep == l {
                let from_high = self.collect(inbox, ctx, (l + 1) as u8);
                if let Some(&x) = self
                    .my_ids
                    .iter()
                    .find(|x| from_high.binary_search(x).is_ok())
                {
                    self.evidence = Some(PairEvidence::Odd { origin: x });
                }
                return Control::Halt;
            }
            return Control::Continue;
        }

        let action = self.action_step();
        if superstep < action {
            return Control::Continue;
        }

        if (1..l).contains(&c) {
            // (colors ℓ-1 handled above; this is 1..ℓ-2)
            let ids = self.collect(inbox, ctx, (c - 1) as u8);
            if ids.len() as u64 <= self.tau {
                self.forward(ctx, out, &ids, (c + 1) as u8);
            }
        } else if c > l {
            let prev = if c == 2 * l - 1 { 0 } else { (c + 1) as u8 };
            let ids = self.collect(inbox, ctx, prev);
            if ids.len() as u64 <= self.tau {
                self.forward(ctx, out, &ids, (c - 1) as u8);
                if c == l + 1 {
                    // §3.5 extension: also hand the set to ℓ-1 nodes for
                    // the odd check.
                    self.forward(ctx, out, &ids, (l - 1) as u8);
                }
            }
        } else if c == l {
            let low = self.collect(inbox, ctx, (l - 1) as u8);
            let high = self.collect(inbox, ctx, (l + 1) as u8);
            if let Some(&x) = low.iter().find(|x| high.binary_search(x).is_ok()) {
                self.evidence = Some(PairEvidence::Even { origin: x });
            }
        }
        Control::Halt
    }

    fn decision(&self) -> Decision {
        if self.evidence.is_some() {
            Decision::Reject
        } else {
            Decision::Accept
        }
    }
}

/// The outcome of an [`F2kDetector`] run.
#[derive(Debug, Clone)]
pub struct F2kOutcome {
    /// Whether some `C_ℓ`, `3 ≤ ℓ ≤ 2k`, was found.
    pub rejected: bool,
    /// The length of the detected cycle.
    pub cycle_length: Option<usize>,
    /// The verified witness.
    pub witness: Option<CycleWitness>,
    /// Which pair `ℓ` (detecting `C_{2ℓ-1}`/`C_{2ℓ}`) fired.
    pub pair: Option<usize>,
    /// Total coloring repetitions executed across all pairs (stops at
    /// the first rejection).
    pub iterations: u64,
    /// Accumulated CONGEST costs.
    pub report: RunReport,
    /// Whether the pair loop was aborted by a [`Budget`](crate::Budget)
    /// cap (the decision is then untrusted).
    pub budget_exceeded: bool,
}

impl F2kOutcome {
    /// Whether a cycle was found.
    pub fn rejected(&self) -> bool {
        self.rejected
    }
}

/// The §3.5 detector for `{C_ℓ | 3 ≤ ℓ ≤ 2k}`-freeness.
///
/// ```
/// use congest_graph::generators;
/// use even_cycle::F2kDetector;
/// // A farm of disjoint C5s (girth 5): the pair ℓ=3 must catch one as
/// // the odd member. (The farm keeps n large enough for the selection
/// // probability to leave its min(1, ·) clamp and boosts the
/// // per-repetition success by the number of copies.)
/// let mut g = generators::cycle(5);
/// for _ in 1..8 {
///     g = generators::disjoint_union(&g, &generators::cycle(5));
/// }
/// let g = generators::disjoint_union(&g, &generators::path(10));
/// let det = F2kDetector::new(3).with_repetitions(2000);
/// let found = (0..10).any(|seed| {
///     let o = det.run(&g, seed);
///     if o.rejected() {
///         assert_eq!(o.cycle_length, Some(5));
///     }
///     o.rejected()
/// });
/// assert!(found);
/// ```
#[derive(Debug, Clone)]
pub struct F2kDetector {
    k: usize,
    repetitions_per_pair: usize,
    eps_hat: f64,
    /// §3.5 quantization mode: activate sources with probability `1/τ`
    /// and clamp the threshold to 4 (the `F_{2k}` analogue of
    /// Algorithm 2), making the detector constant-congestion and
    /// amplifiable.
    randomized: bool,
}

impl F2kDetector {
    /// Creates a detector for cycles of length at most `2k` (`k ≥ 2`),
    /// with a practical repetition cap per pair (see
    /// [`crate::Params::practical`] for the rationale).
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "F_{{2k}} needs k ≥ 2");
        F2kDetector {
            k,
            repetitions_per_pair: 512,
            eps_hat: 9f64.ln(),
            randomized: false,
        }
    }

    /// Switches to the congestion-reduced variant (activation `1/τ`,
    /// threshold 4) — the classical half of the §3.5 quantum algorithm.
    pub fn randomized(mut self) -> Self {
        self.randomized = true;
        self
    }

    /// Whether the congestion-reduced variant is active.
    pub fn is_randomized(&self) -> bool {
        self.randomized
    }

    /// The largest pair threshold `τ_k = 2np_k` at size `n` (the binding
    /// one: `τ_ℓ` grows with `ℓ`).
    pub fn max_tau(&self, n: usize) -> u64 {
        let l = self.k;
        let deg_threshold = (n as f64).powf(1.0 / l as f64);
        let p = (self.eps_hat * 2.0 * (l * l) as f64 / deg_threshold).min(1.0);
        ((2.0 * n as f64 * p).ceil() as u64).max(1)
    }

    /// One-sided success probability of a randomized run (`1/(3τ_k)`,
    /// following Lemma 12's argument applied per pair).
    pub fn success_probability(&self, n: usize) -> f64 {
        1.0 / (3.0 * self.max_tau(n) as f64)
    }

    /// Upper bound on the rounds of one run: per pair,
    /// `K` repetitions × 2 calls × `(ℓ+2)` supersteps, each superstep
    /// carrying at most 4 words per edge in randomized mode (or `τ_ℓ`
    /// otherwise — this bound is for the randomized variant used by the
    /// quantum pipeline).
    pub fn round_bound(&self) -> u64 {
        let mut total = 0u64;
        for l in 2..=self.k as u64 {
            total += self.repetitions_per_pair as u64 * 2 * (1 + (l + 1) * 4);
        }
        total + 2
    }

    /// Wraps the (randomized) detector as a Monte-Carlo algorithm over a
    /// fixed graph, for quantum amplification.
    ///
    /// # Panics
    ///
    /// Panics if the detector is not in randomized mode (the full
    /// threshold variant has `Θ(n^{1-1/k})` rounds and nothing to
    /// amplify).
    pub fn as_monte_carlo<'a>(&'a self, g: &'a Graph) -> F2kMc<'a> {
        assert!(
            self.randomized,
            "amplification needs the randomized (constant-congestion) variant"
        );
        F2kMc {
            det: self,
            g,
            bandwidth: 1,
        }
    }

    /// Overrides the per-pair repetition count.
    pub fn with_repetitions(mut self, repetitions: usize) -> Self {
        assert!(repetitions >= 1, "at least one repetition");
        self.repetitions_per_pair = repetitions;
        self
    }

    /// The largest cycle length decided (`2k`).
    pub fn max_cycle_length(&self) -> usize {
        2 * self.k
    }

    /// Runs the detector; randomness derives from `seed`.
    pub fn run(&self, g: &Graph, seed: u64) -> F2kOutcome {
        self.run_with_bandwidth(g, seed, 1)
    }

    /// [`F2kDetector::run`] at per-edge bandwidth `B` (words per round).
    pub fn run_with_bandwidth(&self, g: &Graph, seed: u64, bandwidth: u64) -> F2kOutcome {
        self.run_capped(g, seed, bandwidth, Backend::Sequential, None, None)
    }

    /// [`F2kDetector::run_with_bandwidth`] on an explicit simulation
    /// [`Backend`]; the outcome is byte-identical whatever the backend.
    pub fn run_on_backend(
        &self,
        g: &Graph,
        seed: u64,
        bandwidth: u64,
        backend: Backend,
    ) -> F2kOutcome {
        self.run_capped(g, seed, bandwidth, backend, None, None)
    }

    /// [`F2kDetector::run_with_bandwidth`] with hard round/message caps:
    /// the pair/repetition loop aborts (flagging the outcome) once the
    /// accumulated cost passes either cap.
    fn run_capped(
        &self,
        g: &Graph,
        seed: u64,
        bandwidth: u64,
        backend: Backend,
        round_cap: Option<u64>,
        message_cap: Option<u64>,
    ) -> F2kOutcome {
        let n = g.node_count();
        let mut total = RunReport::empty();
        let mut iterations = 0u64;
        let exceeded = |total: &RunReport| {
            crate::detector::report_caps_exceeded(total, round_cap, message_cap)
        };
        for l in 2..=self.k {
            // Pair parameters (§3.5): p = ε̂·2ℓ²/n^{1/ℓ}, τ = 2np,
            // U = degree ≤ n^{1/ℓ}, W = N(S) ∖ S.
            let deg_threshold = (n as f64).powf(1.0 / l as f64);
            let p = (self.eps_hat * 2.0 * (l * l) as f64 / deg_threshold).min(1.0);
            let tau = ((2.0 * n as f64 * p).ceil() as u64).max(1);
            let pair_seed = derive_seed(seed, 0x2000 + l as u64);
            let s_mask: Vec<bool> = {
                use rand::SeedableRng;
                let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(pair_seed);
                (0..n).map(|_| rng.gen_bool(p)).collect()
            };
            let w_mask: Vec<bool> = g
                .nodes()
                .map(|v| !s_mask[v.index()] && g.neighbors(v).iter().any(|u| s_mask[u.index()]))
                .collect();
            let u_mask: Vec<bool> = g
                .nodes()
                .map(|v| (g.degree(v) as f64) <= deg_threshold)
                .collect();
            let all = vec![true; n];

            for r in 0..self.repetitions_per_pair as u64 {
                iterations += 1;
                let colors = random_coloring(n, 2 * l, derive_seed(pair_seed, 0xC0 + r));
                // Two calls: light (G[U], X = U) and merged heavy
                // (G, X = W).
                let calls: [(&[bool], &[bool]); 2] = [(&u_mask, &u_mask), (&all, &w_mask)];
                for (ci, (h_mask, x_mask)) in calls.into_iter().enumerate() {
                    let call_seed = derive_seed(pair_seed, 0xF00 + r * 2 + ci as u64);
                    let (activation, call_tau) = if self.randomized {
                        (Some(1.0 / tau as f64), 4)
                    } else {
                        (None, tau)
                    };
                    let (report, rejection) = run_pair_call(
                        g, l, &colors, h_mask, x_mask, activation, call_tau, bandwidth, backend,
                        call_seed,
                    );
                    total.absorb(&report);
                    if let Some((v, evidence)) = rejection {
                        let (witness, len) = match evidence {
                            PairEvidence::Even { origin } => {
                                let w = crate::witness::extract_even_witness(
                                    g,
                                    h_mask,
                                    &colors,
                                    l,
                                    NodeId::new(origin),
                                    v,
                                )
                                .expect("even rejection certifiable");
                                (w, 2 * l)
                            }
                            PairEvidence::Odd { origin } => {
                                let w = extract_pair_odd_witness(
                                    g,
                                    h_mask,
                                    &colors,
                                    l,
                                    NodeId::new(origin),
                                    v,
                                )
                                .expect("odd rejection certifiable");
                                (w, 2 * l - 1)
                            }
                        };
                        assert!(witness.is_valid(g));
                        return F2kOutcome {
                            rejected: true,
                            cycle_length: Some(len),
                            witness: Some(witness),
                            pair: Some(l),
                            iterations,
                            report: total,
                            budget_exceeded: false,
                        };
                    }
                    if exceeded(&total) {
                        return F2kOutcome {
                            rejected: false,
                            cycle_length: None,
                            witness: None,
                            pair: None,
                            iterations,
                            report: total,
                            budget_exceeded: true,
                        };
                    }
                }
            }
        }
        F2kOutcome {
            rejected: false,
            cycle_length: None,
            witness: None,
            pair: None,
            iterations,
            report: total,
            budget_exceeded: false,
        }
    }
}

/// Runs one pair call and returns the report plus the first rejection.
#[allow(clippy::too_many_arguments)]
fn run_pair_call(
    g: &Graph,
    l: usize,
    colors: &[u8],
    h_mask: &[bool],
    x_mask: &[bool],
    activation: Option<f64>,
    tau: u64,
    bandwidth: u64,
    backend: Backend,
    seed: u64,
) -> (RunReport, Option<(NodeId, PairEvidence)>) {
    let active: Vec<bool> = match activation {
        None => vec![true; g.node_count()],
        Some(q) => {
            use rand::SeedableRng;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(derive_seed(seed, 0xAC7));
            (0..g.node_count()).map(|_| rng.gen_bool(q)).collect()
        }
    };
    let (report, nodes) = run_program(
        g,
        seed,
        backend,
        bandwidth,
        None,
        |v, _| PairColorBfs {
            l,
            color: colors[v.index()],
            in_h: h_mask[v.index()],
            active_source: x_mask[v.index()]
                && h_mask[v.index()]
                && colors[v.index()] == 0
                && active[v.index()],
            tau,
            nbr_color: Vec::new(),
            nbr_in_h: Vec::new(),
            my_ids: Vec::new(),
            evidence: None,
        },
        (l + 4) as u64,
    )
    .expect("pair color-BFS cannot violate the model");
    let rejection = report.rejecting_nodes.first().map(|&v| {
        let evidence = nodes[v as usize].evidence.expect("evidence");
        (NodeId::new(v), evidence)
    });
    (report, rejection)
}

/// Witness extraction for the odd member of a pair: `v` colored `ℓ-1`,
/// up-branch internals `1, …, ℓ-2`, down-branch internals
/// `2ℓ-1, …, ℓ+1` — total length `2ℓ-1`.
fn extract_pair_odd_witness(
    g: &Graph,
    h_mask: &[bool],
    colors: &[u8],
    l: usize,
    x: NodeId,
    v: NodeId,
) -> Option<CycleWitness> {
    let up_colors: Vec<u8> = (1..(l - 1) as u8).collect();
    let down_colors: Vec<u8> = ((l as u8 + 1)..(2 * l as u8)).rev().collect();
    let up = find_colored_path(g, h_mask, colors, &up_colors, x, v)?;
    let down = find_colored_path(g, h_mask, colors, &down_colors, x, v)?;
    let mut nodes = up;
    for &u in down[1..down.len() - 1].iter().rev() {
        nodes.push(u);
    }
    let w = CycleWitness::new(nodes);
    w.is_valid(g).then_some(w)
}

/// The randomized [`F2kDetector`] as a
/// [`congest_quantum::MonteCarloAlgorithm`].
#[derive(Debug, Clone)]
pub struct F2kMc<'a> {
    det: &'a F2kDetector,
    g: &'a Graph,
    bandwidth: u64,
}

impl F2kMc<'_> {
    /// Sets the per-edge bandwidth charged to the base runs.
    pub fn with_bandwidth(mut self, bandwidth: u64) -> Self {
        assert!(bandwidth > 0, "bandwidth must be positive");
        self.bandwidth = bandwidth;
        self
    }
}

impl congest_quantum::MonteCarloAlgorithm for F2kMc<'_> {
    fn run(&self, seed: u64) -> congest_quantum::McOutcome {
        let o = self.det.run_with_bandwidth(self.g, seed, self.bandwidth);
        congest_quantum::McOutcome {
            rejected: o.rejected,
            rounds: o.report.rounds,
        }
    }

    fn round_bound(&self) -> u64 {
        self.det.round_bound()
    }

    fn success_probability(&self) -> f64 {
        self.det.success_probability(self.g.node_count())
    }
}

impl crate::Detector for F2kDetector {
    fn descriptor(&self) -> crate::Descriptor {
        crate::Descriptor {
            name: "pairwise color-BFS sweep",
            reference: "this paper §3.5",
            model: crate::Model::Classical,
            target: crate::Target::F2k { k: self.k },
            exponent: 1.0 - 1.0 / self.k as f64,
            table1: Some(crate::theory::Table1Row::CensorHillelF2k),
        }
    }

    fn detect(&self, g: &Graph, seed: u64, budget: &crate::Budget) -> crate::DetectResult {
        let det = match budget.repetitions {
            Some(r) => self.clone().with_repetitions(r),
            None => self.clone(),
        };
        let o = det.run_capped(
            g,
            seed,
            budget.bandwidth,
            budget.backend,
            budget.max_rounds,
            budget.max_messages,
        );
        let cost = crate::RunCost::from_report(&o.report, o.iterations);
        let verdict = if o.rejected {
            crate::Verdict::Reject {
                cycle_length: o.cycle_length,
                witness: o.witness,
            }
        } else if o.budget_exceeded {
            crate::Verdict::BudgetExceeded {
                rounds: cost.rounds,
                messages: cost.messages,
            }
        } else {
            crate::Verdict::Accept
        };
        Ok(budget.enforce(crate::Detection {
            algorithm: self.descriptor(),
            verdict,
            cost,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    #[test]
    fn randomized_mode_keeps_congestion_constant() {
        let host = generators::erdos_renyi(100, 0.05, 4);
        let (g, _) = generators::plant_cycle(&host, 4, 4);
        let det = F2kDetector::new(3).with_repetitions(30).randomized();
        let o = det.run(&g, 2);
        assert!(
            o.report.congestion.max_words_per_edge_step <= 4,
            "randomized F2k congestion {}",
            o.report.congestion.max_words_per_edge_step
        );
    }

    #[test]
    fn randomized_mode_sound() {
        let det = F2kDetector::new(3).with_repetitions(20).randomized();
        for seed in 0..3 {
            let g = generators::high_girth(60, 6, 10, seed);
            assert!(!det.run(&g, seed).rejected(), "seed {seed}");
        }
    }

    #[test]
    fn monte_carlo_wrapper_requires_randomized() {
        let g = generators::cycle(8);
        let det = F2kDetector::new(2).randomized();
        let mc = det.as_monte_carlo(&g);
        use congest_quantum::MonteCarloAlgorithm;
        assert!(mc.success_probability() > 0.0);
        assert!(mc.round_bound() > 0);
        assert_eq!(mc.run(5), mc.run(5));
    }

    #[test]
    #[should_panic(expected = "randomized")]
    fn monte_carlo_wrapper_rejects_full_threshold_mode() {
        let g = generators::cycle(8);
        let det = F2kDetector::new(2);
        let _ = det.as_monte_carlo(&g);
    }

    #[test]
    fn detects_c4_via_pair_two() {
        let host = generators::random_tree(40, 3);
        let (g, _) = generators::plant_cycle(&host, 4, 3);
        let det = F2kDetector::new(3);
        let outcome = det.run(&g, 1);
        assert!(outcome.rejected());
        assert_eq!(outcome.pair, Some(2));
        assert_eq!(outcome.cycle_length, Some(4));
        assert!(outcome.witness.unwrap().is_valid(&g));
    }

    #[test]
    fn detects_triangle() {
        // A triangle farm has girth 3 and no C4 at all, so the detected
        // length is unambiguous. (A planted C3 on a random tree can
        // close an incidental C4 through a tree path, making the
        // reported length coloring-dependent.)
        let g = cycle_farm(3, 8);
        let det = F2kDetector::new(2);
        let found = (0..6).any(|seed| {
            let outcome = det.run(&g, seed);
            if outcome.rejected() {
                assert_eq!(outcome.cycle_length, Some(3));
                assert_eq!(outcome.witness.as_ref().unwrap().len(), 3);
            }
            outcome.rejected()
        });
        assert!(found, "triangle farm never detected");
    }

    /// `copies` disjoint copies of `C_len` plus a path, so that `n` is
    /// large enough for the cycle vertices to be light and the success
    /// probability per repetition is `copies` times the single-cycle one.
    fn cycle_farm(len: usize, copies: usize) -> congest_graph::Graph {
        let mut g = generators::cycle(len);
        for _ in 1..copies {
            g = generators::disjoint_union(&g, &generators::cycle(len));
        }
        generators::disjoint_union(&g, &generators::path(10))
    }

    #[test]
    fn detects_c5_with_pair_three() {
        // Girth-5 instance: pair ℓ=2 finds nothing, ℓ=3 must catch a C5
        // as the odd member.
        let g = cycle_farm(5, 8);
        let det = F2kDetector::new(3).with_repetitions(2000);
        let mut found = false;
        for seed in 0..10 {
            let outcome = det.run(&g, seed);
            if outcome.rejected() {
                assert_eq!(outcome.pair, Some(3));
                assert_eq!(outcome.cycle_length, Some(5));
                assert!(outcome.witness.unwrap().is_valid(&g));
                found = true;
                break;
            }
        }
        assert!(found, "C5 never found");
    }

    #[test]
    fn detects_c6_as_even_member() {
        let g = cycle_farm(6, 10); // girth 6
        let det = F2kDetector::new(3).with_repetitions(2000);
        let mut found = false;
        for seed in 0..10 {
            let outcome = det.run(&g, seed);
            if outcome.rejected() {
                assert_eq!(outcome.cycle_length, Some(6));
                found = true;
                break;
            }
        }
        assert!(found, "C6 never found");
    }

    #[test]
    fn soundness_on_high_girth_graphs() {
        // Θ(5,6) has girth 11 > 2k = 8: must always accept.
        let g = generators::theta(5, 6);
        let det = F2kDetector::new(4).with_repetitions(64);
        for seed in 0..4 {
            assert!(!det.run(&g, seed).rejected(), "seed {seed}");
        }
    }

    #[test]
    fn soundness_on_trees() {
        let det = F2kDetector::new(3).with_repetitions(32);
        for seed in 0..4 {
            let g = generators::random_tree(40, seed);
            assert!(!det.run(&g, seed).rejected());
        }
    }
}
