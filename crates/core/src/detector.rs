//! Algorithm 1: deciding `C_{2k}`-freeness with one-sided error `ε` in
//! `O(log²(1/ε)·2^{3k}·k^{2k+3}·n^{1-1/k})` rounds (Theorem 1).

use congest_graph::{CycleWitness, Graph, NodeId};
use congest_sim::{derive_seed, Backend, Control, Ctx, Decision, Outbox, Program, RunReport};
use rand::Rng;

use crate::api::run_program;
use crate::color_bfs::ColorBfs;
use crate::params::{Instance, Params};
use crate::witness::{extract_even_witness, DetectionOutcome, Phase, SetsSummary};

/// Test and experiment hooks for [`CycleDetector::run_with`].
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Use this coloring in every iteration instead of fresh random ones
    /// (lets unit tests pin the "well colored cycle" event).
    pub forced_coloring: Option<Vec<u8>>,
    /// Use this selected set `S` instead of per-node coins.
    pub forced_selection: Option<Vec<bool>>,
    /// Keep iterating after the first rejection (for error-probability
    /// studies that want every iteration's cost).
    pub continue_after_reject: bool,
    /// Per-edge bandwidth in words per round (`1` = classical CONGEST);
    /// see [`crate::Budget::bandwidth`].
    pub bandwidth: u64,
    /// Hard cap on accumulated rounds: the repetition loop aborts (with
    /// [`DetectionOutcome::budget_exceeded`] set) once the charged total
    /// passes it. See [`crate::Budget::max_rounds`].
    pub round_cap: Option<u64>,
    /// Hard cap on accumulated messages; same abort semantics.
    pub message_cap: Option<u64>,
    /// The simulation backend driving every superstep of the run; see
    /// [`crate::Budget::backend`]. Transcripts are byte-identical
    /// across backends.
    pub backend: Backend,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            forced_coloring: None,
            forced_selection: None,
            continue_after_reject: false,
            bandwidth: 1,
            round_cap: None,
            message_cap: None,
            backend: Backend::Sequential,
        }
    }
}

impl RunOptions {
    /// Whether an accumulated report has passed the configured caps.
    pub(crate) fn caps_exceeded(&self, report: &RunReport) -> bool {
        report_caps_exceeded(report, self.round_cap, self.message_cap)
    }
}

/// The one cap predicate every detector loop shares: an accumulated
/// report exceeds the budget once its rounds or messages pass the
/// respective cap.
pub(crate) fn report_caps_exceeded(
    report: &RunReport,
    round_cap: Option<u64>,
    message_cap: Option<u64>,
) -> bool {
    round_cap.is_some_and(|cap| report.rounds > cap)
        || message_cap.is_some_and(|cap| report.congestion.total_messages > cap)
}

/// The membership sets of Algorithm 1 (Instructions 1–5).
#[derive(Debug, Clone)]
pub struct Memberships {
    /// `U = {u : deg(u) ≤ n^{1/k}}` — the light nodes.
    pub u_mask: Vec<bool>,
    /// `S` — the randomly selected nodes.
    pub s_mask: Vec<bool>,
    /// `W = {u ∉ S : |N(u) ∩ S| ≥ k²}`.
    pub w_mask: Vec<bool>,
    /// Round cost of constructing them (the one-round `S`-flag exchange).
    pub setup_report: RunReport,
}

/// The one-round setup protocol: every node flips its selection coin,
/// broadcasts the flag, and counts selected neighbors to decide `W`
/// membership (Instructions 3–5 as a distributed program).
#[derive(Debug, Clone)]
struct SetupProgram {
    selection_probability: f64,
    k_squared: usize,
    forced: Option<bool>,
    in_s: bool,
    in_w: bool,
}

impl Program for SetupProgram {
    type Msg = bool;

    fn init(&mut self, ctx: &mut Ctx, out: &mut Outbox<bool>) {
        self.in_s = match self.forced {
            Some(v) => v,
            None => ctx.rng.gen_bool(self.selection_probability),
        };
        out.broadcast(self.in_s);
    }

    fn step(
        &mut self,
        _ctx: &mut Ctx,
        _superstep: usize,
        inbox: &[(NodeId, bool)],
        _out: &mut Outbox<bool>,
    ) -> Control {
        let selected_neighbors = inbox.iter().filter(|(_, s)| *s).count();
        self.in_w = !self.in_s && selected_neighbors >= self.k_squared;
        Control::Halt
    }
}

/// The `C_{2k}`-freeness detector of Theorem 1.
///
/// ```
/// use congest_graph::generators;
/// use even_cycle::{CycleDetector, Params};
///
/// let host = generators::random_tree(48, 3);
/// let (g, _) = generators::plant_cycle(&host, 4, 3);
/// let outcome = CycleDetector::new(Params::practical(2)).run(&g, 1);
/// assert!(outcome.rejected());
/// assert!(outcome.witness().unwrap().is_valid(&g));
/// ```
#[derive(Debug, Clone)]
pub struct CycleDetector {
    params: Params,
}

impl CycleDetector {
    /// Creates a detector with the given parameters.
    pub fn new(params: Params) -> Self {
        CycleDetector { params }
    }

    /// The parameters in use.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Runs Algorithm 1 on `g` with all randomness derived from `seed`.
    pub fn run(&self, g: &Graph, seed: u64) -> DetectionOutcome {
        self.run_with(g, seed, &RunOptions::default())
    }

    /// Constructs the sets `U`, `S`, `W` (Instructions 1–5).
    pub fn build_memberships(
        &self,
        g: &Graph,
        seed: u64,
        options: &RunOptions,
    ) -> (Instance, Memberships) {
        let n = g.node_count();
        let inst = self.params.instantiate(n);
        let u_mask: Vec<bool> = g
            .nodes()
            .map(|v| (g.degree(v) as f64) <= inst.degree_threshold)
            .collect();

        let forced = options.forced_selection.clone();
        let (setup_report, nodes) = run_program(
            g,
            derive_seed(seed, 0x5E7),
            options.backend,
            options.bandwidth,
            None,
            |v, _| SetupProgram {
                selection_probability: inst.selection_probability,
                k_squared: inst.k_squared,
                forced: forced.as_ref().map(|f| f[v.index()]),
                in_s: false,
                in_w: false,
            },
            4,
        )
        .expect("setup protocol cannot fail");
        let s_mask: Vec<bool> = nodes.iter().map(|p| p.in_s).collect();
        let w_mask: Vec<bool> = nodes.iter().map(|p| p.in_w).collect();
        (
            inst,
            Memberships {
                u_mask,
                s_mask,
                w_mask,
                setup_report,
            },
        )
    }

    /// Runs Algorithm 1 with experiment hooks.
    pub fn run_with(&self, g: &Graph, seed: u64, options: &RunOptions) -> DetectionOutcome {
        let k = self.params.k;
        let (inst, sets) = self.build_memberships(g, seed, options);
        let mut total = sets.setup_report.clone();
        let sets_summary = SetsSummary {
            u_size: sets.u_mask.iter().filter(|&&b| b).count(),
            s_size: sets.s_mask.iter().filter(|&&b| b).count(),
            w_size: sets.w_mask.iter().filter(|&&b| b).count(),
            tau: inst.tau,
            selection_probability: inst.selection_probability,
        };

        let all_mask = vec![true; g.node_count()];
        let not_s_mask: Vec<bool> = sets.s_mask.iter().map(|&b| !b).collect();

        let mut decision = Decision::Accept;
        let mut witness: Option<CycleWitness> = None;
        let mut phase_found: Option<Phase> = None;
        let mut iterations = 0u64;
        let mut budget_exceeded = false;

        'outer: for r in 0..self.params.repetitions as u64 {
            iterations = r + 1;
            let colors = match &options.forced_coloring {
                Some(c) => c.clone(),
                None => random_coloring(g.node_count(), 2 * k, derive_seed(seed, 0xC0 + r)),
            };
            // The three color-BFS calls (Instructions 9–11).
            let phases: [(Phase, &[bool], &[bool]); 3] = [
                (Phase::Light, &sets.u_mask, &sets.u_mask),
                (Phase::Selected, &all_mask, &sets.s_mask),
                (Phase::Heavy, &not_s_mask, &sets.w_mask),
            ];
            for (idx, (phase, h_mask, x_mask)) in phases.into_iter().enumerate() {
                let result = run_color_bfs_backend(
                    g,
                    k,
                    &colors,
                    h_mask,
                    x_mask,
                    None,
                    inst.tau,
                    options.bandwidth,
                    options.backend,
                    derive_seed(seed, 0xF000 + r * 3 + idx as u64),
                );
                total.absorb(&result.report);
                if let Some((v, origin)) = result.rejection {
                    decision = Decision::Reject;
                    phase_found = Some(phase);
                    let w = extract_even_witness(g, h_mask, &colors, k, origin, v)
                        .expect("rejection must be certifiable");
                    assert!(w.is_valid(g), "internal error: invalid witness");
                    witness = Some(w);
                    if !options.continue_after_reject {
                        break 'outer;
                    }
                }
                if options.caps_exceeded(&total) {
                    budget_exceeded = true;
                    break 'outer;
                }
            }
        }

        DetectionOutcome {
            decision,
            witness,
            phase: phase_found,
            iterations,
            report: total,
            sets: sets_summary,
            budget_exceeded,
        }
    }
}

impl crate::Detector for CycleDetector {
    fn descriptor(&self) -> crate::Descriptor {
        crate::Descriptor {
            name: "global-threshold color-BFS",
            reference: "this paper",
            model: crate::Model::Classical,
            target: crate::Target::Even { k: self.params.k },
            exponent: crate::theory::Table1Row::ThisPaperClassical.exponent(self.params.k),
            table1: Some(crate::theory::Table1Row::ThisPaperClassical),
        }
    }

    fn detect(&self, g: &Graph, seed: u64, budget: &crate::Budget) -> crate::DetectResult {
        let det = match budget.repetitions {
            Some(r) => CycleDetector::new(self.params.clone().with_repetitions(r)),
            None => self.clone(),
        };
        let opts = RunOptions {
            bandwidth: budget.bandwidth,
            continue_after_reject: budget.run_to_budget,
            round_cap: budget.max_rounds,
            message_cap: budget.max_messages,
            backend: budget.backend,
            ..Default::default()
        };
        Ok(budget.enforce(
            det.run_with(g, seed, &opts)
                .into_detection(self.descriptor()),
        ))
    }
}

/// A uniformly random coloring with `colors` colors.
pub fn random_coloring(n: usize, colors: usize, seed: u64) -> Vec<u8> {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..colors as u8)).collect()
}

/// The outcome of one `color-BFS` call.
#[derive(Debug, Clone)]
pub struct ColorBfsResult {
    /// CONGEST costs of the call.
    pub report: RunReport,
    /// `(rejecting node, origin x)` for the first rejecting node, if any.
    pub rejection: Option<(NodeId, NodeId)>,
    /// Whether any node discarded its set (`|I_v| > τ`).
    pub any_overflow: bool,
    /// The largest `|I_v|` any node collected.
    pub max_collected: usize,
}

/// Runs a single `color-BFS(k, H, c, X, τ)` (or, with
/// `activation = Some(q)`, `randomized-color-BFS`) and gathers the
/// result, at classical CONGEST bandwidth (`B = 1`).
#[allow(clippy::too_many_arguments)]
pub fn run_color_bfs(
    g: &Graph,
    k: usize,
    colors: &[u8],
    h_mask: &[bool],
    x_mask: &[bool],
    activation: Option<f64>,
    tau: u64,
    seed: u64,
) -> ColorBfsResult {
    run_color_bfs_bw(g, k, colors, h_mask, x_mask, activation, tau, 1, seed)
}

/// [`run_color_bfs`] with an explicit per-edge bandwidth in words per
/// round (the `B` of CONGEST(B·log n); supersteps are charged
/// `⌈load/B⌉` rounds).
#[allow(clippy::too_many_arguments)]
pub fn run_color_bfs_bw(
    g: &Graph,
    k: usize,
    colors: &[u8],
    h_mask: &[bool],
    x_mask: &[bool],
    activation: Option<f64>,
    tau: u64,
    bandwidth: u64,
    seed: u64,
) -> ColorBfsResult {
    run_color_bfs_backend(
        g,
        k,
        colors,
        h_mask,
        x_mask,
        activation,
        tau,
        bandwidth,
        Backend::Sequential,
        seed,
    )
}

/// [`run_color_bfs_bw`] on an explicit simulation [`Backend`] — the
/// form the detector hot loops call. The result is byte-identical
/// whatever the backend.
#[allow(clippy::too_many_arguments)]
pub fn run_color_bfs_backend(
    g: &Graph,
    k: usize,
    colors: &[u8],
    h_mask: &[bool],
    x_mask: &[bool],
    activation: Option<f64>,
    tau: u64,
    bandwidth: u64,
    backend: Backend,
    seed: u64,
) -> ColorBfsResult {
    // Activation coins are per-node, derived from the seed (equivalent to
    // the local coin of Algorithm 2, Instruction 1, but replayable).
    let active: Vec<bool> = match activation {
        None => vec![true; g.node_count()],
        Some(q) => {
            use rand::SeedableRng;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(derive_seed(seed, 0xAC7));
            (0..g.node_count()).map(|_| rng.gen_bool(q)).collect()
        }
    };
    let (report, nodes) = run_program(
        g,
        seed,
        backend,
        bandwidth,
        None,
        |v, _| {
            ColorBfs::new(
                k,
                colors[v.index()],
                h_mask[v.index()],
                x_mask[v.index()],
                active[v.index()],
                tau,
            )
        },
        (k + 3) as u64,
    )
    .expect("color-BFS cannot violate the model");
    let rejection = report.rejecting_nodes.first().map(|&v| {
        let node = NodeId::new(v);
        let origin = nodes[v as usize]
            .evidence()
            .expect("rejecting node has evidence")
            .origin;
        (node, NodeId::new(origin))
    });
    let any_overflow = nodes.iter().any(ColorBfs::overflowed);
    let max_collected = nodes.iter().map(|p| p.collected().len()).max().unwrap_or(0);
    ColorBfsResult {
        report,
        rejection,
        any_overflow,
        max_collected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{analysis, generators};

    fn consecutive_coloring(g: &Graph, cycle: &CycleWitness, colors: usize) -> Vec<u8> {
        let mut c = vec![(colors - 1) as u8; g.node_count()];
        // Give non-cycle nodes arbitrary colors; the cycle is colored
        // consecutively.
        for (i, &u) in cycle.nodes().iter().enumerate() {
            c[u.index()] = i as u8;
        }
        c
    }

    #[test]
    fn forced_coloring_detects_planted_c4() {
        let host = generators::random_tree(40, 1);
        let (g, planted) = generators::plant_cycle(&host, 4, 2);
        let colors = consecutive_coloring(&g, &planted, 4);
        let detector = CycleDetector::new(Params::practical(2).with_repetitions(1));
        let opts = RunOptions {
            forced_coloring: Some(colors),
            ..Default::default()
        };
        let outcome = detector.run_with(&g, 5, &opts);
        assert!(outcome.rejected());
        let w = outcome.witness().unwrap();
        assert_eq!(w.len(), 4);
        assert!(w.is_valid(&g));
    }

    #[test]
    fn forced_coloring_detects_planted_c6_and_c8() {
        for (k, l) in [(3usize, 6usize), (4, 8)] {
            let host = generators::random_tree(60, 9);
            let (g, planted) = generators::plant_cycle(&host, l, 4);
            let colors = consecutive_coloring(&g, &planted, l);
            let detector = CycleDetector::new(Params::practical(k).with_repetitions(1));
            let opts = RunOptions {
                forced_coloring: Some(colors),
                ..Default::default()
            };
            let outcome = detector.run_with(&g, 5, &opts);
            assert!(outcome.rejected(), "k = {k}");
            assert_eq!(outcome.witness().unwrap().len(), l);
        }
    }

    #[test]
    fn random_colorings_detect_planted_c4() {
        // Full Algorithm 1 with paper repetitions at k = 2; deterministic
        // by seed.
        let host = generators::random_tree(48, 7);
        let (g, _) = generators::plant_cycle(&host, 4, 7);
        let outcome = CycleDetector::new(Params::practical(2)).run(&g, 11);
        assert!(outcome.rejected());
        assert!(outcome.witness().unwrap().is_valid(&g));
        assert_eq!(outcome.witness().unwrap().len(), 4);
    }

    #[test]
    fn soundness_on_trees() {
        // One-sided error: C4-free inputs are never rejected, whatever
        // the seed.
        let detector = CycleDetector::new(Params::practical(2).with_repetitions(16));
        for seed in 0..6 {
            let g = generators::random_tree(50, seed);
            let outcome = detector.run(&g, seed);
            assert!(!outcome.rejected(), "tree rejected (seed {seed})");
            assert!(outcome.witness.is_none());
            assert_eq!(outcome.iterations, 16);
        }
    }

    #[test]
    fn soundness_on_c4_free_graph_with_larger_cycles() {
        // C6 is C4-free; the k = 2 detector must accept it.
        let g = generators::cycle(6);
        let detector = CycleDetector::new(Params::practical(2).with_repetitions(64));
        for seed in 0..4 {
            assert!(!detector.run(&g, seed).rejected());
        }
    }

    #[test]
    fn soundness_on_polarity_graph() {
        // Dense C4-free extremal graph: the hardest soundness input.
        let g = generators::polarity_graph(5);
        let detector = CycleDetector::new(Params::practical(2).with_repetitions(32));
        assert!(!detector.run(&g, 3).rejected());
    }

    #[test]
    fn heavy_cycle_detected_through_w_phase() {
        // A C4 through a heavy hub, with S forced to hit the hub's
        // neighborhood but not the cycle: exercises the third color-BFS.
        let (g, planted) = generators::plant_cycle_on_heavy_hub(&generators::empty(12), 4, 60, 3);
        let n = g.node_count();
        // Force S = all leaves (ids 12.. are leaves), keeping the cycle
        // S-free; hub then has ≥ k² selected neighbors.
        let mut s = vec![false; n];
        for (v, flag) in s.iter_mut().enumerate().skip(12) {
            if !planted.nodes().contains(&NodeId::new(v as u32)) {
                *flag = true;
            }
        }
        let colors = consecutive_coloring(&g, &planted, 4);
        let detector = CycleDetector::new(Params::practical(2).with_repetitions(1));
        let opts = RunOptions {
            forced_coloring: Some(colors),
            forced_selection: Some(s),
            ..Default::default()
        };
        let outcome = detector.run_with(&g, 2, &opts);
        assert!(outcome.rejected());
        assert_eq!(outcome.phase, Some(Phase::Heavy));
        assert!(outcome.witness().unwrap().is_valid(&g));
    }

    #[test]
    fn selected_cycle_detected_through_s_phase() {
        // Force S to contain the cycle's 0-colored node: phase 2 fires.
        let host = generators::random_tree(30, 2);
        let (g, planted) = generators::plant_cycle(&host, 4, 9);
        let mut s = vec![false; g.node_count()];
        s[planted.nodes()[0].index()] = true;
        // Make the cycle nodes heavy-looking? Not needed: phase order is
        // Light, Selected, Heavy; to see Selected fire we must prevent
        // Light from detecting first — mark the origin heavy by degree?
        // Simplest: force-check that *some* phase rejects and the
        // witness is valid; phase-specific assertions below only when
        // light cannot fire (cycle nodes of high degree).
        let colors = consecutive_coloring(&g, &planted, 4);
        let detector = CycleDetector::new(Params::practical(2).with_repetitions(1));
        let opts = RunOptions {
            forced_coloring: Some(colors),
            forced_selection: Some(s),
            ..Default::default()
        };
        let outcome = detector.run_with(&g, 2, &opts);
        assert!(outcome.rejected());
    }

    #[test]
    fn iterations_counted_and_costs_accumulate() {
        let g = generators::random_tree(30, 8);
        let detector = CycleDetector::new(Params::practical(2).with_repetitions(5));
        let outcome = detector.run(&g, 1);
        assert_eq!(outcome.iterations, 5);
        // 5 iterations × 3 phases plus setup. On a small tree p caps at
        // 1, so S = V and the third phase's host G[V∖S] is empty (its
        // call ends after one superstep); the first two phases run the
        // full k+1 supersteps each.
        assert!(
            outcome.report.supersteps >= 35,
            "got {}",
            outcome.report.supersteps
        );
    }

    #[test]
    fn membership_construction_matches_definitions() {
        let g = generators::plant_cycle_on_heavy_hub(&generators::empty(8), 4, 40, 1).0;
        let detector = CycleDetector::new(Params::practical(2));
        let (inst, m) = detector.build_memberships(&g, 3, &RunOptions::default());
        for v in g.nodes() {
            assert_eq!(
                m.u_mask[v.index()],
                (g.degree(v) as f64) <= inst.degree_threshold,
                "U definition at {v}"
            );
            if m.w_mask[v.index()] {
                assert!(!m.s_mask[v.index()], "W ⊆ V∖S");
                let s_nbrs = g
                    .neighbors(v)
                    .iter()
                    .filter(|w| m.s_mask[w.index()])
                    .count();
                assert!(s_nbrs >= inst.k_squared, "W needs k² selected neighbors");
            }
        }
    }

    #[test]
    fn detected_cycles_always_certified() {
        // Any rejection on random graphs is accompanied by a genuine C4.
        let detector = CycleDetector::new(Params::practical(2).with_repetitions(24));
        for seed in 0..6 {
            let g = generators::erdos_renyi(40, 0.08, seed);
            let outcome = detector.run(&g, seed * 13 + 1);
            if outcome.rejected() {
                let w = outcome.witness().unwrap();
                assert_eq!(w.len(), 4);
                assert!(w.is_valid(&g));
                assert!(analysis::has_cycle_exact(&g, 4, None));
            } else {
                // One-sided: if it accepted but a C4 exists, that is just
                // a missed detection (allowed); nothing to assert.
            }
        }
    }
}
