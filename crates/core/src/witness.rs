//! Detection outcomes and certified witness extraction.

use congest_graph::{analysis, CycleWitness, Graph, NodeId};
use congest_sim::{Decision, RunReport};

/// Which of Algorithm 1's three `color-BFS` calls produced the rejection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// `color-BFS(k, G[U], c, U, τ)` — cycles of light nodes only
    /// (Instruction 9).
    Light,
    /// `color-BFS(k, G, c, S, τ)` — cycles through a selected node
    /// (Instruction 10).
    Selected,
    /// `color-BFS(k, G[V∖S], c, W, τ)` — heavy cycles avoiding `S`
    /// (Instruction 11).
    Heavy,
}

/// Sizes of the sets Algorithm 1 constructed, for diagnostics and the
/// set-size experiments (Facts 2–3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SetsSummary {
    /// `|U|`, the light nodes (degree ≤ n^{1/k}).
    pub u_size: usize,
    /// `|S|`, the selected nodes.
    pub s_size: usize,
    /// `|W|`, the non-selected nodes with ≥ k² selected neighbors.
    pub w_size: usize,
    /// The threshold `τ` used by every `color-BFS` call.
    pub tau: u64,
    /// The selection probability `p`.
    pub selection_probability: f64,
}

/// The result of running a cycle detector on a graph.
#[derive(Debug, Clone)]
pub struct DetectionOutcome {
    /// The global decision (`Reject` iff some node rejected).
    pub decision: Decision,
    /// A verified cycle witness accompanying every rejection.
    pub witness: Option<CycleWitness>,
    /// The phase that detected the cycle, when rejected.
    pub phase: Option<Phase>,
    /// Coloring iterations executed (≤ `K`; stops early on rejection by
    /// default).
    pub iterations: u64,
    /// Accumulated CONGEST costs over all phases and iterations.
    pub report: RunReport,
    /// The sets Algorithm 1 constructed.
    pub sets: SetsSummary,
    /// Whether the run was aborted between iterations by a
    /// [`Budget`](crate::Budget) cap (the decision is then untrusted).
    pub budget_exceeded: bool,
}

impl DetectionOutcome {
    /// Whether the detector found a cycle.
    pub fn rejected(&self) -> bool {
        self.decision == Decision::Reject
    }

    /// The witness, if any.
    pub fn witness(&self) -> Option<&CycleWitness> {
        self.witness.as_ref()
    }

    /// Total CONGEST rounds charged.
    pub fn rounds(&self) -> u64 {
        self.report.rounds
    }

    /// Converts into the unified [`Detection`](crate::Detection) surface
    /// under the given algorithm metadata.
    pub fn into_detection(self, algorithm: crate::Descriptor) -> crate::Detection {
        let cost = crate::RunCost::from_report(&self.report, self.iterations);
        // A certified rejection survives a budget overrun — the witness
        // is proof either way; only an accept from a truncated run is
        // untrusted.
        let verdict = if self.rejected() {
            let cycle_length = self.witness.as_ref().map(|w| w.len());
            crate::Verdict::Reject {
                witness: self.witness,
                cycle_length,
            }
        } else if self.budget_exceeded {
            crate::Verdict::BudgetExceeded {
                rounds: cost.rounds,
                messages: cost.messages,
            }
        } else {
            crate::Verdict::Accept
        };
        crate::Detection {
            algorithm,
            verdict,
            cost,
        }
    }
}

/// Finds a path `x → v` whose internal vertices have exactly the colors
/// `internal_colors` (in order) and lie in the masked host subgraph, via
/// layered search. Returns the full vertex list `x, u_1, …, u_t, v`.
///
/// Both endpoints must be in the host mask. Used to reconstruct the two
/// branches of a detected cycle: when a node rejects in `color-BFS`, the
/// origin's id provably traveled along two such paths, so the searches
/// must succeed — the caller treats `None` as an internal error.
pub fn find_colored_path(
    g: &Graph,
    h_mask: &[bool],
    colors: &[u8],
    internal_colors: &[u8],
    x: NodeId,
    v: NodeId,
) -> Option<Vec<NodeId>> {
    if !h_mask[x.index()] || !h_mask[v.index()] {
        return None;
    }
    if internal_colors.is_empty() {
        return g.has_edge(x, v).then(|| vec![x, v]);
    }
    let n = g.node_count();
    // parents[j][u] = predecessor of u in layer j (u has color
    // internal_colors[j]).
    let t = internal_colors.len();
    let mut parents: Vec<Vec<Option<NodeId>>> = vec![vec![None; n]; t];
    let mut frontier = vec![x];
    for (j, &col) in internal_colors.iter().enumerate() {
        let mut next = Vec::new();
        for &u in &frontier {
            for &w in g.neighbors(u) {
                if h_mask[w.index()]
                    && colors[w.index()] == col
                    && w != x
                    && w != v
                    && parents[j][w.index()].is_none()
                {
                    parents[j][w.index()] = Some(u);
                    next.push(w);
                }
            }
        }
        if next.is_empty() {
            return None;
        }
        frontier = next;
    }
    // Close at v.
    let last = frontier.into_iter().find(|&u| g.has_edge(u, v))?;
    let mut path = vec![v, last];
    let mut cur = last;
    for j in (1..t).rev() {
        let p = parents[j][cur.index()].expect("parent chain intact");
        path.push(p);
        cur = p;
    }
    path.push(x);
    path.reverse();
    Some(path)
}

/// Reconstructs the `2k`-cycle certified by a `color-BFS` rejection: the
/// origin `x` (colored 0) reached the rejecting node `v` (colored `k`)
/// along an up-branch colored `1, …, k-1` and a down-branch colored
/// `2k-1, …, k+1`, all within the host mask.
///
/// The internal color sets of the two branches are disjoint and exclude
/// the endpoint colors, so the union is automatically a simple `2k`-cycle;
/// the result is verified against `g` before being returned.
pub fn extract_even_witness(
    g: &Graph,
    h_mask: &[bool],
    colors: &[u8],
    k: usize,
    x: NodeId,
    v: NodeId,
) -> Option<CycleWitness> {
    let up_colors: Vec<u8> = (1..k as u8).collect();
    let down_colors: Vec<u8> = ((k as u8 + 1)..(2 * k as u8)).rev().collect();
    let up = find_colored_path(g, h_mask, colors, &up_colors, x, v)?;
    let down = find_colored_path(g, h_mask, colors, &down_colors, x, v)?;
    let witness = splice_cycle(&up, &down);
    witness.is_valid(g).then_some(witness)
}

/// Reconstructs the `(2k+1)`-cycle certified by an odd-cycle rejection
/// (paper §3.4): colors `{0, …, 2k}`, up-branch `1, …, k-1` into `v`
/// (colored `k`), down-branch `2k, 2k-1, …, k+1` into `v`.
pub fn extract_odd_witness(
    g: &Graph,
    h_mask: &[bool],
    colors: &[u8],
    k: usize,
    x: NodeId,
    v: NodeId,
) -> Option<CycleWitness> {
    let up_colors: Vec<u8> = (1..k as u8).collect();
    let down_colors: Vec<u8> = ((k as u8 + 1)..=(2 * k as u8)).rev().collect();
    let up = find_colored_path(g, h_mask, colors, &up_colors, x, v)?;
    let down = find_colored_path(g, h_mask, colors, &down_colors, x, v)?;
    let witness = splice_cycle(&up, &down);
    witness.is_valid(g).then_some(witness)
}

/// Splices two `x → v` paths into the cycle
/// `x, up internals, v, down internals reversed`.
fn splice_cycle(up: &[NodeId], down: &[NodeId]) -> CycleWitness {
    let mut nodes: Vec<NodeId> = up.to_vec();
    // down = x, d_1, ..., d_t, v; append d_t, ..., d_1.
    for &u in down[1..down.len() - 1].iter().rev() {
        nodes.push(u);
    }
    CycleWitness::new(nodes)
}

/// Double-checks a claimed witness against the exact ground truth
/// (used in tests and by the certified-output contract): the witness must
/// be a valid cycle of the stated length, and the graph must indeed
/// contain a cycle of that length.
pub fn certify(g: &Graph, witness: &CycleWitness, expected_len: usize) -> bool {
    witness.len() == expected_len
        && witness.is_valid(g)
        && analysis::has_cycle_exact(g, expected_len, Some(200_000_000)) // witness exists, so this is fast
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    #[test]
    fn colored_path_on_cycle() {
        let g = generators::cycle(6);
        let colors = vec![0u8, 1, 2, 3, 4, 5];
        let mask = vec![true; 6];
        let path = find_colored_path(&g, &mask, &colors, &[1, 2], NodeId::new(0), NodeId::new(3))
            .expect("path exists");
        assert_eq!(
            path,
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(3)
            ]
        );
    }

    #[test]
    fn colored_path_empty_internals_is_edge() {
        let g = generators::cycle(4);
        let colors = vec![0u8; 4];
        let mask = vec![true; 4];
        assert!(
            find_colored_path(&g, &mask, &colors, &[], NodeId::new(0), NodeId::new(1)).is_some()
        );
        assert!(
            find_colored_path(&g, &mask, &colors, &[], NodeId::new(0), NodeId::new(2)).is_none()
        );
    }

    #[test]
    fn colored_path_respects_mask() {
        let g = generators::cycle(6);
        let colors = vec![0u8, 1, 2, 3, 4, 5];
        let mut mask = vec![true; 6];
        mask[1] = false;
        assert!(
            find_colored_path(&g, &mask, &colors, &[1, 2], NodeId::new(0), NodeId::new(3))
                .is_none()
        );
    }

    #[test]
    fn even_witness_on_colored_c4() {
        let g = generators::cycle(4);
        let colors = vec![0u8, 1, 2, 3];
        let mask = vec![true; 4];
        let w = extract_even_witness(&g, &mask, &colors, 2, NodeId::new(0), NodeId::new(2))
            .expect("witness");
        assert_eq!(w.len(), 4);
        assert!(w.is_valid(&g));
        assert!(certify(&g, &w, 4));
    }

    #[test]
    fn even_witness_on_colored_c8_with_noise() {
        // Plant a consecutively-colored C8 in a larger graph.
        let host = generators::random_tree(30, 5);
        let (g, planted) = generators::plant_cycle(&host, 8, 3);
        let mut colors = vec![7u8; g.node_count()]; // noise color
        for (i, &u) in planted.nodes().iter().enumerate() {
            colors[u.index()] = i as u8;
        }
        let mask = vec![true; g.node_count()];
        let x = planted.nodes()[0];
        let v = planted.nodes()[4];
        let w = extract_even_witness(&g, &mask, &colors, 4, x, v).expect("witness");
        assert_eq!(w.len(), 8);
        assert!(w.is_valid(&g));
    }

    #[test]
    fn odd_witness_on_colored_c5() {
        let g = generators::cycle(5);
        let colors = vec![0u8, 1, 2, 3, 4];
        let mask = vec![true; 5];
        // k = 2: v colored 2, up internals [1], down internals [4, 3].
        let w = extract_odd_witness(&g, &mask, &colors, 2, NodeId::new(0), NodeId::new(2))
            .expect("witness");
        assert_eq!(w.len(), 5);
        assert!(w.is_valid(&g));
    }

    #[test]
    fn extraction_fails_without_cycle() {
        let g = generators::path(4);
        let colors = vec![0u8, 1, 2, 3];
        let mask = vec![true; 4];
        assert!(
            extract_even_witness(&g, &mask, &colors, 2, NodeId::new(0), NodeId::new(2)).is_none()
        );
    }
}
