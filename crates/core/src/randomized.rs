//! Algorithm 2 (`randomized-color-BFS`) and the Lemma 12
//! low-success-probability detector — the congestion-reduction step of
//! the quantum pipeline (§3.2.1–§3.2.2).
//!
//! Compared to Algorithm 1: each `x ∈ X` colored 0 launches a search only
//! with probability `1/τ` (Instruction 1 of Algorithm 2), and the
//! forwarding threshold drops from `τ` to the constant 4 (Instruction 5).
//! The round complexity collapses to `k^{O(k)}` while the one-sided
//! success probability drops to `1/(3τ)` (Lemma 12) — exactly the trade
//! Theorem 3 amplifies back quadratically faster than classical
//! repetition.

use congest_graph::{CycleWitness, Graph};
use congest_quantum::{McOutcome, MonteCarloAlgorithm};
use congest_sim::{derive_seed, Decision};

use crate::detector::{random_coloring, run_color_bfs_backend, CycleDetector, RunOptions};
use crate::params::Params;
use crate::witness::{extract_even_witness, DetectionOutcome, Phase, SetsSummary};

/// The constant threshold of `randomized-color-BFS` (Algorithm 2,
/// Instruction 5).
pub const RANDOMIZED_THRESHOLD: u64 = 4;

/// The Lemma 12 detector: Algorithm 1 with `color-BFS` replaced by
/// `randomized-color-BFS`.
///
/// * Round complexity: `O(k·(2k)^{2k})` — constant in `n`;
/// * Congestion: at most [`RANDOMIZED_THRESHOLD`] words per edge per
///   step;
/// * One-sided success probability: `1/(3τ)` with
///   `τ = Θ(n^{1-1/k})`.
///
/// Use [`LowProbDetector::as_monte_carlo`] to feed it to
/// [`congest_quantum::MonteCarloAmplifier`].
#[derive(Debug, Clone)]
pub struct LowProbDetector {
    params: Params,
}

impl LowProbDetector {
    /// Creates the detector (the `Params` play the same role as in
    /// [`CycleDetector`]).
    pub fn new(params: Params) -> Self {
        LowProbDetector { params }
    }

    /// The parameters in use.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Runs the low-probability detector once with the given seed.
    pub fn run(&self, g: &Graph, seed: u64) -> DetectionOutcome {
        self.run_with(g, seed, &RunOptions::default())
    }

    /// Runs with experiment hooks (see [`RunOptions`]).
    pub fn run_with(&self, g: &Graph, seed: u64, options: &RunOptions) -> DetectionOutcome {
        let k = self.params.k;
        // Reuse Algorithm 1's set construction (Instructions 1–5 are
        // unchanged).
        let scaffold = CycleDetector::new(self.params.clone());
        let (inst, sets) = scaffold.build_memberships(g, seed, options);
        let mut total = sets.setup_report.clone();
        let sets_summary = SetsSummary {
            u_size: sets.u_mask.iter().filter(|&&b| b).count(),
            s_size: sets.s_mask.iter().filter(|&&b| b).count(),
            w_size: sets.w_mask.iter().filter(|&&b| b).count(),
            tau: inst.tau,
            selection_probability: inst.selection_probability,
        };
        let activation = 1.0 / inst.tau as f64;
        let all_mask = vec![true; g.node_count()];
        let not_s_mask: Vec<bool> = sets.s_mask.iter().map(|&b| !b).collect();

        let mut decision = Decision::Accept;
        let mut witness: Option<CycleWitness> = None;
        let mut phase_found: Option<Phase> = None;
        let mut iterations = 0u64;
        let mut budget_exceeded = false;

        'outer: for r in 0..self.params.repetitions as u64 {
            iterations = r + 1;
            let colors = match &options.forced_coloring {
                Some(c) => c.clone(),
                None => random_coloring(g.node_count(), 2 * k, derive_seed(seed, 0xC0 + r)),
            };
            let phases: [(Phase, &[bool], &[bool]); 3] = [
                (Phase::Light, &sets.u_mask, &sets.u_mask),
                (Phase::Selected, &all_mask, &sets.s_mask),
                (Phase::Heavy, &not_s_mask, &sets.w_mask),
            ];
            for (idx, (phase, h_mask, x_mask)) in phases.into_iter().enumerate() {
                let result = run_color_bfs_backend(
                    g,
                    k,
                    &colors,
                    h_mask,
                    x_mask,
                    Some(activation),
                    RANDOMIZED_THRESHOLD,
                    options.bandwidth,
                    options.backend,
                    derive_seed(seed, 0xF000 + r * 3 + idx as u64),
                );
                total.absorb(&result.report);
                if let Some((v, origin)) = result.rejection {
                    decision = Decision::Reject;
                    phase_found = Some(phase);
                    let w = extract_even_witness(g, h_mask, &colors, k, origin, v)
                        .expect("rejection must be certifiable");
                    witness = Some(w);
                    if !options.continue_after_reject {
                        break 'outer;
                    }
                }
                if options.caps_exceeded(&total) {
                    budget_exceeded = true;
                    break 'outer;
                }
            }
        }

        DetectionOutcome {
            decision,
            witness,
            phase: phase_found,
            iterations,
            report: total,
            sets: sets_summary,
            budget_exceeded,
        }
    }

    /// An upper bound on the rounds of one run: setup + `K` iterations of
    /// three `(k+2)`-superstep calls, each superstep carrying at most
    /// [`RANDOMIZED_THRESHOLD`] words per edge.
    pub fn round_bound(&self, n: usize) -> u64 {
        self.round_bound_bw(n, 1)
    }

    /// [`LowProbDetector::round_bound`] at per-edge bandwidth `B`: each
    /// superstep is charged `⌈threshold/B⌉` rounds instead of the full
    /// threshold.
    pub fn round_bound_bw(&self, n: usize, bandwidth: u64) -> u64 {
        let k = self.params.k as u64;
        let per_call = 1 + (k + 1) * RANDOMIZED_THRESHOLD.div_ceil(bandwidth.max(1));
        2 + self.params.repetitions as u64 * 3 * per_call + (n == 0) as u64
    }

    /// The Lemma 12 one-sided success probability `1/(3τ)` for an
    /// `n`-vertex graph.
    pub fn success_probability(&self, n: usize) -> f64 {
        1.0 / (3.0 * self.params.instantiate(n).tau as f64)
    }

    /// Wraps the detector as a [`MonteCarloAlgorithm`] over a fixed
    /// graph, for quantum amplification.
    pub fn as_monte_carlo<'a>(&'a self, g: &'a Graph) -> LowProbMc<'a> {
        LowProbMc {
            det: self,
            g,
            bandwidth: 1,
        }
    }
}

// audit:allow(R6): Lemma 12 building block — exercised directly by unit
// tests and amplified into the registered quantum pipelines; it is not a
// Table 1 row, so the sweep registry deliberately omits it.
impl crate::Detector for LowProbDetector {
    fn descriptor(&self) -> crate::Descriptor {
        crate::Descriptor {
            name: "randomized color-BFS (Lemma 12)",
            reference: "this paper §3.2",
            model: crate::Model::Classical,
            target: crate::Target::Even { k: self.params.k },
            // k^{O(k)} rounds — constant in n (the success probability,
            // not the round count, carries the n-dependence).
            exponent: 0.0,
            table1: None,
        }
    }

    fn detect(&self, g: &Graph, seed: u64, budget: &crate::Budget) -> crate::DetectResult {
        let det = match budget.repetitions {
            Some(r) => LowProbDetector::new(self.params.clone().with_repetitions(r)),
            None => self.clone(),
        };
        let opts = RunOptions {
            bandwidth: budget.bandwidth,
            continue_after_reject: budget.run_to_budget,
            round_cap: budget.max_rounds,
            message_cap: budget.max_messages,
            backend: budget.backend,
            ..Default::default()
        };
        Ok(budget.enforce(
            det.run_with(g, seed, &opts)
                .into_detection(self.descriptor()),
        ))
    }
}

/// [`LowProbDetector`] viewed as a seedable Monte-Carlo algorithm on a
/// fixed graph (the object Theorem 3 amplifies).
#[derive(Debug, Clone)]
pub struct LowProbMc<'a> {
    det: &'a LowProbDetector,
    g: &'a Graph,
    bandwidth: u64,
}

impl LowProbMc<'_> {
    /// Sets the per-edge bandwidth charged to the base runs.
    pub fn with_bandwidth(mut self, bandwidth: u64) -> Self {
        assert!(bandwidth > 0, "bandwidth must be positive");
        self.bandwidth = bandwidth;
        self
    }
}

impl MonteCarloAlgorithm for LowProbMc<'_> {
    fn run(&self, seed: u64) -> McOutcome {
        let opts = RunOptions {
            bandwidth: self.bandwidth,
            ..Default::default()
        };
        let outcome = self.det.run_with(self.g, seed, &opts);
        McOutcome {
            rejected: outcome.rejected(),
            rounds: outcome.report.rounds,
        }
    }

    fn round_bound(&self) -> u64 {
        self.det.round_bound_bw(self.g.node_count(), self.bandwidth)
    }

    fn success_probability(&self) -> f64 {
        self.det.success_probability(self.g.node_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    #[test]
    fn congestion_is_constant() {
        // Whatever the graph, randomized-color-BFS keeps the max per-edge
        // load at RANDOMIZED_THRESHOLD words (Lemma 12's congestion
        // claim). Setup and hello rounds carry 1 word.
        let host = generators::erdos_renyi(120, 0.05, 3);
        let (g, _) = generators::plant_cycle(&host, 4, 3);
        let det = LowProbDetector::new(Params::practical(2).with_repetitions(20));
        let outcome = det.run(&g, 5);
        assert!(
            outcome.report.congestion.max_words_per_edge_step <= RANDOMIZED_THRESHOLD,
            "congestion {} exceeds the constant threshold",
            outcome.report.congestion.max_words_per_edge_step
        );
    }

    #[test]
    fn soundness_preserved() {
        let det = LowProbDetector::new(Params::practical(2).with_repetitions(30));
        for seed in 0..5 {
            let g = generators::random_tree(60, seed);
            assert!(!det.run(&g, seed).rejected());
        }
    }

    #[test]
    fn rejections_still_certified() {
        // Detection is rare by design; force it with a dense instance
        // where τ is small and many iterations run.
        let g = generators::complete_bipartite(6, 6); // plenty of C4s
        let det = LowProbDetector::new(Params::practical(2).with_repetitions(200));
        let mut detected = 0;
        for seed in 0..8 {
            let outcome = det.run(&g, seed);
            if outcome.rejected() {
                detected += 1;
                let w = outcome.witness().unwrap();
                assert_eq!(w.len(), 4);
                assert!(w.is_valid(&g));
            }
        }
        assert!(detected > 0, "no detection in 8 × 200 iterations");
    }

    #[test]
    fn success_probability_formula() {
        let det = LowProbDetector::new(Params::practical(2));
        let inst = det.params().instantiate(1000);
        let eps = det.success_probability(1000);
        assert!((eps - 1.0 / (3.0 * inst.tau as f64)).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_wrapper_consistency() {
        let host = generators::random_tree(40, 2);
        let (g, _) = generators::plant_cycle(&host, 4, 2);
        let det = LowProbDetector::new(Params::practical(2).with_repetitions(10));
        let mc = det.as_monte_carlo(&g);
        let a = mc.run(7);
        let b = mc.run(7);
        assert_eq!(a, b, "deterministic by seed");
        assert!(mc.round_bound() > 0);
        assert!(mc.success_probability() > 0.0 && mc.success_probability() < 1.0);
    }
}
