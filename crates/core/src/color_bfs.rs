//! Procedure `color-BFS(k, H, c, X, τ)` (Algorithm 1, lines 14–29) and its
//! congestion-reduced variant `randomized-color-BFS` (Algorithm 2), as one
//! CONGEST node program.
//!
//! The two procedures differ only in their inputs: Algorithm 1 activates
//! every `x ∈ X` with `c(x) = 0` and uses the global threshold `τ`;
//! Algorithm 2 activates each such node with probability `1/τ` and uses
//! the constant threshold 4. The driver passes the activation flags and
//! the threshold; the forwarding logic is identical.

use congest_graph::NodeId;
use congest_sim::{Control, Ctx, Decision, MessageSize, Outbox, Program};

/// Messages of the color-BFS protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CbMsg {
    /// Round-0 exchange of the local color and `H`-membership
    /// (the receiver needs both to route identifiers by color within
    /// `H`). Two small fields — one `O(log n)`-bit word.
    Hello {
        /// The sender's color in `{0, …, 2k-1}`.
        color: u8,
        /// Whether the sender belongs to the host subgraph `H`.
        in_h: bool,
    },
    /// A set of origin identifiers being forwarded (`I_v` in the paper);
    /// costs one word per identifier.
    Ids(Vec<u32>),
}

impl MessageSize for CbMsg {
    fn words(&self) -> usize {
        match self {
            CbMsg::Hello { .. } => 1,
            CbMsg::Ids(ids) => ids.len().max(1),
        }
    }
}

/// Evidence recorded by a rejecting node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejectEvidence {
    /// The identifier of the origin `x ∈ X₀` whose id arrived along both
    /// well-colored branches.
    pub origin: u32,
}

/// The per-node state of `color-BFS(k, H, c, X, τ)`.
///
/// Construct one per vertex via [`ColorBfs::new`] and run with a
/// [`congest_sim::Executor`]; the driver in
/// [`crate::CycleDetector`] does exactly that for the three calls of
/// Algorithm 1.
#[derive(Debug, Clone)]
pub struct ColorBfs {
    k: usize,
    color: u8,
    in_h: bool,
    /// `x ∈ X` with `c(x) = 0` *and* activated (always true in
    /// Algorithm 1; probability `1/τ` in Algorithm 2).
    active_source: bool,
    tau: u64,
    /// Colors of neighbors, aligned with the sorted neighbor list.
    nbr_color: Vec<u8>,
    /// `H`-membership of neighbors, aligned likewise.
    nbr_in_h: Vec<bool>,
    /// The set `I_v` this node collected (kept for diagnostics).
    collected: Vec<u32>,
    /// Whether `|I_v| > τ` forced a discard (diagnostics for the
    /// congestion experiments).
    overflowed: bool,
    reject: Option<RejectEvidence>,
}

impl ColorBfs {
    /// Creates the program state for one vertex.
    ///
    /// * `k` — half the target cycle length (`k ≥ 2`);
    /// * `color` — `c(v) ∈ {0, …, 2k-1}`;
    /// * `in_h` / `in_x` — membership in `H` and `X`;
    /// * `active` — the Algorithm 2 activation coin (pass `true` for
    ///   Algorithm 1);
    /// * `tau` — the forwarding threshold.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `color ≥ 2k`.
    pub fn new(k: usize, color: u8, in_h: bool, in_x: bool, active: bool, tau: u64) -> Self {
        assert!(k >= 2, "color-BFS requires k ≥ 2");
        assert!((color as usize) < 2 * k, "color out of range");
        ColorBfs {
            k,
            color,
            in_h,
            active_source: in_x && in_h && color == 0 && active,
            tau,
            nbr_color: Vec::new(),
            nbr_in_h: Vec::new(),
            collected: Vec::new(),
            overflowed: false,
            reject: None,
        }
    }

    /// The superstep at which this node processes/forwards identifiers.
    fn action_step(&self) -> usize {
        let c = self.color as usize;
        let k = self.k;
        match c {
            0 => 0,
            c if c <= k => c, // 1..k-1 forward; k checks at step k
            c => 2 * k - c,   // k+1..2k-1 forward at 2k-c
        }
    }

    /// The set `I_v` of distinct origin ids received from `senders`
    /// colored `expected`, restricted to `H`.
    fn collect_ids(&self, inbox: &[(NodeId, CbMsg)], ctx: &Ctx, expected: u8) -> Vec<u32> {
        let mut ids: Vec<u32> = Vec::new();
        for (from, msg) in inbox {
            if let CbMsg::Ids(payload) = msg {
                let pos = ctx
                    .neighbors
                    .binary_search(from)
                    .expect("sender must be a neighbor");
                if self.nbr_in_h[pos] && self.nbr_color[pos] == expected {
                    ids.extend_from_slice(payload);
                }
            }
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Sends `ids` to every `H`-neighbor colored `next`.
    fn forward(&self, ctx: &Ctx, out: &mut Outbox<CbMsg>, ids: &[u32], next: u8) {
        if ids.is_empty() {
            return;
        }
        for (pos, &nbr) in ctx.neighbors.iter().enumerate() {
            if self.nbr_in_h[pos] && self.nbr_color[pos] == next {
                out.send(nbr, CbMsg::Ids(ids.to_vec()));
            }
        }
    }

    /// The rejection evidence, if this node rejected.
    pub fn evidence(&self) -> Option<RejectEvidence> {
        self.reject
    }

    /// Whether this node discarded its set because `|I_v| > τ`.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// The set `I_v` this node collected at its action step.
    pub fn collected(&self) -> &[u32] {
        &self.collected
    }
}

impl Program for ColorBfs {
    type Msg = CbMsg;

    fn init(&mut self, _ctx: &mut Ctx, out: &mut Outbox<CbMsg>) {
        out.broadcast(CbMsg::Hello {
            color: self.color,
            in_h: self.in_h,
        });
    }

    fn step(
        &mut self,
        ctx: &mut Ctx,
        superstep: usize,
        inbox: &[(NodeId, CbMsg)],
        out: &mut Outbox<CbMsg>,
    ) -> Control {
        let k = self.k;
        if superstep == 0 {
            // Record neighbor colors and H-membership from the Hellos.
            self.nbr_color = vec![0; ctx.neighbors.len()];
            self.nbr_in_h = vec![false; ctx.neighbors.len()];
            for (from, msg) in inbox {
                if let CbMsg::Hello { color, in_h } = msg {
                    let pos = ctx
                        .neighbors
                        .binary_search(from)
                        .expect("sender must be a neighbor");
                    self.nbr_color[pos] = *color;
                    self.nbr_in_h[pos] = *in_h;
                }
            }
            if !self.in_h {
                return Control::Halt;
            }
            // Instruction 15: active sources send their id to all
            // H-neighbors.
            if self.active_source {
                let me = ctx.node.raw();
                for (pos, &nbr) in ctx.neighbors.iter().enumerate() {
                    if self.nbr_in_h[pos] {
                        out.send(nbr, CbMsg::Ids(vec![me]));
                    }
                }
            }
            return if self.action_step() == 0 {
                Control::Halt
            } else {
                Control::Continue
            };
        }

        let action = self.action_step();
        if superstep < action {
            return Control::Continue;
        }
        debug_assert_eq!(superstep, action, "nodes halt right after acting");

        let c = self.color as usize;
        if (1..k).contains(&c) {
            // Up-chain: collect from color c-1, forward to c+1
            // (Instructions 16–22).
            let ids = self.collect_ids(inbox, ctx, (c - 1) as u8);
            if ids.len() as u64 <= self.tau {
                self.forward(ctx, out, &ids, (c + 1) as u8);
            } else {
                self.overflowed = true;
            }
            self.collected = ids;
        } else if c > k {
            // Down-chain: color 2k-i collects from 2k-i+1 (mod 2k; the
            // predecessor of 2k-1 is color 0) and forwards to 2k-i-1.
            let prev = if c == 2 * k - 1 { 0 } else { (c + 1) as u8 };
            let ids = self.collect_ids(inbox, ctx, prev);
            if ids.len() as u64 <= self.tau {
                self.forward(ctx, out, &ids, (c - 1) as u8);
            } else {
                self.overflowed = true;
            }
            self.collected = ids;
        } else if c == k {
            // Instruction 24–28: same id from a (k-1)-colored and a
            // (k+1)-colored neighbor certifies a 2k-cycle.
            let low = self.collect_ids(inbox, ctx, (k - 1) as u8);
            let high = self.collect_ids(inbox, ctx, (k + 1) as u8);
            let common = low.iter().find(|x| high.binary_search(x).is_ok());
            if let Some(&origin) = common {
                self.reject = Some(RejectEvidence { origin });
            }
            self.collected = low;
        }
        Control::Halt
    }

    fn decision(&self) -> Decision {
        if self.reject.is_some() {
            Decision::Reject
        } else {
            Decision::Accept
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;
    use congest_sim::Executor;

    /// Runs color-BFS on `g` with the given per-node colors, all nodes in
    /// H and X, all active, threshold `tau`.
    fn run_plain(
        g: &congest_graph::Graph,
        colors: &[u8],
        k: usize,
        tau: u64,
    ) -> (congest_sim::RunReport, Vec<ColorBfs>) {
        let mut exec = Executor::new(g, 7);
        let report = exec
            .run(
                |v, _| ColorBfs::new(k, colors[v.index()], true, true, true, tau),
                (k + 3) as u64,
            )
            .expect("simulation error");
        (report, exec.nodes().to_vec())
    }

    #[test]
    fn detects_well_colored_c4() {
        let g = generators::cycle(4);
        let colors = vec![0u8, 1, 2, 3];
        let (report, nodes) = run_plain(&g, &colors, 2, 100);
        assert!(report.rejected());
        assert_eq!(
            report.rejecting_nodes,
            vec![2],
            "the k-colored node rejects"
        );
        assert_eq!(nodes[2].evidence().unwrap().origin, 0);
    }

    #[test]
    fn detects_well_colored_c6() {
        let g = generators::cycle(6);
        let colors = vec![0u8, 1, 2, 3, 4, 5];
        let (report, nodes) = run_plain(&g, &colors, 3, 100);
        assert!(report.rejected());
        assert_eq!(report.rejecting_nodes, vec![3]);
        assert_eq!(nodes[3].evidence().unwrap().origin, 0);
    }

    #[test]
    fn reversed_coloring_also_detects() {
        // Orientation symmetry: coloring the cycle the other way.
        let g = generators::cycle(6);
        let colors = vec![0u8, 5, 4, 3, 2, 1];
        let (report, _) = run_plain(&g, &colors, 3, 100);
        assert!(report.rejected());
    }

    #[test]
    fn badly_colored_cycle_not_detected() {
        let g = generators::cycle(4);
        let colors = vec![0u8, 1, 3, 2]; // 2 and 3 swapped: no rejection
        let (report, _) = run_plain(&g, &colors, 2, 100);
        assert!(!report.rejected());
    }

    #[test]
    fn no_cycle_no_rejection_any_coloring() {
        // A path cannot produce a rejection under any coloring
        // (soundness of the procedure itself).
        let g = generators::path(8);
        for seed in 0..30u64 {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let colors: Vec<u8> = (0..8).map(|_| rng.gen_range(0..4)).collect();
            let (report, _) = run_plain(&g, &colors, 2, 100);
            assert!(!report.rejected(), "path rejected with coloring {colors:?}");
        }
    }

    #[test]
    fn threshold_zero_blocks_detection() {
        // τ = 0 discards every nonempty set at the first forwarding node.
        let g = generators::cycle(4);
        let colors = vec![0u8, 1, 2, 3];
        let (report, nodes) = run_plain(&g, &colors, 2, 0);
        assert!(!report.rejected());
        assert!(nodes[1].overflowed(), "I_{{v1}} = {{0}} exceeds τ = 0");
    }

    #[test]
    fn h_restriction_blocks_paths_through_non_h_nodes() {
        // C4 where node 1 is outside H: the up-branch is severed.
        let g = generators::cycle(4);
        let colors = [0u8, 1, 2, 3];
        let mut exec = Executor::new(&g, 7);
        let report = exec
            .run(
                |v, _| {
                    let in_h = v.raw() != 1;
                    ColorBfs::new(2, colors[v.index()], in_h, in_h, true, 100)
                },
                8,
            )
            .unwrap();
        assert!(!report.rejected());
    }

    #[test]
    fn x_restriction_limits_sources() {
        // Only node 0 in X vs node 0 not in X.
        let g = generators::cycle(4);
        let colors = [0u8, 1, 2, 3];
        let run_with_x = |x_mask: [bool; 4]| {
            let mut exec = Executor::new(&g, 7);
            exec.run(
                |v, _| ColorBfs::new(2, colors[v.index()], true, x_mask[v.index()], true, 100),
                8,
            )
            .unwrap()
            .rejected()
        };
        assert!(run_with_x([true, false, false, false]));
        assert!(!run_with_x([false, true, true, true]));
    }

    #[test]
    fn inactive_sources_do_not_launch() {
        let g = generators::cycle(4);
        let colors = [0u8, 1, 2, 3];
        let mut exec = Executor::new(&g, 7);
        let report = exec
            .run(
                |v, _| ColorBfs::new(2, colors[v.index()], true, true, false, 100),
                8,
            )
            .unwrap();
        assert!(!report.rejected());
        // Only the Hello round happened.
        assert_eq!(report.congestion.max_words_per_edge_step, 1);
    }

    #[test]
    fn congestion_bounded_by_sources() {
        // Star-of-paths: many sources converge on one middle vertex; the
        // per-edge congestion equals the number of distinct origins
        // forwarded, never more than τ.
        // Build: sources s_i (color 0) - a_i (color 1) - hub (color 2).
        let s = 6u32;
        let mut b = congest_graph::GraphBuilder::new(1 + 2 * s as usize);
        let hub = NodeId::new(0);
        let mut colors = vec![2u8];
        for i in 0..s {
            let src = NodeId::new(1 + 2 * i);
            let mid = NodeId::new(2 + 2 * i);
            b.add_edge(src, mid);
            b.add_edge(mid, hub);
            colors.push(0); // src
            colors.push(1); // mid
        }
        let g = b.build();
        let (report, nodes) = run_plain(&g, &colors, 2, 100);
        assert!(!report.rejected(), "no cycle present");
        // Each mid forwards exactly one id to the hub; per-edge load 1,
        // and the hub collected all s distinct origins.
        assert_eq!(nodes[0].collected().len(), s as usize);
        assert_eq!(report.congestion.max_words_per_edge_step, 1);
    }

    #[test]
    fn message_sizes() {
        assert_eq!(
            CbMsg::Hello {
                color: 3,
                in_h: true
            }
            .words(),
            1
        );
        assert_eq!(CbMsg::Ids(vec![1, 2, 3]).words(), 3);
        assert_eq!(CbMsg::Ids(vec![]).words(), 1);
    }

    #[test]
    #[should_panic(expected = "color out of range")]
    fn color_range_enforced() {
        ColorBfs::new(2, 4, true, true, true, 1);
    }
}
