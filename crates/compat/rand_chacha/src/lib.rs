//! Offline stand-in for `rand_chacha`: the ChaCha stream cipher
//! (Bernstein) as a deterministic random generator, exposed through the
//! workspace [`rand`] traits.
//!
//! The keystream is the genuine ChaCha permutation (quarter-round /
//! double-round structure, RFC 8439 constants, little-endian word
//! output), so the statistical quality matches upstream; only the
//! `rand_core` block-buffering details differ, so streams are not
//! bit-identical to the real `rand_chacha` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// The ChaCha core with a configurable round count.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ChaChaCore<const ROUNDS: usize> {
    /// Key words (state words 4–11).
    key: [u32; 8],
    /// 64-bit block counter (state words 12–13).
    counter: u64,
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const ROUNDS: usize> ChaChaCore<ROUNDS> {
    fn from_key(key: [u32; 8]) -> Self {
        ChaChaCore {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }

    fn refill(&mut self) {
        // "expand 32-byte k" || key || counter || zero nonce.
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646E,
            0x7962_2D32,
            0x6B20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.block.iter_mut().zip(state.iter().zip(input.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name {
            core: ChaChaCore<$rounds>,
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.core.next_word()
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.core.next_word() as u64;
                let hi = self.core.next_word() as u64;
                (hi << 32) | lo
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (i, word) in key.iter_mut().enumerate() {
                    let mut bytes = [0u8; 4];
                    bytes.copy_from_slice(&seed[i * 4..(i + 1) * 4]);
                    *word = u32::from_le_bytes(bytes);
                }
                $name {
                    core: ChaChaCore::from_key(key),
                }
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    8,
    "ChaCha with 8 rounds — the workspace's workhorse generator."
);
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chacha20_keystream_matches_rfc8439_structure() {
        // RFC 8439 §2.3.2 test vector uses a nonzero nonce, which this
        // generator (zero nonce, as a pure RNG) does not reproduce;
        // instead pin the zero-key/zero-nonce ChaCha20 first block, a
        // widely published reference vector.
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        let first = rng.next_u32();
        // First keystream word of ChaCha20 with zero key/nonce/counter:
        // 0xade0b876 (from the classic djb test vectors, little-endian).
        assert_eq!(first, 0xade0_b876);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(ChaCha8Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn uniformity_smoke() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..10 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
