//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `rand`'s API its crates actually use:
//!
//! * [`RngCore`] / [`SeedableRng`] (with the SplitMix64-based
//!   `seed_from_u64` default, as in `rand_core`);
//! * the [`Rng`] extension trait with `gen_range` (integer and float
//!   ranges) and `gen_bool`;
//! * [`rngs::StdRng`], a strong deterministic generator;
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Everything is deterministic and platform-independent; nothing here
//! attempts to be bit-compatible with upstream `rand` streams, only
//! API-compatible and statistically sound.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random `u32`/`u64` words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64
    /// (the same convention as `rand_core`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Widening multiply: maps 64 uniform bits onto the span
                // with bias below span/2^64 (irrelevant at these sizes).
                let word = rng.next_u64() as u128;
                let offset = (word * span) >> 64;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + (high - low) * unit
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        low + (high - low) * unit
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let word = rng.next_u64() as u128;
                let offset = (word * span) >> 64;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing extension trait (`rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// A Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        if p >= 1.0 {
            return true;
        }
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Standard generators.

    use super::{RngCore, SeedableRng};

    /// A deterministic, high-quality generator (xoshiro256**), standing
    /// in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state would be a fixed point; perturb it.
            if s.iter().all(|&w| w == 0) {
                s = [
                    0x9E3779B97F4A7C15,
                    0xBF58476D1CE4E5B9,
                    0x94D049BB133111EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence helpers (`rand::seq`).

    use super::Rng;

    /// Slice shuffling and sampling.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_by_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit");
        for _ in 0..1000 {
            let x = rng.gen_range(5..6u32);
            assert_eq!(x, 5);
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-3..3i32);
            assert!((-3..3).contains(&i));
        }
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02, "{hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }
}
