//! Quantum substrate for the even-cycle CONGEST reproduction.
//!
//! The paper's quantum ingredients (Section 3) are, in dependency order:
//!
//! 1. **Grover search / amplitude amplification** over the randomness of a
//!    classical algorithm — simulated here either with an exact
//!    state-vector ([`StateVector`]) or with exact *analytic* amplitude
//!    tracking (success probability `sin²((2j+1)θ)` after `j` iterations,
//!    `θ = asin √(m/M)`), plus the Boyer–Brassard–Høyer–Tapp schedule for
//!    an unknown number of marked items ([`GroverSearch`]).
//! 2. **Distributed quantum search** (Lemma 8 = Le Gall–Magniez
//!    [26, Thm 7]): a leader amplifies a distributed `Setup`/`Checking`
//!    pair; round cost `O(log(1/δ) · (T_setup + T_check)/√ε)`
//!    ([`DistributedSearch`]).
//! 3. **Distributed quantum Monte-Carlo amplification** (Theorem 3): any
//!    distributed one-sided Monte-Carlo algorithm with success probability
//!    `ε` and round complexity `T(n, D)` becomes a quantum algorithm with
//!    error `δ` in `polylog(1/δ)·(D + T)/√ε` rounds
//!    ([`MonteCarloAmplifier`]).
//! 4. **Diameter reduction** (Lemma 9, via the network decomposition of
//!    Lemma 10): clusters of diameter `O(k log n)` colored with few colors
//!    such that same-color clusters are far apart ([`decomposition`]).
//!
//! # Simulation contract
//!
//! No quantum hardware exists for the CONGEST model; what this crate
//! preserves — and what the paper's results are about — is (a) the
//! *behaviour* of the algorithms (one-sided error; a returned candidate is
//! always verified classically before being reported, so false positives
//! are impossible), and (b) the *round accounting* (the quadratic `1/√ε`
//! vs `1/ε` gap). Reports expose both the quantum cost model (iterations,
//! charged rounds) and the classical work the simulator spent
//! (`classical_evals`), so no simulation cost is ever confused with
//! algorithm cost.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod amplification;
mod complex;
pub mod decomposition;
mod grover;
mod mcalg;
mod search;
mod statevector;

pub use amplification::{AmplificationReport, MonteCarloAmplifier};
pub use complex::Complex;
pub use grover::{optimal_iterations, success_probability, GroverMode, GroverReport, GroverSearch};
pub use mcalg::{FnAlgorithm, McOutcome, MonteCarloAlgorithm, WithSuccess};
pub use search::{DistributedSearch, SearchReport};
pub use statevector::StateVector;
