//! Network decomposition and diameter reduction (Lemmas 9–10).
//!
//! Lemma 10 ([17, Thm 17], building on Elkin–Neiman [19]) supplies, for a
//! parameter `k`, a set of clusters such that (1) every node is in at
//! least one cluster, (2) clusters are colored with few colors, and
//! (3) same-color clusters are at distance at least `k` from each other.
//! Lemma 9 then runs a subgraph-freeness algorithm color by color on each
//! cluster enlarged by its `k`-neighborhood: components have diameter
//! `O(k log n)`, and any copy of a `k`-vertex connected subgraph `H` lies
//! entirely inside some component.
//!
//! **Substitution note (see DESIGN.md §2.6).** The paper uses the
//! decomposition as a black box with round cost `k·polylog(n)`. We build
//! it with Miller–Peng–Xu exponential-shift ball carving (which yields
//! connected clusters of radius `O(log n / β)` w.h.p.) followed by a
//! greedy distance-`k` coloring of the cluster graph, computed centrally
//! from seeded randomness. The three output guarantees are enforced by
//! tests; the round cost is charged from the lemma's statement.

use congest_graph::{analysis, Graph, NodeId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One cluster of a [`Decomposition`].
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The center whose shifted ball carved this cluster.
    pub center: NodeId,
    /// The members (each node belongs to exactly one cluster).
    pub members: Vec<NodeId>,
    /// The assigned color; same-color clusters are `≥ separation` apart.
    pub color: u32,
}

/// A `(colors, O(k log n))`-network decomposition (Lemma 10).
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// The clusters, covering every vertex exactly once.
    pub clusters: Vec<Cluster>,
    /// Number of colors used.
    pub colors: u32,
    /// The separation parameter: same-color clusters are at graph
    /// distance at least this.
    pub separation: u32,
    /// The round cost charged for the distributed construction,
    /// per Lemma 10: `k · ⌈log₂(n+2)⌉²`.
    pub round_cost: u64,
    /// cluster id of each vertex.
    assignment: Vec<u32>,
}

impl Decomposition {
    /// The cluster index of vertex `v`.
    pub fn cluster_of(&self, v: NodeId) -> u32 {
        self.assignment[v.index()]
    }

    /// The construction's round cost at per-edge bandwidth `B` (words
    /// per round): the Lemma 10 protocol exchanges single-word messages
    /// (shift announcements, cluster ids, color proposals), so a
    /// `B`-word budget per edge divides the charge, `⌈cost/B⌉`.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth == 0`.
    pub fn round_cost_at(&self, bandwidth: u64) -> u64 {
        assert!(bandwidth > 0, "bandwidth must be positive");
        self.round_cost.div_ceil(bandwidth)
    }

    /// Maximum strong diameter over clusters (diameter of the subgraph
    /// induced by each cluster). `None` for an empty decomposition.
    pub fn max_cluster_diameter(&self, g: &Graph) -> Option<u32> {
        let mut best = None;
        for c in &self.clusters {
            let mut keep = vec![false; g.node_count()];
            for &v in &c.members {
                keep[v.index()] = true;
            }
            let (sub, _) = g.induced_subgraph(&keep);
            let d = analysis::diameter(&sub)?; // clusters are connected
            best = Some(best.map_or(d, |b: u32| b.max(d)));
        }
        best
    }
}

/// Builds a network decomposition with same-color separation `≥ sep`
/// (callers pass `sep = 2k + 1` for `2k`-cycle detection, per Lemma 9's
/// use with parameter `2k + 1`).
///
/// # Panics
///
/// Panics if `sep == 0` or the graph is empty.
pub fn decompose(g: &Graph, sep: u32, seed: u64) -> Decomposition {
    assert!(sep > 0, "separation must be positive");
    let n = g.node_count();
    assert!(n > 0, "cannot decompose the empty graph");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // Exponential shifts: β = 1/(c·(1 + ln n)) gives cluster radius
    // O(log n / 1) = O(log n) w.h.p.; we do not need radius to scale with
    // `sep` (separation is handled by the coloring), so β only depends on
    // n.
    let beta = 1.0 / (2.0 * (1.0 + (n as f64).ln()));
    let shifts: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            -u.ln() / beta // Exp(β)
        })
        .collect();

    // Shifted multi-source Dijkstra: node u joins the center v minimizing
    // d(u, v) - shift_v. Priority queue over f64 keys.
    #[derive(PartialEq)]
    struct Item {
        key: f64,
        node: u32,
        center: u32,
    }
    impl Eq for Item {}
    impl PartialOrd for Item {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Item {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Min-heap on key; tie-break deterministically.
            other
                .key
                .partial_cmp(&self.key)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| other.node.cmp(&self.node))
                .then_with(|| other.center.cmp(&self.center))
        }
    }

    let mut heap = std::collections::BinaryHeap::new();
    for (v, &shift) in shifts.iter().enumerate() {
        heap.push(Item {
            key: -shift,
            node: v as u32,
            center: v as u32,
        });
    }
    let mut best_key = vec![f64::INFINITY; n];
    let mut assignment = vec![u32::MAX; n];
    while let Some(Item { key, node, center }) = heap.pop() {
        let v = node as usize;
        if assignment[v] != u32::MAX {
            continue;
        }
        assignment[v] = center;
        best_key[v] = key;
        for &w in g.neighbors(NodeId::new(node)) {
            if assignment[w.index()] == u32::MAX {
                heap.push(Item {
                    key: key + 1.0,
                    node: w.raw(),
                    center,
                });
            }
        }
    }

    // Compact clusters (centers that won at least one vertex).
    let mut center_to_cluster = vec![u32::MAX; n];
    let mut clusters: Vec<Cluster> = Vec::new();
    for (v, &a) in assignment.iter().enumerate() {
        let c = a as usize;
        if center_to_cluster[c] == u32::MAX {
            center_to_cluster[c] = clusters.len() as u32;
            clusters.push(Cluster {
                center: NodeId::new(c as u32),
                members: Vec::new(),
                color: u32::MAX,
            });
        }
        let idx = center_to_cluster[c] as usize;
        clusters[idx].members.push(NodeId::new(v as u32));
    }
    let cluster_assignment: Vec<u32> = (0..n)
        .map(|v| center_to_cluster[assignment[v] as usize])
        .collect();

    // Cluster graph: clusters within distance < sep conflict. Multi-source
    // BFS from each cluster, bounded by sep - 1 hops.
    let cc = clusters.len();
    let mut conflicts: Vec<std::collections::BTreeSet<u32>> =
        vec![std::collections::BTreeSet::new(); cc];
    let mut dist = vec![u32::MAX; n];
    let mut touched: Vec<usize> = Vec::new();
    for (ci, cluster) in clusters.iter().enumerate() {
        for &t in &touched {
            dist[t] = u32::MAX;
        }
        touched.clear();
        let mut queue = std::collections::VecDeque::new();
        for &v in &cluster.members {
            dist[v.index()] = 0;
            touched.push(v.index());
            queue.push_back(v);
        }
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()];
            if du + 1 >= sep {
                continue;
            }
            for &w in g.neighbors(u) {
                if dist[w.index()] == u32::MAX {
                    dist[w.index()] = du + 1;
                    touched.push(w.index());
                    queue.push_back(w);
                    let other = cluster_assignment[w.index()];
                    if other != ci as u32 {
                        conflicts[ci].insert(other);
                        conflicts[other as usize].insert(ci as u32);
                    }
                }
            }
        }
    }

    // Greedy coloring in decreasing size order.
    let mut order: Vec<usize> = (0..cc).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(clusters[i].members.len()));
    let mut colors_used = 0u32;
    for &i in &order {
        let forbidden: std::collections::BTreeSet<u32> = conflicts[i]
            .iter()
            .map(|&j| clusters[j as usize].color)
            .filter(|&c| c != u32::MAX)
            .collect();
        let mut color = 0u32;
        while forbidden.contains(&color) {
            color += 1;
        }
        clusters[i].color = color;
        colors_used = colors_used.max(color + 1);
    }

    let log_n = ((n + 2) as f64).log2().ceil() as u64;
    Decomposition {
        clusters,
        colors: colors_used,
        separation: sep,
        round_cost: u64::from(sep) * log_n * log_n,
        assignment: cluster_assignment,
    }
}

/// One diameter-reduced component `G(i, k)` of Lemma 9: the subgraph
/// induced by the clusters of one color enlarged by their
/// `radius`-neighborhood.
#[derive(Debug, Clone)]
pub struct ReducedComponent {
    /// The color class this component came from.
    pub color: u32,
    /// The component as a standalone graph (vertices renumbered).
    pub graph: Graph,
    /// Mapping from component vertex ids back to the original graph.
    pub original_ids: Vec<NodeId>,
}

/// Computes the Lemma 9 component family: for each color `i`, the
/// connected components of the union of color-`i` clusters enlarged by
/// their `radius`-neighborhood.
///
/// For `radius = k` and `separation ≥ 2k + 1`, (a) enlargements of
/// distinct same-color clusters stay disconnected, so every component has
/// diameter `O(k log n)`, and (b) every connected `≤(k+1)`-vertex subgraph
/// of `g` — in particular every cycle `C_ℓ`, `ℓ ≤ 2k`, which has radius
/// `≤ k` — appears entirely inside at least one component.
pub fn reduced_components(
    g: &Graph,
    decomposition: &Decomposition,
    radius: u32,
) -> Vec<ReducedComponent> {
    let n = g.node_count();
    let mut out = Vec::new();
    for color in 0..decomposition.colors {
        // Mask: nodes within `radius` of any cluster of this color.
        let mut dist = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for cluster in decomposition.clusters.iter().filter(|c| c.color == color) {
            for &v in &cluster.members {
                dist[v.index()] = 0;
                queue.push_back(v);
            }
        }
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()];
            if du >= radius {
                continue;
            }
            for &w in g.neighbors(u) {
                if dist[w.index()] == u32::MAX {
                    dist[w.index()] = du + 1;
                    queue.push_back(w);
                }
            }
        }
        let keep: Vec<bool> = dist.iter().map(|&d| d != u32::MAX).collect();
        if !keep.iter().any(|&b| b) {
            continue;
        }
        let (sub, back) = g.induced_subgraph(&keep);
        // Split into connected components.
        let comps = analysis::connected_components(&sub);
        for members in comps.members() {
            let mut mask = vec![false; sub.node_count()];
            for &v in &members {
                mask[v.index()] = true;
            }
            let (comp_graph, comp_back) = sub.induced_subgraph(&mask);
            let original_ids: Vec<NodeId> = comp_back.iter().map(|&v| back[v.index()]).collect();
            out.push(ReducedComponent {
                color,
                graph: comp_graph,
                original_ids,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    fn check_invariants(g: &Graph, d: &Decomposition) {
        // (1) Coverage: every vertex in exactly one cluster.
        let mut seen = vec![0u32; g.node_count()];
        for c in &d.clusters {
            for &v in &c.members {
                seen[v.index()] += 1;
            }
        }
        assert!(seen.iter().all(|&s| s == 1), "partition violated");

        // (3) Same-color separation.
        for (i, a) in d.clusters.iter().enumerate() {
            // BFS from cluster a bounded by sep-1; no same-color other
            // cluster may be reached.
            let mut dist = vec![u32::MAX; g.node_count()];
            let mut queue = std::collections::VecDeque::new();
            for &v in &a.members {
                dist[v.index()] = 0;
                queue.push_back(v);
            }
            while let Some(u) = queue.pop_front() {
                let du = dist[u.index()];
                if du + 1 >= d.separation {
                    continue;
                }
                for &w in g.neighbors(u) {
                    if dist[w.index()] == u32::MAX {
                        dist[w.index()] = du + 1;
                        queue.push_back(w);
                    }
                }
            }
            for (j, b) in d.clusters.iter().enumerate() {
                if i != j && a.color == b.color {
                    for &v in &b.members {
                        assert_eq!(
                            dist[v.index()],
                            u32::MAX,
                            "same-color clusters {i},{j} within distance {}",
                            d.separation - 1
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn invariants_on_random_graphs() {
        for seed in 0..3 {
            let g = generators::erdos_renyi(60, 0.07, seed);
            let d = decompose(&g, 5, seed);
            check_invariants(&g, &d);
        }
    }

    #[test]
    fn invariants_on_cycle_and_grid() {
        let g = generators::cycle(40);
        let d = decompose(&g, 5, 1);
        check_invariants(&g, &d);
        let g = generators::grid(8, 8);
        let d = decompose(&g, 7, 2);
        check_invariants(&g, &d);
    }

    #[test]
    fn clusters_are_connected_with_bounded_diameter() {
        let g = generators::grid(10, 10);
        let d = decompose(&g, 5, 3);
        let diam = d.max_cluster_diameter(&g).expect("connected clusters");
        // O(log n) with the β above; generous constant.
        let bound = (8.0 * ((g.node_count() as f64).ln() + 1.0)) as u32;
        assert!(diam <= bound, "cluster diameter {diam} > bound {bound}");
    }

    #[test]
    fn singleton_graph() {
        let g = generators::empty(1);
        let d = decompose(&g, 3, 0);
        assert_eq!(d.clusters.len(), 1);
        assert_eq!(d.colors, 1);
    }

    #[test]
    fn reduced_components_cover_short_cycles() {
        // Plant a C6; for k = 3 (sep = 7, radius 3) some component must
        // contain all six cycle vertices.
        let host = generators::random_tree(80, 4);
        let (g, w) = generators::plant_cycle(&host, 6, 9);
        let d = decompose(&g, 7, 5);
        let comps = reduced_components(&g, &d, 3);
        let cycle_set: std::collections::HashSet<NodeId> = w.nodes().iter().copied().collect();
        let covered = comps.iter().any(|c| {
            let ids: std::collections::HashSet<NodeId> = c.original_ids.iter().copied().collect();
            cycle_set.is_subset(&ids)
        });
        assert!(covered, "no component contains the planted C6");
    }

    #[test]
    fn reduced_components_have_bounded_diameter() {
        let g = generators::cycle(100);
        let d = decompose(&g, 7, 8);
        let comps = reduced_components(&g, &d, 3);
        for c in &comps {
            let diam = analysis::diameter(&c.graph).expect("components connected");
            let bound = (8.0 * ((g.node_count() as f64).ln() + 1.0)) as u32 + 2 * 3;
            assert!(diam <= bound, "component diameter {diam} > {bound}");
        }
    }

    #[test]
    fn determinism() {
        let g = generators::erdos_renyi(40, 0.1, 2);
        let a = decompose(&g, 5, 7);
        let b = decompose(&g, 5, 7);
        assert_eq!(a.colors, b.colors);
        assert_eq!(a.assignment, b.assignment);
    }
}
