//! A minimal complex-number type for the state-vector simulator.
//!
//! Kept in-house to avoid a dependency for thirty lines of arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
///
/// ```
/// use congest_quantum::Complex;
/// let i = Complex::new(0.0, 1.0);
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// assert!((Complex::new(3.0, 4.0).norm_sqr() - 25.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates `re + im·i`.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A real number as a complex one.
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// The squared modulus `|z|²` (a probability when `z` is an
    /// amplitude).
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The modulus `|z|`.
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// The complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplication by a real scalar.
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
    }

    #[test]
    fn norms_and_scaling() {
        let z = Complex::new(3.0, 4.0);
        assert!((z.norm() - 5.0).abs() < 1e-12);
        assert_eq!(z.scale(2.0), Complex::new(6.0, 8.0));
        assert_eq!(Complex::ZERO.norm_sqr(), 0.0);
        assert_eq!(Complex::ONE.norm_sqr(), 1.0);
    }

    #[test]
    fn display_signs() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }
}
