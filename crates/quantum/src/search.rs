//! Distributed quantum search (Lemma 8, after Le Gall–Magniez [26]).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::grover::{GroverMode, GroverSearch};

/// The result of a [`DistributedSearch`].
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReport {
    /// A verified element of the search space with `f(x) = 1`, if found.
    pub result: Option<usize>,
    /// CONGEST rounds charged under the Lemma 8 cost model:
    /// `(iterations + verifications) · (T_setup + T_checking)`,
    /// summed over the `⌈log₂(1/δ)⌉` amplification repetitions.
    pub rounds: u64,
    /// Total Grover iterations across repetitions.
    pub iterations: u64,
    /// Classical oracle evaluations spent by the simulator (not charged
    /// as rounds).
    pub classical_evals: u64,
    /// Number of independent BBHT repetitions executed.
    pub repetitions: u32,
}

/// Distributed quantum search (Lemma 8): a leader node `v_lead` amplifies
/// a distributed `Setup` procedure (round cost `t_setup`) checked by a
/// `Checking` procedure (round cost `t_checking`), achieving constant
/// success from success probability `ε` in
/// `O(log(1/δ) · (t_setup + t_checking)/√ε)` rounds.
///
/// The search space and oracle are classical inputs here (seeds of the
/// randomized algorithm and "did any node reject", respectively, in the
/// paper's application); the quantum dynamics are simulated by
/// [`GroverSearch`].
///
/// ```
/// use congest_quantum::{DistributedSearch, GroverMode};
/// let search = DistributedSearch::new(10, 0, 0.01)
///     .with_mode(GroverMode::Analytic);
/// let report = search.run(256, |x| x == 200, 42);
/// assert_eq!(report.result, Some(200));
/// assert!(report.rounds > 0);
/// ```
#[derive(Debug, Clone)]
pub struct DistributedSearch {
    t_setup: u64,
    t_checking: u64,
    delta: f64,
    mode: GroverMode,
}

impl DistributedSearch {
    /// Creates a search with the given `Setup`/`Checking` round costs and
    /// target error probability `δ`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < δ < 1`.
    pub fn new(t_setup: u64, t_checking: u64, delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "δ must be in (0,1)");
        DistributedSearch {
            t_setup,
            t_checking,
            delta,
            mode: GroverMode::Analytic,
        }
    }

    /// Selects the Grover simulation mode (default: analytic).
    pub fn with_mode(mut self, mode: GroverMode) -> Self {
        self.mode = mode;
        self
    }

    /// Runs the search over the space `0..dim` with the given oracle.
    ///
    /// Repeats BBHT `⌈log₂(1/δ)⌉` times (each repetition has constant
    /// success probability when a marked element exists); any verified
    /// find short-circuits.
    pub fn run<F>(&self, dim: usize, mut oracle: F, seed: u64) -> SearchReport
    where
        F: FnMut(usize) -> bool,
    {
        let reps = (1.0 / self.delta).log2().ceil().max(1.0) as u32;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let grover = GroverSearch::new(self.mode);
        let mut report = SearchReport {
            result: None,
            rounds: 0,
            iterations: 0,
            classical_evals: 0,
            repetitions: 0,
        };
        for _ in 0..reps {
            report.repetitions += 1;
            let g = grover.search(dim, &mut oracle, &mut rng);
            report.iterations += g.iterations;
            report.classical_evals += g.classical_evals;
            // Each Grover iteration coherently runs Setup (+ uncomputes);
            // each measurement verification runs Setup+Checking once.
            report.rounds +=
                (g.iterations + g.measurements) * (self.t_setup + self.t_checking).max(1);
            if g.result.is_some() {
                report.result = g.result;
                break;
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_marked_and_charges_rounds() {
        let search = DistributedSearch::new(7, 3, 0.1);
        let report = search.run(128, |x| x >= 120, 1);
        assert!(report.result.is_some());
        assert!(report.result.unwrap() >= 120);
        // rounds = (iterations + measurements) * 10 >= iterations * 10.
        assert!(report.rounds >= report.iterations * 10);
    }

    #[test]
    fn empty_oracle_exhausts_repetitions() {
        let search = DistributedSearch::new(1, 0, 0.25);
        let report = search.run(64, |_| false, 5);
        assert_eq!(report.result, None);
        assert_eq!(report.repetitions, 2, "⌈log₂ 4⌉ = 2");
    }

    #[test]
    fn smaller_delta_more_repetitions() {
        let search = DistributedSearch::new(1, 0, 1e-6);
        let report = search.run(16, |_| false, 5);
        assert_eq!(report.repetitions, 20, "⌈log₂ 10⁶⌉ = 20");
    }

    #[test]
    #[should_panic(expected = "δ must be in (0,1)")]
    fn invalid_delta_panics() {
        DistributedSearch::new(1, 1, 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let search = DistributedSearch::new(2, 2, 0.1);
        let a = search.run(256, |x| x % 10 == 0, 9);
        let b = search.run(256, |x| x % 10 == 0, 9);
        assert_eq!(a, b);
    }
}
