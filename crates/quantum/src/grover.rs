//! Grover search with the BBHT schedule for an unknown number of marked
//! items.

use rand::Rng;

use crate::statevector::StateVector;

/// How the Grover dynamics are simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroverMode {
    /// Full state-vector simulation: the uniform state is evolved by the
    /// actual oracle/diffusion operators and measured. Exact quantum
    /// dynamics; `O(j·M)` floating-point work per amplification of `j`
    /// iterations. The marked set is discovered by one exhaustive scan
    /// (`M` classical oracle evaluations, reported as `classical_evals`).
    Exact,
    /// Exact analytic amplitude tracking: after `j` iterations the
    /// success probability is exactly `sin²((2j+1)θ)` with
    /// `θ = asin √(m/M)`; measurement is sampled from that law. Same
    /// exhaustive scan as `Exact`, but no per-iteration cost. Results are
    /// statistically identical to `Exact`.
    Analytic,
    /// Analytic tracking with the marked fraction *estimated* from
    /// `samples` random classical evaluations instead of an exhaustive
    /// scan — the only mode whose success statistics are approximate
    /// (the approximation is reported, never hidden: `estimated = true`).
    /// Use when `M` classical evaluations would dwarf the experiment.
    Sampled {
        /// Number of classical evaluations used to estimate `m/M`.
        samples: usize,
    },
}

/// The outcome of a [`GroverSearch::search`].
#[derive(Debug, Clone, PartialEq)]
pub struct GroverReport {
    /// A *verified* marked element, if the search succeeded.
    pub result: Option<usize>,
    /// Total Grover iterations performed — the quantum cost unit
    /// (each iteration = one coherent oracle application).
    pub iterations: u64,
    /// Number of measure-and-verify cycles (BBHT rounds).
    pub measurements: u64,
    /// Classical oracle evaluations spent by the *simulator* (exhaustive
    /// or sampled scans, measurement verification). Simulation overhead —
    /// not part of the quantum algorithm's round cost.
    pub classical_evals: u64,
    /// Whether the marked fraction was estimated rather than exact
    /// (only in [`GroverMode::Sampled`]).
    pub estimated: bool,
}

impl GroverReport {
    /// Whether a marked element was found.
    pub fn found(&self) -> bool {
        self.result.is_some()
    }
}

/// The Grover angle `θ = asin √(m/M)`.
fn grover_angle(dim: usize, marked: usize) -> f64 {
    ((marked as f64 / dim as f64).sqrt()).asin()
}

/// The success probability of measuring a marked element after `j`
/// Grover iterations on a space of `dim` elements with `marked` of them
/// marked: `sin²((2j+1)·asin√(m/M))`.
pub fn success_probability(dim: usize, marked: usize, iterations: u64) -> f64 {
    if marked == 0 {
        return 0.0;
    }
    if marked >= dim {
        return 1.0;
    }
    let theta = grover_angle(dim, marked);
    ((2 * iterations + 1) as f64 * theta).sin().powi(2)
}

/// The optimal number of Grover iterations for a *known* marked count:
/// `⌊π/(4θ)⌋`, after which success probability is `1 - O(m/M)`.
pub fn optimal_iterations(dim: usize, marked: usize) -> u64 {
    if marked == 0 || marked >= dim {
        return 0;
    }
    let theta = grover_angle(dim, marked);
    (std::f64::consts::FRAC_PI_4 / theta).floor() as u64
}

/// Grover search over `0..dim` with the Boyer–Brassard–Høyer–Tapp
/// exponential schedule, which needs no prior knowledge of the number of
/// marked elements and uses `O(√(M/m))` iterations in expectation
/// (`O(√M)` total before giving up when nothing is marked).
///
/// One-sided by construction: every candidate measurement is verified by
/// a classical oracle call before being returned, so `result` is never a
/// false positive — mirroring how the paper's Theorem 3 preserves
/// one-sided error.
#[derive(Debug, Clone)]
pub struct GroverSearch {
    mode: GroverMode,
    /// Multiplier on the `√M` iteration budget before concluding
    /// "nothing marked".
    budget_factor: f64,
}

impl GroverSearch {
    /// Creates a search in the given mode with the default give-up budget
    /// (`6√M` iterations).
    pub fn new(mode: GroverMode) -> Self {
        GroverSearch {
            mode,
            budget_factor: 6.0,
        }
    }

    /// Overrides the iteration budget multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 0`.
    pub fn set_budget_factor(&mut self, factor: f64) -> &mut Self {
        assert!(factor > 0.0, "budget factor must be positive");
        self.budget_factor = factor;
        self
    }

    /// Runs the search over `0..dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn search<F, R>(&self, dim: usize, mut oracle: F, rng: &mut R) -> GroverReport
    where
        F: FnMut(usize) -> bool,
        R: Rng,
    {
        assert!(dim > 0, "search space must be non-empty");
        let mut report = GroverReport {
            result: None,
            iterations: 0,
            measurements: 0,
            classical_evals: 0,
            estimated: false,
        };

        // Establish the marked set (exact modes) or an estimate (sampled).
        let (marked_list, marked_count_for_angle): (Vec<usize>, f64) = match self.mode {
            GroverMode::Exact | GroverMode::Analytic => {
                let mut list = Vec::new();
                for x in 0..dim {
                    report.classical_evals += 1;
                    if oracle(x) {
                        list.push(x);
                    }
                }
                let m = list.len() as f64;
                (list, m)
            }
            GroverMode::Sampled { samples } => {
                report.estimated = true;
                let mut list = Vec::new();
                let s = samples.max(1);
                for _ in 0..s {
                    let x = rng.gen_range(0..dim);
                    report.classical_evals += 1;
                    if oracle(x) {
                        list.push(x);
                    }
                }
                let est = (list.len() as f64 / s as f64) * dim as f64;
                list.sort_unstable();
                list.dedup();
                (list, est)
            }
        };

        let budget = (self.budget_factor * (dim as f64).sqrt()).ceil() as u64 + 12;

        // BBHT: grow the iteration range exponentially.
        let lambda = 6.0_f64 / 5.0;
        let mut m_range = 1.0_f64;
        let sqrt_dim = (dim as f64).sqrt();

        while report.iterations < budget {
            let j = rng.gen_range(0..m_range.ceil() as u64 + 1);
            report.iterations += j;
            report.measurements += 1;

            let outcome: usize = match self.mode {
                GroverMode::Exact => {
                    let mut psi = StateVector::uniform(dim);
                    // Oracle from the cached marked set (already counted).
                    let marked = &marked_list;
                    for _ in 0..j {
                        psi.grover_iteration(|x| marked.binary_search(&x).is_ok());
                    }
                    psi.measure(rng)
                }
                GroverMode::Analytic | GroverMode::Sampled { .. } => {
                    let m_eff = match self.mode {
                        GroverMode::Sampled { .. } => marked_count_for_angle,
                        _ => marked_list.len() as f64,
                    };
                    let p = if m_eff <= 0.0 {
                        0.0
                    } else if m_eff >= dim as f64 {
                        1.0
                    } else {
                        let theta = (m_eff / dim as f64).sqrt().asin();
                        ((2 * j + 1) as f64 * theta).sin().powi(2)
                    };
                    if !marked_list.is_empty() && rng.gen_bool(p.clamp(0.0, 1.0)) {
                        marked_list[rng.gen_range(0..marked_list.len())]
                    } else {
                        // An unmarked outcome; sample any element — the
                        // verification below rejects marked-by-chance
                        // collisions consistently.
                        sample_unmarked(dim, &marked_list, rng)
                    }
                }
            };

            // Classical verification of the measurement (one-sidedness).
            report.classical_evals += 1;
            if oracle(outcome) {
                report.result = Some(outcome);
                return report;
            }
            m_range = (lambda * m_range).min(sqrt_dim);
        }
        report
    }
}

impl GroverSearch {
    /// Single-shot Grover with a *known* marked count: applies the
    /// optimal `⌊π/(4θ)⌋` iterations once, measures, and verifies.
    ///
    /// Succeeds with probability `≥ 1 - m/M`; still one-sided (a failed
    /// verification returns `None` in `result`). Exposed separately from
    /// the BBHT search because several baselines ([9]'s direct Grover in
    /// particular) assume the marked count is known.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `marked_count > dim`.
    pub fn search_known<F, R>(
        &self,
        dim: usize,
        marked_count: usize,
        mut oracle: F,
        rng: &mut R,
    ) -> GroverReport
    where
        F: FnMut(usize) -> bool,
        R: Rng,
    {
        assert!(dim > 0, "search space must be non-empty");
        assert!(marked_count <= dim, "marked count exceeds the space");
        let mut report = GroverReport {
            result: None,
            iterations: 0,
            measurements: 0,
            classical_evals: 0,
            estimated: false,
        };
        if marked_count == 0 {
            return report;
        }
        let j = optimal_iterations(dim, marked_count);
        report.iterations = j;
        report.measurements = 1;
        let outcome = match self.mode {
            GroverMode::Exact => {
                let mut psi = StateVector::uniform(dim);
                // The oracle is queried coherently; count one classical
                // scan for the simulator-side marked set.
                let marked: Vec<usize> = (0..dim)
                    .inspect(|_| report.classical_evals += 1)
                    .filter(|&x| oracle(x))
                    .collect();
                for _ in 0..j {
                    psi.grover_iteration(|x| marked.binary_search(&x).is_ok());
                }
                psi.measure(rng)
            }
            GroverMode::Analytic | GroverMode::Sampled { .. } => {
                let marked: Vec<usize> = (0..dim)
                    .inspect(|_| report.classical_evals += 1)
                    .filter(|&x| oracle(x))
                    .collect();
                let p = success_probability(dim, marked.len(), j);
                if !marked.is_empty() && rng.gen_bool(p.clamp(0.0, 1.0)) {
                    marked[rng.gen_range(0..marked.len())]
                } else {
                    sample_unmarked(dim, &marked, rng)
                }
            }
        };
        report.classical_evals += 1;
        if oracle(outcome) {
            report.result = Some(outcome);
        }
        report
    }
}

/// Uniformly samples an element outside `marked` (sorted). Falls back to
/// an arbitrary element if everything is marked.
fn sample_unmarked<R: Rng>(dim: usize, marked: &[usize], rng: &mut R) -> usize {
    if marked.len() >= dim {
        return 0;
    }
    loop {
        let x = rng.gen_range(0..dim);
        if marked.binary_search(&x).is_err() {
            return x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn success_probability_endpoints() {
        assert_eq!(success_probability(100, 0, 5), 0.0);
        assert_eq!(success_probability(100, 100, 5), 1.0);
        // j = 0: probability equals m/M.
        let p0 = success_probability(64, 4, 0);
        assert!((p0 - 4.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn optimal_iterations_quadratic_scaling() {
        // m = 1: optimal ≈ (π/4)√M.
        let j_256 = optimal_iterations(256, 1);
        let j_4096 = optimal_iterations(4096, 1);
        assert!((11..=13).contains(&j_256), "{j_256}");
        assert!((49..=51).contains(&j_4096), "{j_4096}");
        // Quadrupling M doubles iterations (16x here → 4x).
        assert!((j_4096 as f64 / j_256 as f64 - 4.0).abs() < 0.5);
        assert_eq!(optimal_iterations(100, 0), 0);
    }

    #[test]
    fn exact_mode_finds_single_marked() {
        let search = GroverSearch::new(GroverMode::Exact);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let report = search.search(64, |x| x == 37, &mut rng);
        assert_eq!(report.result, Some(37));
        assert!(
            report.iterations <= 64,
            "should be ~√M, got {}",
            report.iterations
        );
    }

    #[test]
    fn analytic_mode_finds_single_marked() {
        let search = GroverSearch::new(GroverMode::Analytic);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let report = search.search(4096, |x| x == 1234, &mut rng);
        assert_eq!(report.result, Some(1234));
        assert!(
            report.iterations < 800,
            "expected ~√4096 = 64-ish iterations (with BBHT overhead), got {}",
            report.iterations
        );
    }

    #[test]
    fn no_marked_elements_returns_none() {
        let search = GroverSearch::new(GroverMode::Analytic);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let report = search.search(256, |_| false, &mut rng);
        assert_eq!(report.result, None);
        assert!(
            report.iterations >= (6.0 * 16.0) as u64,
            "ran out the budget"
        );
    }

    #[test]
    fn one_sidedness_never_fabricates() {
        // Over many seeds, an all-false oracle never yields a result.
        for seed in 0..20 {
            let search = GroverSearch::new(GroverMode::Analytic);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            assert!(search.search(64, |_| false, &mut rng).result.is_none());
        }
    }

    #[test]
    fn sampled_mode_finds_dense_marked_set() {
        // 1/8 of the space marked; sampling estimates the fraction well.
        let search = GroverSearch::new(GroverMode::Sampled { samples: 64 });
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let report = search.search(1 << 16, |x| x % 8 == 0, &mut rng);
        assert!(report.estimated);
        assert!(report.found());
        assert_eq!(report.result.unwrap() % 8, 0, "verified marked");
        assert!(report.classical_evals < 200);
    }

    #[test]
    fn exact_and_analytic_agree_statistically() {
        // Same marked fraction: success rates over seeds should be close.
        let dim = 64;
        let oracle = |x: usize| x % 16 == 3; // 4 marked
        let trials = 40;
        let mut exact_found = 0;
        let mut analytic_found = 0;
        for seed in 0..trials {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            if GroverSearch::new(GroverMode::Exact)
                .search(dim, oracle, &mut rng)
                .found()
            {
                exact_found += 1;
            }
            let mut rng = ChaCha8Rng::seed_from_u64(seed + 1000);
            if GroverSearch::new(GroverMode::Analytic)
                .search(dim, oracle, &mut rng)
                .found()
            {
                analytic_found += 1;
            }
        }
        // Both should essentially always succeed with 4/64 marked.
        assert!(exact_found >= trials - 2, "exact: {exact_found}/{trials}");
        assert!(
            analytic_found >= trials - 2,
            "analytic: {analytic_found}/{trials}"
        );
    }

    #[test]
    fn search_known_is_near_certain_for_single_marked() {
        let search = GroverSearch::new(GroverMode::Exact);
        let mut hits = 0;
        for seed in 0..30 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            if search.search_known(256, 1, |x| x == 77, &mut rng).found() {
                hits += 1;
            }
        }
        // Success probability sin²((2j+1)θ) ≈ 1 - 1/256.
        assert!(hits >= 29, "hits {hits}/30");
    }

    #[test]
    fn search_known_zero_marked_accepts() {
        let search = GroverSearch::new(GroverMode::Analytic);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let r = search.search_known(64, 0, |_| false, &mut rng);
        assert!(r.result.is_none());
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn iteration_scaling_is_sqrt() {
        // Average BBHT iterations with one marked element scales like √M.
        let avg_iters = |dim: usize| -> f64 {
            let mut total = 0u64;
            let trials = 30;
            for seed in 0..trials {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let r = GroverSearch::new(GroverMode::Analytic).search(dim, |x| x == 0, &mut rng);
                assert!(r.found());
                total += r.iterations;
            }
            total as f64 / trials as f64
        };
        let a = avg_iters(256);
        let b = avg_iters(4096);
        let ratio = b / a;
        // √(4096/256) = 4; allow generous noise.
        assert!(
            ratio > 2.0 && ratio < 8.0,
            "iteration ratio {ratio} not ~4 (a={a}, b={b})"
        );
    }
}
