//! The interface between classical Monte-Carlo distributed algorithms and
//! the quantum amplification machinery.

/// The outcome of one seeded run of a Monte-Carlo distributed algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McOutcome {
    /// Whether at least one node rejected.
    pub rejected: bool,
    /// CONGEST rounds this run took.
    pub rounds: u64,
}

/// A distributed Monte-Carlo algorithm with one-sided *success*
/// probability, in the sense of Theorem 3:
///
/// * if the input satisfies the predicate (e.g. is `C_{2k}`-free), **every**
///   run accepts;
/// * otherwise, a run rejects with probability at least
///   [`success_probability`](MonteCarloAlgorithm::success_probability).
///
/// All randomness must come from the seed: equal seeds must give equal
/// outcomes, which is what lets the amplifier treat seeds as the Grover
/// search space.
pub trait MonteCarloAlgorithm {
    /// Runs the algorithm with the given seed.
    fn run(&self, seed: u64) -> McOutcome;

    /// An upper bound on the rounds of a single run — the `T(n, D)` of
    /// Theorem 3.
    fn round_bound(&self) -> u64;

    /// The one-sided success probability `ε`: a lower bound on the
    /// rejection probability on inputs violating the predicate.
    fn success_probability(&self) -> f64;
}

/// A [`MonteCarloAlgorithm`] built from a closure — convenient for tests
/// and for wrapping ad-hoc detectors.
///
/// ```
/// use congest_quantum::{FnAlgorithm, McOutcome, MonteCarloAlgorithm};
/// let alg = FnAlgorithm::new(|seed| McOutcome { rejected: seed % 8 == 0, rounds: 3 }, 3, 1.0 / 8.0);
/// assert!(alg.run(16).rejected);
/// assert_eq!(alg.round_bound(), 3);
/// ```
pub struct FnAlgorithm<F> {
    f: F,
    round_bound: u64,
    success: f64,
}

impl<F: Fn(u64) -> McOutcome> FnAlgorithm<F> {
    /// Wraps `f` with the stated round bound and success probability.
    pub fn new(f: F, round_bound: u64, success: f64) -> Self {
        FnAlgorithm {
            f,
            round_bound,
            success,
        }
    }
}

impl<F: Fn(u64) -> McOutcome> MonteCarloAlgorithm for FnAlgorithm<F> {
    fn run(&self, seed: u64) -> McOutcome {
        (self.f)(seed)
    }

    fn round_bound(&self) -> u64 {
        self.round_bound
    }

    fn success_probability(&self) -> f64 {
        self.success
    }
}

impl<F> std::fmt::Debug for FnAlgorithm<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnAlgorithm")
            .field("round_bound", &self.round_bound)
            .field("success", &self.success)
            .finish()
    }
}

/// Overrides the declared success probability of a wrapped algorithm.
///
/// The declared `ε` sizes the amplifier's seed space (`M ≈ c/ε`); when an
/// algorithm's analytic lower bound is far more pessimistic than its
/// empirical rejection rate on an instance family, experiments can
/// declare a tighter (still valid) `ε` to avoid paying for the slack.
/// One-sidedness is unaffected — a wrong override can only make the
/// amplifier miss, never fabricate.
#[derive(Debug, Clone)]
pub struct WithSuccess<A> {
    inner: A,
    eps: f64,
}

impl<A: MonteCarloAlgorithm> WithSuccess<A> {
    /// Wraps `inner`, declaring success probability `eps`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps ≤ 1`.
    pub fn new(inner: A, eps: f64) -> Self {
        assert!(eps > 0.0 && eps <= 1.0, "ε must be in (0,1]");
        WithSuccess { inner, eps }
    }
}

impl<A: MonteCarloAlgorithm> MonteCarloAlgorithm for WithSuccess<A> {
    fn run(&self, seed: u64) -> McOutcome {
        self.inner.run(seed)
    }

    fn round_bound(&self) -> u64 {
        self.inner.round_bound()
    }

    fn success_probability(&self) -> f64 {
        self.eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_algorithm_roundtrip() {
        let alg = FnAlgorithm::new(
            |seed| McOutcome {
                rejected: seed == 7,
                rounds: 11,
            },
            11,
            0.25,
        );
        assert!(alg.run(7).rejected);
        assert!(!alg.run(8).rejected);
        assert_eq!(alg.run(0).rounds, 11);
        assert_eq!(alg.round_bound(), 11);
        assert!((alg.success_probability() - 0.25).abs() < 1e-12);
    }
}
