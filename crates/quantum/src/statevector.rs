//! Dense state-vector simulation of amplitude amplification.

use rand::Rng;

use crate::complex::Complex;

/// A dense quantum state over `dim` basis states.
///
/// This is all the quantum mechanics the paper needs: the search register
/// of Grover's algorithm over a space of classical seeds. The two Grover
/// operators — the phase oracle and the diffusion (inversion about the
/// mean) — are provided directly.
///
/// ```
/// use congest_quantum::StateVector;
/// let mut psi = StateVector::uniform(4);
/// // Mark element 2 and amplify once: for M = 4, m = 1 a single Grover
/// // iteration reaches certainty (sin²(3·π/6) = 1).
/// psi.apply_phase_oracle(|x| x == 2);
/// psi.apply_diffusion();
/// assert!((psi.probability_of(|x| x == 2) - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct StateVector {
    amps: Vec<Complex>,
}

impl StateVector {
    /// The uniform superposition `H^{⊗log M}|0⟩` over `dim` basis states.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn uniform(dim: usize) -> Self {
        assert!(dim > 0, "state space must be non-empty");
        let a = Complex::real(1.0 / (dim as f64).sqrt());
        StateVector { amps: vec![a; dim] }
    }

    /// A computational basis state `|x⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= dim` or `dim == 0`.
    pub fn basis(dim: usize, x: usize) -> Self {
        assert!(x < dim, "basis index out of range");
        let mut amps = vec![Complex::ZERO; dim];
        amps[x] = Complex::ONE;
        StateVector { amps }
    }

    /// Dimension of the state space.
    pub fn dim(&self) -> usize {
        self.amps.len()
    }

    /// The amplitude of basis state `x`.
    pub fn amplitude(&self, x: usize) -> Complex {
        self.amps[x]
    }

    /// Total probability mass (should stay 1 up to float error).
    pub fn total_probability(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// The probability that measuring yields an `x` with `pred(x)`.
    pub fn probability_of<F: Fn(usize) -> bool>(&self, pred: F) -> f64 {
        self.amps
            .iter()
            .enumerate()
            .filter(|(x, _)| pred(*x))
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// The phase oracle `O_f |x⟩ = (-1)^{f(x)} |x⟩`.
    pub fn apply_phase_oracle<F: FnMut(usize) -> bool>(&mut self, mut f: F) {
        for (x, a) in self.amps.iter_mut().enumerate() {
            if f(x) {
                *a = -*a;
            }
        }
    }

    /// The Grover diffusion operator `2|s⟩⟨s| - I` (inversion about the
    /// mean amplitude).
    pub fn apply_diffusion(&mut self) {
        let dim = self.amps.len() as f64;
        let mut mean = Complex::ZERO;
        for a in &self.amps {
            mean += *a;
        }
        mean = mean.scale(1.0 / dim);
        for a in self.amps.iter_mut() {
            *a = mean.scale(2.0) - *a;
        }
    }

    /// One full Grover iteration (oracle then diffusion).
    pub fn grover_iteration<F: FnMut(usize) -> bool>(&mut self, f: F) {
        self.apply_phase_oracle(f);
        self.apply_diffusion();
    }

    /// Samples a measurement outcome in the computational basis.
    pub fn measure<R: Rng>(&self, rng: &mut R) -> usize {
        let total = self.total_probability();
        let mut r: f64 = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
        for (x, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if r < p {
                return x;
            }
            r -= p;
        }
        self.amps.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn uniform_is_normalized() {
        let psi = StateVector::uniform(37);
        assert!((psi.total_probability() - 1.0).abs() < 1e-12);
        assert!((psi.amplitude(0).re - 1.0 / (37f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn basis_state() {
        let psi = StateVector::basis(8, 3);
        assert_eq!(psi.amplitude(3), Complex::ONE);
        assert!((psi.probability_of(|x| x == 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oracle_flips_signs() {
        let mut psi = StateVector::uniform(4);
        psi.apply_phase_oracle(|x| x == 1);
        assert!(psi.amplitude(1).re < 0.0);
        assert!(psi.amplitude(0).re > 0.0);
        assert!((psi.total_probability() - 1.0).abs() < 1e-12, "unitary");
    }

    #[test]
    fn diffusion_preserves_norm() {
        let mut psi = StateVector::uniform(16);
        psi.apply_phase_oracle(|x| x % 3 == 0);
        psi.apply_diffusion();
        assert!((psi.total_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grover_success_matches_theory() {
        // M = 64, m = 4: θ = asin(√(1/16)); after j iterations the marked
        // probability is sin²((2j+1)θ).
        let m_space = 64usize;
        let marked = |x: usize| x.is_multiple_of(16); // 4 marked
        let theta = (4.0f64 / 64.0).sqrt().asin();
        let mut psi = StateVector::uniform(m_space);
        for j in 1..=6u32 {
            psi.grover_iteration(marked);
            let p = psi.probability_of(marked);
            let theory = ((2 * j + 1) as f64 * theta).sin().powi(2);
            assert!(
                (p - theory).abs() < 1e-9,
                "iteration {j}: sim {p} vs theory {theory}"
            );
        }
    }

    #[test]
    fn measurement_statistics() {
        let mut psi = StateVector::uniform(4);
        psi.grover_iteration(|x| x == 2); // near-certain on 2
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..50 {
            assert_eq!(psi.measure(&mut rng), 2);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_space_panics() {
        StateVector::uniform(0);
    }
}
